//! # irs-sched
//!
//! A full-system reproduction of **"Scheduler Activations for
//! Interference-Resilient SMP Virtual Machine Scheduling"** (Zhao, Suo,
//! Cheng, Rao — Middleware '17) on a deterministic two-level scheduling
//! simulator, written from scratch in Rust.
//!
//! The paper's system — **IRS** — bridges the *reverse semantic gap* in
//! virtualized SMP scheduling: the guest OS never learns that the
//! hypervisor preempted one of its vCPUs, so the thread running there
//! (often a lock holder or the next lock waiter) silently stalls for a full
//! hypervisor time slice. IRS sends the guest a **scheduler activation**
//! right before the preemption; the guest context-switches the critical
//! thread off the doomed vCPU and its migrator moves it to a sibling vCPU
//! that is actually running.
//!
//! This crate is the front door of a workspace that rebuilds everything the
//! paper depends on:
//!
//! | crate | role |
//! |---|---|
//! | [`sim`] | discrete-event kernel: virtual time, cancellable timers, seeded RNG |
//! | [`xen`] | Xen-like hypervisor: credit scheduler, runstates, SA sender, PLE, relaxed-co |
//! | [`guest`] | Linux-like guest: CFS, load balancing, SA receiver/context switcher/migrator |
//! | [`sync`] | blocking & spinning locks/barriers, pipelines, work stealing |
//! | [`workloads`] | PARSEC-like, NPB-like, server, and CPU-hog workload models |
//! | [`core`] | the co-simulation, scheduling strategies, scenarios, results |
//! | [`metrics`] | statistics and figure rendering |
//!
//! # Quickstart
//!
//! ```
//! use irs_sched::{Scenario, Strategy};
//!
//! // streamcluster in a 4-vCPU VM, one CPU hog co-located with vCPU 0.
//! let vanilla = Scenario::fig5_style("streamcluster", 1, Strategy::Vanilla, 1).run();
//! let irs = Scenario::fig5_style("streamcluster", 1, Strategy::Irs, 1).run();
//! let improvement = irs_sched::metrics::improvement_pct(
//!     vanilla.measured().makespan_ms(),
//!     irs.measured().makespan_ms(),
//! );
//! assert!(improvement > 15.0, "IRS recovers a large fraction of the stall time");
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and the `figures`
//! binary in `irs-bench` for the full evaluation harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use irs_core::{
    parallel, runner, RunResult, Scenario, Strategy, System, SystemConfig, VmResult, VmScenario,
};

/// The discrete-event simulation kernel.
pub mod sim {
    pub use irs_sim::*;
}

/// The Xen-like hypervisor model.
pub mod xen {
    pub use irs_xen::*;
}

/// The Linux-like guest kernel model.
pub mod guest {
    pub use irs_guest::*;
}

/// Synchronization primitives (blocking and spinning).
pub mod sync {
    pub use irs_sync::*;
}

/// Workload models and the benchmark preset catalog.
pub mod workloads {
    pub use irs_workloads::*;
}

/// Statistics and table/series rendering.
pub mod metrics {
    pub use irs_metrics::*;
}
