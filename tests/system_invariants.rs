//! Whole-system invariant sweeps: drive diverse scenarios step by step and
//! verify cross-layer consistency between events.

use irs_sched::sim::SimTime;
use irs_sched::workloads::presets;
use irs_sched::{Scenario, Strategy, System, VmScenario};

fn sweep(mut sys: System, label: &str) {
    let mut checked = 0u64;
    let mut steps = 0u64;
    while sys.step() {
        steps += 1;
        if steps.is_multiple_of(157) {
            sys.check_invariants();
            checked += 1;
        }
        if sys.now() > SimTime::from_millis(1500) {
            break;
        }
    }
    sys.check_invariants();
    assert!(checked > 5, "{label}: sweep too short ({checked} checks)");
}

#[test]
fn invariants_hold_under_irs_blocking() {
    sweep(
        System::new(Scenario::fig5_style("fluidanimate", 2, Strategy::Irs, 5)),
        "irs blocking",
    );
}

#[test]
fn invariants_hold_under_irs_spinning() {
    sweep(
        System::new(Scenario::fig5_style("MG", 4, Strategy::Irs, 5)),
        "irs spinning 4-inter",
    );
}

#[test]
fn invariants_hold_under_ple() {
    sweep(
        System::new(Scenario::fig5_style("CG", 2, Strategy::Ple, 5)),
        "ple spinning",
    );
}

#[test]
fn invariants_hold_under_relaxed_co() {
    sweep(
        System::new(Scenario::fig5_style("streamcluster", 2, Strategy::RelaxedCo, 5)),
        "relaxed-co blocking",
    );
}

#[test]
fn invariants_hold_under_strict_co() {
    sweep(
        System::new(Scenario::fig5_style("UA", 2, Strategy::StrictCo, 5)),
        "strict co-scheduling",
    );
}

#[test]
fn invariants_hold_unpinned() {
    let mut s = Scenario::fig5_style("canneal", 4, Strategy::Irs, 5);
    for vm in &mut s.vms {
        vm.pinning = None;
    }
    sweep(System::new(s), "unpinned stacking");
}

/// Regression: relaxed-co's accounting pass emits a batch of schedule
/// actions; applying one (a started vCPU with nothing to run blocks
/// immediately) re-enters the hypervisor, whose nested schedule can steal
/// and re-dispatch a vCPU named by a *stale* stop action later in the same
/// batch. Unguarded, that stale stop closed the fresh execution window and
/// froze the task forever (observed with bodytrack/Relaxed-Co/seed 2,
/// unpinned, at the 58th accounting boundary). Invariants are checked on
/// every step through the window where the freeze occurred.
#[test]
fn invariants_hold_under_relaxed_co_unpinned() {
    let mut s = Scenario::fig5_style("bodytrack", 4, Strategy::RelaxedCo, 2);
    for vm in &mut s.vms {
        vm.pinning = None;
    }
    let mut sys = System::new(s);
    while sys.step() {
        sys.check_invariants();
        if sys.now() > SimTime::from_millis(2000) {
            break;
        }
    }
}

/// Companion to the sweep above: the previously-frozen configuration must
/// run to completion.
#[test]
fn relaxed_co_unpinned_completes() {
    let mut s = Scenario::fig5_style("bodytrack", 4, Strategy::RelaxedCo, 2);
    for vm in &mut s.vms {
        vm.pinning = None;
    }
    let r = s.run();
    assert!(
        r.measured().makespan.is_some(),
        "bodytrack/Relaxed-Co/seed 2 unpinned must complete"
    );
}

#[test]
fn invariants_hold_for_pipelines() {
    sweep(
        System::new(Scenario::fig5_style("dedup", 2, Strategy::Irs, 5)),
        "pipeline",
    );
}

#[test]
fn invariants_hold_for_servers() {
    let s = Scenario::new(4, Strategy::Irs, 5)
        .vm(
            VmScenario::new(presets::server::apache_ab(64, 4, 0.5), 4)
                .pin_one_to_one()
                .measured(),
        )
        .vm(VmScenario::new(presets::hog::cpu_hogs(2), 4).pin_one_to_one())
        .horizon(SimTime::from_secs(2));
    sweep(System::new(s), "open-loop server");
}

#[test]
fn invariants_hold_for_pull_oracle() {
    sweep(
        System::new(Scenario::fig5_style("blackscholes", 2, Strategy::IrsPull, 5)),
        "pull oracle",
    );
}

/// Parallel workloads complete and release every task; nothing leaks.
#[test]
fn every_task_terminates() {
    for strategy in [Strategy::Vanilla, Strategy::Irs, Strategy::Ple, Strategy::RelaxedCo] {
        let r = Scenario::fig5_style("EP", 2, strategy, 5).run();
        assert!(
            r.measured().makespan.is_some(),
            "{strategy}: EP failed to complete"
        );
    }
}
