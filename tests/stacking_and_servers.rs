//! Integration tests of §5.3 (servers) and §5.6 (CPU stacking).

use irs_sched::sim::SimTime;
use irs_sched::workloads::presets;
use irs_sched::{Scenario, Strategy, VmScenario};

fn unpinned(bench: &str, strategy: Strategy, seed: u64) -> f64 {
    let mut s = Scenario::fig5_style(bench, 4, strategy, seed);
    for vm in &mut s.vms {
        vm.pinning = None;
    }
    s.run().measured().makespan_ms()
}

/// §2.3/§5.6: unpinning under full hog load costs vanilla real time
/// (stacking), for both blocking and spinning workloads.
#[test]
fn stacking_hurts_vanilla() {
    for bench in ["streamcluster", "MG"] {
        let pinned = Scenario::fig5_style(bench, 4, Strategy::Vanilla, 1)
            .run()
            .measured()
            .makespan_ms();
        let un = unpinned(bench, Strategy::Vanilla, 1);
        assert!(
            un > pinned * 1.15,
            "{bench}: stacking must cost vanilla (pinned {pinned:.0} vs unpinned {un:.0})"
        );
    }
}

/// §5.6: IRS mitigates stacking (it keeps vCPUs exhibiting their factual
/// demand), while PLE makes blocking workloads idle even more. Stacking
/// severity depends heavily on the (seeded) initial placement, so this
/// averages several seeds.
#[test]
fn irs_mitigates_stacking() {
    let mean = |bench: &str, strategy: Strategy| -> f64 {
        (1..=6u64).map(|s| unpinned(bench, strategy, s)).sum::<f64>() / 6.0
    };
    for bench in ["streamcluster", "MG"] {
        let van = mean(bench, Strategy::Vanilla);
        let irs = mean(bench, Strategy::Irs);
        assert!(
            irs < van * 0.98,
            "{bench}: IRS must beat vanilla under stacking ({irs:.0} vs {van:.0})"
        );
    }
    // PLE on a blocking workload converts spin-grace into extra idling.
    let van = mean("streamcluster", Strategy::Vanilla);
    let ple = mean("streamcluster", Strategy::Ple);
    assert!(
        ple > van * 0.95,
        "PLE must not be the best answer to blocking stacking"
    );
}

fn server_run(strategy: Strategy, seed: u64) -> irs_sched::RunResult {
    Scenario::new(4, strategy, seed)
        .vm(
            VmScenario::new(presets::server::specjbb(4), 4)
                .pin_one_to_one()
                .measured(),
        )
        .vm(VmScenario::new(presets::hog::cpu_hogs(1), 4).pin_one_to_one())
        .horizon(SimTime::from_secs(8))
        .run()
}

/// §5.3: IRS collapses the specjbb tail latency under one interferer while
/// leaving throughput roughly unchanged.
#[test]
fn irs_improves_server_tail_latency() {
    let v = server_run(Strategy::Vanilla, 7);
    let i = server_run(Strategy::Irs, 7);
    let v_p99 = v.measured().latency_percentile_us(99.0);
    let i_p99 = i.measured().latency_percentile_us(99.0);
    assert!(
        i_p99 < v_p99 * 0.7,
        "p99 must drop substantially: vanilla {v_p99:.0} us vs IRS {i_p99:.0} us"
    );
    let v_thr = v.measured().throughput_rps(v.elapsed);
    let i_thr = i.measured().throughput_rps(i.elapsed);
    assert!(
        (i_thr - v_thr).abs() / v_thr < 0.10,
        "throughput roughly unchanged: {v_thr:.0} vs {i_thr:.0} rps"
    );
}

/// §5.3: the ab open loop stays stable (no drops at 60% load) and IRS does
/// not hurt it despite 512 threads on 4 vCPUs.
#[test]
fn ab_open_loop_is_stable() {
    for strategy in [Strategy::Vanilla, Strategy::Irs] {
        let r = Scenario::new(4, strategy, 7)
            .vm(
                VmScenario::new(presets::server::apache_ab(256, 4, 0.6), 4)
                    .pin_one_to_one()
                    .measured(),
            )
            .vm(VmScenario::new(presets::hog::cpu_hogs(1), 4).pin_one_to_one())
            .horizon(SimTime::from_secs(5))
            .run();
        let m = r.measured();
        assert_eq!(m.dropped_requests, 0, "{strategy}: accept queue overflowed");
        // Offered: 60% of (4 - 0.5) effective pCPUs ≈ 1050 rps; the served
        // rate must be close to offered.
        let thr = m.throughput_rps(r.elapsed);
        assert!(
            thr > 900.0,
            "{strategy}: open loop fell behind at {thr:.0} rps"
        );
    }
}

/// §2.1: strict co-scheduling eliminates LHP within the VM (its makespan is
/// the clean time-shared bound) but fragments the machine — every pCPU
/// except the hog's idles during the hog VM's gang slot.
#[test]
fn strict_co_trades_lhp_for_fragmentation() {
    let solo = {
        let mut s = Scenario::fig5_style("streamcluster", 1, Strategy::Vanilla, 1);
        s.vms.truncate(1);
        s.run().measured().makespan_ms()
    };
    let r = Scenario::fig5_style("streamcluster", 1, Strategy::StrictCo, 1).run();
    let gang_ms = r.measured().makespan_ms();
    // Clean alternation: the parallel VM gets ~half the wall clock with all
    // four pCPUs and zero LHP => makespan ~2x solo (within slack).
    assert!(
        gang_ms > solo * 1.7 && gang_ms < solo * 2.4,
        "gang makespan {gang_ms:.0} vs solo {solo:.0}"
    );
    assert!(r.hv.gang_rotations > 50, "rotations: {}", r.hv.gang_rotations);
    // Fragmentation: during the hog VM's slots three pCPUs idle.
    let total_cpu: f64 = r.vms.iter().map(|v| v.cpu_time.as_secs_f64()).sum();
    let idle_frac = 1.0 - total_cpu / (4.0 * r.elapsed.as_secs_f64());
    assert!(
        idle_frac > 0.30,
        "strict co must fragment the machine, idle {idle_frac:.2}"
    );
    // No SA traffic, obviously.
    assert_eq!(r.hv.sa_sent, 0);
}
