//! Integration tests of the paper's headline results (§5.2, §5.5): where
//! IRS must win, where it must not matter, and how the gain scales.

use irs_sched::metrics::improvement_pct;
use irs_sched::{Scenario, Strategy};

fn improvement(bench: &str, n_inter: usize, strategy: Strategy, seed: u64) -> f64 {
    let base = Scenario::fig5_style(bench, n_inter, Strategy::Vanilla, seed)
        .run()
        .measured()
        .makespan_ms();
    let var = Scenario::fig5_style(bench, n_inter, strategy, seed)
        .run()
        .measured()
        .makespan_ms();
    improvement_pct(base, var)
}

/// Blocking workloads gain substantially at 1-inter (paper: up to 42%).
#[test]
fn irs_helps_blocking_parsec() {
    for bench in ["streamcluster", "blackscholes", "facesim"] {
        let imp = improvement(bench, 1, Strategy::Irs, 1);
        assert!(
            imp > 15.0,
            "{bench}: IRS must recover a large fraction of the stall ({imp:+.1}%)"
        );
    }
}

/// Spinning workloads gain too (paper: up to 43%) — via guest-granularity
/// rescheduling rather than idle vCPUs.
#[test]
fn irs_helps_spinning_npb() {
    for bench in ["MG", "CG", "UA"] {
        let imp = improvement(bench, 1, Strategy::Irs, 1);
        assert!(imp > 10.0, "{bench}: IRS should help spinning ({imp:+.1}%)");
    }
}

/// Pipeline workloads (threads ≫ vCPUs) and user-level work stealing gain
/// little — the paper's dedup/ferret/raytrace observation.
#[test]
fn irs_is_marginal_where_the_guest_already_balances() {
    for bench in ["dedup", "ferret", "raytrace"] {
        let imp = improvement(bench, 1, Strategy::Irs, 1);
        assert!(
            imp.abs() < 10.0,
            "{bench}: IRS should be marginal ({imp:+.1}%)"
        );
    }
}

/// The gain diminishes as interference covers more vCPUs (Fig 5/6 trend),
/// and at 4-inter it may turn negative but never as deep as the 1-inter
/// gain was high.
#[test]
fn gain_diminishes_with_interference() {
    let one = improvement("streamcluster", 1, Strategy::Irs, 1);
    let four = improvement("streamcluster", 4, Strategy::Irs, 1);
    assert!(
        one > four + 10.0,
        "interference-free vCPUs drive the gain: 1-inter {one:+.1}% vs 4-inter {four:+.1}%"
    );
}

/// Barrier (group) synchronization benefits more than mutex
/// (point-to-point) — the §5.5 archetype comparison at one interferer.
#[test]
fn group_sync_gains_at_least_as_much_as_point_to_point() {
    let barrier = improvement("blackscholes", 1, Strategy::Irs, 2);
    let mutex = improvement("x264", 1, Strategy::Irs, 2);
    assert!(barrier > 10.0 && mutex > 10.0);
    // Both benefit; group sync must not lag far behind point-to-point.
    assert!(
        barrier > mutex - 12.0,
        "barrier {barrier:+.1}% vs mutex {mutex:+.1}%"
    );
}

/// PLE must not beat IRS for blocking workloads (it has nothing to stop:
/// blocking primitives barely spin), per §5.2.
#[test]
fn ple_trails_irs_on_blocking_workloads() {
    for bench in ["streamcluster", "facesim"] {
        let irs = improvement(bench, 1, Strategy::Irs, 1);
        let ple = improvement(bench, 1, Strategy::Ple, 1);
        assert!(
            irs > ple,
            "{bench}: IRS ({irs:+.1}%) must beat PLE ({ple:+.1}%)"
        );
    }
}

/// Fig 11: the IRS gain *increases* with consolidation depth (more VMs per
/// contended pCPU), because each extra VM stretches the vanilla stall.
#[test]
fn gain_grows_with_consolidation_depth() {
    let imp = |n_vms: usize| {
        let base = Scenario::fig11_style("blackscholes", 1, n_vms, Strategy::Vanilla, 1)
            .run()
            .measured()
            .makespan_ms();
        let irs = Scenario::fig11_style("blackscholes", 1, n_vms, Strategy::Irs, 1)
            .run()
            .measured()
            .makespan_ms();
        improvement_pct(base, irs)
    };
    let one = imp(1);
    let three = imp(3);
    assert!(
        three > one,
        "deeper consolidation must increase the gain: 1 VM {one:+.1}% vs 3 VMs {three:+.1}%"
    );
}

/// The §6 pull-based oracle is at least as good as push-based IRS on
/// blocking workloads (it removes the load-estimate guesswork).
#[test]
fn pull_oracle_bounds_push_irs() {
    let push = improvement("streamcluster", 2, Strategy::Irs, 3);
    let pull = improvement("streamcluster", 2, Strategy::IrsPull, 3);
    assert!(
        pull > push - 8.0,
        "oracle should be comparable or better: push {push:+.1}% vs pull {pull:+.1}%"
    );
}

/// Fig 10's frame: the 8-vCPU configuration behaves like the 4-vCPU one —
/// strong gain at one interference, near-zero when everything is contended.
#[test]
fn eight_vcpu_scaling() {
    let imp = |n_inter: usize| {
        let base = Scenario::fig10_style("blackscholes", None, n_inter, Strategy::Vanilla, 1)
            .run()
            .measured()
            .makespan_ms();
        let irs = Scenario::fig10_style("blackscholes", None, n_inter, Strategy::Irs, 1)
            .run()
            .measured()
            .makespan_ms();
        improvement_pct(base, irs)
    };
    let one = imp(1);
    let eight = imp(8);
    assert!(one > 20.0, "1 of 8 interfered: large gain expected ({one:+.1}%)");
    assert!(
        eight < 12.0,
        "all 8 interfered: nowhere to migrate ({eight:+.1}%)"
    );
    assert!(one > eight + 10.0);
}

/// Real-application interference (§5.2): gains persist when the interferer
/// is itself a parallel program that suffers LHP/LWP.
#[test]
fn real_interference_also_benefits() {
    let base = Scenario::real_interference("streamcluster", "fluidanimate", 2, Strategy::Vanilla, 1)
        .run()
        .measured()
        .makespan_ms();
    let irs = Scenario::real_interference("streamcluster", "fluidanimate", 2, Strategy::Irs, 1)
        .run()
        .measured()
        .makespan_ms();
    let imp = improvement_pct(base, irs);
    assert!(imp > 15.0, "got {imp:+.1}%");
}
