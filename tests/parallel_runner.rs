//! The parallel experiment engine's headline guarantee: worker count
//! changes wall-clock only, never results. Every metric of every seeded
//! run must be bit-identical between `jobs = 1` and a wide fan-out.

use irs_sched::runner::run_seeds_jobs;
use irs_sched::{Scenario, Strategy};

fn assert_identical_runs(make: impl Fn(u64) -> Scenario + Sync) {
    let sequential = run_seeds_jobs(1, 6, 1, &make);
    let parallel = run_seeds_jobs(1, 6, 8, &make);
    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.elapsed, p.elapsed);
        assert_eq!(s.events, p.events);
        assert_eq!(s.measured().makespan, p.measured().makespan);
        assert_eq!(s.hv.preemptions, p.hv.preemptions);
        assert_eq!(s.hv.vcpu_migrations, p.hv.vcpu_migrations);
    }
}

/// Vanilla EP: the cheapest preset, blocking guest path.
#[test]
fn vanilla_runs_identical_across_worker_counts() {
    assert_identical_runs(|seed| Scenario::fig5_style("EP", 1, Strategy::Vanilla, seed));
}

/// IRS with interference: exercises SA upcalls, the migrator, and
/// hypervisor preemption — the full event mix.
#[test]
fn irs_runs_identical_across_worker_counts() {
    assert_identical_runs(|seed| Scenario::fig5_style("EP", 2, Strategy::Irs, seed));
}
