//! Integration tests of §5.4 (fairness) and the SA protocol accounting.

use irs_sched::{Scenario, Strategy};

/// §5.4: IRS never lets the foreground VM exceed its fair share of the
/// pCPUs.
#[test]
fn irs_respects_fair_share() {
    for n_inter in [1usize, 2, 4] {
        let fair_pcpus = 4.0 - n_inter as f64 / 2.0;
        let r = Scenario::fig5_style("streamcluster", n_inter, Strategy::Irs, 1).run();
        let util = r.measured().utilization_vs_fair_share(fair_pcpus, r.elapsed);
        assert!(
            util <= 1.05,
            "{n_inter}-inter: foreground exceeded fair share ({util:.2})"
        );
    }
}

/// §5.4: the background VM keeps roughly its fair share of the contended
/// pCPU under IRS (the foreground's gain comes from its own idle cycles,
/// not from starving the competitor).
#[test]
fn background_is_not_starved() {
    let r = Scenario::fig5_style("streamcluster", 2, Strategy::Irs, 1).run();
    // 2 hogs → the background VM's fair share is 2 × 0.5 pCPU = 1 pCPU.
    let bg_cpu = r.vms[1].cpu_time.as_secs_f64();
    let fair = r.elapsed.as_secs_f64() * 1.0;
    assert!(
        bg_cpu > 0.75 * fair,
        "background got only {:.0}% of its fair share",
        bg_cpu / fair * 100.0
    );
}

/// Every SA round is accounted for: sent = acknowledged + timed out; a
/// well-behaved guest never trips the completion limit.
#[test]
fn sa_protocol_accounting() {
    for n_inter in [1usize, 2, 4] {
        let r = Scenario::fig5_style("UA", n_inter, Strategy::Irs, 1).run();
        assert!(r.hv.sa_sent > 0, "{n_inter}-inter: SA must fire");
        assert_eq!(r.hv.sa_sent, r.hv.sa_acked + r.hv.sa_timeouts);
        assert_eq!(r.hv.sa_timeouts, 0, "default budget must never time out");
    }
}

/// Non-IRS strategies never emit SA traffic, and the IRS guest never
/// receives SA without interference-induced preemption pressure.
#[test]
fn sa_only_under_irs() {
    for strategy in [Strategy::Vanilla, Strategy::Ple, Strategy::RelaxedCo] {
        let r = Scenario::fig5_style("streamcluster", 2, strategy, 1).run();
        assert_eq!(r.hv.sa_sent, 0, "{strategy} must not send SA");
        assert_eq!(r.measured().guest.sa_migrations, 0);
    }
}

/// Determinism: a scenario is a pure function of its seed.
#[test]
fn runs_are_deterministic() {
    for strategy in [Strategy::Vanilla, Strategy::Irs, Strategy::Ple] {
        let a = Scenario::fig5_style("MG", 2, strategy, 9).run();
        let b = Scenario::fig5_style("MG", 2, strategy, 9).run();
        assert_eq!(a.measured().makespan, b.measured().makespan, "{strategy}");
        assert_eq!(a.hv.preemptions, b.hv.preemptions, "{strategy}");
        assert_eq!(a.hv.sa_sent, b.hv.sa_sent, "{strategy}");
        assert_eq!(
            a.measured().guest.context_switches,
            b.measured().guest.context_switches,
            "{strategy}"
        );
    }
}

/// The Fig 4 pingpong fix pays off: with tagging, blocking workloads do at
/// least as well as without, and pingpong preemptions actually occur.
#[test]
fn pingpong_tagging_is_active_and_not_harmful() {
    // Whether the exact Fig 4 situation (a waiter waking onto a vCPU whose
    // current is a tagged intruder) arises depends on interleaving; scan a
    // few configurations for at least one trigger.
    let mut triggered = 0u64;
    let mut on_total = 0.0;
    let mut off_total = 0.0;
    for (bench, seed) in [("fluidanimate", 1u64), ("fluidanimate", 2), ("bodytrack", 1), ("canneal", 2)] {
        let with = Scenario::fig5_style(bench, 2, Strategy::Irs, seed).run();
        triggered += with.measured().guest.pingpong_preempts;
        on_total += with.measured().makespan_ms();
        let mut off = Scenario::fig5_style(bench, 2, Strategy::Irs, seed);
        off.vms[0].sa_override = Some(irs_sched::guest::GuestSaConfig {
            pingpong_tagging: false,
            ..irs_sched::guest::GuestSaConfig::default()
        });
        off_total += off.run().measured().makespan_ms();
    }
    assert!(
        triggered > 0,
        "the Fig 4 path must trigger somewhere across blocking workloads"
    );
    assert!(
        on_total < off_total * 1.10,
        "tagging must not cost more than noise: on {on_total:.0} vs off {off_total:.0}"
    );
}
