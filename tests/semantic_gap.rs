//! Integration tests of the paper's §1–§2 observations: the semantic gaps
//! themselves, before any fix is applied.

use irs_sched::sim::SimTime;
use irs_sched::workloads::{presets, ProgramBuilder, WorkloadBundle};
use irs_sched::xen::PcpuId;
use irs_sched::{Scenario, Strategy, System, VmScenario};

/// §1 / Fig 1(a): a blocking parallel program slows down far more than its
/// lost CPU share, while the work-stealing program barely notices.
#[test]
fn lhp_slowdown_exceeds_cpu_share_loss() {
    let solo = {
        let mut s = Scenario::fig5_style("fluidanimate", 1, Strategy::Vanilla, 1);
        s.vms.truncate(1);
        s.run().measured().makespan_ms()
    };
    let inter = Scenario::fig5_style("fluidanimate", 1, Strategy::Vanilla, 1)
        .run()
        .measured()
        .makespan_ms();
    let slowdown = inter / solo;
    // Losing half of one of four pCPUs is a 12.5% capacity cut; LHP makes
    // the whole program pay far more than that.
    assert!(
        slowdown > 1.5,
        "LHP amplification missing: slowdown only {slowdown:.2}x"
    );

    let solo_rt = {
        let mut s = Scenario::fig5_style("raytrace", 1, Strategy::Vanilla, 1);
        s.vms.truncate(1);
        s.run().measured().makespan_ms()
    };
    let inter_rt = Scenario::fig5_style("raytrace", 1, Strategy::Vanilla, 1)
        .run()
        .measured()
        .makespan_ms();
    let rt_slowdown = inter_rt / solo_rt;
    assert!(
        rt_slowdown < 1.3,
        "work stealing should absorb interference, got {rt_slowdown:.2}x"
    );
    assert!(rt_slowdown < slowdown, "raytrace must be the resilient one");
}

fn victim_scenario(n_vms: usize, seed: u64) -> Scenario {
    let prog = ProgramBuilder::new()
        .forever(|b| b.compute_us(10_000, 0.0))
        .build();
    let victim = WorkloadBundle::interference(
        "victim",
        vec![prog],
        irs_sched::sync::SyncSpace::new(),
        0.0,
    );
    let mut s = Scenario::new(2, Strategy::Vanilla, seed)
        .vm(
            VmScenario::new(victim, 2)
                .pin(vec![PcpuId(0), PcpuId(1)])
                .measured(),
        )
        .horizon(SimTime::from_secs(30));
    for _ in 0..n_vms {
        s = s.vm(VmScenario::new(presets::hog::cpu_hogs(1), 1).pin(vec![PcpuId(0)]));
    }
    s
}

/// §1 / Fig 1(b): migrating a *running* task must wait for its source vCPU
/// to be scheduled, so each co-located VM adds roughly one hypervisor
/// scheduling delay — the staircase.
#[test]
fn migration_latency_staircase() {
    let latency = |n_vms: usize| -> f64 {
        let mut sys = System::new(victim_scenario(n_vms, 11));
        while sys.now() < SimTime::from_millis(100) {
            sys.step();
        }
        let mut total = 0.0;
        let rounds = 10;
        for round in 0..rounds {
            if sys.guest(0).task(irs_sched::guest::TaskId(0)).cpu != 0 {
                sys.migrate_task(0, irs_sched::guest::TaskId(0), 0);
                while sys.guest(0).task(irs_sched::guest::TaskId(0)).cpu != 0 {
                    assert!(sys.step(), "queue drained mid-test");
                }
            }
            let settle = sys.now() + SimTime::from_micros(40_137 + round * 7013);
            while sys.now() < settle {
                sys.step();
            }
            let t0 = sys.now();
            sys.migrate_task(0, irs_sched::guest::TaskId(0), 1);
            while sys.guest(0).task(irs_sched::guest::TaskId(0)).cpu != 1 {
                assert!(sys.step(), "queue drained mid-test");
            }
            total += (sys.now() - t0).as_nanos() as f64 / 1e6;
        }
        total / rounds as f64
    };

    let alone = latency(0);
    let one = latency(1);
    let two = latency(2);
    let three = latency(3);
    assert!(alone < 2.0, "uncontended migration should be ~a tick, got {alone:.1} ms");
    assert!(one > alone, "one VM must add scheduling delay");
    assert!(
        two > one + 5.0,
        "each VM adds roughly a slice: {one:.1} -> {two:.1}"
    );
    assert!(
        three > two + 5.0,
        "each VM adds roughly a slice: {two:.1} -> {three:.1}"
    );
}

/// §2.3: the guest pull balancer never takes a "running" task, even when
/// its vCPU is preempted — verified end to end by checking that a vanilla
/// guest performs no stopper/SA migrations during an interfered run.
#[test]
fn vanilla_guest_cannot_rescue_the_stranded_task() {
    let r = Scenario::fig5_style("streamcluster", 1, Strategy::Vanilla, 1).run();
    let g = &r.measured().guest;
    assert_eq!(g.sa_migrations, 0, "vanilla has no SA machinery");
    assert_eq!(r.hv.sa_sent, 0, "vanilla hypervisor sends no SA");
    // The threads that matter are 'current' on their vCPUs; pull/push can
    // only move *queued* tasks, which a 4-thread/4-vCPU run has only in
    // fleeting wake-up races — never the stranded lock holder.
    assert!(
        g.pull_migrations + g.push_migrations < 5,
        "vanilla balancing moved {} tasks",
        g.pull_migrations + g.push_migrations
    );
    assert_eq!(g.stopper_migrations, 0);
}

/// Fig 2: blocking workloads leave fair share unused; spinning workloads
/// burn their full share without profiting.
#[test]
fn utilization_shapes() {
    let r = Scenario::fig2_style("streamcluster", 1).run();
    let util = r
        .measured()
        .utilization_vs_fair_share(3.5, r.elapsed);
    assert!(util < 0.8, "blocking run must under-use its share, got {util:.2}");

    let r = Scenario::fig5_style("UA", 1, Strategy::Vanilla, 1).run(); // spinning
    let util = r.measured().utilization_vs_fair_share(3.5, r.elapsed);
    assert!(
        util > 0.9,
        "spinning run must consume its full share, got {util:.2}"
    );
}
