#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, a lint gate, a
# checked strategy sweep (online invariant sanitizer armed), a
# parallel-runner smoke test, a tickless equivalence pass (sanitizer
# armed, fast-forward on), a checked fault-injection chaos smoke, and a
# snapshot/fork smoke (forked branches bit-identical to from-scratch
# runs across strategies and fault profiles), a fleet-campaign smoke
# (16-host datacenter with churn and adversarial tenants; asserts the
# degradation contract per cell and ratchets its events/sec), a
# fleet incremental-parity gate (--parity re-runs the smoke campaign
# with the dirty-host carry-over and snapshot/result cache disabled and
# asserts bit-identical SLO tables), a 1000-host fleet-scale pass
# (ratchets *effective* events/sec — logical volume per wall second —
# and enforces the deterministic >=5x incrementality floor), and a
# serving-campaign smoke (open-loop latency-SLO service under
# interference; asserts every cell completed requests, once with the
# sanitizer armed and once recording/ratcheting its events/sec).
# Also regenerates BENCH_runner.json (via `figures perf --check-perf`,
# which fails the build on a combined-speedup regression below 0.85, on a
# queue-throughput drop below the timer-wheel floor, or on any phase
# falling past the ratchet tolerance of its best matching
# BENCH_history.jsonl record) and records the total verification
# wall-clock in its `verify_wall_s` field.
#
# Usage: scripts/verify.sh   (from the repository root)
set -euo pipefail
cd "$(dirname "$0")/.."

start=$(date +%s.%N)

echo "== cargo build --workspace --release =="
cargo build --workspace --release

echo "== cargo test --workspace -q =="
cargo test --workspace -q

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== figures checked sweep (invariant sanitizer, all strategies) =="
./target/release/figures core --quick --check --jobs 2 >/dev/null

echo "== figures smoke (parallel fan-out) =="
./target/release/figures core --quick --seeds 2 --jobs 2 >/dev/null

echo "== figures tickless sweep (fast-forward on, sanitizer armed) =="
./target/release/figures core --quick --check --tickless --jobs 2 >/dev/null

echo "== figures chaos (fault-injection campaign, sanitizer armed) =="
./target/release/figures chaos --quick --check --jobs 2 >/dev/null

echo "== figures fork smoke (snapshot/fork bit-identity) =="
./target/release/figures --fork-smoke --quick --jobs 2 >/dev/null

echo "== figures fleet smoke (sanitizer armed, degradation contract) =="
./target/release/figures fleet --smoke --check --jobs 2 >/dev/null

echo "== figures fleet smoke (perf record + events/sec ratchet) =="
./target/release/figures fleet --smoke --check-perf --jobs 2 >/dev/null

echo "== figures fleet smoke (incremental parity: elided == full) =="
./target/release/figures fleet --smoke --parity --jobs 2 >/dev/null

echo "== figures fleet scale (1000 hosts; effective events/sec ratchet) =="
./target/release/figures fleet --hosts 1000 --check-perf --jobs 2 >/dev/null

echo "== figures serving smoke (sanitizer armed, cell contracts) =="
./target/release/figures serving --smoke --check --jobs 2 >/dev/null

echo "== figures serving smoke (perf record + events/sec ratchet) =="
./target/release/figures serving --smoke --check-perf --jobs 2 >/dev/null

echo "== figures perf (regression gate; writes BENCH_runner.json) =="
./target/release/figures perf --quick --jobs 2 --check-perf

wall=$(echo "$start $(date +%s.%N)" | awk '{printf "%.3f", $2 - $1}')

# `figures perf` leaves verify_wall_s null for us to fill in.
if [ -f BENCH_runner.json ]; then
    sed -i "s/\"verify_wall_s\": null/\"verify_wall_s\": ${wall}/" BENCH_runner.json
fi

echo "verify OK in ${wall}s"
