//! Online scheduler-invariant sanitizer.
//!
//! When enabled (per-run via [`crate::SystemConfig::check`] or process-wide
//! via [`set_check_enabled`]), [`System::step`](crate::System::step) re-runs
//! a battery of cross-layer invariants after *every* event it dispatches:
//!
//! 1. **Credit conservation** — per-vCPU credits stay inside
//!    `[CREDIT_FLOOR, CREDIT_CAP]`, never increase outside an accounting
//!    pass, and one accounting pass never mints more than the machine-wide
//!    pot (`CREDITS_PER_ACCT × n_pcpus`).
//! 2. **Runstate legality** — every runstate-clock component is
//!    non-decreasing and the components of each vCPU always sum to the
//!    current virtual time (no lost or double-counted intervals).
//! 3. **pCPU exclusivity** — at most one `Running` vCPU is homed on any
//!    pCPU, and the pCPU's `current` pointer agrees with the runstates in
//!    both directions.
//! 4. **No double-run** — a guest task is current on at most one vCPU, a
//!    current task is `Running` with a matching `cpu`, and CFS never holds
//!    a blocked or exited task current.
//! 5. **SA protocol** — `sa_pending` is never re-armed while already
//!    pending, and the SA generation counter never runs backwards.
//! 6. **Utilization ≤ capacity** — the machine never reports more
//!    `Running` vCPUs than it has pCPUs.
//! 7. **Vruntime monotonicity** — a task's CFS vruntime never decreases
//!    except across a migration (where CFS re-baselines it against the
//!    destination queue).
//! 8. **SA freeze hygiene** — a pCPU frozen on an SA round (`sa_wait`)
//!    always has the waited-on vCPU current with its round pending, and no
//!    freeze outlives the completion limit by more than the checker's
//!    slack: `sa_wait` is always cleared and no vCPU freezes a pCPU
//!    forever, even under injected faults ([`crate::faults`]).
//!
//! A violation panics with the invariant's name, the offending values, and
//! the tail of the merged scheduling trace ([`crate::System::trace_dump`])
//! so the decision sequence that led to the corruption is visible.

use crate::events::Event;
use crate::system::System;
use irs_guest::TaskState;
use irs_xen::credit::{CREDITS_PER_ACCT, CREDIT_CAP, CREDIT_FLOOR};
use irs_xen::{PcpuId, RunState, RunstateInfo, VcpuRef};
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide sanitizer switch (see [`set_check_enabled`]).
static CHECK_ENABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables the invariant sanitizer for every [`System`] built
/// afterwards, regardless of its [`crate::SystemConfig`]. This is how
/// `figures --check` arms checking across a whole experiment sweep without
/// threading a flag through every call site.
pub fn set_check_enabled(enabled: bool) {
    CHECK_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the process-wide sanitizer switch is on.
pub fn check_enabled() -> bool {
    CHECK_ENABLED.load(Ordering::Relaxed)
}

/// Per-task snapshot the vruntime-monotonicity check compares against.
#[derive(Debug, Clone, Copy)]
struct TaskSnap {
    vruntime: u64,
    migrations: u64,
}

/// The sanitizer's rolling state: snapshots of everything whose *change*
/// (not just value) is constrained, refreshed after each validated step.
#[derive(Debug)]
pub(crate) struct Checker {
    /// Per-vCPU credits, in [`irs_xen::Hypervisor::all_vcpus`] order.
    credits: Vec<i64>,
    /// Per-vCPU runstate accounting, same order.
    runstates: Vec<RunstateInfo>,
    /// Per-vCPU `(sa_pending, sa_generation)`, same order.
    sa: Vec<(bool, u64)>,
    /// Per-VM, per-task vruntime/migration snapshots.
    tasks: Vec<Vec<TaskSnap>>,
    /// Per-pCPU: the SA freeze observed there (`(vcpu, generation, since)`),
    /// where `since` is the first step at which this exact freeze was seen.
    /// Drives the no-freeze-forever check.
    sa_wait_since: Vec<Option<(VcpuRef, u64, irs_sim::SimTime)>>,
}

impl Checker {
    /// Snapshots the freshly booted system.
    pub(crate) fn new(sys: &System) -> Self {
        let mut c = Checker {
            credits: Vec::new(),
            runstates: Vec::new(),
            sa: Vec::new(),
            tasks: Vec::new(),
            sa_wait_since: vec![None; sys.hypervisor().n_pcpus()],
        };
        c.snapshot(sys);
        c
    }

    fn snapshot(&mut self, sys: &System) {
        let hv = sys.hypervisor();
        let now = sys.now();
        self.credits.clear();
        self.runstates.clear();
        self.sa.clear();
        for v in hv.all_vcpus() {
            self.credits.push(hv.vcpu_credits(v));
            self.runstates.push(hv.runstate(v, now));
            self.sa.push((hv.is_sa_pending(v), hv.sa_generation(v)));
        }
        self.tasks.clear();
        for vm in 0..hv.n_vms() {
            let os = sys.guest(vm);
            self.tasks.push(
                (0..os.n_tasks())
                    .map(|t| {
                        let task = os.task(irs_guest::TaskId(t));
                        TaskSnap {
                            vruntime: task.vruntime,
                            migrations: task.migrations,
                        }
                    })
                    .collect(),
            );
        }
    }

    /// Validates every invariant against the post-`ev` system state, then
    /// rolls the snapshots forward. Panics with a trace dump on violation.
    pub(crate) fn check(&mut self, sys: &System, ev: Event) {
        self.check_credits(sys, ev);
        self.check_runstates(sys, ev);
        self.check_pcpu_exclusivity(sys, ev);
        self.check_guest_tasks(sys, ev);
        self.check_sa_protocol(sys, ev);
        self.check_sa_freeze(sys, ev);
        self.snapshot(sys);
    }

    fn check_credits(&self, sys: &System, ev: Event) {
        let hv = sys.hypervisor();
        let accounting = ev == Event::HvAccounting;
        let mut minted: i64 = 0;
        for (i, v) in hv.all_vcpus().enumerate() {
            let c = hv.vcpu_credits(v);
            if !(CREDIT_FLOOR..=CREDIT_CAP).contains(&c) {
                fail(
                    sys,
                    ev,
                    "credit-bounds",
                    format!("{v} holds {c} credits, outside [{CREDIT_FLOOR}, {CREDIT_CAP}]"),
                );
            }
            let prev = self.credits[i];
            if c > prev {
                if !accounting {
                    fail(
                        sys,
                        ev,
                        "credit-conservation",
                        format!("{v} credits rose {prev} -> {c} outside an accounting pass"),
                    );
                }
                minted += c - prev;
            }
        }
        let pot = CREDITS_PER_ACCT * hv.n_pcpus() as i64;
        if minted > pot {
            fail(
                sys,
                ev,
                "credit-conservation",
                format!("accounting minted {minted} credits, above the machine pot {pot}"),
            );
        }
    }

    fn check_runstates(&self, sys: &System, ev: Event) {
        let hv = sys.hypervisor();
        let now = sys.now();
        for (i, v) in hv.all_vcpus().enumerate() {
            let cur = hv.runstate(v, now);
            let prev = self.runstates[i];
            if cur.running < prev.running
                || cur.runnable < prev.runnable
                || cur.blocked < prev.blocked
                || cur.offline < prev.offline
            {
                fail(
                    sys,
                    ev,
                    "runstate-monotonic",
                    format!("{v} runstate component ran backwards: {prev:?} -> {cur:?}"),
                );
            }
            if cur.total() != now {
                fail(
                    sys,
                    ev,
                    "runstate-accounting",
                    format!("{v} runstate components sum to {} at t={now}: {cur:?}", cur.total()),
                );
            }
        }
    }

    fn check_pcpu_exclusivity(&self, sys: &System, ev: Event) {
        let hv = sys.hypervisor();
        let mut running_on: Vec<Option<VcpuRef>> = vec![None; hv.n_pcpus()];
        let mut running_total = 0usize;
        for v in hv.all_vcpus() {
            if hv.vcpu_state(v) != RunState::Running {
                continue;
            }
            running_total += 1;
            let home = hv.vcpu_home(v);
            if let Some(other) = running_on[home.0] {
                fail(
                    sys,
                    ev,
                    "pcpu-double-run",
                    format!("{home} has two Running vCPUs: {other} and {v}"),
                );
            }
            running_on[home.0] = Some(v);
            if hv.pcpu_current(home) != Some(v) {
                fail(
                    sys,
                    ev,
                    "pcpu-current-consistency",
                    format!(
                        "{v} is Running and homed on {home}, but {home} current is {:?}",
                        hv.pcpu_current(home)
                    ),
                );
            }
        }
        for p in 0..hv.n_pcpus() {
            if let Some(v) = hv.pcpu_current(PcpuId(p)) {
                if hv.vcpu_state(v) != RunState::Running {
                    fail(
                        sys,
                        ev,
                        "pcpu-current-consistency",
                        format!(
                            "pcpu{p} current is {v} but its runstate is {:?}",
                            hv.vcpu_state(v)
                        ),
                    );
                }
            }
        }
        if running_total > hv.n_pcpus() {
            fail(
                sys,
                ev,
                "utilization-capacity",
                format!("{running_total} Running vCPUs on a {}-pCPU machine", hv.n_pcpus()),
            );
        }
    }

    fn check_guest_tasks(&self, sys: &System, ev: Event) {
        let hv = sys.hypervisor();
        for vm in 0..hv.n_vms() {
            let os = sys.guest(vm);
            let mut current_on: Vec<Option<usize>> = vec![None; os.n_tasks()];
            for vcpu in 0..os.n_vcpus() {
                let Some(t) = os.current(vcpu) else { continue };
                if let Some(other) = current_on[t.0] {
                    fail(
                        sys,
                        ev,
                        "task-double-run",
                        format!("vm{vm} {t} is current on both v{other} and v{vcpu}"),
                    );
                }
                current_on[t.0] = Some(vcpu);
                let task = os.task(t);
                match task.state {
                    TaskState::Running => {}
                    TaskState::Blocked | TaskState::Exited => fail(
                        sys,
                        ev,
                        "blocked-task-current",
                        format!("vm{vm} v{vcpu} holds {t} current in state {}", task.state),
                    ),
                    TaskState::Ready => fail(
                        sys,
                        ev,
                        "task-double-run",
                        format!("vm{vm} v{vcpu} holds {t} current but it is queued as ready"),
                    ),
                }
                if task.cpu != vcpu {
                    fail(
                        sys,
                        ev,
                        "task-double-run",
                        format!("vm{vm} {t} is current on v{vcpu} but records cpu=v{}", task.cpu),
                    );
                }
            }
            for t in 0..os.n_tasks() {
                let task = os.task(irs_guest::TaskId(t));
                let prev = self.tasks[vm][t];
                if task.vruntime < prev.vruntime && task.migrations == prev.migrations {
                    fail(
                        sys,
                        ev,
                        "vruntime-monotonic",
                        format!(
                            "vm{vm} task{t} vruntime ran backwards {} -> {} without a migration",
                            prev.vruntime, task.vruntime
                        ),
                    );
                }
            }
        }
    }

    fn check_sa_protocol(&self, sys: &System, ev: Event) {
        let hv = sys.hypervisor();
        for (i, v) in hv.all_vcpus().enumerate() {
            let pending = hv.is_sa_pending(v);
            let gen = hv.sa_generation(v);
            let (prev_pending, prev_gen) = self.sa[i];
            if gen < prev_gen {
                fail(
                    sys,
                    ev,
                    "sa-generation",
                    format!("{v} SA generation ran backwards {prev_gen} -> {gen}"),
                );
            }
            if pending && prev_pending && gen != prev_gen {
                fail(
                    sys,
                    ev,
                    "sa-double-send",
                    format!(
                        "{v} re-armed an SA (gen {prev_gen} -> {gen}) while one was already pending"
                    ),
                );
            }
        }
    }

    /// SA freeze hygiene: every frozen pCPU is frozen on its own current
    /// vCPU with a pending round, and no freeze outlives the completion
    /// limit (with slack for deadline jitter) — i.e. `sa_wait` is always
    /// cleared and no vCPU freezes a pCPU forever, even under faults.
    fn check_sa_freeze(&mut self, sys: &System, ev: Event) {
        let hv = sys.hypervisor();
        let now = sys.now();
        let Some(sa) = hv.config().sa.as_ref() else {
            return; // no SA configured: sa_wait can never be set
        };
        let limit = sa.completion_limit;
        // Deadline jitter can stretch the armed deadline to ~2x the nominal
        // limit; one tick period absorbs event granularity.
        let allowed = limit + limit + hv.config().tick_period;
        for p in 0..hv.n_pcpus() {
            let pcpu = PcpuId(p);
            match hv.pcpu_sa_wait(pcpu) {
                None => self.sa_wait_since[p] = None,
                Some(w) => {
                    if hv.pcpu_current(pcpu) != Some(w) || !hv.is_sa_pending(w) {
                        fail(
                            sys,
                            ev,
                            "sa-wait-consistency",
                            format!(
                                "pcpu{p} is frozen on {w}, but current={:?} pending={}",
                                hv.pcpu_current(pcpu),
                                hv.is_sa_pending(w)
                            ),
                        );
                    }
                    let gen = hv.sa_generation(w);
                    match self.sa_wait_since[p] {
                        Some((pw, pg, since)) if pw == w && pg == gen => {
                            if now - since > allowed {
                                fail(
                                    sys,
                                    ev,
                                    "sa-freeze",
                                    format!(
                                        "pcpu{p} frozen on {w} (gen {gen}) since {since}, \
                                         {} exceeds the allowed {} (completion limit {})",
                                        now - since,
                                        allowed,
                                        limit
                                    ),
                                );
                            }
                        }
                        _ => self.sa_wait_since[p] = Some((w, gen, now)),
                    }
                }
            }
        }
    }
}

/// Renders the violation report and panics.
fn fail(sys: &System, ev: Event, invariant: &str, detail: String) -> ! {
    let dump = sys.trace_dump();
    let trace = if dump.is_empty() {
        "  (trace ring disabled)\n".to_string()
    } else {
        dump
    };
    panic!(
        "scheduler invariant violated: {invariant}\n  {detail}\n  at t={} after {:?} under {}\n\
         --- last scheduling decisions (oldest first) ---\n{trace}",
        sys.now(),
        ev,
        sys.strategy,
    );
}
