//! Run results and derived metrics.

use irs_guest::GuestStats;
use irs_metrics::{percentile, Summary};
use irs_sim::SimTime;
use irs_workloads::WorkloadKind;
use irs_xen::HvStats;

/// Outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Virtual time at which the run ended (measured-workload completion
    /// or the horizon).
    pub elapsed: SimTime,
    /// Per-VM outcomes, indexed like the scenario's VMs.
    pub vms: Vec<VmResult>,
    /// Hypervisor scheduler counters.
    pub hv: HvStats,
    /// Total discrete events processed — the denominator of the simulator's
    /// own events/sec throughput metric (`figures perf`).
    pub events: u64,
    /// Fault-injection counters; `None` unless the run was configured with
    /// [`crate::SystemConfig::faults`].
    pub faults: Option<crate::faults::FaultStats>,
}

impl RunResult {
    /// The first measured VM's result (most experiments have exactly one).
    ///
    /// # Panics
    ///
    /// Panics if no VM was marked measured.
    pub fn measured(&self) -> &VmResult {
        self.vms
            .iter()
            .find(|v| v.measured)
            .expect("scenario had no measured VM")
    }

    /// Coarse, deterministic estimate of this result's resident bytes —
    /// the [`crate::runner::ForkCache`] budgeting companion of
    /// [`crate::Snapshot::approx_bytes`]. Latency vectors dominate;
    /// everything else is inline.
    pub fn approx_bytes(&self) -> usize {
        let mut b = std::mem::size_of::<Self>();
        for vm in &self.vms {
            b += std::mem::size_of::<VmResult>() + vm.name.len();
            b += vm.latencies_us.capacity() * std::mem::size_of::<f64>();
        }
        b
    }
}

/// Per-VM outcome of a run.
#[derive(Debug, Clone)]
pub struct VmResult {
    /// Workload name (e.g. `"streamcluster"`, `"cpu-hogs"`).
    pub name: String,
    /// Workload semantics.
    pub kind: WorkloadKind,
    /// Whether this VM was a measurement target.
    pub measured: bool,
    /// Completion instant for parallel workloads that finished.
    pub makespan: Option<SimTime>,
    /// Useful compute completed (the background progress metric).
    pub useful: SimTime,
    /// Physical CPU time consumed by the VM.
    pub cpu_time: SimTime,
    /// Steal time suffered by the VM.
    pub steal_time: SimTime,
    /// Completed requests (server workloads).
    pub requests: u64,
    /// Open-loop requests dropped at a full accept queue.
    pub dropped_requests: u64,
    /// Requests still in flight when the run ended (arrived or started,
    /// never completed): counted explicitly so goodput tables surface the
    /// cut-off tail instead of silently dropping it.
    pub requests_truncated: u64,
    /// Per-request latencies in microseconds.
    pub latencies_us: Vec<f64>,
    /// Guest scheduler counters.
    pub guest: GuestStats,
    /// Lock-holder preemptions observed.
    pub lhp: u64,
    /// Lock-waiter preemptions observed.
    pub lwp: u64,
}

impl VmResult {
    /// Makespan in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if the workload did not complete — check
    /// [`VmResult::makespan`] first when that is a legitimate outcome.
    pub fn makespan_ms(&self) -> f64 {
        self.makespan
            .expect("workload did not complete within the horizon")
            .as_nanos() as f64
            / 1e6
    }

    /// Request throughput over `elapsed`.
    pub fn throughput_rps(&self, elapsed: SimTime) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.requests as f64 / elapsed.as_secs_f64()
        }
    }

    /// Mean request latency (µs); 0 with no requests.
    pub fn mean_latency_us(&self) -> f64 {
        Summary::of(&self.latencies_us).mean
    }

    /// Latency percentile (µs).
    pub fn latency_percentile_us(&self, p: f64) -> f64 {
        percentile(&self.latencies_us, p)
    }

    /// CPU utilization relative to a fair share of `fair_pcpus` physical
    /// CPUs over `elapsed` — Fig 2's y-axis.
    pub fn utilization_vs_fair_share(&self, fair_pcpus: f64, elapsed: SimTime) -> f64 {
        let fair = elapsed.as_secs_f64() * fair_pcpus;
        if fair <= 0.0 {
            0.0
        } else {
            self.cpu_time.as_secs_f64() / fair
        }
    }

    /// Useful-work rate (ns of completed compute per second of run) — the
    /// progress metric for never-terminating background workloads.
    pub fn work_rate(&self, elapsed: SimTime) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.useful.as_nanos() as f64 / elapsed.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm(measured: bool) -> VmResult {
        VmResult {
            name: "x".into(),
            kind: WorkloadKind::Parallel,
            measured,
            makespan: Some(SimTime::from_millis(1500)),
            useful: SimTime::from_secs(6),
            cpu_time: SimTime::from_secs(3),
            steal_time: SimTime::from_secs(1),
            requests: 500,
            dropped_requests: 0,
            requests_truncated: 0,
            latencies_us: vec![100.0, 200.0, 300.0, 400.0],
            guest: GuestStats::default(),
            lhp: 0,
            lwp: 0,
        }
    }

    #[test]
    fn measured_finds_the_right_vm() {
        let r = RunResult {
            elapsed: SimTime::from_secs(2),
            vms: vec![vm(false), vm(true)],
            hv: HvStats::default(),
            events: 0,
            faults: None,
        };
        assert!(r.measured().measured);
    }

    #[test]
    #[should_panic(expected = "no measured VM")]
    fn measured_panics_without_one() {
        let r = RunResult {
            elapsed: SimTime::from_secs(2),
            vms: vec![vm(false)],
            hv: HvStats::default(),
            events: 0,
            faults: None,
        };
        r.measured();
    }

    #[test]
    fn derived_metrics() {
        let v = vm(true);
        assert!((v.makespan_ms() - 1500.0).abs() < 1e-9);
        assert!((v.throughput_rps(SimTime::from_secs(2)) - 250.0).abs() < 1e-9);
        assert!((v.mean_latency_us() - 250.0).abs() < 1e-9);
        assert_eq!(v.latency_percentile_us(99.0), 400.0);
        // 3 s of CPU over 2 s against a fair share of 2 pCPUs = 75%.
        let util = v.utilization_vs_fair_share(2.0, SimTime::from_secs(2));
        assert!((util - 0.75).abs() < 1e-9);
        // 6e9 ns of useful work over 2 s = 3e9 ns/s.
        assert!((v.work_rate(SimTime::from_secs(2)) - 3e9).abs() < 1.0);
    }
}
