//! Declarative experiment setup.

use crate::results::RunResult;
use crate::strategy::Strategy;
use crate::system::System;
use irs_guest::GuestSaConfig;
use irs_sim::SimTime;
use irs_sync::WaitMode;
use irs_workloads::{presets, WorkloadBundle};
use irs_xen::PcpuId;

/// One VM of a scenario.
#[derive(Debug)]
pub struct VmScenario {
    /// The workload it runs.
    pub bundle: WorkloadBundle,
    /// Number of vCPUs.
    pub n_vcpus: usize,
    /// Hard affinity, one pCPU per vCPU; `None` leaves the VM unpinned.
    pub pinning: Option<Vec<PcpuId>>,
    /// Credit-scheduler weight.
    pub weight: u64,
    /// Whether this VM's performance is the experiment's measurement.
    pub measured: bool,
    /// Force the guest-IRS capability; `None` derives it (`measured` VMs
    /// get IRS kernels under IRS strategies, background VMs stay vanilla —
    /// the paper's §5.4 setup).
    pub irs_guest: Option<bool>,
    /// Override the guest-side SA parameters (delay sweeps, pingpong and
    /// idle-first ablations). Ignored unless the VM runs an IRS kernel.
    pub sa_override: Option<GuestSaConfig>,
}

impl VmScenario {
    /// A VM with `n_vcpus` vCPUs running `bundle`, unmeasured and unpinned.
    pub fn new(bundle: WorkloadBundle, n_vcpus: usize) -> Self {
        VmScenario {
            bundle,
            n_vcpus,
            pinning: None,
            weight: 256,
            measured: false,
            irs_guest: None,
            sa_override: None,
        }
    }

    /// Pins vCPU `i` to pCPU `i` (the §5.1 controlled placement).
    pub fn pin_one_to_one(mut self) -> Self {
        self.pinning = Some((0..self.n_vcpus).map(PcpuId).collect());
        self
    }

    /// Pins vCPU `i` to `pcpus[i]`.
    pub fn pin(mut self, pcpus: Vec<PcpuId>) -> Self {
        assert_eq!(pcpus.len(), self.n_vcpus, "one pCPU per vCPU");
        self.pinning = Some(pcpus);
        self
    }

    /// Marks this VM as the measurement target.
    pub fn measured(mut self) -> Self {
        self.measured = true;
        self
    }

    /// Overrides the derived guest-IRS capability.
    pub fn irs_guest(mut self, enabled: bool) -> Self {
        self.irs_guest = Some(enabled);
        self
    }

    /// Sets the credit weight.
    pub fn weight(mut self, weight: u64) -> Self {
        self.weight = weight;
        self
    }

    /// Overrides the guest-side SA parameters (ablation experiments).
    pub fn sa_override(mut self, sa: GuestSaConfig) -> Self {
        self.sa_override = Some(sa);
        self
    }
}

/// A complete experiment description.
#[derive(Debug)]
pub struct Scenario {
    /// Physical CPUs.
    pub n_pcpus: usize,
    /// Scheduling strategy under test.
    pub strategy: Strategy,
    /// RNG seed (each repetition uses a different seed).
    pub seed: u64,
    /// Hard stop; parallel measurements normally finish earlier.
    pub horizon: SimTime,
    /// Override the hypervisor time slice (e.g. 6 ms to model KVM's CFS
    /// granularity or 50 ms for VMware's, vs Xen's default 30 ms).
    pub slice_override: Option<SimTime>,
    /// The VMs.
    pub vms: Vec<VmScenario>,
}

impl Scenario {
    /// An empty scenario on `n_pcpus` physical CPUs.
    pub fn new(n_pcpus: usize, strategy: Strategy, seed: u64) -> Self {
        Scenario {
            n_pcpus,
            strategy,
            seed,
            horizon: SimTime::from_secs(120),
            slice_override: None,
            vms: Vec::new(),
        }
    }

    /// Adds a VM.
    pub fn vm(mut self, vm: VmScenario) -> Self {
        self.vms.push(vm);
        self
    }

    /// Sets the hard stop.
    pub fn horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Overrides the hypervisor time slice (slice-length sensitivity
    /// experiments: 6 ms ~ KVM, 30 ms ~ Xen, 50 ms ~ VMware).
    pub fn time_slice(mut self, slice: SimTime) -> Self {
        self.slice_override = Some(slice);
        self
    }

    /// Builds the system and runs to completion.
    ///
    /// # Panics
    ///
    /// Panics on malformed scenarios (no VMs, bad pinning, unknown names in
    /// the canned constructors).
    pub fn run(self) -> RunResult {
        System::new(self).run()
    }

    // ------------------------------------------------------------------
    // canned constructors for the paper's standard setups
    // ------------------------------------------------------------------

    /// The §5.1/§5.2 controlled setup behind Figs 5 and 6: 4 pCPUs, a
    /// 4-vCPU foreground VM running `benchmark` (blocking PARSEC or
    /// spinning NPB per the catalog name), and a 4-vCPU background VM with
    /// `n_inter` CPU hogs; both pinned one-to-one so hog `i` contends with
    /// foreground vCPU `i`.
    ///
    /// # Panics
    ///
    /// Panics if `benchmark` is unknown or `n_inter` is not 1..=4.
    pub fn fig5_style(benchmark: &str, n_inter: usize, strategy: Strategy, seed: u64) -> Self {
        assert!((1..=4).contains(&n_inter), "n_inter must be 1..=4");
        let mode = if presets::NPB_NAMES
            .iter()
            .any(|n| n.eq_ignore_ascii_case(benchmark))
        {
            WaitMode::Spin // OMP_WAIT_POLICY=active (Fig 6)
        } else {
            WaitMode::Block // pthreads (Fig 5)
        };
        let fg = presets::by_name(benchmark, 4, mode)
            .unwrap_or_else(|| panic!("unknown benchmark {benchmark}"));
        let bg = presets::hog::cpu_hogs(n_inter);
        Scenario::new(4, strategy, seed)
            .vm(VmScenario::new(fg, 4).pin_one_to_one().measured())
            .vm(VmScenario::new(bg, 4).pin_one_to_one())
    }

    /// The Fig 2 configuration: everything blocking (`OMP_WAIT_POLICY=
    /// passive` for NPB), one CPU hog, vanilla scheduling — the utilization
    /// study needs the *deceptive idleness* of blocking waits.
    pub fn fig2_style(benchmark: &str, seed: u64) -> Self {
        let fg = presets::by_name(benchmark, 4, WaitMode::Block)
            .unwrap_or_else(|| panic!("unknown benchmark {benchmark}"));
        let bg = presets::hog::cpu_hogs(1);
        Scenario::new(4, Strategy::Vanilla, seed)
            .vm(VmScenario::new(fg, 4).pin_one_to_one().measured())
            .vm(VmScenario::new(bg, 4).pin_one_to_one())
    }

    /// The §5.5 scalability setup behind Fig 10: two 8-vCPU VMs sharing 8
    /// pCPUs; the background runs either `n_inter` CPU hogs
    /// (`background = None`) or an `n_inter`-thread real application.
    pub fn fig10_style(
        benchmark: &str,
        background: Option<&str>,
        n_inter: usize,
        strategy: Strategy,
        seed: u64,
    ) -> Self {
        assert!((1..=8).contains(&n_inter), "n_inter must be 1..=8");
        let fg_mode = if presets::NPB_NAMES
            .iter()
            .any(|n| n.eq_ignore_ascii_case(benchmark))
        {
            WaitMode::Spin
        } else {
            WaitMode::Block
        };
        let fg = presets::by_name(benchmark, 8, fg_mode)
            .unwrap_or_else(|| panic!("unknown benchmark {benchmark}"));
        let bg = match background {
            None => presets::hog::cpu_hogs(n_inter),
            Some(name) => presets::by_name(name, n_inter, WaitMode::Block)
                .unwrap_or_else(|| panic!("unknown background {name}"))
                .into_background(),
        };
        Scenario::new(8, strategy, seed)
            .vm(VmScenario::new(fg, 8).pin_one_to_one().measured())
            .vm(VmScenario::new(bg, 8).pin_one_to_one())
    }

    /// The §5.5 consolidation-depth setup behind Fig 11: a 4-vCPU
    /// foreground VM plus `n_vms` interfering VMs, each running `n_inter`
    /// CPU hogs pinned to the same pCPUs, so each interfered pCPU hosts
    /// `n_vms + 1` competing vCPUs.
    pub fn fig11_style(
        benchmark: &str,
        n_inter: usize,
        n_vms: usize,
        strategy: Strategy,
        seed: u64,
    ) -> Self {
        assert!((1..=4).contains(&n_inter), "n_inter must be 1..=4");
        assert!((1..=3).contains(&n_vms), "n_vms must be 1..=3");
        let fg_mode = if presets::NPB_NAMES
            .iter()
            .any(|n| n.eq_ignore_ascii_case(benchmark))
        {
            WaitMode::Spin
        } else {
            WaitMode::Block
        };
        let fg = presets::by_name(benchmark, 4, fg_mode)
            .unwrap_or_else(|| panic!("unknown benchmark {benchmark}"));
        let mut s = Scenario::new(4, strategy, seed)
            .vm(VmScenario::new(fg, 4).pin_one_to_one().measured());
        for _ in 0..n_vms {
            s = s.vm(
                VmScenario::new(presets::hog::cpu_hogs(n_inter), 4).pin_one_to_one(),
            );
        }
        s
    }

    /// Like [`Scenario::fig5_style`] but with a real parallel application
    /// as the background interference (e.g. `"streamcluster"`, `"LU"`),
    /// running `n_inter` threads and repeating forever (§5.2's "(b)/(c)"
    /// panels and the §5.4 weighted-speedup setup when `measure_bg`).
    pub fn real_interference(
        benchmark: &str,
        background: &str,
        n_inter: usize,
        strategy: Strategy,
        seed: u64,
    ) -> Self {
        assert!((1..=4).contains(&n_inter), "n_inter must be 1..=4");
        let fg_mode = if presets::NPB_NAMES
            .iter()
            .any(|n| n.eq_ignore_ascii_case(benchmark))
        {
            WaitMode::Spin
        } else {
            WaitMode::Block
        };
        let fg = presets::by_name(benchmark, 4, fg_mode)
            .unwrap_or_else(|| panic!("unknown benchmark {benchmark}"));
        let bg = presets::by_name(background, n_inter, WaitMode::Block)
            .unwrap_or_else(|| panic!("unknown background {background}"))
            .into_background();
        Scenario::new(4, strategy, seed)
            .vm(VmScenario::new(fg, 4).pin_one_to_one().measured())
            .vm(VmScenario::new(bg, 4).pin_one_to_one())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_workloads::WorkloadKind;

    #[test]
    fn fig5_style_builds_the_controlled_setup() {
        let s = Scenario::fig5_style("streamcluster", 2, Strategy::Irs, 1);
        assert_eq!(s.n_pcpus, 4);
        assert_eq!(s.vms.len(), 2);
        assert!(s.vms[0].measured);
        assert!(!s.vms[1].measured);
        assert_eq!(s.vms[1].bundle.n_threads(), 2);
        assert_eq!(
            s.vms[0].pinning.as_ref().unwrap(),
            &vec![PcpuId(0), PcpuId(1), PcpuId(2), PcpuId(3)]
        );
    }

    #[test]
    fn real_interference_wraps_background_forever() {
        let s = Scenario::real_interference("UA", "LU", 2, Strategy::Vanilla, 1);
        assert_eq!(s.vms[1].bundle.kind, WorkloadKind::Interference);
        assert!(s.vms[1].bundle.name.contains("LU"));
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        Scenario::fig5_style("doom", 1, Strategy::Vanilla, 1);
    }

    #[test]
    #[should_panic(expected = "n_inter")]
    fn bad_inter_count_panics() {
        Scenario::fig5_style("streamcluster", 5, Strategy::Vanilla, 1);
    }

    #[test]
    fn vm_builder_pins() {
        let b = presets::hog::cpu_hogs(1);
        let v = VmScenario::new(b, 2).pin(vec![PcpuId(1), PcpuId(0)]).weight(512);
        assert_eq!(v.pinning.unwrap()[0], PcpuId(1));
        assert_eq!(v.weight, 512);
    }
}
