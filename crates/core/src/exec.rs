//! The task execution engine.
//!
//! The single rule everything hangs on: **a task makes progress exactly
//! while it is guest-current on a vCPU that the hypervisor is running.**
//! [`System::begin_exec`] opens such a window, [`System::end_exec`] closes
//! it and charges the elapsed time to the task (compute progress) and the
//! guest scheduler (vruntime). Spinning tasks hold a window without making
//! progress — CPU burned, nothing earned — which is how LWP wastes a
//! VM's fair share without lowering its utilization (§2.3).

use crate::domain::Activity;
use crate::events::Event;
use crate::system::System;
use irs_guest::TaskId;
use irs_sim::SimTime;
use irs_sync::{AcquireOutcome, BarrierOutcome, EpochPoll, PopOutcome, PushOutcome, WaitMode};
use irs_workloads::Step;
use irs_xen::{RunState, VcpuRef};

impl System {
    // ==================================================================
    // execution windows
    // ==================================================================

    /// Opens an execution window for the current task of `(vm, vcpu)`.
    /// No-op unless the vCPU is hypervisor-running and a current exists.
    pub(crate) fn begin_exec(&mut self, vm: usize, vcpu: usize) {
        let Some(task) = self.domains[vm].os.current(vcpu) else {
            return;
        };
        let v = VcpuRef::new(irs_xen::VmId(vm), vcpu);
        if self.hv.vcpu_state(v) != RunState::Running {
            return;
        }
        if let Some(ctx) = self.domains[vm].exec[vcpu] {
            if ctx.task == task.0 {
                return; // already executing
            }
            // A switch without a StopTask in between would be a bug.
            debug_assert!(false, "exec ctx leaked across a task switch");
        }
        self.domains[vm].exec[vcpu] = Some(crate::domain::ExecCtx {
            task: task.0,
            since: self.now,
        });
        match self.domains[vm].task_activity[task.0] {
            Activity::Computing { remaining, .. } => {
                let d = &mut self.domains[vm];
                d.task_step_gen[task.0] += 1;
                let gen = d.task_step_gen[task.0];
                self.queue.schedule(
                    self.now + SimTime::from_nanos(remaining),
                    Event::TaskStep {
                        vm,
                        task: task.0,
                        gen,
                    },
                );
            }
            Activity::Resume => self.advance_task(vm, task.0),
            Activity::SpinWait { granted: true } | Activity::GraceSpin { granted: true } => {
                self.domains[vm].task_activity[task.0] = Activity::Resume;
                self.advance_task(vm, task.0);
            }
            Activity::SpinWait { granted: false } | Activity::GraceSpin { granted: false } => {
                self.arm_ple(vm, vcpu)
            }
            Activity::BlockedSync | Activity::Sleeping | Activity::Done => {
                unreachable!("a waiting task cannot be current")
            }
        }
    }

    /// Closes the execution window on `(vm, vcpu)`, charging elapsed time.
    /// Idempotent.
    pub(crate) fn end_exec(&mut self, vm: usize, vcpu: usize) {
        let Some(ctx) = self.domains[vm].exec[vcpu].take() else {
            return;
        };
        let delta = self.now.saturating_sub(ctx.since);
        let d = &mut self.domains[vm];
        d.os.account_runtime(vcpu, delta);
        if let Activity::Computing { remaining, .. } = &mut d.task_activity[ctx.task] {
            *remaining = remaining.saturating_sub(delta.as_nanos());
        }
        d.task_step_gen[ctx.task] += 1;
        d.ple_gen[vcpu] += 1;
    }

    /// Charges the open window up to `now` without closing it (tick-path
    /// accounting; outstanding `TaskStep` timers stay valid because their
    /// absolute firing times do not move).
    pub(crate) fn sync_exec(&mut self, vm: usize, vcpu: usize) {
        let Some(ctx) = &mut self.domains[vm].exec[vcpu] else {
            return;
        };
        let delta = self.now.saturating_sub(ctx.since);
        if delta.is_zero() {
            return;
        }
        ctx.since = self.now;
        let task = ctx.task;
        let d = &mut self.domains[vm];
        d.os.account_runtime(vcpu, delta);
        if let Activity::Computing { remaining, .. } = &mut d.task_activity[task] {
            *remaining = remaining.saturating_sub(delta.as_nanos());
        }
    }

    /// Arms a PLE window for an ungranted spinner (PLE strategy only).
    fn arm_ple(&mut self, vm: usize, vcpu: usize) {
        let Some(window) = self.strategy.ple_window() else {
            return;
        };
        self.domains[vm].ple_gen[vcpu] += 1;
        let gen = self.domains[vm].ple_gen[vcpu];
        self.queue
            .schedule(self.now + window, Event::PleWindow { vm, vcpu, gen });
    }

    // ==================================================================
    // the program step machine
    // ==================================================================

    /// Drives `task`'s program forward until it produces a step that takes
    /// time or waits. Must be called inside an open execution window.
    pub(crate) fn advance_task(&mut self, vm: usize, task: usize) {
        loop {
            // A zero-cost step (e.g. a lock release) can wake another task
            // whose wakeup preemption deschedules *this* one. Stop driving
            // it then — it resumes from exactly this program point when it
            // is scheduled again.
            let cpu = self.domains[vm].os.task(TaskId(task)).cpu;
            let still_executing = self.domains[vm].os.current(cpu) == Some(TaskId(task))
                && self.domains[vm].exec[cpu].map(|c| c.task) == Some(task);
            if !still_executing {
                self.domains[vm].task_activity[task] = Activity::Resume;
                return;
            }
            let step = {
                let d = &mut self.domains[vm];
                d.tasks[task].runner.next(&mut self.rng, &mut d.space)
            };
            match step {
                Step::Compute { ns } => {
                    let d = &mut self.domains[vm];
                    let penalty = std::mem::take(&mut d.tasks[task].penalty_ns);
                    let total = ns + penalty;
                    d.task_activity[task] = Activity::Computing {
                        remaining: total,
                        useful: ns,
                    };
                    d.task_step_gen[task] += 1;
                    let gen = d.task_step_gen[task];
                    self.queue.schedule(
                        self.now + SimTime::from_nanos(total),
                        Event::TaskStep { vm, task, gen },
                    );
                    return;
                }
                Step::Acquire(l) => {
                    let outcome = self.domains[vm].space.lock(l).acquire(TaskId(task));
                    match outcome {
                        AcquireOutcome::Acquired => continue,
                        AcquireOutcome::MustWait(WaitMode::Block) => {
                            self.wait_block(vm, task);
                            return;
                        }
                        AcquireOutcome::MustWait(WaitMode::Spin) => {
                            self.wait_spin(vm, task);
                            return;
                        }
                    }
                }
                Step::Release(l) => {
                    let outcome = self.domains[vm].space.lock(l).release(TaskId(task));
                    if let Some((next, mode)) = outcome.next_holder {
                        self.grant(vm, next.0, mode);
                    }
                }
                Step::Arrive(b) => {
                    let outcome = self.domains[vm].space.barrier(b).arrive(TaskId(task));
                    match outcome {
                        BarrierOutcome::Released { waiters, mode } => {
                            for w in waiters {
                                self.grant(vm, w.0, mode);
                            }
                        }
                        BarrierOutcome::MustWait(WaitMode::Block) => {
                            self.wait_block(vm, task);
                            return;
                        }
                        BarrierOutcome::MustWait(WaitMode::Spin) => {
                            self.wait_spin(vm, task);
                            return;
                        }
                    }
                }
                Step::Push(c) => {
                    let outcome = self.domains[vm].space.channel(c).push(TaskId(task));
                    match outcome {
                        PushOutcome::Pushed { wake_consumer } => {
                            // The pushed item carries the producer's open
                            // request stamp (if any) downstream, so latency
                            // spans tiers in a pipeline service.
                            let stamp = self.domains[vm].tasks[task].req_open.take();
                            match wake_consumer {
                                Some(w) => {
                                    // Handed straight to a blocked consumer;
                                    // the item never sits in the queue.
                                    if stamp.is_some() {
                                        self.domains[vm].tasks[w.0].req_open = stamp;
                                    }
                                    self.resume_waiter(vm, w.0);
                                }
                                None => self.domains[vm].req_ledger[c.0].push_back(stamp),
                            }
                        }
                        PushOutcome::MustWait => {
                            self.wait_block(vm, task);
                            return;
                        }
                    }
                }
                Step::Pop(c) => {
                    let outcome = self.domains[vm].space.channel(c).pop(TaskId(task));
                    match outcome {
                        PopOutcome::Popped { wake_producer } => {
                            let entry = self.domains[vm].req_ledger[c.0].pop_front();
                            debug_assert!(entry.is_some(), "request ledger underflow");
                            if let Some(Some(t0)) = entry {
                                self.domains[vm].tasks[task].req_open = Some(t0);
                            }
                            if let Some(p) = wake_producer {
                                // The producer's blocked push completes now:
                                // its item (and stamp) enters the queue tail.
                                let stamp = self.domains[vm].tasks[p.0].req_open.take();
                                self.domains[vm].req_ledger[c.0].push_back(stamp);
                                self.resume_waiter(vm, p.0);
                            }
                        }
                        PopOutcome::MustWait => {
                            self.wait_block(vm, task);
                            return;
                        }
                        PopOutcome::Disconnected => {}
                    }
                }
                Step::Close(c) => {
                    let woken = self.domains[vm].space.channel(c).close();
                    for w in woken {
                        self.resume_waiter(vm, w.0);
                    }
                }
                Step::Sleep { ns } => {
                    self.sleep_task_until(vm, task, self.now + SimTime::from_nanos(ns));
                    return;
                }
                Step::SleepUntil { at_ns } => {
                    let at = SimTime::from_nanos(at_ns);
                    if at > self.now {
                        self.sleep_task_until(vm, task, at);
                        return;
                    }
                    // Anchor already in the past: proceed immediately.
                }
                Step::AlignTo { period_ns, offset_ns } => {
                    // Next boundary `k * period + offset` strictly after now.
                    let now_ns = self.now.as_nanos();
                    let next = if now_ns < offset_ns {
                        offset_ns
                    } else {
                        ((now_ns - offset_ns) / period_ns + 1) * period_ns + offset_ns
                    };
                    self.sleep_task_until(vm, task, SimTime::from_nanos(next));
                    return;
                }
                Step::SafepointPoll(e) => {
                    let outcome = self.domains[vm]
                        .space
                        .epoch(e)
                        .poll(TaskId(task), self.now.as_nanos());
                    match outcome {
                        EpochPoll::Pass => {}
                        EpochPoll::Released { waiters, mode } => {
                            for w in waiters {
                                self.grant(vm, w.0, mode);
                            }
                        }
                        EpochPoll::MustWait(WaitMode::Block) => {
                            self.wait_block(vm, task);
                            return;
                        }
                        EpochPoll::MustWait(WaitMode::Spin) => {
                            self.wait_spin(vm, task);
                            return;
                        }
                    }
                }
                Step::AwaitArrival(a) => {
                    // Open-loop source: the next request exists at its
                    // scheduled arrival instant regardless of when the
                    // serving task gets here — queueing delay while the
                    // task lags counts toward the request's latency
                    // (no coordinated omission).
                    let at = SimTime::from_nanos(self.domains[vm].space.arrival(a).next_arrival_ns());
                    self.domains[vm].tasks[task].req_open = Some(at);
                    if at > self.now {
                        self.sleep_task_until(vm, task, at);
                        return;
                    }
                }
                Step::RequestStart => {
                    self.domains[vm].tasks[task].req_open = Some(self.now);
                }
                Step::RequestDone => {
                    let d = &mut self.domains[vm];
                    if let Some(t0) = d.tasks[task].req_open.take() {
                        let us = self.now.saturating_sub(t0).as_nanos() as f64 / 1e3;
                        d.latencies_us.push(us);
                    }
                    d.requests += 1;
                }
                Step::Done => {
                    let d = &mut self.domains[vm];
                    d.task_activity[task] = Activity::Done;
                    d.live_tasks -= 1;
                    if d.live_tasks == 0 {
                        d.completed_at = Some(self.now);
                    }
                    let vcpu = d.os.task(TaskId(task)).cpu;
                    self.fill_views(vm);
                    let d = &mut self.domains[vm];
                    let acts = d.os.exit_current(vcpu, self.now, &d.view_buf);
                    self.apply_guest_actions(vm, acts);
                    return;
                }
            }
        }
    }

    // ==================================================================
    // waits, grants, wakes
    // ==================================================================

    /// Puts the current task `task` to sleep until the absolute instant
    /// `at`, waking through the ordinary timer path.
    fn sleep_task_until(&mut self, vm: usize, task: usize, at: SimTime) {
        self.domains[vm].task_activity[task] = Activity::Sleeping;
        self.queue.schedule(at, Event::WakeTimer { vm, task });
        self.block_current_of(vm, task);
    }

    /// Begins a blocking wait: spin through the futex grace window first
    /// (the fast hand-off path), then actually sleep when it expires.
    fn wait_block(&mut self, vm: usize, task: usize) {
        let grace = self.cfg.futex_grace;
        if grace.is_zero() {
            self.domains[vm].task_activity[task] = Activity::BlockedSync;
            self.block_current_of(vm, task);
            return;
        }
        let d = &mut self.domains[vm];
        d.task_activity[task] = Activity::GraceSpin { granted: false };
        d.task_wait_gen[task] += 1;
        let gen = d.task_wait_gen[task];
        self.queue
            .schedule(self.now + grace, Event::GraceExpire { vm, task, gen });
        let vcpu = self.domains[vm].os.task(TaskId(task)).cpu;
        self.arm_ple(vm, vcpu);
    }

    /// Begins a spin wait. Pure user-level spinning burns CPU until
    /// granted; with paravirtual spin-then-halt configured, an expiry timer
    /// converts an over-budget spin into a halt that the releasing owner
    /// kicks awake (pv-spinlock semantics).
    fn wait_spin(&mut self, vm: usize, task: usize) {
        self.domains[vm].task_activity[task] = Activity::SpinWait { granted: false };
        let vcpu = self.domains[vm].os.task(TaskId(task)).cpu;
        self.arm_ple(vm, vcpu);
        if let Some(budget) = self.cfg.pv_spin {
            let d = &mut self.domains[vm];
            d.task_wait_gen[task] += 1;
            let gen = d.task_wait_gen[task];
            self.queue
                .schedule(self.now + budget, Event::PvSpinExpire { vm, task, gen });
        }
    }

    /// A paravirtual spin budget ran out: halt the waiter until kicked.
    pub(crate) fn on_pv_spin_expire(&mut self, vm: usize, task: usize, gen: u64) {
        if self.domains[vm].task_wait_gen[task] != gen {
            return; // granted in the meantime
        }
        if self.domains[vm].task_activity[task] != (Activity::SpinWait { granted: false }) {
            return;
        }
        self.domains[vm].task_wait_gen[task] += 1;
        self.domains[vm].task_activity[task] = Activity::BlockedSync;
        let tid = TaskId(task);
        let vcpu = self.domains[vm].os.task(tid).cpu;
        if self.domains[vm].os.current(vcpu) == Some(tid) {
            self.block_current_of(vm, task);
        } else {
            let acts = self.domains[vm].os.block_queued(tid);
            self.apply_guest_actions(vm, acts);
        }
    }

    /// The grace window of a blocking wait ran out: actually sleep.
    pub(crate) fn on_grace_expire(&mut self, vm: usize, task: usize, gen: u64) {
        if self.domains[vm].task_wait_gen[task] != gen {
            return; // granted (or otherwise resolved) in the meantime
        }
        if self.domains[vm].task_activity[task] != (Activity::GraceSpin { granted: false }) {
            return;
        }
        self.domains[vm].task_wait_gen[task] += 1;
        self.domains[vm].task_activity[task] = Activity::BlockedSync;
        let tid = TaskId(task);
        let vcpu = self.domains[vm].os.task(tid).cpu;
        if self.domains[vm].os.current(vcpu) == Some(tid) {
            self.block_current_of(vm, task);
        } else {
            // Guest CFS descheduled the grace-spinner; take it off its
            // runqueue directly (the futex sleep path of a ready task).
            let acts = self.domains[vm].os.block_queued(tid);
            self.apply_guest_actions(vm, acts);
        }
    }

    /// Hands a lock/barrier slot to `task` according to its wait mode.
    fn grant(&mut self, vm: usize, task: usize, mode: WaitMode) {
        match mode {
            WaitMode::Block => self.resume_waiter(vm, task),
            WaitMode::Spin => {
                let d = &mut self.domains[vm];
                match &mut d.task_activity[task] {
                    Activity::SpinWait { granted } => {
                        *granted = true;
                        d.task_wait_gen[task] += 1; // cancels any pv timer
                        // A spinner executing right now notices instantly.
                        let vcpu = d.os.task(TaskId(task)).cpu;
                        let executing = d.exec[vcpu].is_some_and(|ctx| ctx.task == task);
                        if executing {
                            self.sync_exec(vm, vcpu);
                            self.domains[vm].task_activity[task] = Activity::Resume;
                            self.advance_task(vm, task);
                        }
                    }
                    Activity::BlockedSync => {
                        // A pv-halted spin waiter: the release kicks it.
                        d.task_activity[task] = Activity::Resume;
                        self.wake_task(vm, task);
                    }
                    other => debug_assert!(false, "spin grant to {other:?}"),
                }
            }
        }
    }

    /// A blocking wait completed on `task`'s behalf: depending on where the
    /// waiter is in its futex path, this is a fast in-grace hand-off or a
    /// real wake-up.
    fn resume_waiter(&mut self, vm: usize, task: usize) {
        match self.domains[vm].task_activity[task] {
            Activity::GraceSpin { granted: false } => {
                let d = &mut self.domains[vm];
                d.task_wait_gen[task] += 1; // cancels the grace expiry
                d.task_activity[task] = Activity::GraceSpin { granted: true };
                let vcpu = d.os.task(TaskId(task)).cpu;
                let executing = d.exec[vcpu].is_some_and(|ctx| ctx.task == task);
                if executing {
                    self.sync_exec(vm, vcpu);
                    self.domains[vm].task_activity[task] = Activity::Resume;
                    self.advance_task(vm, task);
                }
            }
            Activity::BlockedSync => {
                self.domains[vm].task_activity[task] = Activity::Resume;
                self.wake_task(vm, task);
            }
            other => debug_assert!(false, "resume of a non-waiting task ({other:?})"),
        }
    }

    /// Wakes a blocked task through the guest's wakeup-balancing path.
    pub(crate) fn wake_task(&mut self, vm: usize, task: usize) {
        self.fill_views(vm);
        let d = &mut self.domains[vm];
        let acts = d.os.wake(TaskId(task), &d.view_buf);
        self.apply_guest_actions(vm, acts);
    }

    /// The current task `task` stops executing and waits: route through the
    /// guest's block path (which may pick a next task, idle-pull, or block
    /// the vCPU in the hypervisor).
    fn block_current_of(&mut self, vm: usize, task: usize) {
        let vcpu = self.domains[vm].os.task(TaskId(task)).cpu;
        debug_assert_eq!(self.domains[vm].os.current(vcpu), Some(TaskId(task)));
        self.fill_views(vm);
        let d = &mut self.domains[vm];
        let acts = d.os.block_current(vcpu, self.now, &d.view_buf);
        self.apply_guest_actions(vm, acts);
    }
}
