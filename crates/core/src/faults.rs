//! Deterministic fault injection for the SA protocol (paper §4.1).
//!
//! The paper's security argument is that a rogue or wedged guest which never
//! acknowledges an SA upcall is forced off after the hard completion limit.
//! In a healthy full-system run that fallback never fires (every round is
//! acked in ~22 µs against a 500 µs limit), so this module exists to make it
//! fire *on purpose*: a [`FaultConfig`] describes a fault schedule, and the
//! [`System`](crate::System) consults a [`FaultState`] at the three points
//! where the SA protocol crosses the hypervisor/guest boundary:
//!
//! * **upcall loss** — the `DeliverVirq(SaUpcall)` action is dropped before
//!   the guest sees it (the hypervisor-side completion deadline still arms,
//!   so the round must resolve through `sa_timeout`);
//! * **ack loss / delay** — the guest handles the vIRQ and context-switches
//!   internally, but the `sched_op` acknowledgement hypercall is dropped, or
//!   deferred past the completion limit (a delayed ack that loses the race
//!   with the timeout is discarded as stale rather than delivered late);
//! * **guest wedge** — a vCPU stops processing vIRQs entirely for a
//!   configurable window, modelling a hung interrupt handler;
//! * **deadline jitter** — the completion-limit deadline is perturbed
//!   multiplicatively, so timeouts can land both before and after the
//!   guest's normal acknowledgement latency;
//! * **capacity degradation** — a subset of pCPUs suffers extra
//!   maintenance-style preemptions each hypervisor tick (driven through the
//!   legitimate `slice_expired` path, so credit semantics are preserved).
//!
//! Determinism: fault decisions draw from a dedicated [`SimRng`] stream
//! forked from the scenario seed with a fixed salt — never from the
//! workload RNG — so enabling the invariant checker, changing `--jobs`, or
//! reordering trace consumers cannot perturb the fault schedule. Every
//! injected fault emits a typed [`irs_sim::trace::TraceEvent`] so the
//! online sanitizer (and post-mortem trace dumps) can see exactly what was
//! done to the system.

use irs_sim::{SimRng, SimTime};

/// Salt folded into the scenario seed to derive the fault stream (decorrelated
/// from the workload stream, which uses the unforked seed).
const FAULT_STREAM_SALT: u64 = 0xFA17_1A7E_D15A_57E5;

/// A deterministic fault schedule. All probabilities are per-decision-point
/// (per SA upcall delivery, per ack, per pCPU per hypervisor tick) and a
/// zeroed config injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that a `VIRQ_SA_UPCALL` delivery is lost before the guest
    /// sees it. The hypervisor-side completion deadline still arms.
    pub upcall_loss: f64,
    /// Probability that a `sched_op` SA acknowledgement is dropped after the
    /// guest has already handled the upcall.
    pub ack_loss: f64,
    /// Probability that a (non-dropped) SA acknowledgement is deferred by
    /// [`ack_delay`](Self::ack_delay) instead of delivered immediately.
    pub ack_delay_prob: f64,
    /// How long a deferred acknowledgement is held before delivery. Set it
    /// above [`irs_xen::SaConfig::completion_limit`] to guarantee the
    /// timeout wins the race.
    pub ack_delay: SimTime,
    /// Probability, evaluated at each SA upcall delivery, that the target
    /// vCPU wedges (stops processing vIRQs) for
    /// [`wedge_window`](Self::wedge_window).
    pub wedge_prob: f64,
    /// How long a wedged vCPU ignores vIRQs.
    pub wedge_window: SimTime,
    /// Multiplicative jitter applied to the completion-limit deadline
    /// (`0.5` means the armed deadline lands anywhere in ±50% of the
    /// nominal span). `0.0` disables jitter.
    pub deadline_jitter: f64,
    /// How many pCPUs (the first `N` by index) suffer capacity degradation.
    pub degraded_pcpus: usize,
    /// Per-tick probability that a degraded pCPU takes a forced
    /// maintenance-style preemption of whatever it is running.
    pub degrade_prob: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            upcall_loss: 0.0,
            ack_loss: 0.0,
            ack_delay_prob: 0.0,
            ack_delay: SimTime::from_micros(800),
            wedge_prob: 0.0,
            wedge_window: SimTime::from_millis(3),
            deadline_jitter: 0.0,
            degraded_pcpus: 0,
            degrade_prob: 0.0,
        }
    }
}

impl FaultConfig {
    /// No faults at all (identical to `Default`); useful as a campaign
    /// baseline so the fault plumbing itself is shown to be inert.
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// Heavy upcall loss: a third of SA notifications never reach the guest,
    /// so those rounds can only resolve through the completion-limit force.
    pub fn upcall_storm() -> Self {
        FaultConfig { upcall_loss: 0.33, ..FaultConfig::default() }
    }

    /// Acks dropped or deferred past the completion limit: the guest behaves,
    /// the hypercall channel does not.
    pub fn ack_chaos() -> Self {
        FaultConfig {
            ack_loss: 0.2,
            ack_delay_prob: 0.2,
            ack_delay: SimTime::from_micros(800),
            ..FaultConfig::default()
        }
    }

    /// The §4.1 rogue guest: vCPUs periodically stop processing vIRQs for
    /// multi-millisecond windows, far past the 500 µs completion limit.
    pub fn wedged_guest() -> Self {
        FaultConfig {
            wedge_prob: 0.3,
            wedge_window: SimTime::from_millis(3),
            ..FaultConfig::default()
        }
    }

    /// Deadline timer jitter only: completion limits land anywhere in
    /// ±90% of the nominal span, racing the guest's ~22 µs ack latency.
    pub fn jittery_timer() -> Self {
        FaultConfig { deadline_jitter: 0.9, ..FaultConfig::default() }
    }

    /// Two pCPUs lose capacity to forced maintenance preemptions.
    pub fn degraded_host() -> Self {
        FaultConfig { degraded_pcpus: 2, degrade_prob: 0.5, ..FaultConfig::default() }
    }

    /// Everything at once, at moderated rates.
    pub fn everything() -> Self {
        FaultConfig {
            upcall_loss: 0.15,
            ack_loss: 0.1,
            ack_delay_prob: 0.1,
            ack_delay: SimTime::from_micros(800),
            wedge_prob: 0.1,
            wedge_window: SimTime::from_millis(2),
            deadline_jitter: 0.5,
            degraded_pcpus: 1,
            degrade_prob: 0.25,
        }
    }

    /// True if this schedule can inject at least one kind of fault.
    pub fn is_active(&self) -> bool {
        self.upcall_loss > 0.0
            || self.ack_loss > 0.0
            || self.ack_delay_prob > 0.0
            || self.wedge_prob > 0.0
            || self.deadline_jitter > 0.0
            || (self.degraded_pcpus > 0 && self.degrade_prob > 0.0)
    }
}

/// Counters for every fault actually injected during a run; surfaced through
/// [`RunResult::faults`](crate::RunResult) so campaigns can assert the
/// schedule really bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// SA upcall deliveries dropped before the guest saw them.
    pub upcalls_dropped: u64,
    /// SA acknowledgements dropped after the guest handled the upcall.
    pub acks_dropped: u64,
    /// SA acknowledgements deferred by the configured delay.
    pub acks_delayed: u64,
    /// Deferred acknowledgements that lost the race with the completion
    /// limit and were discarded as stale instead of delivered.
    pub stale_acks_discarded: u64,
    /// Wedge windows started (a vCPU beginning to ignore vIRQs).
    pub wedges: u64,
    /// Completion-limit deadlines whose arming time was jittered.
    pub deadlines_jittered: u64,
    /// Forced maintenance preemptions injected on degraded pCPUs.
    pub degrade_preemptions: u64,
}

impl FaultStats {
    /// Total number of injected faults of all kinds.
    pub fn total(&self) -> u64 {
        self.upcalls_dropped
            + self.acks_dropped
            + self.acks_delayed
            + self.wedges
            + self.deadlines_jittered
            + self.degrade_preemptions
    }
}

/// What the injector decided for one SA acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AckFate {
    /// Deliver the hypercall immediately (no fault).
    Deliver,
    /// Drop it; the round resolves through the completion limit.
    Drop,
    /// Hold it and deliver at the given (absolute) time, if still fresh.
    Delay(SimTime),
}

/// Live fault-injection state owned by a [`System`](crate::System) run.
///
/// `Clone` is a complete copy — RNG position, wedge windows, and stats —
/// so a restored snapshot replays the exact same fault schedule.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    cfg: FaultConfig,
    rng: SimRng,
    /// Per-(vm, vcpu): instant until which the vCPU ignores vIRQs.
    wedge_until: Vec<Vec<SimTime>>,
    /// What was injected so far.
    pub(crate) stats: FaultStats,
}

impl FaultState {
    /// Builds the injector for a run. `seed` is the scenario seed — the
    /// fault stream is forked from it with a fixed salt so it is
    /// decorrelated from (and cannot perturb) the workload stream.
    pub(crate) fn new(cfg: FaultConfig, seed: u64, vcpu_counts: &[usize]) -> FaultState {
        let rng = SimRng::seed_from(seed).fork(FAULT_STREAM_SALT);
        FaultState {
            cfg,
            rng,
            wedge_until: vcpu_counts.iter().map(|&n| vec![SimTime::ZERO; n]).collect(),
            stats: FaultStats::default(),
        }
    }

    pub(crate) fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Decides whether this SA upcall delivery is lost. Draws exactly when
    /// `upcall_loss > 0` so inactive knobs leave the stream untouched.
    pub(crate) fn drop_upcall(&mut self) -> bool {
        if self.cfg.upcall_loss <= 0.0 {
            return false;
        }
        let hit = self.rng.chance(self.cfg.upcall_loss);
        if hit {
            self.stats.upcalls_dropped += 1;
        }
        hit
    }

    /// Decides whether the target vCPU wedges at this upcall delivery.
    /// Returns the instant the wedge clears when one starts.
    pub(crate) fn maybe_wedge(&mut self, vm: usize, vcpu: usize, now: SimTime) -> Option<SimTime> {
        if self.cfg.wedge_prob <= 0.0 {
            return None;
        }
        if !self.rng.chance(self.cfg.wedge_prob) {
            return None;
        }
        let until = now + self.cfg.wedge_window;
        // Extending an in-progress wedge just moves the clear point.
        self.wedge_until[vm][vcpu] = self.wedge_until[vm][vcpu].max(until);
        self.stats.wedges += 1;
        Some(until)
    }

    /// True while the vCPU is inside a wedge window (ignoring vIRQs).
    pub(crate) fn is_wedged(&self, vm: usize, vcpu: usize, now: SimTime) -> bool {
        now < self.wedge_until[vm][vcpu]
    }

    /// The instant the vCPU's current wedge window clears.
    pub(crate) fn wedge_clears_at(&self, vm: usize, vcpu: usize) -> SimTime {
        self.wedge_until[vm][vcpu]
    }

    /// Applies deadline jitter to a completion-limit deadline armed at
    /// `now`. Returns the (possibly unchanged) deadline.
    pub(crate) fn jitter_deadline(&mut self, now: SimTime, deadline: SimTime) -> SimTime {
        if self.cfg.deadline_jitter <= 0.0 || deadline <= now {
            return deadline;
        }
        let span = (deadline - now).as_nanos();
        let jittered = self.rng.jittered(span, self.cfg.deadline_jitter);
        if jittered != span {
            self.stats.deadlines_jittered += 1;
        }
        now + SimTime::from_nanos(jittered)
    }

    /// Decides the fate of one SA acknowledgement hypercall issued at `now`.
    pub(crate) fn ack_fate(&mut self, now: SimTime) -> AckFate {
        if self.cfg.ack_loss > 0.0 && self.rng.chance(self.cfg.ack_loss) {
            self.stats.acks_dropped += 1;
            return AckFate::Drop;
        }
        if self.cfg.ack_delay_prob > 0.0 && self.rng.chance(self.cfg.ack_delay_prob) {
            self.stats.acks_delayed += 1;
            return AckFate::Delay(now + self.cfg.ack_delay);
        }
        AckFate::Deliver
    }

    /// Per-tick draw for one degraded pCPU: true when a forced maintenance
    /// preemption should be injected. The draw happens for every degraded
    /// pCPU every tick (whether or not it is busy) so the stream depends
    /// only on the tick count, not on scheduling state; the caller bumps
    /// [`FaultStats::degrade_preemptions`] only when a preemption actually
    /// lands on a busy pCPU.
    pub(crate) fn degrade_hit(&mut self) -> bool {
        if self.cfg.degrade_prob <= 0.0 {
            return false;
        }
        self.rng.chance(self.cfg.degrade_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_config_is_inert() {
        let cfg = FaultConfig::none();
        assert!(!cfg.is_active());
        let mut st = FaultState::new(cfg, 42, &[2, 2]);
        for _ in 0..100 {
            assert!(!st.drop_upcall());
            assert!(st.maybe_wedge(0, 1, SimTime::from_millis(5)).is_none());
            assert_eq!(st.ack_fate(SimTime::ZERO), AckFate::Deliver);
            assert!(!st.degrade_hit());
        }
        let dl = SimTime::from_micros(500);
        assert_eq!(st.jitter_deadline(SimTime::ZERO, dl), dl);
        assert_eq!(st.stats, FaultStats::default());
        assert_eq!(st.stats.total(), 0);
    }

    #[test]
    fn fault_stream_is_reproducible() {
        let draw = || {
            let mut st = FaultState::new(FaultConfig::everything(), 7, &[4]);
            let mut bits = Vec::new();
            for i in 0..200u64 {
                let now = SimTime::from_micros(i * 30);
                bits.push(st.drop_upcall());
                bits.push(st.maybe_wedge(0, (i % 4) as usize, now).is_some());
                bits.push(st.ack_fate(now) == AckFate::Deliver);
            }
            (bits, st.stats)
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn wedge_window_opens_and_closes() {
        let cfg = FaultConfig { wedge_prob: 1.0, ..FaultConfig::wedged_guest() };
        let window = cfg.wedge_window;
        let mut st = FaultState::new(cfg, 3, &[2]);
        let t0 = SimTime::from_millis(10);
        let until = st.maybe_wedge(0, 0, t0).expect("prob 1.0 always wedges");
        assert_eq!(until, t0 + window);
        assert!(st.is_wedged(0, 0, t0));
        assert!(st.is_wedged(0, 0, t0 + SimTime::from_micros(1)));
        assert!(!st.is_wedged(0, 0, until));
        assert!(!st.is_wedged(0, 1, t0), "wedge is per-vCPU");
        assert_eq!(st.wedge_clears_at(0, 0), until);
        assert_eq!(st.stats.wedges, 1);
    }

    #[test]
    fn jitter_draws_only_when_enabled() {
        // With jitter off the deadline passes through without consuming
        // randomness: interleaving other draws must not shift the stream.
        let mut a = FaultState::new(FaultConfig { upcall_loss: 0.5, ..FaultConfig::default() }, 9, &[1]);
        let mut b = FaultState::new(FaultConfig { upcall_loss: 0.5, ..FaultConfig::default() }, 9, &[1]);
        let dl = SimTime::from_micros(500);
        let seq_a: Vec<bool> = (0..50).map(|_| a.drop_upcall()).collect();
        let seq_b: Vec<bool> = (0..50)
            .map(|_| {
                let _ = b.jitter_deadline(SimTime::ZERO, dl);
                b.drop_upcall()
            })
            .collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn presets_are_active() {
        for cfg in [
            FaultConfig::upcall_storm(),
            FaultConfig::ack_chaos(),
            FaultConfig::wedged_guest(),
            FaultConfig::jittery_timer(),
            FaultConfig::degraded_host(),
            FaultConfig::everything(),
        ] {
            assert!(cfg.is_active());
        }
    }
}
