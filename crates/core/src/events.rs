//! The co-simulation's event vocabulary.

/// One scheduled occurrence in the system-wide event queue.
///
/// Events carrying a `gen` are *generation-guarded*: the handler compares
/// the generation against the current counter and drops stale firings (a
/// context switch or activity change logically cancels outstanding timers
/// without touching the queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Event {
    /// Hypervisor credit-burn tick (10 ms period, self-rearming).
    HvTick,
    /// Hypervisor accounting pass (30 ms period, self-rearming).
    HvAccounting,
    /// A pCPU's 30 ms slice ran out.
    SliceExpiry { pcpu: usize, gen: u64 },
    /// Guest scheduler tick for one vCPU (1 ms, armed only while running).
    GuestTick { vm: usize, vcpu: usize, gen: u64 },
    /// The current compute segment of a task completes.
    TaskStep { vm: usize, task: usize, gen: u64 },
    /// The guest's SA receiver/context-switcher softirq runs (scheduled
    /// `sa_round_delay` after `VIRQ_SA_UPCALL` delivery).
    SaProcess { vm: usize, vcpu: usize, gen: u64 },
    /// The hypervisor's hard SA completion limit.
    SaTimeout { vm: usize, vcpu: usize, gen: u64 },
    /// A fault-delayed SA acknowledgement finally reaches the hypervisor
    /// (`yield_op` distinguishes `SCHEDOP_yield` from `SCHEDOP_block`).
    /// Only scheduled when fault injection is active.
    SaAckDeliver { vm: usize, vcpu: usize, gen: u64, yield_op: bool },
    /// The asynchronously woken IRS migrator thread runs.
    MigratorRun { vm: usize },
    /// A vCPU has been spinning continuously for the PLE window.
    PleWindow { vm: usize, vcpu: usize, gen: u64 },
    /// Open-loop request arrival for a server VM (self-rearming).
    RequestArrive { vm: usize },
    /// A sleeping task's timer fires.
    WakeTimer { vm: usize, task: usize },
    /// A blocking wait's grace-spin window ran out: actually sleep.
    GraceExpire { vm: usize, task: usize, gen: u64 },
    /// A paravirtual spin-wait exceeded its spin budget: halt until kicked.
    PvSpinExpire { vm: usize, task: usize, gen: u64 },
    /// Gang-slice rotation (strict co-scheduling only, self-rearming).
    GangRotate,
    /// Hard stop of the measurement.
    Horizon,
}
