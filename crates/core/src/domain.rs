//! Per-VM runtime state: the guest kernel, the workload, and execution
//! bookkeeping.

use irs_guest::GuestOs;
use irs_sim::SimTime;
use irs_sync::SyncSpace;
use irs_workloads::{OpenLoop, ProgramRunner, WorkloadKind};
use irs_xen::RunstateInfo;
use std::collections::VecDeque;

/// What a task is doing right now, from the execution engine's viewpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Activity {
    /// Needs the next program step as soon as it executes (fresh task,
    /// completed wait, or granted lock).
    Resume,
    /// Computing; `remaining` ns of the segment left, `useful` credited on
    /// completion.
    Computing { remaining: u64, useful: u64 },
    /// Busy-waiting. `granted` flips when ownership arrives; the task
    /// proceeds the next time it executes.
    SpinWait { granted: bool },
    /// The brief spin phase of a *blocking* wait (futex/adaptive-mutex
    /// grace): behaves like a spin until the grace timer expires, then the
    /// task actually sleeps. This is the "very short period of time
    /// spinning when performing wait queue operations" that PLE reacts to
    /// on blocking workloads (paper §5.2). `granted` flips when the wait is
    /// satisfied during the window — the fast hand-off path.
    GraceSpin { granted: bool },
    /// Asleep on a synchronization object, awaiting an explicit wake.
    BlockedSync,
    /// Asleep on a timer.
    Sleeping,
    /// Program finished.
    Done,
}

/// Execution context: which task is consuming CPU on a vCPU, since when.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExecCtx {
    pub task: usize,
    pub since: SimTime,
}

/// Per-task runtime state — the *cold* remainder. The fields the event
/// dispatch loop touches on nearly every event (`activity`, the two
/// staleness generations) live in the parallel struct-of-arrays vectors on
/// [`Domain`] (`task_activity` / `task_step_gen` / `task_wait_gen`), so a
/// staleness probe reads one element of a dense `u64` array instead of
/// dereferencing into this struct past the program runner.
#[derive(Debug, Clone)]
pub(crate) struct TaskRt {
    pub runner: ProgramRunner,
    /// Pending cache warm-up penalty (ns) added to the next segment.
    pub penalty_ns: u64,
    /// Open request timestamp (`RequestStart` or queue-arrival pairing).
    pub req_open: Option<SimTime>,
}

/// EWMA steal estimator per vCPU (the guest-visible paravirtual steal
/// clock; sampled against the hypervisor's runstate accounting).
#[derive(Debug, Clone, Copy)]
pub(crate) struct StealTracker {
    last_runnable: SimTime,
    last_total: SimTime,
    pub ewma: f64,
}

impl StealTracker {
    pub fn new() -> Self {
        StealTracker {
            last_runnable: SimTime::ZERO,
            last_total: SimTime::ZERO,
            ewma: 0.0,
        }
    }

    /// True when a snapshot taken at `now` would land in the sub-ms dead
    /// window and leave the estimator untouched — [`StealTracker::update`]
    /// would return `ewma` unchanged. Relies on runstate clocks accounting
    /// *all* time (every vCPU clock starts at t=0 and every instant is
    /// charged to exactly one state), so a clock's `total()` at `now` is
    /// `now` itself; the hot per-event view refill uses this to skip the
    /// clock read entirely.
    #[inline]
    pub fn quiescent_at(&self, now: SimTime) -> bool {
        now.saturating_sub(self.last_total) < SimTime::from_millis(1)
    }

    /// First instant at which [`StealTracker::quiescent_at`] turns false —
    /// i.e. until when a fresh snapshot is guaranteed to leave the
    /// estimator untouched. The view cache stays valid up to the minimum
    /// of this horizon over a VM's trackers.
    #[inline]
    pub fn quiescent_until(&self) -> SimTime {
        self.last_total + SimTime::from_millis(1)
    }

    /// Folds a fresh runstate snapshot in. Windows shorter than 1 ms reuse
    /// the previous estimate (too noisy to update).
    pub fn update(&mut self, info: &RunstateInfo) -> f64 {
        let total = info.total();
        let window = total.saturating_sub(self.last_total);
        if window >= SimTime::from_millis(1) {
            let stolen = info.runnable.saturating_sub(self.last_runnable);
            let frac = stolen.ratio(window).clamp(0.0, 1.0);
            self.ewma = 0.5 * self.ewma + 0.5 * frac;
            self.last_total = total;
            self.last_runnable = info.runnable;
        }
        self.ewma
    }
}

/// Everything the simulation keeps per VM.
#[derive(Debug, Clone)]
pub(crate) struct Domain {
    pub name: String,
    pub os: GuestOs,
    pub space: SyncSpace,
    pub tasks: Vec<TaskRt>,
    /// What each task is doing right now (parallel to `tasks`; see
    /// [`TaskRt`] for the layout rationale).
    pub task_activity: Vec<Activity>,
    /// Invalidates outstanding `TaskStep` events (parallel to `tasks`).
    pub task_step_gen: Vec<u64>,
    /// Invalidates outstanding grace-expiry events (parallel to `tasks`).
    pub task_wait_gen: Vec<u64>,
    pub kind: WorkloadKind,
    pub memory_intensity: f64,
    pub open_loop: Option<OpenLoop>,
    /// Per-channel request-timestamp ledger, parallel to the space's
    /// channels: entry `c` mirrors channel `c`'s queue item-for-item.
    /// `Some(t)` is an in-flight request that arrived/started at `t`
    /// (open-loop offers, or a producer handing its open request
    /// downstream); `None` is a plain pipeline item with no request
    /// attached. A pop transfers a `Some` stamp to the popping task's
    /// `req_open`, so end-to-end latency survives multi-tier hops.
    pub req_ledger: Vec<VecDeque<Option<SimTime>>>,
    /// Per-vCPU execution context.
    pub exec: Vec<Option<ExecCtx>>,
    /// Per-vCPU guest-tick generation.
    pub tick_gen: Vec<u64>,
    /// When each vCPU last processed a guest tick (drives catch-up ticks:
    /// an overdue timer fires immediately on resume, as a real pending
    /// timer IRQ would).
    pub last_tick: Vec<SimTime>,
    /// Per-vCPU PLE-window generation.
    pub ple_gen: Vec<u64>,
    /// Per-vCPU SA-round generation (guards SaProcess staleness).
    pub steal: Vec<StealTracker>,
    /// Cached guest-visible per-vCPU views, refilled in place by
    /// `System::fill_views`. Kept per domain so the cache survives events
    /// that interleave between VMs.
    pub view_buf: Vec<irs_guest::VcpuView>,
    /// Hypervisor runstate epoch the cached `view_buf` was built against.
    /// A bump anywhere invalidates (some vCPU changed state).
    pub views_epoch: u64,
    /// Cache horizon: `view_buf` is exact strictly before this instant
    /// (the minimum [`StealTracker::quiescent_until`] at fill time), as
    /// long as `views_epoch` still matches. `SimTime::ZERO` marks the
    /// cache invalid.
    pub views_deadline: SimTime,
    pub measured: bool,
    /// Tasks not yet `Done`.
    pub live_tasks: usize,
    /// Instant the last task finished (parallel workloads).
    pub completed_at: Option<SimTime>,
    /// Useful compute completed (ns) — the background progress metric.
    pub useful_ns: u64,
    /// Completed request latencies (µs).
    pub latencies_us: Vec<f64>,
    /// Completed request count.
    pub requests: u64,
    /// Open-loop requests dropped on a full accept queue.
    pub dropped_requests: u64,
    /// Lock-holder preemptions observed.
    pub lhp: u64,
    /// Lock-waiter preemptions observed (head spinner preempted).
    pub lwp: u64,
    /// The migrator-run event is already scheduled.
    pub migrator_armed: bool,
}

impl Domain {
    /// All of this VM's tasks have finished.
    pub fn is_complete(&self) -> bool {
        self.live_tasks == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_xen::RunState;

    fn info(running_ms: u64, runnable_ms: u64) -> RunstateInfo {
        RunstateInfo {
            state: RunState::Running,
            running: SimTime::from_millis(running_ms),
            runnable: SimTime::from_millis(runnable_ms),
            blocked: SimTime::ZERO,
            offline: SimTime::ZERO,
        }
    }

    #[test]
    fn steal_tracker_converges_on_the_true_fraction() {
        let mut t = StealTracker::new();
        // Repeated 50% steal windows.
        for i in 1..=10u64 {
            t.update(&info(10 * i, 10 * i));
        }
        assert!((t.ewma - 0.5).abs() < 0.01, "got {}", t.ewma);
    }

    #[test]
    fn steal_tracker_ignores_sub_ms_windows() {
        let mut t = StealTracker::new();
        t.update(&info(100, 100));
        let before = t.ewma;
        // A second sample only microseconds later must not perturb it.
        let mut tiny = info(100, 100);
        tiny.running += SimTime::from_micros(10);
        t.update(&tiny);
        assert_eq!(t.ewma, before);
    }

    #[test]
    fn steal_tracker_decays_when_contention_ends() {
        let mut t = StealTracker::new();
        t.update(&info(10, 10)); // 50% steal
        let peak = t.ewma;
        t.update(&info(30, 10)); // next window: no steal
        assert!(t.ewma < peak);
    }
}
