//! The co-simulation: one event loop driving the hypervisor, every guest
//! kernel, and every workload program on a shared virtual timeline.
//!
//! Division of labour:
//!
//! * `irs-xen` and `irs-guest` own their *state machines* and return
//!   actions; this module owns *time* — it arms and validates every timer
//!   (slices, ticks, compute segments, SA rounds, PLE windows, arrivals)
//!   using generation counters for O(1) logical cancellation.
//! * Task execution lives in [`crate::exec`]: a task makes progress exactly
//!   while it is guest-current on a vCPU that the hypervisor is actually
//!   running. Everything the paper calls a semantic gap falls out of that
//!   one rule — a preempted vCPU freezes its current task while the guest
//!   still believes it is `Running`.

use crate::domain::{Domain, StealTracker, TaskRt};
use crate::events::Event;
use crate::results::{RunResult, VmResult};
use crate::scenario::Scenario;
use crate::strategy::Strategy;
use irs_guest::{GuestAction, GuestConfig, GuestOs, VcpuView};
use irs_sim::trace::TraceEvent;
use irs_sim::{EventQueue, SimRng, SimTime};
use irs_sync::OfferOutcome;
use irs_workloads::{ProgramRunner, WorkloadKind};
use irs_xen::{HvAction, Hypervisor, PcpuId, RunState, SchedOp, VcpuRef, Virq, VmSpec};

/// Modelling knobs that are not part of any scheduler's configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Base cache warm-up penalty a task pays after a cross-vCPU
    /// migration, scaled by the workload's memory intensity.
    pub cache_penalty: SimTime,
    /// Safety valve on total events processed (a run that trips it is a
    /// bug, not a result).
    pub max_events: u64,
    /// Futex grace: how long a blocking wait spins before actually
    /// sleeping (glibc adaptive-mutex / futex fast-path behaviour). This
    /// is the brief spinning on blocking primitives that PLE reacts to.
    pub futex_grace: SimTime,
    /// Capacity of the in-memory scheduling trace (0 disables tracing).
    /// When enabled, every hypervisor and guest action is recorded with
    /// its virtual timestamp; dump via [`System::trace`].
    pub trace_capacity: usize,
    /// Paravirtual spin-then-halt: an ungranted spin wait longer than this
    /// halts until the owner's release kicks it (pv-spinlock semantics,
    /// paper §5.1). `None` spins forever, as user-level
    /// `OMP_WAIT_POLICY=active` waiters do.
    pub pv_spin: Option<SimTime>,
    /// Runs the online invariant sanitizer ([`crate::check`]) after every
    /// event. Also enabled process-wide by
    /// [`crate::check::set_check_enabled`]; when on, the trace rings are
    /// armed automatically so a violation report has decisions to show.
    pub check: bool,
    /// Deterministic fault injection ([`crate::faults`]): `None` (the
    /// default) injects nothing and costs nothing. The fault stream is
    /// forked from the scenario seed, so a given `(scenario, faults)`
    /// pair is bit-reproducible regardless of checking or parallelism.
    pub faults: Option<crate::faults::FaultConfig>,
    /// Tickless fast-forward: elide provably no-op events (quiescent
    /// hypervisor ticks/accounting passes, generation-stale timers) from
    /// the dispatch loop instead of paying full dispatch for them. Results
    /// are bit-identical either way — elided events still count toward
    /// [`RunResult::events`], periodic timers re-arm exactly as their
    /// handlers would, and fault-stream draws are replayed — so this is a
    /// pure wall-clock optimisation. Also enabled process-wide by
    /// [`set_tickless_enabled`] (how `figures --tickless` arms a sweep).
    pub tickless: bool,
    /// Rolling-checkpoint period for sanitizer replay: when set, the run
    /// takes a [`Snapshot`] every `period` of virtual time, and an
    /// invariant violation re-runs the window from the last checkpoint
    /// with a large trace ring armed before panicking — so the report
    /// carries the full decision history leading up to the violation, not
    /// just the default ring's tail. `None` (the default) costs nothing.
    /// Checkpoints never perturb results: taking a snapshot mutates no
    /// simulation state.
    pub checkpoint_period: Option<SimTime>,
}

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Fixed salt separating the open-loop arrival streams from the workload
/// RNG (both are forked from the scenario seed).
const ARRIVAL_STREAM_SALT: u64 = 0x6f70_656e_5f6c_6f6f; // "open_loo"

/// Process-wide tickless switch (see [`set_tickless_enabled`]).
static TICKLESS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Events elided by tickless fast-forward, process-wide, since the last
/// [`take_tickless_events_saved`]. Flushed once per completed run.
static TICKLESS_SAVED: AtomicU64 = AtomicU64::new(0);

/// Enables or disables tickless fast-forward for every [`System`] built
/// afterwards, regardless of its [`SystemConfig`] — the same pattern as
/// [`crate::check::set_check_enabled`], so `figures --tickless` covers a
/// whole experiment sweep without threading a flag through every call site.
pub fn set_tickless_enabled(enabled: bool) {
    TICKLESS_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the process-wide tickless switch is on.
pub fn tickless_enabled() -> bool {
    TICKLESS_ENABLED.load(Ordering::Relaxed)
}

/// Returns the number of events elided by tickless fast-forward since the
/// previous call, resetting the counter (process-wide, across threads).
pub fn take_tickless_events_saved() -> u64 {
    TICKLESS_SAVED.swap(0, Ordering::Relaxed)
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            cache_penalty: SimTime::from_micros(200),
            max_events: 200_000_000,
            futex_grace: SimTime::from_micros(30),
            trace_capacity: 0,
            pv_spin: None,
            check: false,
            faults: None,
            tickless: false,
            checkpoint_period: None,
        }
    }
}

/// The assembled co-simulation. Construct from a [`Scenario`], then
/// [`System::run`].
#[derive(Debug)]
pub struct System {
    pub(crate) cfg: SystemConfig,
    pub(crate) strategy: Strategy,
    pub(crate) now: SimTime,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) hv: Hypervisor,
    pub(crate) domains: Vec<Domain>,
    pub(crate) rng: SimRng,
    pub(crate) horizon: SimTime,
    armed_slice_gen: Vec<Option<u64>>,
    /// The hypervisor [`dispatch_epoch`](Hypervisor::dispatch_epoch) the
    /// last slice-timer scan ran under; while it holds steady no dispatch
    /// moved, so [`System::refresh_slice_timers`] skips the pCPU walk.
    /// `None` forces the next scan.
    armed_epoch: Option<u64>,
    stopped: bool,
    events_processed: u64,
    /// Tickless fast-forward armed (config or process-wide switch), and
    /// not strict co-scheduling (whose rotate epilogue keys off *every*
    /// processed event, so no event is provably a no-op there).
    tickless: bool,
    /// Events elided by fast-forward this run (flushed to the process-wide
    /// counter on completion; they still count in `events_processed`).
    elided: u64,
    trace: irs_sim::trace::TraceRing,
    /// Whether any trace ring is armed (guest clocks need syncing).
    trace_on: bool,
    /// The online invariant sanitizer, when checking is enabled.
    checker: Option<crate::check::Checker>,
    /// Live fault injector, when [`SystemConfig::faults`] is set.
    faults: Option<crate::faults::FaultState>,
    /// Most recent rolling checkpoint, when
    /// [`SystemConfig::checkpoint_period`] is set. Boxed: a snapshot is a
    /// full state copy and most systems never take one.
    last_checkpoint: Option<Box<Snapshot>>,
    /// Virtual time at or after which the next rolling checkpoint is due.
    next_checkpoint_at: SimTime,
    /// Recycled scratch for [`System::trace_dump`]: `(timestamp, ring,
    /// index)` keys into the trace rings, so repeated dumps (the checker
    /// renders one per violation probe) reuse one allocation instead of
    /// rebuilding a `Vec` of record references each time.
    trace_scratch: std::cell::RefCell<Vec<(SimTime, u16, u32)>>,
}

impl System {
    /// Builds the full system from a scenario description.
    ///
    /// # Panics
    ///
    /// Panics on malformed scenarios (no VMs, thread/vCPU mismatches,
    /// pinning out of range).
    pub fn new(scenario: Scenario) -> Self {
        Self::with_config(scenario, SystemConfig::default())
    }

    /// Builds with explicit modelling knobs.
    pub fn with_config(scenario: Scenario, cfg: SystemConfig) -> Self {
        assert!(!scenario.vms.is_empty(), "a scenario needs at least one VM");
        let strategy = scenario.strategy;
        let any_unpinned = scenario.vms.iter().any(|v| v.pinning.is_none());
        let mut xen_cfg = strategy.xen_config();
        if let Some(slice) = scenario.slice_override {
            xen_cfg.time_slice = slice;
        }
        xen_cfg.migration = any_unpinned;
        if any_unpinned {
            xen_cfg.placement_salt = Some(scenario.seed);
        }
        let mut hv = Hypervisor::new(xen_cfg, scenario.n_pcpus);
        // The sanitizer needs decisions to show in a violation report, so
        // checking arms the typed trace rings even when the caller did not
        // ask for a trace explicitly.
        let checking = cfg.check || crate::check::check_enabled();
        let ring_cap = if cfg.trace_capacity > 0 {
            cfg.trace_capacity
        } else if checking {
            256
        } else {
            0
        };
        if ring_cap > 0 {
            hv.enable_trace(ring_cap);
        }

        let mut domains = Vec::new();
        for (vm_index, vm) in scenario.vms.into_iter().enumerate() {
            let sa_guest = vm
                .irs_guest
                .unwrap_or(vm.measured && strategy.sa_capable_guest());
            let mut spec = VmSpec::new(vm.n_vcpus)
                .weight(vm.weight)
                .sa_capable(sa_guest);
            if let Some(p) = vm.pinning {
                spec = spec.pin(p);
            }
            hv.create_vm(spec);

            let mut guest_cfg = if sa_guest {
                strategy.guest_config()
            } else {
                GuestConfig::default()
            };
            if sa_guest {
                if let Some(sa) = vm.sa_override {
                    guest_cfg.sa = Some(sa);
                }
            }
            let mut os = GuestOs::new(guest_cfg, vm.n_vcpus);
            if ring_cap > 0 {
                os.enable_trace(vm_index, ring_cap);
            }
            let mut bundle = vm.bundle;
            // Gang epochs must be balanced: each epoch's participant count
            // has to equal the number of threads polling it, or a release
            // either never fires (too few pollers) or a generation tears
            // (too many). Checked here — with the arrival/epoch id ranges —
            // so the interpreter itself can never fault.
            let mut polls = vec![0usize; bundle.space.n_epochs()];
            for prog in &bundle.threads {
                for e in prog.epochs_polled() {
                    assert!(
                        e.0 < polls.len(),
                        "vm{vm_index} thread polls unallocated {e}"
                    );
                    polls[e.0] += 1;
                }
                for a in prog.arrivals_awaited() {
                    assert!(
                        a.0 < bundle.space.n_arrivals(),
                        "vm{vm_index} thread awaits unallocated {a}"
                    );
                }
            }
            for (i, &n) in polls.iter().enumerate() {
                let want = bundle.space.epoch_ref(irs_sync::EpochId(i)).participants();
                assert_eq!(
                    n, want,
                    "vm{vm_index} gang epoch{i} unbalanced: {n} polling thread(s) \
                     for {want} participant(s)"
                );
            }
            // Arrival processes draw from their own streams, forked from
            // the scenario seed with a fixed per-(vm, arrival) salt:
            // decorrelated from the workload RNG and untouched by `--jobs`
            // or tickless, so arrival schedules are bit-reproducible.
            for i in 0..bundle.space.n_arrivals() {
                let mut parent = SimRng::seed_from(scenario.seed ^ ARRIVAL_STREAM_SALT);
                let child = parent.fork(((vm_index as u64) << 32) | i as u64);
                bundle.space.arrival(irs_sync::ArrivalId(i)).reseed(child);
            }
            let n_channels = bundle.space.n_channels();
            // Parallel presets spawn N copies of one thread program:
            // dedupe the per-domain programs behind `Arc` so sibling tasks
            // share a single op vector instead of each cloning it.
            let mut shared: Vec<std::sync::Arc<irs_workloads::Program>> = Vec::new();
            let tasks: Vec<TaskRt> = std::mem::take(&mut bundle.threads)
                .into_iter()
                .enumerate()
                .map(|(i, prog)| {
                    os.spawn(i % vm.n_vcpus);
                    let prog = match shared.iter().find(|a| ***a == prog) {
                        Some(a) => std::sync::Arc::clone(a),
                        None => {
                            let a = std::sync::Arc::new(prog);
                            shared.push(std::sync::Arc::clone(&a));
                            a
                        }
                    };
                    TaskRt {
                        runner: ProgramRunner::from_shared(prog),
                        penalty_ns: 0,
                        req_open: None,
                    }
                })
                .collect();
            let live_tasks = tasks.len();
            domains.push(Domain {
                name: bundle.name.clone(),
                os,
                space: bundle.space,
                task_activity: vec![crate::domain::Activity::Resume; tasks.len()],
                task_step_gen: vec![0; tasks.len()],
                task_wait_gen: vec![0; tasks.len()],
                tasks,
                kind: bundle.kind,
                memory_intensity: bundle.memory_intensity,
                open_loop: bundle.open_loop,
                req_ledger: vec![std::collections::VecDeque::new(); n_channels],
                exec: vec![None; vm.n_vcpus],
                tick_gen: vec![0; vm.n_vcpus],
                last_tick: vec![SimTime::ZERO; vm.n_vcpus],
                ple_gen: vec![0; vm.n_vcpus],
                steal: vec![StealTracker::new(); vm.n_vcpus],
                view_buf: Vec::new(),
                views_epoch: 0,
                views_deadline: SimTime::ZERO,
                measured: vm.measured,
                live_tasks,
                completed_at: None,
                useful_ns: 0,
                latencies_us: Vec::new(),
                requests: 0,
                dropped_requests: 0,
                lhp: 0,
                lwp: 0,
                migrator_armed: false,
            });
        }

        let n_pcpus = hv.n_pcpus();
        let trace = if ring_cap > 0 {
            irs_sim::trace::TraceRing::enabled(ring_cap)
        } else {
            irs_sim::trace::TraceRing::disabled()
        };
        // The fault stream is forked from the scenario seed with a fixed
        // salt: decorrelated from the workload stream, and untouched by
        // checking or `--jobs`, so fault schedules are bit-reproducible.
        let faults = cfg.faults.clone().map(|f| {
            let counts: Vec<usize> = domains.iter().map(|d| d.os.n_vcpus()).collect();
            crate::faults::FaultState::new(f, scenario.seed, &counts)
        });
        let tickless = (cfg.tickless || tickless_enabled()) && !hv.is_gang_mode();
        let mut sys = System {
            cfg,
            strategy,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            hv,
            domains,
            rng: SimRng::seed_from(scenario.seed),
            horizon: scenario.horizon,
            armed_slice_gen: vec![None; n_pcpus],
            armed_epoch: None,
            stopped: false,
            events_processed: 0,
            tickless,
            elided: 0,
            trace,
            trace_on: ring_cap > 0,
            checker: None,
            faults,
            last_checkpoint: None,
            next_checkpoint_at: SimTime::ZERO,
            trace_scratch: std::cell::RefCell::new(Vec::new()),
        };
        sys.boot();
        if checking {
            sys.checker = Some(crate::check::Checker::new(&sys));
        }
        sys
    }

    /// Boots every guest, starts the hypervisor, and arms periodic timers.
    fn boot(&mut self) {
        // Guests pick initial currents; vCPUs with empty runqueues are
        // registered as blocked before the hypervisor's first dispatch.
        for vm in 0..self.domains.len() {
            let acts = self.domains[vm].os.start(SimTime::ZERO);
            for act in acts {
                match act {
                    GuestAction::Hypercall {
                        vcpu,
                        op: SchedOp::Block,
                    } => {
                        self.hv
                            .block_before_start(VcpuRef::new(irs_xen::VmId(vm), vcpu));
                    }
                    GuestAction::RunTask { .. } => {
                        // Execution starts when the hypervisor dispatches
                        // the vCPU (VcpuStarted).
                    }
                    other => panic!("unexpected boot action {other}"),
                }
            }
        }
        let acts = self.hv.start(SimTime::ZERO);
        self.apply_hv_actions(acts);

        let tick = self.hv.config().tick_period;
        let acct = self.hv.config().accounting_period;
        self.queue.schedule(tick, Event::HvTick);
        self.queue.schedule(acct, Event::HvAccounting);
        self.queue.schedule(self.horizon, Event::Horizon);
        if self.hv.is_gang_mode() {
            // Open the first gang slot immediately.
            let acts = self.hv.gang_rotate(SimTime::ZERO);
            self.apply_hv_actions(acts);
            let slice = self.hv.config().time_slice;
            self.queue.schedule(slice, Event::GangRotate);
        }
        for vm in 0..self.domains.len() {
            if let Some(ol) = self.domains[vm].open_loop {
                let first =
                    SimTime::from_nanos(self.rng.exponential(ol.mean_interarrival.as_nanos() as f64) as u64);
                self.queue.schedule(first, Event::RequestArrive { vm });
            }
        }
        self.refresh_slice_timers();
    }

    /// Runs until the measured workloads complete or the horizon fires.
    ///
    /// The completion conditions are checked *before* each step as well as
    /// after, so `run` is a pure function of state: a [`Snapshot`] taken at
    /// any point — including after completion — resumes into exactly the
    /// suffix a from-scratch run would have executed.
    pub fn run(mut self) -> RunResult {
        while !self.stopped && !self.measurement_done() {
            if !self.step() {
                break;
            }
        }
        self.into_result()
    }

    /// Runs until the next pending event is at or past `until` (or the run
    /// completes first). This is the warmup driver for snapshot sharing:
    /// drive every replica of a grid cell to the same virtual instant,
    /// [`snapshot`](Self::snapshot) once, and resume a branch per replica —
    /// prefix + suffix equals the whole run under the deterministic event
    /// order, so branches stay bit-identical to from-scratch runs at any
    /// boundary. Returns `false` once the run is already complete (horizon,
    /// measured workloads done, or queue exhausted).
    ///
    /// Under tickless fast-forward the warmup may overshoot `until` by
    /// whatever the elision loop coalesces; that only moves the (arbitrary)
    /// snapshot boundary, never the results.
    pub fn run_until(&mut self, until: SimTime) -> bool {
        while !self.stopped && !self.measurement_done() {
            match self.queue.peek_time() {
                Some(t) if t < until => {
                    if !self.step() {
                        return false;
                    }
                }
                Some(_) => return true,
                None => return false,
            }
        }
        false
    }

    /// Processes one event. Returns `false` when the queue is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the event-count safety valve trips (a runaway loop).
    pub fn step(&mut self) -> bool {
        if let Some(period) = self.cfg.checkpoint_period {
            // Between events is the one guaranteed-consistent instant; the
            // snapshot mutates nothing, so checkpointed and plain runs stay
            // bit-identical.
            if self.now >= self.next_checkpoint_at {
                self.last_checkpoint = Some(Box::new(self.snapshot()));
                self.next_checkpoint_at = self.now + period;
            }
        }
        if self.tickless {
            self.fast_forward();
        }
        let Some((t, ev)) = self.queue.pop() else {
            return false;
        };
        self.events_processed += 1;
        assert!(
            self.events_processed <= self.cfg.max_events,
            "event safety valve tripped at {} events (now {})",
            self.events_processed,
            self.now
        );
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        if self.trace_on {
            // Guest entry points mostly have no `now` parameter; keep each
            // kernel's trace clock in lock-step with virtual time instead
            // of widening every signature.
            for d in &mut self.domains {
                d.os.sync_clock(t);
            }
        }
        self.dispatch(ev);
        // Strict co-scheduling: rotate early rather than idle the machine
        // when the gang VM went fully idle and another VM has work.
        if self.hv.is_gang_mode() && self.hv.gang_vm_fully_idle() {
            let other_wants = (0..self.domains.len())
                .any(|vm| self.hv.vm_wants_cpu(irs_xen::VmId(vm)));
            if other_wants {
                let acts = self.hv.gang_rotate(self.now);
                self.apply_hv_actions(acts);
            }
        }
        self.refresh_slice_timers();
        if let Some(mut checker) = self.checker.take() {
            if self.last_checkpoint.is_some() {
                // A rolling checkpoint exists: intercept a violation, re-run
                // the window from the checkpoint with a deep trace ring
                // armed, and re-panic with the replay's richer report
                // appended to the original.
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    checker.check(&*self, ev)
                }));
                if let Err(payload) = caught {
                    let replay = self.replay_from_checkpoint();
                    panic!("{}\n{replay}", panic_message(&*payload));
                }
            } else {
                checker.check(self, ev);
            }
            self.checker = Some(checker);
        }
        true
    }

    /// Tickless fast-forward: drain provably no-op events off the queue
    /// head without paying full dispatch for them.
    ///
    /// Every elided event is one whose handler would return having mutated
    /// nothing (see [`elidable`]), so the trace sync, gang epilogue, slice
    /// re-arm scan, and sanitizer pass that `step` wraps around dispatch
    /// are no-ops too. Bit-identity with the ticked path is preserved by
    /// construction: elided events still count into `events_processed`,
    /// self-rearming timers are re-scheduled exactly as their handlers
    /// would (same times, same queue-insertion order, hence identical
    /// sequence numbers for everything scheduled afterwards), and the
    /// fault-stream draws a quiescent `HvTick` would make are replayed so
    /// the RNG stays in lock-step. `self.now` only advances on arms whose
    /// replay charges time (the quiet guest tick); for pure discards
    /// nothing between pops reads it, and the next real event sets it just
    /// as it would have.
    fn fast_forward(&mut self) {
        loop {
            let hv = &self.hv;
            let domains = &self.domains;
            let popped = self.queue.pop_if(|t, ev| elidable(hv, domains, t, ev));
            let Some((t, ev)) = popped else {
                return;
            };
            self.events_processed += 1;
            assert!(
                self.events_processed <= self.cfg.max_events,
                "event safety valve tripped at {} events (now {})",
                self.events_processed,
                self.now
            );
            debug_assert!(t >= self.now, "time went backwards");
            self.elided += 1;
            match ev {
                Event::HvTick => {
                    // A quiescent tick still advances the degradation
                    // fault stream: the ticked path draws once per
                    // degraded pCPU unconditionally (and every draw loses
                    // the `force_preempt` race on an idle machine), so
                    // replay the draws to keep the RNG in lock-step.
                    if let Some(f) = self.faults.as_mut() {
                        let k = f.config().degraded_pcpus.min(self.hv.n_pcpus());
                        for _ in 0..k {
                            let _ = f.degrade_hit();
                        }
                    }
                    let next = t + self.hv.config().tick_period;
                    self.queue.schedule(next, Event::HvTick);
                }
                Event::HvAccounting => {
                    let next = t + self.hv.config().accounting_period;
                    self.queue.schedule(next, Event::HvAccounting);
                }
                // A *live* quiet tick (see `GuestOs::tick_is_quiet`) is the
                // coalesced-timer catch-up: replay exactly the state
                // `on_guest_tick` would touch — last-tick stamp, runtime
                // charge at the tick instant, the per-vCPU steal EWMA fold
                // (iterated per tick, never closed-form: the 0.5-decay must
                // hit the same float sequence), the kernel tick count — and
                // re-arm the next tick under the same generation. The
                // skipped parts (action dispatch, SA ack, trace sync, slice
                // re-arm scan, sanitizer pass) are provably empty for a
                // quiet tick. Stale ticks (generation mismatch) fall through
                // to the pure-discard arm below.
                Event::GuestTick { vm, vcpu, gen }
                    if self.domains[vm].tick_gen[vcpu] == gen =>
                {
                    self.now = t; // sync_exec / steal_fold charge to `now`
                    self.domains[vm].last_tick[vcpu] = t;
                    self.sync_exec(vm, vcpu);
                    self.steal_fold(vm);
                    self.domains[vm].os.note_quiet_tick(vcpu);
                    let period = self.domains[vm].os.config().tick_period;
                    self.queue
                        .schedule(t + period, Event::GuestTick { vm, vcpu, gen });
                }
                // Everything else elidable is a one-shot stale timer: its
                // handler would discard it without re-arming anything.
                _ => {}
            }
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The scheduling trace captured so far (empty unless
    /// [`SystemConfig::trace_capacity`] was set).
    pub fn trace(&self) -> &irs_sim::trace::TraceRing {
        &self.trace
    }

    /// Merges every typed trace ring — the hypervisor's, each guest
    /// kernel's, and the embedder's own action notes — into one timeline,
    /// stable-sorted by virtual timestamp, and renders the newest ~120
    /// records one line each. Empty unless tracing is armed (via
    /// [`SystemConfig::trace_capacity`] or checking). This is the report
    /// body the invariant sanitizer prints on violation.
    pub fn trace_dump(&self) -> String {
        // Ring encoding for the recycled scratch: 0 = hypervisor,
        // 1..=n = guests, n+1 = the embedder's own ring.
        let ring = |r: u16| -> &std::collections::VecDeque<irs_sim::trace::TraceRecord> {
            match r {
                0 => self.hv.trace().records(),
                r if (r as usize) <= self.domains.len() => {
                    self.domains[r as usize - 1].os.trace().records()
                }
                _ => self.trace.records(),
            }
        };
        let mut keys = self.trace_scratch.take();
        keys.clear();
        for r in 0..(self.domains.len() + 2) as u16 {
            keys.extend(
                ring(r)
                    .iter()
                    .enumerate()
                    .map(|(i, rec)| (rec.at, r, i as u32)),
            );
        }
        // Stable, so ties keep ring order (hv, guests, embedder) exactly
        // as the old record-reference sort did.
        keys.sort_by_key(|k| k.0);
        let tail = keys.len().saturating_sub(120);
        let mut out = String::new();
        for &(_, r, i) in &keys[tail..] {
            out.push_str(&ring(r)[i as usize].to_string());
            out.push('\n');
        }
        keys.clear();
        self.trace_scratch.replace(keys);
        out
    }

    /// Read access to the hypervisor (diagnostics, tests, probes).
    pub fn hypervisor(&self) -> &Hypervisor {
        &self.hv
    }

    /// Fault-injection counters so far; `None` unless
    /// [`SystemConfig::faults`] was set.
    pub fn fault_stats(&self) -> Option<crate::faults::FaultStats> {
        self.faults.as_ref().map(|f| f.stats)
    }

    /// Read access to a VM's guest kernel (diagnostics, tests, probes).
    pub fn guest(&self, vm: usize) -> &irs_guest::GuestOs {
        &self.domains[vm].os
    }

    /// Renders a one-line-per-entity snapshot of a VM: every vCPU's
    /// hypervisor runstate, guest-current task and queue, then every
    /// task's state, vruntime, and workload activity. Companion to
    /// [`irs_xen::Hypervisor::debug_pcpu`] for stuck-run diagnosis.
    pub fn debug_vm(&self, vm: usize) -> String {
        use std::fmt::Write as _;
        let d = &self.domains[vm];
        let mut out = String::new();
        for vcpu in 0..d.os.n_vcpus() {
            let v = VcpuRef::new(irs_xen::VmId(vm), vcpu);
            let rq = d.os.rq(vcpu);
            let queued: Vec<String> = rq.iter().map(|(vr, id)| format!("{id}@{vr}")).collect();
            let _ = writeln!(
                out,
                "v{vcpu}: {:?} cur={:?} min_vr={} q=[{}]",
                self.hv.vcpu_state(v),
                d.os.current(vcpu).map(|t| t.to_string()),
                rq.min_vruntime,
                queued.join(", "),
            );
        }
        for i in 0..d.tasks.len() {
            let task = d.os.task(irs_guest::TaskId(i));
            let exec = d.exec[task.cpu]
                .filter(|c| c.task == i)
                .map(|c| format!("exec(since={})", c.since));
            let _ = writeln!(
                out,
                "T{i}: {:?} cpu=v{} vr={} custody={} gen={} {:?} {}",
                task.state,
                task.cpu,
                task.vruntime,
                task.in_custody,
                d.task_step_gen[i],
                d.task_activity[i],
                exec.as_deref().unwrap_or("no-exec"),
            );
        }
        out
    }

    /// Verifies cross-layer consistency (between events): hypervisor and
    /// guest invariants hold, and execution contexts exist exactly where a
    /// guest-current task sits on a hypervisor-running vCPU.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on violation.
    pub fn check_invariants(&self) {
        self.hv.check_invariants();
        for (vm, d) in self.domains.iter().enumerate() {
            d.os.check_invariants();
            for vcpu in 0..d.os.n_vcpus() {
                let v = VcpuRef::new(irs_xen::VmId(vm), vcpu);
                let running = self.hv.vcpu_state(v) == RunState::Running;
                let current = d.os.current(vcpu);
                match d.exec[vcpu] {
                    Some(ctx) => {
                        assert!(running, "vm{vm} v{vcpu} has exec ctx but is not running");
                        assert_eq!(
                            current,
                            Some(irs_guest::TaskId(ctx.task)),
                            "vm{vm} v{vcpu} exec ctx does not match guest current"
                        );
                    }
                    None => {
                        assert!(
                            !(running && current.is_some()),
                            "vm{vm} v{vcpu} running with a current task but no exec ctx"
                        );
                    }
                }
            }
        }
    }

    /// Requests migration of `task` in `vm` to vCPU `dest` through the
    /// vanilla stopper path (`sched_setaffinity` semantics) — the operation
    /// Fig 1(b) measures. A running task's migration completes only when
    /// its source vCPU next executes a tick; poll
    /// [`System::guest`]`.task(..).cpu` to observe completion.
    pub fn migrate_task(&mut self, vm: usize, task: irs_guest::TaskId, dest: usize) {
        let acts = self.domains[vm].os.request_stop_migration(task, dest);
        self.apply_guest_actions(vm, acts);
    }

    /// True once every measured parallel workload has completed (server
    /// and interference workloads only end at the horizon).
    fn measurement_done(&self) -> bool {
        let mut any = false;
        for d in &self.domains {
            if d.measured && d.kind == WorkloadKind::Parallel {
                any = true;
                if !d.is_complete() {
                    return false;
                }
            }
        }
        any
    }

    // ==================================================================
    // snapshot / fork
    // ==================================================================

    /// Captures a deep, self-contained checkpoint of the whole machine:
    /// hypervisor (credit arena, runqueues, SA rounds, runstate clocks),
    /// every guest kernel (CFS state, task arrays, sync space; programs
    /// stay `Arc`-shared), the timer-wheel event queue (slab, generations,
    /// occupancy bitmaps, overflow list, cursor, sequence counter), the
    /// workload RNG, and the fault-injection stream (RNG position, wedge
    /// windows, stats).
    ///
    /// Not captured: trace-ring *contents* (rings are observability; the
    /// snapshot keeps only their configuration and a resumed system starts
    /// with empty rings), the sanitizer's rolling state (rebuilt from the
    /// snapshot instant on resume), and any rolling checkpoint this system
    /// itself holds. See DESIGN.md §2.7 for the full contract.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            cfg: self.cfg.clone(),
            strategy: self.strategy,
            now: self.now,
            queue: self.queue.clone(),
            hv: self.hv.clone(),
            domains: self.domains.clone(),
            rng: self.rng.clone(),
            horizon: self.horizon,
            armed_slice_gen: self.armed_slice_gen.clone(),
            armed_epoch: self.armed_epoch,
            stopped: self.stopped,
            events_processed: self.events_processed,
            tickless: self.tickless,
            elided: self.elided,
            trace: self.trace.clone(),
            trace_on: self.trace_on,
            checking: self.checker.is_some(),
            faults: self.faults.clone(),
        }
    }

    /// Rewinds this system to `snap`'s instant, exactly as
    /// [`Snapshot::resume`] would build it. Everything this system
    /// accumulated since (or before — restoring across unrelated systems
    /// of the same shape is allowed but pointless) is dropped.
    pub fn restore(&mut self, snap: &Snapshot) {
        *self = snap.resume();
    }

    /// Forks `n` independent branches from the current state. Each branch
    /// is bit-identical to this system — running any of them (or this
    /// system itself) yields the result a from-scratch run would; see the
    /// determinism contract on [`Snapshot`].
    pub fn fork(&self, n: usize) -> Vec<System> {
        let snap = self.snapshot();
        (0..n).map(|_| snap.resume()).collect()
    }

    /// Events processed so far, including tickless-elided ones (matches
    /// [`RunResult::events`] at completion).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Re-runs the window since the last rolling checkpoint with checking
    /// on and a deep trace ring armed, and renders the outcome. Called on
    /// a checker violation; the replay is expected to hit the same
    /// violation and panic, whose message (carrying the full merged trace
    /// of the window) is returned as the report body.
    fn replay_from_checkpoint(&self) -> String {
        let snap = self
            .last_checkpoint
            .as_deref()
            .expect("replay requires a checkpoint");
        let header = format!(
            "--- checkpoint replay: {} events from t={} with a {REPLAY_TRACE_CAP}-record trace ring ---",
            self.events_processed - snap.events_processed,
            snap.now,
        );
        let mut sys = snap.rebuild(Some(REPLAY_TRACE_CAP));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            while !sys.stopped && !sys.measurement_done() {
                if !sys.step() {
                    break;
                }
            }
        }));
        match outcome {
            Err(payload) => format!("{header}\n{}", panic_message(&*payload)),
            // Possible for the sa-freeze invariant only: its wait-since
            // stamp restarts at the checkpoint, which can push the replay's
            // freeze deadline past the original's.
            Ok(()) => format!("{header}\nreplay did not reproduce the violation"),
        }
    }

    // ==================================================================
    // event dispatch
    // ==================================================================

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::HvTick => {
                let acts = self.hv.tick(self.now);
                self.apply_hv_actions(acts);
                self.inject_degradation();
                let next = self.now + self.hv.config().tick_period;
                self.queue.schedule(next, Event::HvTick);
            }
            Event::HvAccounting => {
                let acts = self.hv.accounting(self.now);
                self.apply_hv_actions(acts);
                let next = self.now + self.hv.config().accounting_period;
                self.queue.schedule(next, Event::HvAccounting);
            }
            Event::SliceExpiry { pcpu, gen } => {
                let acts = self.hv.slice_expired(PcpuId(pcpu), gen, self.now);
                self.apply_hv_actions(acts);
            }
            Event::GuestTick { vm, vcpu, gen } => self.on_guest_tick(vm, vcpu, gen),
            Event::TaskStep { vm, task, gen } => self.on_task_step(vm, task, gen),
            Event::SaProcess { vm, vcpu, gen } => self.on_sa_process(vm, vcpu, gen),
            Event::SaTimeout { vm, vcpu, gen } => {
                let v = VcpuRef::new(irs_xen::VmId(vm), vcpu);
                let acts = self.hv.sa_timeout(v, gen, self.now);
                self.apply_hv_actions(acts);
            }
            Event::SaAckDeliver {
                vm,
                vcpu,
                gen,
                yield_op,
            } => self.on_sa_ack_deliver(vm, vcpu, gen, yield_op),
            Event::MigratorRun { vm } => self.on_migrator_run(vm),
            Event::PleWindow { vm, vcpu, gen } => self.on_ple_window(vm, vcpu, gen),
            Event::RequestArrive { vm } => self.on_request_arrive(vm),
            Event::WakeTimer { vm, task } => self.on_wake_timer(vm, task),
            Event::GraceExpire { vm, task, gen } => self.on_grace_expire(vm, task, gen),
            Event::PvSpinExpire { vm, task, gen } => self.on_pv_spin_expire(vm, task, gen),
            Event::GangRotate => {
                let acts = self.hv.gang_rotate(self.now);
                self.apply_hv_actions(acts);
                let next = self.now + self.hv.config().time_slice;
                self.queue.schedule(next, Event::GangRotate);
            }
            Event::Horizon => self.stopped = true,
        }
    }

    fn on_guest_tick(&mut self, vm: usize, vcpu: usize, gen: u64) {
        if self.domains[vm].tick_gen[vcpu] != gen {
            return; // the vCPU stopped running since this was armed
        }
        self.domains[vm].last_tick[vcpu] = self.now;
        self.sync_exec(vm, vcpu);
        self.fill_views(vm);
        let d = &mut self.domains[vm];
        let outcome = d.os.tick(vcpu, self.now, &d.view_buf);
        self.apply_guest_actions(vm, outcome.actions);
        if let Some(op) = outcome.sa_ack {
            // A pending SA upcall was processed at the tick (after the
            // timer work, per §4.2): forward the acknowledgement.
            let now = self.now;
            self.trace
                .record(now, "guest", || format!("vm{vm}: v{vcpu} {op} (SA ack @tick)"));
            let v = VcpuRef::new(irs_xen::VmId(vm), vcpu);
            let acts = self.hv.sched_op(v, op, self.now);
            self.apply_hv_actions(acts);
        }
        let period = self.domains[vm].os.config().tick_period;
        self.queue
            .schedule(self.now + period, Event::GuestTick { vm, vcpu, gen });
    }

    fn on_task_step(&mut self, vm: usize, task: usize, gen: u64) {
        if self.domains[vm].task_step_gen[task] != gen {
            return; // superseded by a context switch
        }
        let vcpu = self.domains[vm].os.task(irs_guest::TaskId(task)).cpu;
        debug_assert_eq!(
            self.domains[vm].os.current(vcpu),
            Some(irs_guest::TaskId(task)),
            "TaskStep for non-current task{task} (vm{vm} v{vcpu}, activity {:?}, state {:?}, exec {:?})",
            self.domains[vm].task_activity[task],
            self.domains[vm].os.task(irs_guest::TaskId(task)).state,
            self.domains[vm].exec[vcpu],
        );
        self.sync_exec(vm, vcpu);
        let d = &mut self.domains[vm];
        if let crate::domain::Activity::Computing { remaining, useful } = d.task_activity[task] {
            debug_assert_eq!(remaining, 0, "segment completed with time left");
            d.useful_ns += useful;
        }
        d.task_activity[task] = crate::domain::Activity::Resume;
        self.advance_task(vm, task);
    }

    fn on_sa_process(&mut self, vm: usize, vcpu: usize, gen: u64) {
        let v = VcpuRef::new(irs_xen::VmId(vm), vcpu);
        if !self.hv.is_sa_pending(v) || self.hv.sa_generation(v) != gen {
            return; // the guest already answered (e.g. it blocked anyway)
        }
        // A wedged vCPU ignores vIRQs: leave the softirq pending and retry
        // once the window clears. The completion limit usually wins the
        // race, resolving the round through the §4.1 force path.
        let wedged_until = self.faults.as_ref().and_then(|f| {
            f.is_wedged(vm, vcpu, self.now)
                .then(|| f.wedge_clears_at(vm, vcpu))
        });
        if let Some(until) = wedged_until {
            self.queue.schedule(until, Event::SaProcess { vm, vcpu, gen });
            return;
        }
        // The preemptee kept running during the receiver/softirq delay;
        // charge that time before switching.
        self.sync_exec(vm, vcpu);
        self.fill_views(vm);
        let d = &mut self.domains[vm];
        let outcome = d.os.process_softirqs(vcpu, self.now, &d.view_buf);
        self.apply_guest_actions(vm, outcome.actions);
        if let Some(op) = outcome.sa_ack {
            let now = self.now;
            // The guest handled the upcall, but the acknowledgement
            // hypercall itself can be dropped or deferred by the injector.
            if let Some(f) = self.faults.as_mut() {
                match f.ack_fate(now) {
                    crate::faults::AckFate::Drop => {
                        self.trace.emit(now, || TraceEvent::FaultInjected {
                            kind: "ack-drop",
                            vm,
                            vcpu,
                        });
                        return;
                    }
                    crate::faults::AckFate::Delay(at) => {
                        self.trace.emit(now, || TraceEvent::FaultInjected {
                            kind: "ack-delay",
                            vm,
                            vcpu,
                        });
                        self.queue.schedule(
                            at,
                            Event::SaAckDeliver {
                                vm,
                                vcpu,
                                gen,
                                yield_op: op == SchedOp::Yield,
                            },
                        );
                        return;
                    }
                    crate::faults::AckFate::Deliver => {}
                }
            }
            self.trace
                .record(now, "guest", || format!("vm{vm}: v{vcpu} {op} (SA ack)"));
            let acts = self.hv.sched_op(v, op, self.now);
            self.apply_hv_actions(acts);
        }
    }

    /// A fault-delayed SA acknowledgement arrives at the hypervisor. It is
    /// delivered only while the round it acknowledges is still pending;
    /// otherwise the completion limit already resolved the round and the
    /// late ack is discarded as stale (delivering it would desynchronize
    /// hypervisor and guest state).
    fn on_sa_ack_deliver(&mut self, vm: usize, vcpu: usize, gen: u64, yield_op: bool) {
        let v = VcpuRef::new(irs_xen::VmId(vm), vcpu);
        let now = self.now;
        if !self.hv.is_sa_pending(v) || self.hv.sa_generation(v) != gen {
            if let Some(f) = self.faults.as_mut() {
                f.stats.stale_acks_discarded += 1;
            }
            self.trace.record(now, "fault", || {
                format!("vm{vm}: v{vcpu} delayed SA ack discarded (stale)")
            });
            return;
        }
        let op = if yield_op { SchedOp::Yield } else { SchedOp::Block };
        self.trace
            .record(now, "guest", || format!("vm{vm}: v{vcpu} {op} (delayed SA ack)"));
        let acts = self.hv.sched_op(v, op, now);
        self.apply_hv_actions(acts);
    }

    /// Capacity degradation: every hypervisor tick, each degraded pCPU may
    /// take a forced maintenance-style preemption of whatever it runs. The
    /// injection goes through the legitimate `slice_expired` path with the
    /// live dispatch generation, so credit and runstate semantics hold.
    fn inject_degradation(&mut self) {
        let Some(f) = self.faults.as_ref() else {
            return;
        };
        let k = f.config().degraded_pcpus.min(self.hv.n_pcpus());
        for p in 0..k {
            // Always draw (busy or not) so the fault stream depends only
            // on the tick count, never on scheduling state.
            let hit = self.faults.as_mut().is_some_and(|f| f.degrade_hit());
            if !hit {
                continue;
            }
            let now = self.now;
            let acts = self.hv.force_preempt(PcpuId(p), now);
            if acts.is_empty() {
                continue; // idle, frozen, or uncontended: nothing to degrade
            }
            if let Some(f) = self.faults.as_mut() {
                f.stats.degrade_preemptions += 1;
            }
            self.trace
                .emit(now, || TraceEvent::PcpuFault { kind: "degrade", pcpu: p });
            self.apply_hv_actions(acts);
        }
    }

    fn on_migrator_run(&mut self, vm: usize) {
        self.domains[vm].migrator_armed = false;
        self.fill_views(vm);
        let d = &mut self.domains[vm];
        let acts = d.os.migrator_run(&d.view_buf);
        self.apply_guest_actions(vm, acts);
    }

    fn on_ple_window(&mut self, vm: usize, vcpu: usize, gen: u64) {
        if self.domains[vm].ple_gen[vcpu] != gen {
            return;
        }
        let v = VcpuRef::new(irs_xen::VmId(vm), vcpu);
        // Still an ungranted spinner actually executing?
        let spinning = self.domains[vm]
            .os
            .current(vcpu)
            .is_some_and(|t| {
                matches!(
                    self.domains[vm].task_activity[t.0],
                    crate::domain::Activity::SpinWait { granted: false }
                        | crate::domain::Activity::GraceSpin { granted: false }
                )
            });
        if !spinning || self.hv.vcpu_state(v) != RunState::Running {
            return;
        }
        let acts = self.hv.ple_exit(v, self.now);
        self.apply_hv_actions(acts);
    }

    fn on_request_arrive(&mut self, vm: usize) {
        let Some(ol) = self.domains[vm].open_loop else {
            return;
        };
        match self.domains[vm].space.channel(ol.channel).offer() {
            OfferOutcome::Accepted {
                wake_consumer: Some(w),
            } => {
                let d = &mut self.domains[vm];
                d.tasks[w.0].req_open = Some(self.now);
                d.task_activity[w.0] = crate::domain::Activity::Resume;
                self.wake_task(vm, w.0);
            }
            OfferOutcome::Accepted {
                wake_consumer: None,
            } => {
                let now = self.now;
                self.domains[vm].req_ledger[ol.channel.0].push_back(Some(now));
            }
            OfferOutcome::Full => {
                self.domains[vm].dropped_requests += 1;
            }
        }
        let gap = self.rng.exponential(ol.mean_interarrival.as_nanos() as f64);
        self.queue.schedule(
            self.now + SimTime::from_nanos(gap.max(1.0) as u64),
            Event::RequestArrive { vm },
        );
    }

    fn on_wake_timer(&mut self, vm: usize, task: usize) {
        if self.domains[vm].task_activity[task] != crate::domain::Activity::Sleeping {
            return;
        }
        self.domains[vm].task_activity[task] = crate::domain::Activity::Resume;
        self.wake_task(vm, task);
    }

    // ==================================================================
    // action interpreters
    // ==================================================================

    pub(crate) fn apply_hv_actions(&mut self, mut acts: Vec<HvAction>) {
        for act in acts.drain(..) {
            let now = self.now;
            self.trace.record(now, "xen", || act.to_string());
            match act {
                // Stale-action guards: applying an action can re-enter the
                // hypervisor (a freshly started vCPU with nothing to run
                // blocks immediately, and that nested schedule may stop,
                // steal, or re-dispatch vCPUs named by actions still queued
                // in this batch). An action is applied only if it still
                // describes the hypervisor's present state; a superseded
                // one was already replaced by the nested call's own actions.
                HvAction::VcpuStarted { vcpu, pcpu } => {
                    if self.hv.vcpu_state(vcpu) == RunState::Running
                        && self.hv.pcpu_current(pcpu) == Some(vcpu)
                    {
                        self.on_vcpu_started(vcpu);
                    }
                }
                HvAction::VcpuStopped { vcpu, state } => {
                    if self.hv.vcpu_state(vcpu) != RunState::Running {
                        self.on_vcpu_stopped(vcpu, state);
                    }
                }
                HvAction::DeliverVirq {
                    vcpu,
                    virq: Virq::SaUpcall,
                    deadline,
                } => {
                    let vm = vcpu.vm.0;
                    let gen = self.hv.sa_generation(vcpu);
                    let now = self.now;
                    // Fault injection at the delivery boundary: the upcall
                    // can be lost, the target vCPU can wedge, and the
                    // completion deadline can be jittered. Draw order is
                    // fixed so the fault stream is reproducible.
                    let mut deliver = true;
                    let mut deadline = deadline;
                    if let Some(f) = self.faults.as_mut() {
                        if f.drop_upcall() {
                            deliver = false;
                            self.trace.emit(now, || TraceEvent::FaultInjected {
                                kind: "upcall-loss",
                                vm,
                                vcpu: vcpu.idx,
                            });
                        }
                        if f.maybe_wedge(vm, vcpu.idx, now).is_some() {
                            self.trace.emit(now, || TraceEvent::FaultInjected {
                                kind: "wedge",
                                vm,
                                vcpu: vcpu.idx,
                            });
                        }
                        if let Some(dl) = deadline {
                            let jdl = f.jitter_deadline(now, dl);
                            if jdl != dl {
                                self.trace.emit(now, || TraceEvent::FaultInjected {
                                    kind: "deadline-jitter",
                                    vm,
                                    vcpu: vcpu.idx,
                                });
                            }
                            deadline = Some(jdl);
                        }
                    }
                    if deliver {
                        // Receiver top half: mark the upcall softirq pending;
                        // the bottom half (context switcher) runs after the
                        // softirq delay — or at an intervening tick, after
                        // timer work.
                        self.domains[vm]
                            .os
                            .raise_softirq(vcpu.idx, irs_guest::Softirq::Upcall);
                        let delay = self.domains[vm]
                            .os
                            .config()
                            .sa
                            .as_ref()
                            .map(|sa| sa.sa_round_delay())
                            .unwrap_or(SimTime::from_micros(25));
                        self.queue.schedule(
                            self.now + delay,
                            Event::SaProcess {
                                vm,
                                vcpu: vcpu.idx,
                                gen,
                            },
                        );
                    }
                    // The completion deadline is hypervisor-side state: it
                    // arms even when the guest never saw the upcall — that
                    // is the whole point of the §4.1 force path.
                    if let Some(dl) = deadline {
                        self.queue.schedule(
                            dl,
                            Event::SaTimeout {
                                vm,
                                vcpu: vcpu.idx,
                                gen,
                            },
                        );
                    }
                }
                HvAction::DeliverVirq { .. } | HvAction::PcpuIdle { .. } => {}
            }
        }
        self.hv.recycle_actions(acts);
    }

    fn on_vcpu_started(&mut self, v: VcpuRef) {
        let vm = v.vm.0;
        let vcpu = v.idx;
        // Arm the guest tick chain for this dispatch. An overdue timer
        // fires immediately (pending-IRQ catch-up): a vCPU that only gets
        // sub-tick execution windows (e.g. under PLE yield storms) must
        // still run its scheduler tick, or queued tasks starve.
        self.domains[vm].tick_gen[vcpu] += 1;
        let gen = self.domains[vm].tick_gen[vcpu];
        let period = self.domains[vm].os.config().tick_period;
        let due = (self.domains[vm].last_tick[vcpu] + period).max(self.now);
        self.queue
            .schedule(due, Event::GuestTick { vm, vcpu, gen });

        let acts = self.domains[vm].os.ensure_current(vcpu);
        self.apply_guest_actions(vm, acts);
        if self.domains[vm].os.current(vcpu).is_none() {
            // Nothing local: idle balancing may pull from a busy sibling
            // (the receiving end of the guest's nohz kick).
            self.fill_views(vm);
            let d = &mut self.domains[vm];
            let acts = d.os.idle_balance(vcpu, &d.view_buf);
            self.apply_guest_actions(vm, acts);
        }
        if self.domains[vm].os.current(vcpu).is_some() {
            self.begin_exec(vm, vcpu);
        } else {
            // Nothing to run anywhere: the guest idle loop blocks.
            let acts = self.hv.sched_op(v, SchedOp::Block, self.now);
            self.apply_hv_actions(acts);
        }
    }

    fn on_vcpu_stopped(&mut self, v: VcpuRef, state: RunState) {
        let vm = v.vm.0;
        let vcpu = v.idx;
        self.end_exec(vm, vcpu);
        self.domains[vm].tick_gen[vcpu] += 1;
        self.domains[vm].ple_gen[vcpu] += 1;
        if state == RunState::Runnable {
            self.record_lhp_lwp(vm, vcpu);
        }
    }

    /// An involuntary preemption landed on `vcpu`: classify it as LHP/LWP
    /// by inspecting what its current task holds or heads.
    fn record_lhp_lwp(&mut self, vm: usize, vcpu: usize) {
        let Some(cur) = self.domains[vm].os.current(vcpu) else {
            return;
        };
        let d = &mut self.domains[vm];
        let n_locks = d.space.n_locks();
        for i in 0..n_locks {
            let lock = d.space.lock_ref(irs_sync::LockId(i));
            if lock.holder() == Some(cur) {
                d.lhp += 1;
                return;
            }
            if lock.head_waiter() == Some(cur) {
                d.lwp += 1;
                return;
            }
        }
    }

    pub(crate) fn apply_guest_actions(&mut self, vm: usize, mut acts: Vec<GuestAction>) {
        for act in acts.drain(..) {
            let now = self.now;
            self.trace.record(now, "guest", || format!("vm{vm}: {act}"));
            match act {
                GuestAction::RunTask { vcpu, .. } => {
                    let v = VcpuRef::new(irs_xen::VmId(vm), vcpu);
                    if self.hv.vcpu_state(v) == RunState::Running {
                        self.begin_exec(vm, vcpu);
                    }
                }
                GuestAction::StopTask { vcpu, .. } => {
                    self.end_exec(vm, vcpu);
                }
                GuestAction::Hypercall { vcpu, op } => {
                    let v = VcpuRef::new(irs_xen::VmId(vm), vcpu);
                    if op == SchedOp::Block
                        && self.strategy.pull_oracle()
                        && self.try_pull_oracle(vm, vcpu)
                    {
                        continue; // pulled work instead of idling
                    }
                    let acts2 = self.hv.sched_op(v, op, self.now);
                    self.apply_hv_actions(acts2);
                }
                GuestAction::WakeVcpu { vcpu } => {
                    let v = VcpuRef::new(irs_xen::VmId(vm), vcpu);
                    let acts2 = self.hv.vcpu_wake(v, self.now);
                    self.apply_hv_actions(acts2);
                }
                GuestAction::WakeMigrator => {
                    if !self.domains[vm].migrator_armed {
                        self.domains[vm].migrator_armed = true;
                        let delay = self.domains[vm]
                            .os
                            .config()
                            .sa
                            .as_ref()
                            .map(|sa| sa.migrator_delay)
                            .unwrap_or(SimTime::from_micros(5));
                        self.queue
                            .schedule(self.now + delay, Event::MigratorRun { vm });
                    }
                }
                GuestAction::TaskMigrated { task, .. } => {
                    let penalty = self
                        .cfg
                        .cache_penalty
                        .scaled_f64(self.domains[vm].memory_intensity)
                        .as_nanos();
                    let d = &mut self.domains[vm];
                    match &mut d.task_activity[task.0] {
                        crate::domain::Activity::Computing { remaining, .. } => {
                            // Mid-segment and queued: lengthen the segment.
                            *remaining += penalty;
                        }
                        _ => d.tasks[task.0].penalty_ns += penalty,
                    }
                }
            }
        }
        self.domains[vm].os.recycle_actions(acts);
    }

    /// The §6 pull oracle: an idling vCPU yanks a stranded "running" task
    /// off a hypervisor-preempted sibling. Returns whether work was pulled.
    fn try_pull_oracle(&mut self, vm: usize, vcpu: usize) -> bool {
        let n = self.domains[vm].os.n_vcpus();
        for sib in 0..n {
            if sib == vcpu {
                continue;
            }
            let v = VcpuRef::new(irs_xen::VmId(vm), sib);
            if self.hv.vcpu_state(v) == RunState::Runnable
                && self.domains[vm].os.current(sib).is_some()
            {
                let acts = self.domains[vm].os.pull_running(vcpu, sib);
                self.apply_guest_actions(vm, acts);
                return true;
            }
        }
        false
    }

    // ==================================================================
    // timers and views
    // ==================================================================

    /// (Re)arms slice-expiry timers for pCPUs whose dispatch changed.
    ///
    /// Guarded by the machine-wide dispatch epoch: every component of a
    /// [`DispatchInfo`](irs_xen::DispatchInfo) snapshot (current vCPU,
    /// start, slice, generation) only changes together with a
    /// `dispatch_gen` bump, which also bumps the epoch — so an unchanged
    /// epoch proves the whole scan would be a no-op and most events skip
    /// it entirely.
    fn refresh_slice_timers(&mut self) {
        let epoch = self.hv.dispatch_epoch();
        if self.armed_epoch == Some(epoch) {
            return;
        }
        self.armed_epoch = Some(epoch);
        for p in 0..self.hv.n_pcpus() {
            match self.hv.dispatch_info(PcpuId(p)) {
                Some(info) => {
                    if self.armed_slice_gen[p] != Some(info.generation) {
                        self.armed_slice_gen[p] = Some(info.generation);
                        self.queue.schedule(
                            info.since + info.slice,
                            Event::SliceExpiry {
                                pcpu: p,
                                gen: info.generation,
                            },
                        );
                    }
                }
                None => self.armed_slice_gen[p] = None,
            }
        }
    }

    /// Refills the domain's `view_buf` with the guest-visible per-vCPU
    /// views (runstate + steal EWMA) for `vm`. In-place so the hot
    /// dispatch loop never allocates; callers borrow `d.view_buf` right
    /// after.
    ///
    /// The refill is skipped entirely when the cached buffer is provably
    /// identical to what the loop would rebuild: no vCPU anywhere changed
    /// runstate since the fill (the hypervisor's machine-wide
    /// `runstate_epoch` is unchanged, so every state byte is the same) and
    /// `now` is still inside every tracker's quiescent window (so each
    /// recomputed `steal_frac` would be the unchanged `ewma` the cache
    /// already holds). Trackers are only mutated here and in
    /// [`steal_fold`](Self::steal_fold), which invalidates the cache when
    /// it touches one.
    pub(crate) fn fill_views(&mut self, vm: usize) {
        let now = self.now;
        let System { hv, domains, .. } = self;
        let d = &mut domains[vm];
        let epoch = hv.runstate_epoch(irs_xen::VmId(vm));
        if d.views_epoch == epoch && now < d.views_deadline {
            return;
        }
        debug_assert_eq!(d.steal.len(), d.os.n_vcpus());
        d.view_buf.clear();
        let mut horizon = SimTime::MAX;
        for (tracker, clock) in d.steal.iter_mut().zip(hv.vm_clocks(irs_xen::VmId(vm))) {
            // Sub-ms window: `update` would return `ewma` untouched, so
            // skip the snapshot arithmetic and read only the state byte.
            let frac = if tracker.quiescent_at(now) {
                tracker.ewma
            } else {
                let info = clock.info(now);
                debug_assert_eq!(info.total(), now, "runstate clocks must account all time");
                tracker.update(&info)
            };
            horizon = horizon.min(tracker.quiescent_until());
            d.view_buf.push(VcpuView {
                state: clock.state(),
                steal_frac: frac,
            });
        }
        d.views_epoch = epoch;
        d.views_deadline = horizon;
    }

    /// The state-mutating half of [`fill_views`](Self::fill_views) alone:
    /// folds the runstate snapshot into each vCPU's steal EWMA without
    /// rebuilding `view_buf`. Used by the tickless replay, where the view
    /// consumer (`os.tick`) is provably skipped — every other `view_buf`
    /// reader refills immediately before reading, so leaving the buffer
    /// stale here is unobservable, and the EWMA float sequence (the part
    /// that must stay bit-identical) is the same either way.
    pub(crate) fn steal_fold(&mut self, vm: usize) {
        let now = self.now;
        let System { hv, domains, .. } = self;
        let d = &mut domains[vm];
        let mut touched = false;
        for (tracker, clock) in d.steal.iter_mut().zip(hv.vm_clocks(irs_xen::VmId(vm))) {
            if !tracker.quiescent_at(now) {
                let _ = tracker.update(&clock.info(now));
                touched = true;
            }
        }
        if touched {
            // The cached views hold pre-fold EWMA values now.
            d.views_deadline = SimTime::ZERO;
        }
    }

    // ==================================================================
    // results
    // ==================================================================

    fn into_result(self) -> RunResult {
        TICKLESS_SAVED.fetch_add(self.elided, Ordering::Relaxed);
        let elapsed = self.now;
        let hv = self.hv.stats().clone();
        let faults = self.faults.as_ref().map(|f| f.stats);
        let vms = self
            .domains
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                let vm_id = irs_xen::VmId(i);
                // Requests still open at run end — accepted (or started)
                // but never completed: in some task's hands or still queued
                // in a channel. Reported instead of silently dropped so a
                // latency table cannot claim a goodput its tail never paid.
                // A stamp past `elapsed` is a *future* open-loop arrival a
                // task is sleeping toward, not a truncated request.
                let truncated = d
                    .tasks
                    .iter()
                    .filter(|t| t.req_open.is_some_and(|t0| t0 <= elapsed))
                    .count()
                    + d.req_ledger
                        .iter()
                        .flat_map(|l| l.iter())
                        .filter(|e| e.is_some())
                        .count();
                VmResult {
                    name: d.name,
                    kind: d.kind,
                    measured: d.measured,
                    makespan: d.completed_at,
                    useful: SimTime::from_nanos(d.useful_ns),
                    cpu_time: self.hv.vm_cpu_time(vm_id, elapsed),
                    steal_time: self.hv.vm_steal_time(vm_id, elapsed),
                    requests: d.requests,
                    dropped_requests: d.dropped_requests,
                    requests_truncated: truncated as u64,
                    latencies_us: d.latencies_us,
                    guest: d.os.stats().clone(),
                    lhp: d.lhp,
                    lwp: d.lwp,
                }
            })
            .collect();
        RunResult {
            elapsed,
            vms,
            hv,
            events: self.events_processed,
            faults,
        }
    }
}

/// Trace-ring capacity armed for a checkpoint replay (records per ring:
/// hypervisor, each guest, embedder). Deliberately deep — the replay exists
/// to show the *whole* window of decisions, not the default ring's tail.
const REPLAY_TRACE_CAP: usize = 4096;

/// A deep checkpoint of a [`System`], produced by [`System::snapshot`].
///
/// # Determinism contract
///
/// A snapshot is a complete copy of simulation state: resuming it and
/// running to completion yields a [`RunResult`] (and
/// [`FaultStats`](crate::faults::FaultStats)) whose Debug rendering is
/// byte-for-byte identical to a from-scratch run of the same scenario and
/// config — at any `--jobs N`, tickless or not, checked or not. That holds
/// because every order-bearing counter is carried over exactly: the event
/// queue's sequence counter, slab generations and cursor; the workload and
/// fault RNG positions; per-vCPU/task generation counters; and the
/// elided-event count (so `RunResult::events` agrees).
///
/// Deliberately *not* carried: trace-ring contents (a resumed system
/// starts with empty rings of the same configuration), the sanitizer's
/// rolling state (rebuilt at the resume instant via
/// [`Checker::new`](crate::check::Checker)), and process-wide bench
/// counters (`take_tickless_events_saved` keeps counting globally).
///
/// `Snapshot` is `Send + Sync`: one warmup snapshot can be resumed
/// concurrently from many worker threads (`irs_core::runner::run_forked`),
/// each branch getting its own independent `System`.
#[derive(Debug, Clone)]
pub struct Snapshot {
    cfg: SystemConfig,
    strategy: Strategy,
    now: SimTime,
    queue: EventQueue<Event>,
    hv: Hypervisor,
    domains: Vec<Domain>,
    rng: SimRng,
    horizon: SimTime,
    armed_slice_gen: Vec<Option<u64>>,
    armed_epoch: Option<u64>,
    stopped: bool,
    events_processed: u64,
    tickless: bool,
    elided: u64,
    /// Ring configuration only — cloning a `TraceRing` drops its records.
    trace: irs_sim::trace::TraceRing,
    trace_on: bool,
    /// Whether the snapshotted system ran the invariant sanitizer.
    checking: bool,
    faults: Option<crate::faults::FaultState>,
}

impl Snapshot {
    /// Builds a live [`System`] at the snapshot's instant. Cheap enough to
    /// call once per branch: everything heavy that can be shared (workload
    /// programs) already is, via `Arc`.
    pub fn resume(&self) -> System {
        self.rebuild(None)
    }

    /// Virtual time at which the snapshot was taken.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events the snapshotted run had processed — i.e. the work a resumed
    /// branch does *not* re-execute.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Coarse, deterministic estimate of this snapshot's resident bytes,
    /// for cache budgeting ([`crate::runner::ForkCache`]).
    ///
    /// This is *not* an exact heap measurement: per-event, per-task, and
    /// per-vCPU costs are flat constants chosen to over-approximate the
    /// real structures (timer-wheel slab slots, guest CFS state, exec
    /// contexts, runstate trackers). What matters for eviction is that the
    /// estimate is deterministic and scales monotonically with state size.
    pub fn approx_bytes(&self) -> usize {
        /// Timer-wheel fixed geometry (slot vectors + occupancy bitmaps).
        const QUEUE_FIXED: usize = 32 << 10;
        /// Slab entry + head-batch + slot bookkeeping per pending event.
        const PER_EVENT: usize = 96;
        /// TaskRt plus its parallel activity/generation array slots.
        const PER_TASK: usize = 192;
        /// Exec context, cached views, steal tracker, tick stamps.
        const PER_VCPU: usize = 768;
        let mut b = std::mem::size_of::<Self>() + QUEUE_FIXED;
        b += (self.queue.len() + self.queue.tombstones()) * PER_EVENT;
        b += self.hv.approx_heap_bytes();
        for d in &self.domains {
            b += std::mem::size_of_val(d) + d.name.len();
            b += d.tasks.len() * PER_TASK;
            b += d.exec.len() * PER_VCPU;
            b += d.latencies_us.capacity() * std::mem::size_of::<f64>();
            b += d
                .req_ledger
                .iter()
                .map(|q| q.capacity() * std::mem::size_of::<Option<irs_sim::SimTime>>())
                .sum::<usize>();
        }
        b
    }

    /// `resume`, optionally with a deep trace ring + checking forced on
    /// (the sanitizer-replay path). The traced rebuild disables rolling
    /// checkpoints so a replayed violation panics directly instead of
    /// recursing into another replay.
    fn rebuild(&self, traced: Option<usize>) -> System {
        let mut cfg = self.cfg.clone();
        let mut hv = self.hv.clone();
        let mut domains = self.domains.clone();
        let mut trace = self.trace.clone();
        let mut trace_on = self.trace_on;
        let mut checking = self.checking;
        if let Some(cap) = traced {
            cfg.trace_capacity = cap;
            cfg.check = true;
            cfg.checkpoint_period = None;
            hv.enable_trace(cap);
            for (vm, d) in domains.iter_mut().enumerate() {
                d.os.enable_trace(vm, cap);
            }
            trace = irs_sim::trace::TraceRing::enabled(cap);
            trace_on = true;
            checking = true;
        }
        let mut sys = System {
            cfg,
            strategy: self.strategy,
            now: self.now,
            queue: self.queue.clone(),
            hv,
            domains,
            rng: self.rng.clone(),
            horizon: self.horizon,
            armed_slice_gen: self.armed_slice_gen.clone(),
            armed_epoch: self.armed_epoch,
            stopped: self.stopped,
            events_processed: self.events_processed,
            tickless: self.tickless,
            elided: self.elided,
            trace,
            trace_on,
            checker: None,
            faults: self.faults.clone(),
            last_checkpoint: None,
            next_checkpoint_at: self.now,
            trace_scratch: std::cell::RefCell::new(Vec::new()),
        };
        if checking {
            // Valid at any instant, not just boot: the checker's rolling
            // baseline is whatever state it is created over, and at a
            // between-events instant that equals what the original
            // checker's baseline was at the same point.
            sys.checker = Some(crate::check::Checker::new(&sys));
        }
        sys
    }
}

/// Renders a caught panic payload (the checker panics with a `String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&'static str>().copied())
        .unwrap_or("(non-string panic payload)")
}

/// Is the queue-head event provably a no-op — one whose handler would
/// return without mutating hypervisor, guest, domain, queue, trace, fault,
/// or stats state?
///
/// Each arm replicates its handler's early-out guard exactly; anything not
/// listed (or listed but failing its guard) takes the full dispatch path.
/// Two classes exist:
///
/// * **Quiescent periodic passes** — `HvTick`/`HvAccounting` over an idle
///   machine, proven by [`Hypervisor::tick_is_noop`] /
///   [`Hypervisor::accounting_is_noop`]. These re-arm in
///   [`System::fast_forward`] exactly as their handlers would (the
///   `HvTick` fault draws are replayed there too).
/// * **Stale one-shot timers** — a generation/activity guard shows the
///   handler would discard the event. Conspicuously absent:
///   `SaAckDeliver`, whose *stale* path is the one with side effects
///   (`stale_acks_discarded` + a trace record), and `SaProcess` on a
///   live-but-wedged round, which re-schedules itself.
fn elidable(hv: &Hypervisor, domains: &[Domain], t: SimTime, ev: &Event) -> bool {
    match *ev {
        Event::HvTick => hv.tick_is_noop(t),
        Event::HvAccounting => hv.accounting_is_noop(),
        Event::SliceExpiry { pcpu, gen } => hv.dispatch_generation(PcpuId(pcpu)) != gen,
        Event::GuestTick { vm, vcpu, gen } => {
            // Stale (the vCPU stopped running since it was armed), or live
            // but *quiet*: the kernel-side tick body would emit no actions
            // and mutate nothing beyond its tick count. The live case is
            // not a pure discard — `fast_forward` replays the tick's
            // accounting (runtime charge, steal EWMA, tick count, re-arm)
            // in closed form. This is the arm that pays: guest ticks
            // dominate the event mix on idle-heavy scenarios.
            domains[vm].tick_gen[vcpu] != gen || domains[vm].os.tick_is_quiet(vcpu)
        }
        Event::TaskStep { vm, task, gen } => domains[vm].task_step_gen[task] != gen,
        Event::SaProcess { vm, vcpu, gen } | Event::SaTimeout { vm, vcpu, gen } => {
            let v = VcpuRef::new(irs_xen::VmId(vm), vcpu);
            !hv.is_sa_pending(v) || hv.sa_generation(v) != gen
        }
        Event::PleWindow { vm, vcpu, gen } => domains[vm].ple_gen[vcpu] != gen,
        Event::WakeTimer { vm, task } => {
            domains[vm].task_activity[task] != crate::domain::Activity::Sleeping
        }
        Event::GraceExpire { vm, task, gen } => {
            domains[vm].task_wait_gen[task] != gen
                || domains[vm].task_activity[task]
                    != (crate::domain::Activity::GraceSpin { granted: false })
        }
        Event::PvSpinExpire { vm, task, gen } => {
            domains[vm].task_wait_gen[task] != gen
                || domains[vm].task_activity[task]
                    != (crate::domain::Activity::SpinWait { granted: false })
        }
        _ => false,
    }
}
