//! The scheduling strategies compared throughout the evaluation.

use irs_guest::GuestConfig;
use irs_sim::SimTime;
use irs_xen::{PleConfig, RelaxedCoConfig, SaConfig, XenConfig};
use std::fmt;

/// A hypervisor/guest scheduling strategy (§5.1 "Scheduling strategies").
// Not a manual non-exhaustive guard: the hidden variant is a real,
// constructible strategy (test-only fault injection).
#[allow(clippy::manual_non_exhaustive)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Unmodified Xen credit scheduler + unmodified Linux guest: the
    /// baseline every figure normalizes against.
    Vanilla,
    /// Pause-loop exiting: the hypervisor yields a vCPU caught spinning
    /// beyond the PLE window (hardware-assisted spin mitigation).
    Ple,
    /// The paper's reimplementation of VMware's relaxed co-scheduling:
    /// per-period skew monitoring, park the leader, boost the laggard
    /// (idle counts as progress — deliberately).
    RelaxedCo,
    /// Interference-resilient scheduling: scheduler activations from the
    /// hypervisor plus guest-side context switcher and migrator.
    Irs,
    /// Strict (gang) co-scheduling — the VMware ESX 2.x scheme §2.1
    /// discusses: whole VMs rotate on gang slices. Immune to LHP/LWP by
    /// construction, but pays CPU fragmentation and slot-wait latency.
    StrictCo,
    /// The paper's §6 "Limitation" thought experiment: ideal *pull-based*
    /// migration, where an idle vCPU pulls the stranded "running" task off
    /// a preempted sibling directly. Not realizable in a real guest without
    /// new kernel machinery; implemented here as the upper-bound oracle.
    IrsPull,
    /// Test-only fault injection: vanilla scheduling with
    /// [`XenConfig::fault_double_run`] set, so the first contended wake-up
    /// double-books a pCPU. Exists solely to prove the invariant sanitizer
    /// ([`crate::check`]) trips; never part of any figure.
    #[doc(hidden)]
    FaultDoubleRun,
}

impl Strategy {
    /// Every strategy, in the order the paper's figures list them.
    pub const ALL: [Strategy; 4] = [
        Strategy::Vanilla,
        Strategy::Ple,
        Strategy::RelaxedCo,
        Strategy::Irs,
    ];

    /// Hypervisor configuration implementing this strategy.
    ///
    /// All strategies run with a small slice perturbation
    /// ([`XenConfig::slice_jitter`]) so co-located deterministic workloads
    /// do not phase-lock, mirroring real-host timer noise.
    pub fn xen_config(self) -> XenConfig {
        let base = XenConfig {
            slice_jitter: SimTime::from_millis(2),
            ..XenConfig::default()
        };
        match self {
            Strategy::Vanilla => base,
            Strategy::Ple => XenConfig {
                ple: Some(PleConfig::default()),
                ..base
            },
            Strategy::RelaxedCo => XenConfig {
                relaxed_co: Some(RelaxedCoConfig::default()),
                ..base
            },
            Strategy::StrictCo => XenConfig {
                strict_co: true,
                // Gang rotation replaces per-pCPU slice scheduling; the
                // perturbation would only desynchronize the rotation.
                slice_jitter: SimTime::ZERO,
                ..base
            },
            Strategy::Irs | Strategy::IrsPull => XenConfig {
                sa: Some(SaConfig::default()),
                ..base
            },
            Strategy::FaultDoubleRun => XenConfig {
                fault_double_run: true,
                ..base
            },
        }
    }

    /// Guest configuration for a VM that participates in the strategy
    /// (the paper's foreground VM; background VMs always run vanilla
    /// kernels — see §5.4 footnote 1).
    pub fn guest_config(self) -> GuestConfig {
        match self {
            Strategy::Irs | Strategy::IrsPull => GuestConfig::with_irs(),
            _ => GuestConfig::default(),
        }
    }

    /// Whether foreground VMs register the SA upcall handler.
    pub fn sa_capable_guest(self) -> bool {
        matches!(self, Strategy::Irs | Strategy::IrsPull)
    }

    /// The continuous-spin window after which a PLE VM-exit fires, if this
    /// strategy reacts to spinning.
    pub fn ple_window(self) -> Option<SimTime> {
        match self {
            Strategy::Ple => Some(PleConfig::default().window),
            _ => None,
        }
    }

    /// Whether the idle-pull oracle (§6) is active.
    pub fn pull_oracle(self) -> bool {
        self == Strategy::IrsPull
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::Vanilla => "Vanilla",
            Strategy::Ple => "PLE",
            Strategy::RelaxedCo => "Relaxed-Co",
            Strategy::StrictCo => "Strict-Co",
            Strategy::Irs => "IRS",
            Strategy::IrsPull => "IRS-pull",
            Strategy::FaultDoubleRun => "Fault-DoubleRun",
        };
        f.pad(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_match_strategies() {
        assert!(Strategy::Vanilla.xen_config().sa.is_none());
        assert!(Strategy::Ple.xen_config().ple.is_some());
        assert!(Strategy::RelaxedCo.xen_config().relaxed_co.is_some());
        assert!(Strategy::Irs.xen_config().sa.is_some());
        assert!(Strategy::IrsPull.xen_config().sa.is_some());
    }

    #[test]
    fn only_irs_strategies_enable_the_guest_side() {
        assert!(!Strategy::Vanilla.sa_capable_guest());
        assert!(!Strategy::Ple.sa_capable_guest());
        assert!(Strategy::Irs.sa_capable_guest());
        assert!(Strategy::Irs.guest_config().sa.is_some());
        assert!(Strategy::Ple.guest_config().sa.is_none());
    }

    #[test]
    fn ple_window_only_for_ple() {
        assert!(Strategy::Ple.ple_window().is_some());
        assert!(Strategy::Irs.ple_window().is_none());
        assert!(Strategy::Vanilla.ple_window().is_none());
    }

    #[test]
    fn display_names() {
        assert_eq!(Strategy::RelaxedCo.to_string(), "Relaxed-Co");
        assert_eq!(Strategy::Irs.to_string(), "IRS");
    }
}
