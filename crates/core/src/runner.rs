//! Multi-seed experiment helpers.
//!
//! The paper reports the average of (at least) five runs per data point;
//! these helpers run a scenario constructor across seeds and aggregate.

use crate::parallel;
use crate::results::RunResult;
use crate::scenario::Scenario;
use crate::system::{Snapshot, System, SystemConfig};
use irs_metrics::Summary;
use irs_sim::SimTime;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default repetition count, matching the paper's five-run averages.
pub const DEFAULT_SEEDS: u64 = 5;

/// A borrowed scenario constructor, the unit of work in a
/// [`grid_mean_makespans`] batch.
pub type ScenarioFn<'a> = &'a (dyn Fn(u64) -> Scenario + Sync);

/// Runs `make(seed)` for `seeds` consecutive seeds starting at
/// `base_seed`, returning every result in seed order.
///
/// Runs fan out across the process-default worker count (see
/// [`parallel::default_jobs`]); results are identical to a sequential run.
pub fn run_seeds<F>(base_seed: u64, seeds: u64, make: F) -> Vec<RunResult>
where
    F: Fn(u64) -> Scenario + Sync,
{
    run_seeds_jobs(base_seed, seeds, 0, make)
}

/// [`run_seeds`] with an explicit worker count (`0` = process default).
pub fn run_seeds_jobs<F>(base_seed: u64, seeds: u64, jobs: usize, make: F) -> Vec<RunResult>
where
    F: Fn(u64) -> Scenario + Sync,
{
    parallel::ordered_map(jobs, seeds as usize, |i| make(base_seed + i as u64).run())
}

/// Mean makespan (ms) of the measured VM across seeded repetitions.
///
/// # Panics
///
/// Panics if any repetition failed to complete within the horizon.
pub fn mean_makespan_ms<F>(base_seed: u64, seeds: u64, make: F) -> f64
where
    F: Fn(u64) -> Scenario + Sync,
{
    mean_makespan_ms_jobs(base_seed, seeds, 0, make)
}

/// [`mean_makespan_ms`] with an explicit worker count (`0` = default).
pub fn mean_makespan_ms_jobs<F>(base_seed: u64, seeds: u64, jobs: usize, make: F) -> f64
where
    F: Fn(u64) -> Scenario + Sync,
{
    let samples: Vec<f64> = run_seeds_jobs(base_seed, seeds, jobs, make)
        .iter()
        .map(|r| r.measured().makespan_ms())
        .collect();
    Summary::of(&samples).mean
}

/// Mean makespans for a whole batch of scenario constructors in one
/// fan-out: `makes.len() × seeds` independent runs share the worker pool,
/// so narrow panels still saturate wide hosts.
///
/// Entry `k` of the result is the seed-averaged makespan of `makes[k]`
/// (job order is constructor-major, seed-minor — canonical and therefore
/// deterministic).
pub fn grid_mean_makespans(
    base_seed: u64,
    seeds: u64,
    jobs: usize,
    makes: &[ScenarioFn<'_>],
) -> Vec<f64> {
    let per = seeds as usize;
    let samples = parallel::ordered_map(jobs, makes.len() * per, |i| {
        let make = makes[i / per];
        make(base_seed + (i % per) as u64).run().measured().makespan_ms()
    });
    samples
        .chunks(per.max(1))
        .map(|chunk| Summary::of(chunk).mean)
        .collect()
}

/// One warmup, many branches: builds the scenario, runs it to `warmup`
/// virtual time once, snapshots, and completes `branches` forked copies
/// through the worker pool (`jobs` as in [`run_seeds_jobs`]; `0` = process
/// default).
///
/// Every branch is bit-identical to a from-scratch run of the same
/// `(scenario, cfg)` pair — the [`crate::Snapshot`] determinism contract —
/// so this is the primitive for campaigns whose grid repeats a cell: pay
/// the shared warmup prefix once instead of once per repeat. Returns the
/// per-branch results plus the number of events the sharing avoided
/// re-executing (`warmup events × (branches − 1)`).
///
/// A `warmup` past the run's completion is harmless: the snapshot is then
/// of the finished state and branches return immediately (still
/// bit-identical — [`System::run`] re-checks completion before stepping).
pub fn run_forked(
    scenario: Scenario,
    cfg: SystemConfig,
    warmup: SimTime,
    branches: usize,
    jobs: usize,
) -> (Vec<RunResult>, u64) {
    let mut sys = System::with_config(scenario, cfg);
    sys.run_until(warmup);
    let snap = sys.snapshot();
    let saved = snap
        .events_processed()
        .saturating_mul(branches.saturating_sub(1) as u64);
    let results = parallel::ordered_map(jobs, branches, |_| snap.resume().run());
    (results, saved)
}

/// [`run_forked`] generalized to a whole grid of scenario groups: group
/// `g` (of `group_sizes.len()`) is warmed up once from `make(g)` and
/// branched into `group_sizes[g]` forked completions.
///
/// Both the warmups and the branches fan out through the worker pool in
/// one canonical order each (group-major), so results are bit-identical
/// for every `jobs` value. Returns the per-group branch results plus the
/// total number of events the sharing avoided re-executing (the sum of
/// each group's `warmup events × (size − 1)`).
///
/// This is the fleet campaign's primitive: hosts with identical tenant
/// composition are identical simulations, so one warmup serves them all.
pub fn run_forked_grid<F>(
    jobs: usize,
    warmup: SimTime,
    cfg: &SystemConfig,
    group_sizes: &[usize],
    make: F,
) -> (Vec<Vec<RunResult>>, u64)
where
    F: Fn(usize) -> Scenario + Sync,
{
    let snaps = parallel::ordered_map(jobs, group_sizes.len(), |g| {
        let mut sys = System::with_config(make(g), cfg.clone());
        sys.run_until(warmup);
        sys.snapshot()
    });
    let saved = snaps
        .iter()
        .zip(group_sizes)
        .map(|(s, &n)| {
            s.events_processed()
                .saturating_mul(n.saturating_sub(1) as u64)
        })
        .sum();
    // Flatten to one branch fan-out: slot i belongs to group `owner[i]`.
    let owner: Vec<usize> = group_sizes
        .iter()
        .enumerate()
        .flat_map(|(g, &n)| std::iter::repeat_n(g, n))
        .collect();
    let flat = parallel::ordered_map(jobs, owner.len(), |i| snaps[owner[i]].resume().run());
    let mut grouped: Vec<Vec<RunResult>> = group_sizes.iter().map(|&n| Vec::with_capacity(n)).collect();
    for (i, r) in flat.into_iter().enumerate() {
        grouped[owner[i]].push(r);
    }
    (grouped, saved)
}

/// Counters of a [`ForkCache`]'s behaviour, cheap to copy out for
/// reporting. Hits and misses count *groups* (one lookup per group per
/// [`run_forked_grid_cached`] call), not member branches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForkCacheStats {
    /// Groups served entirely from a cached [`RunResult`] (no simulation).
    pub result_hits: u64,
    /// Groups that reused a cached warmup [`Snapshot`] but had to run one
    /// completion (result was missing — e.g. evicted separately).
    pub snapshot_hits: u64,
    /// Groups with no usable entry: warmup (when enabled) and one
    /// completion both ran.
    pub misses: u64,
    /// Entries dropped to stay under the byte budget.
    pub evictions: u64,
    /// Estimated bytes currently resident (see [`Snapshot::approx_bytes`]
    /// and [`RunResult::approx_bytes`] for what "estimated" means).
    pub resident_bytes: usize,
}

impl ForkCacheStats {
    /// Fraction of lookups served from the cache (result or snapshot);
    /// `NaN` before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.result_hits + self.snapshot_hits;
        hits as f64 / (hits + self.misses) as f64
    }
}

/// One cached warmup/result pair.
#[derive(Debug, Clone)]
struct CacheEntry {
    /// Warmup checkpoint; `None` when the owning call ran from scratch
    /// (no shared warmup requested).
    snapshot: Option<Snapshot>,
    /// Completed-run result; branches of one snapshot are bit-identical,
    /// so a single result stands for every member of the group.
    result: Option<Arc<RunResult>>,
    /// Events the warmup prefix had processed (0 for scratch runs).
    warmup_events: u64,
    /// Estimated resident bytes of this entry.
    bytes: usize,
    /// LRU stamp (monotonic lookup counter).
    last_used: u64,
}

/// Cross-call snapshot/result cache for [`run_forked_grid_cached`]: the
/// cross-epoch carry-over store behind the fleet campaign's incremental
/// mode.
///
/// Keys are caller-chosen `u64`s that must uniquely identify the
/// `(scenario, config)` pair (the fleet uses its composition seed, which
/// *is* the scenario seed). Entries hold the warmup [`Snapshot`] and the
/// completed-run [`RunResult`] for that key; because the snapshot/fork
/// determinism contract makes every branch bit-identical, one cached
/// result serves any number of future members — reuse cannot change any
/// table derived from the results.
///
/// The cache is memory-bounded: entry sizes are *estimated* (coarse but
/// deterministic — see [`Snapshot::approx_bytes`]) and least-recently-used
/// entries are evicted once the estimate exceeds the budget. All
/// bookkeeping happens on the driver thread in deterministic order, so
/// hit/miss/eviction counts are identical for every `--jobs N`.
#[derive(Debug)]
pub struct ForkCache {
    max_bytes: usize,
    tick: u64,
    entries: BTreeMap<u64, CacheEntry>,
    stats: ForkCacheStats,
}

impl ForkCache {
    /// Creates a cache holding at most (an estimated) `max_bytes`. A budget
    /// smaller than any single entry still works — every insertion is
    /// evicted right back out, degrading to recompute-always.
    pub fn new(max_bytes: usize) -> Self {
        ForkCache {
            max_bytes,
            tick: 0,
            entries: BTreeMap::new(),
            stats: ForkCacheStats::default(),
        }
    }

    /// Current counters (resident bytes included).
    pub fn stats(&self) -> ForkCacheStats {
        self.stats
    }

    /// The configured byte budget.
    pub fn max_bytes(&self) -> usize {
        self.max_bytes
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Evicts least-recently-used entries until the byte estimate fits the
    /// budget.
    fn evict_to_budget(&mut self) {
        while self.stats.resident_bytes > self.max_bytes && !self.entries.is_empty() {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("non-empty cache has an LRU entry");
            let e = self.entries.remove(&lru).expect("key just observed");
            self.stats.resident_bytes -= e.bytes;
            self.stats.evictions += 1;
        }
    }
}

/// Outcome of one [`run_forked_grid_cached`] call.
///
/// `results[g]` is the single result shared by every member of group `g`
/// (branches are bit-identical by the snapshot determinism contract, so
/// handing the same `Arc` to each member is observationally equal to
/// running them all). The counters decompose the *logical* event volume
/// (`Σ size[g] × results[g].events`) so that
///
/// ```text
/// executed = logical − fork_warmup_saved − events_elided
/// ```
///
/// always equals the events this call actually simulated.
#[derive(Debug, Clone)]
pub struct CachedGrid {
    /// One shared result per group, in input order.
    pub results: Vec<Arc<RunResult>>,
    /// Warmup events not re-executed thanks to snapshot sharing/caching:
    /// `warmup_events × (members − warmups run)` summed over groups.
    pub fork_warmup_saved: u64,
    /// Post-warmup events not re-executed thanks to result memoization:
    /// `(total − warmup) events × (members − completions run)` summed.
    pub events_elided: u64,
    /// Member runs served by a memoized result instead of a simulation
    /// (`members − completions run`, summed over groups).
    pub runs_elided: u64,
}

/// [`run_forked_grid`] with a cross-call [`ForkCache`]: group `g` is
/// identified by `groups[g].0` and has `groups[g].1` members; `make(g)`
/// builds its scenario on a miss.
///
/// Per group, at most one warmup and one completion are ever executed —
/// within a call (members share their group's single result) *and across
/// calls* (a later call with the same key reuses the cached result, or at
/// least the cached warmup snapshot). `warmup = None` disables the
/// snapshot layer: misses run from scratch and only results are cached.
///
/// Keys must be unique within one call, and — like [`run_forked`] — the
/// shared-result shortcut is sound because branches of one snapshot are
/// bit-identical to from-scratch runs: reuse is invisible in the results.
pub fn run_forked_grid_cached<F>(
    jobs: usize,
    warmup: Option<SimTime>,
    cfg: &SystemConfig,
    groups: &[(u64, usize)],
    make: F,
    cache: &mut ForkCache,
) -> CachedGrid
where
    F: Fn(usize) -> Scenario + Sync,
{
    #[derive(Clone, Copy, PartialEq)]
    enum Plan {
        ResultHit,
        SnapshotHit,
        Miss,
    }
    debug_assert!(
        groups.iter().map(|&(k, _)| k).collect::<std::collections::BTreeSet<_>>().len()
            == groups.len(),
        "cache keys must be unique within one call"
    );

    // Classify each group against the cache (sequential: deterministic
    // hit/miss order at any worker count).
    let mut plan = Vec::with_capacity(groups.len());
    for &(key, _) in groups {
        cache.tick += 1;
        let p = match cache.entries.get_mut(&key) {
            Some(e) if e.result.is_some() => {
                e.last_used = cache.tick;
                cache.stats.result_hits += 1;
                Plan::ResultHit
            }
            Some(e) if warmup.is_some() && e.snapshot.is_some() => {
                e.last_used = cache.tick;
                cache.stats.snapshot_hits += 1;
                Plan::SnapshotHit
            }
            _ => {
                cache.stats.misses += 1;
                Plan::Miss
            }
        };
        plan.push(p);
    }

    // Warmups for the misses (one canonical fan-out, group order).
    let miss: Vec<usize> = (0..groups.len()).filter(|&g| plan[g] == Plan::Miss).collect();
    let fresh_snaps: Vec<Snapshot> = match warmup {
        Some(w) => parallel::ordered_map(jobs, miss.len(), |i| {
            let mut sys = System::with_config(make(miss[i]), cfg.clone());
            sys.run_until(w);
            sys.snapshot()
        }),
        None => Vec::new(),
    };

    // One completion per group that lacks a memoized result.
    enum Job<'a> {
        Resume(&'a Snapshot),
        Scratch(usize),
    }
    let need_run: Vec<usize> = (0..groups.len()).filter(|&g| plan[g] != Plan::ResultHit).collect();
    let run_jobs: Vec<Job<'_>> = need_run
        .iter()
        .map(|&g| match plan[g] {
            Plan::SnapshotHit => {
                let e = &cache.entries[&groups[g].0];
                Job::Resume(e.snapshot.as_ref().expect("classified as snapshot hit"))
            }
            Plan::Miss if warmup.is_some() => {
                let i = miss.binary_search(&g).expect("miss listed in order");
                Job::Resume(&fresh_snaps[i])
            }
            _ => Job::Scratch(g),
        })
        .collect();
    let mut run_results: std::collections::VecDeque<RunResult> =
        parallel::ordered_map(jobs, run_jobs.len(), |i| match &run_jobs[i] {
            Job::Resume(s) => s.resume().run(),
            Job::Scratch(g) => System::with_config(make(*g), cfg.clone()).run(),
        })
        .into();
    drop(run_jobs);

    // Assemble results, account savings, and feed the cache.
    let mut out = CachedGrid {
        results: Vec::with_capacity(groups.len()),
        fork_warmup_saved: 0,
        events_elided: 0,
        runs_elided: 0,
    };
    let mut fresh_snaps: std::collections::VecDeque<Snapshot> = fresh_snaps.into();
    for (g, &(key, size)) in groups.iter().enumerate() {
        let n = size as u64;
        match plan[g] {
            Plan::ResultHit => {
                let e = &cache.entries[&key];
                let r = e.result.clone().expect("classified as result hit");
                out.fork_warmup_saved += n * e.warmup_events;
                out.events_elided += n * (r.events - e.warmup_events);
                out.runs_elided += n;
                out.results.push(r);
            }
            Plan::SnapshotHit => {
                let r = Arc::new(run_results.pop_front().expect("one run per non-hit group"));
                let e = cache.entries.get_mut(&key).expect("entry just used");
                out.fork_warmup_saved += n * e.warmup_events;
                out.events_elided += n.saturating_sub(1) * (r.events - e.warmup_events);
                out.runs_elided += n.saturating_sub(1);
                e.bytes += r.approx_bytes();
                cache.stats.resident_bytes += r.approx_bytes();
                e.result = Some(r.clone());
                out.results.push(r);
            }
            Plan::Miss => {
                let r = Arc::new(run_results.pop_front().expect("one run per non-hit group"));
                let snapshot = warmup.map(|_| fresh_snaps.pop_front().expect("one per miss"));
                let warmup_events = snapshot.as_ref().map_or(0, |s| s.events_processed());
                out.fork_warmup_saved += n.saturating_sub(1) * warmup_events;
                out.events_elided += n.saturating_sub(1) * (r.events - warmup_events);
                out.runs_elided += n.saturating_sub(1);
                let bytes =
                    snapshot.as_ref().map_or(0, |s| s.approx_bytes()) + r.approx_bytes();
                // A stale entry may exist (e.g. snapshot-only under a
                // scratch call): replace it without leaking its bytes.
                if let Some(old) = cache.entries.remove(&key) {
                    cache.stats.resident_bytes -= old.bytes;
                }
                cache.stats.resident_bytes += bytes;
                cache.entries.insert(
                    key,
                    CacheEntry {
                        snapshot,
                        result: Some(r.clone()),
                        warmup_events,
                        bytes,
                        last_used: cache.tick,
                    },
                );
                out.results.push(r);
            }
        }
    }
    cache.evict_to_budget();
    out
}

/// Mean improvement (%) of a variant over a baseline, both averaged over
/// the same seeds — the y-axis of Figs 5, 6, 10, 11, 12, 13.
pub fn mean_improvement_pct<B, V>(base_seed: u64, seeds: u64, baseline: B, variant: V) -> f64
where
    B: Fn(u64) -> Scenario + Sync,
    V: Fn(u64) -> Scenario + Sync,
{
    mean_improvement_pct_jobs(base_seed, seeds, 0, baseline, variant)
}

/// [`mean_improvement_pct`] with an explicit worker count (`0` = default).
/// Baseline and variant runs share one fan-out (2 × `seeds` jobs).
pub fn mean_improvement_pct_jobs<B, V>(
    base_seed: u64,
    seeds: u64,
    jobs: usize,
    baseline: B,
    variant: V,
) -> f64
where
    B: Fn(u64) -> Scenario + Sync,
    V: Fn(u64) -> Scenario + Sync,
{
    let means = grid_mean_makespans(base_seed, seeds, jobs, &[&baseline, &variant]);
    irs_metrics::improvement_pct(means[0], means[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    fn quick(seed: u64) -> Scenario {
        // Tiny controlled run: EP is the cheapest preset.
        Scenario::fig5_style("EP", 1, Strategy::Vanilla, seed)
    }

    #[test]
    fn run_seeds_produces_one_result_per_seed() {
        let results = run_seeds(1, 2, quick);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.measured().makespan.is_some());
        }
    }

    #[test]
    fn seeded_runs_are_deterministic() {
        let a = quick(7).run();
        let b = quick(7).run();
        assert_eq!(a.measured().makespan, b.measured().makespan);
        assert_eq!(a.hv.preemptions, b.hv.preemptions);
    }

    #[test]
    fn different_seeds_differ_slightly() {
        let a = quick(1).run();
        let b = quick(2).run();
        // Jittered compute makes exact ties essentially impossible.
        assert_ne!(a.measured().makespan, b.measured().makespan);
    }

    #[test]
    fn forked_branches_match_scratch() {
        let scratch = quick(3).run();
        let (branches, saved) = run_forked(
            quick(3),
            SystemConfig::default(),
            SimTime::from_millis(50),
            3,
            2,
        );
        assert_eq!(branches.len(), 3);
        assert!(saved > 0, "a 50 ms warmup must have processed events");
        for b in &branches {
            assert_eq!(format!("{b:?}"), format!("{scratch:?}"));
        }
    }

    #[test]
    fn forked_grid_matches_scratch_per_group() {
        let make = |g: usize| {
            // Two distinct groups: vanilla and IRS of the same workload.
            let strat = if g == 0 { Strategy::Vanilla } else { Strategy::Irs };
            Scenario::fig5_style("EP", 1, strat, 11)
        };
        let (grouped, saved) = run_forked_grid(
            2,
            SimTime::from_millis(40),
            &SystemConfig::default(),
            &[2, 3],
            make,
        );
        assert_eq!(grouped[0].len(), 2);
        assert_eq!(grouped[1].len(), 3);
        assert!(saved > 0, "two groups of >1 branches must share warmups");
        for (g, branches) in grouped.iter().enumerate() {
            let scratch = format!("{:?}", make(g).run());
            for b in branches {
                assert_eq!(format!("{b:?}"), scratch);
            }
        }
    }

    #[test]
    fn grid_matches_per_constructor_means() {
        let irs = |seed| Scenario::fig5_style("EP", 1, Strategy::Irs, seed);
        let grid = grid_mean_makespans(1, 2, 2, &[&quick, &irs]);
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[0], mean_makespan_ms_jobs(1, 2, 1, quick));
        assert_eq!(grid[1], mean_makespan_ms_jobs(1, 2, 1, irs));
    }

    /// Two groups keyed by seed; `make` mirrors the fleet's
    /// composition-to-scenario mapping (key ↔ scenario bijection).
    fn cached_groups() -> Vec<(u64, usize)> {
        vec![(3, 2), (11, 3)]
    }

    fn cached_make(i: usize, groups: &[(u64, usize)]) -> Scenario {
        quick(groups[i].0)
    }

    #[test]
    fn cached_grid_matches_scratch_and_accounts_exactly() {
        let groups = cached_groups();
        let mut cache = ForkCache::new(1 << 30);
        let out = run_forked_grid_cached(
            2,
            Some(SimTime::from_millis(40)),
            &SystemConfig::default(),
            &groups,
            |i| cached_make(i, &groups),
            &mut cache,
        );
        assert_eq!(out.results.len(), 2);
        for (g, &(key, _)) in groups.iter().enumerate() {
            let scratch = format!("{:?}", quick(key).run());
            assert_eq!(format!("{:?}", *out.results[g]), scratch);
        }
        // First call: every group misses, runs one warmup + one
        // completion, and shares the result among its members.
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.result_hits + stats.snapshot_hits, 0);
        assert_eq!(out.runs_elided, (2 - 1) + (3 - 1));
        assert!(out.fork_warmup_saved > 0);
        assert!(out.events_elided > 0);
        assert!(stats.resident_bytes > 0);
        let logical: u64 = groups
            .iter()
            .zip(&out.results)
            .map(|(&(_, n), r)| n as u64 * r.events)
            .sum();
        // What actually ran: each group's full run once (warmup included).
        let executed: u64 = out.results.iter().map(|r| r.events).sum();
        assert_eq!(executed, logical - out.fork_warmup_saved - out.events_elided);
    }

    #[test]
    fn cached_grid_second_call_is_all_result_hits() {
        let groups = cached_groups();
        let mut cache = ForkCache::new(1 << 30);
        let warm = Some(SimTime::from_millis(40));
        let cfg = SystemConfig::default();
        let first =
            run_forked_grid_cached(1, warm, &cfg, &groups, |i| cached_make(i, &groups), &mut cache);
        let second =
            run_forked_grid_cached(1, warm, &cfg, &groups, |i| cached_make(i, &groups), &mut cache);
        let stats = cache.stats();
        assert_eq!(stats.result_hits, 2, "second call must be memoized");
        assert_eq!(stats.misses, 2, "only the first call missed");
        // Every member run is elided, and the whole logical volume is
        // split between warmup savings and elision.
        assert_eq!(second.runs_elided, 2 + 3);
        let logical: u64 = groups
            .iter()
            .zip(&second.results)
            .map(|(&(_, n), r)| n as u64 * r.events)
            .sum();
        assert_eq!(second.fork_warmup_saved + second.events_elided, logical);
        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "hit must be bit-identical");
        }
    }

    #[test]
    fn cached_grid_without_warmup_runs_scratch_and_still_memoizes() {
        let groups = cached_groups();
        let mut cache = ForkCache::new(1 << 30);
        let cfg = SystemConfig::default();
        let first =
            run_forked_grid_cached(1, None, &cfg, &groups, |i| cached_make(i, &groups), &mut cache);
        assert_eq!(first.fork_warmup_saved, 0, "no warmup layer, no sharing");
        assert!(first.events_elided > 0, "multi-member groups still share");
        let second =
            run_forked_grid_cached(1, None, &cfg, &groups, |i| cached_make(i, &groups), &mut cache);
        assert_eq!(cache.stats().result_hits, 2);
        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn cache_evicts_lru_under_byte_pressure() {
        let groups = cached_groups();
        let mut cache = ForkCache::new(1);
        let cfg = SystemConfig::default();
        let warm = Some(SimTime::from_millis(40));
        run_forked_grid_cached(1, warm, &cfg, &groups, |i| cached_make(i, &groups), &mut cache);
        let stats = cache.stats();
        assert!(stats.evictions >= 2, "a 1-byte budget evicts everything");
        assert_eq!(stats.resident_bytes, 0);
        assert!(cache.is_empty());
        // Degrades to recompute-always, never to wrong results.
        let again = run_forked_grid_cached(
            1,
            warm,
            &cfg,
            &groups,
            |i| cached_make(i, &groups),
            &mut cache,
        );
        assert_eq!(cache.stats().result_hits, 0);
        for (g, &(key, _)) in groups.iter().enumerate() {
            assert_eq!(
                format!("{:?}", *again.results[g]),
                format!("{:?}", quick(key).run())
            );
        }
    }
}
