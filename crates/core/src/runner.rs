//! Multi-seed experiment helpers.
//!
//! The paper reports the average of (at least) five runs per data point;
//! these helpers run a scenario constructor across seeds and aggregate.

use crate::results::RunResult;
use crate::scenario::Scenario;
use irs_metrics::Summary;

/// Default repetition count, matching the paper's five-run averages.
pub const DEFAULT_SEEDS: u64 = 5;

/// Runs `make(seed)` for `seeds` consecutive seeds starting at
/// `base_seed`, returning every result.
pub fn run_seeds<F>(base_seed: u64, seeds: u64, make: F) -> Vec<RunResult>
where
    F: Fn(u64) -> Scenario,
{
    (0..seeds).map(|i| make(base_seed + i).run()).collect()
}

/// Mean makespan (ms) of the measured VM across seeded repetitions.
///
/// # Panics
///
/// Panics if any repetition failed to complete within the horizon.
pub fn mean_makespan_ms<F>(base_seed: u64, seeds: u64, make: F) -> f64
where
    F: Fn(u64) -> Scenario,
{
    let samples: Vec<f64> = run_seeds(base_seed, seeds, make)
        .iter()
        .map(|r| r.measured().makespan_ms())
        .collect();
    Summary::of(&samples).mean
}

/// Mean improvement (%) of a variant over a baseline, both averaged over
/// the same seeds — the y-axis of Figs 5, 6, 10, 11, 12, 13.
pub fn mean_improvement_pct<B, V>(base_seed: u64, seeds: u64, baseline: B, variant: V) -> f64
where
    B: Fn(u64) -> Scenario,
    V: Fn(u64) -> Scenario,
{
    let base = mean_makespan_ms(base_seed, seeds, baseline);
    let var = mean_makespan_ms(base_seed, seeds, variant);
    irs_metrics::improvement_pct(base, var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    fn quick(seed: u64) -> Scenario {
        // Tiny controlled run: EP is the cheapest preset.
        Scenario::fig5_style("EP", 1, Strategy::Vanilla, seed)
    }

    #[test]
    fn run_seeds_produces_one_result_per_seed() {
        let results = run_seeds(1, 2, quick);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.measured().makespan.is_some());
        }
    }

    #[test]
    fn seeded_runs_are_deterministic() {
        let a = quick(7).run();
        let b = quick(7).run();
        assert_eq!(a.measured().makespan, b.measured().makespan);
        assert_eq!(a.hv.preemptions, b.hv.preemptions);
    }

    #[test]
    fn different_seeds_differ_slightly() {
        let a = quick(1).run();
        let b = quick(2).run();
        // Jittered compute makes exact ties essentially impossible.
        assert_ne!(a.measured().makespan, b.measured().makespan);
    }
}
