//! Multi-seed experiment helpers.
//!
//! The paper reports the average of (at least) five runs per data point;
//! these helpers run a scenario constructor across seeds and aggregate.

use crate::parallel;
use crate::results::RunResult;
use crate::scenario::Scenario;
use crate::system::{System, SystemConfig};
use irs_metrics::Summary;
use irs_sim::SimTime;

/// Default repetition count, matching the paper's five-run averages.
pub const DEFAULT_SEEDS: u64 = 5;

/// A borrowed scenario constructor, the unit of work in a
/// [`grid_mean_makespans`] batch.
pub type ScenarioFn<'a> = &'a (dyn Fn(u64) -> Scenario + Sync);

/// Runs `make(seed)` for `seeds` consecutive seeds starting at
/// `base_seed`, returning every result in seed order.
///
/// Runs fan out across the process-default worker count (see
/// [`parallel::default_jobs`]); results are identical to a sequential run.
pub fn run_seeds<F>(base_seed: u64, seeds: u64, make: F) -> Vec<RunResult>
where
    F: Fn(u64) -> Scenario + Sync,
{
    run_seeds_jobs(base_seed, seeds, 0, make)
}

/// [`run_seeds`] with an explicit worker count (`0` = process default).
pub fn run_seeds_jobs<F>(base_seed: u64, seeds: u64, jobs: usize, make: F) -> Vec<RunResult>
where
    F: Fn(u64) -> Scenario + Sync,
{
    parallel::ordered_map(jobs, seeds as usize, |i| make(base_seed + i as u64).run())
}

/// Mean makespan (ms) of the measured VM across seeded repetitions.
///
/// # Panics
///
/// Panics if any repetition failed to complete within the horizon.
pub fn mean_makespan_ms<F>(base_seed: u64, seeds: u64, make: F) -> f64
where
    F: Fn(u64) -> Scenario + Sync,
{
    mean_makespan_ms_jobs(base_seed, seeds, 0, make)
}

/// [`mean_makespan_ms`] with an explicit worker count (`0` = default).
pub fn mean_makespan_ms_jobs<F>(base_seed: u64, seeds: u64, jobs: usize, make: F) -> f64
where
    F: Fn(u64) -> Scenario + Sync,
{
    let samples: Vec<f64> = run_seeds_jobs(base_seed, seeds, jobs, make)
        .iter()
        .map(|r| r.measured().makespan_ms())
        .collect();
    Summary::of(&samples).mean
}

/// Mean makespans for a whole batch of scenario constructors in one
/// fan-out: `makes.len() × seeds` independent runs share the worker pool,
/// so narrow panels still saturate wide hosts.
///
/// Entry `k` of the result is the seed-averaged makespan of `makes[k]`
/// (job order is constructor-major, seed-minor — canonical and therefore
/// deterministic).
pub fn grid_mean_makespans(
    base_seed: u64,
    seeds: u64,
    jobs: usize,
    makes: &[ScenarioFn<'_>],
) -> Vec<f64> {
    let per = seeds as usize;
    let samples = parallel::ordered_map(jobs, makes.len() * per, |i| {
        let make = makes[i / per];
        make(base_seed + (i % per) as u64).run().measured().makespan_ms()
    });
    samples
        .chunks(per.max(1))
        .map(|chunk| Summary::of(chunk).mean)
        .collect()
}

/// One warmup, many branches: builds the scenario, runs it to `warmup`
/// virtual time once, snapshots, and completes `branches` forked copies
/// through the worker pool (`jobs` as in [`run_seeds_jobs`]; `0` = process
/// default).
///
/// Every branch is bit-identical to a from-scratch run of the same
/// `(scenario, cfg)` pair — the [`crate::Snapshot`] determinism contract —
/// so this is the primitive for campaigns whose grid repeats a cell: pay
/// the shared warmup prefix once instead of once per repeat. Returns the
/// per-branch results plus the number of events the sharing avoided
/// re-executing (`warmup events × (branches − 1)`).
///
/// A `warmup` past the run's completion is harmless: the snapshot is then
/// of the finished state and branches return immediately (still
/// bit-identical — [`System::run`] re-checks completion before stepping).
pub fn run_forked(
    scenario: Scenario,
    cfg: SystemConfig,
    warmup: SimTime,
    branches: usize,
    jobs: usize,
) -> (Vec<RunResult>, u64) {
    let mut sys = System::with_config(scenario, cfg);
    sys.run_until(warmup);
    let snap = sys.snapshot();
    let saved = snap
        .events_processed()
        .saturating_mul(branches.saturating_sub(1) as u64);
    let results = parallel::ordered_map(jobs, branches, |_| snap.resume().run());
    (results, saved)
}

/// [`run_forked`] generalized to a whole grid of scenario groups: group
/// `g` (of `group_sizes.len()`) is warmed up once from `make(g)` and
/// branched into `group_sizes[g]` forked completions.
///
/// Both the warmups and the branches fan out through the worker pool in
/// one canonical order each (group-major), so results are bit-identical
/// for every `jobs` value. Returns the per-group branch results plus the
/// total number of events the sharing avoided re-executing (the sum of
/// each group's `warmup events × (size − 1)`).
///
/// This is the fleet campaign's primitive: hosts with identical tenant
/// composition are identical simulations, so one warmup serves them all.
pub fn run_forked_grid<F>(
    jobs: usize,
    warmup: SimTime,
    cfg: &SystemConfig,
    group_sizes: &[usize],
    make: F,
) -> (Vec<Vec<RunResult>>, u64)
where
    F: Fn(usize) -> Scenario + Sync,
{
    let snaps = parallel::ordered_map(jobs, group_sizes.len(), |g| {
        let mut sys = System::with_config(make(g), cfg.clone());
        sys.run_until(warmup);
        sys.snapshot()
    });
    let saved = snaps
        .iter()
        .zip(group_sizes)
        .map(|(s, &n)| {
            s.events_processed()
                .saturating_mul(n.saturating_sub(1) as u64)
        })
        .sum();
    // Flatten to one branch fan-out: slot i belongs to group `owner[i]`.
    let owner: Vec<usize> = group_sizes
        .iter()
        .enumerate()
        .flat_map(|(g, &n)| std::iter::repeat_n(g, n))
        .collect();
    let flat = parallel::ordered_map(jobs, owner.len(), |i| snaps[owner[i]].resume().run());
    let mut grouped: Vec<Vec<RunResult>> = group_sizes.iter().map(|&n| Vec::with_capacity(n)).collect();
    for (i, r) in flat.into_iter().enumerate() {
        grouped[owner[i]].push(r);
    }
    (grouped, saved)
}

/// Mean improvement (%) of a variant over a baseline, both averaged over
/// the same seeds — the y-axis of Figs 5, 6, 10, 11, 12, 13.
pub fn mean_improvement_pct<B, V>(base_seed: u64, seeds: u64, baseline: B, variant: V) -> f64
where
    B: Fn(u64) -> Scenario + Sync,
    V: Fn(u64) -> Scenario + Sync,
{
    mean_improvement_pct_jobs(base_seed, seeds, 0, baseline, variant)
}

/// [`mean_improvement_pct`] with an explicit worker count (`0` = default).
/// Baseline and variant runs share one fan-out (2 × `seeds` jobs).
pub fn mean_improvement_pct_jobs<B, V>(
    base_seed: u64,
    seeds: u64,
    jobs: usize,
    baseline: B,
    variant: V,
) -> f64
where
    B: Fn(u64) -> Scenario + Sync,
    V: Fn(u64) -> Scenario + Sync,
{
    let means = grid_mean_makespans(base_seed, seeds, jobs, &[&baseline, &variant]);
    irs_metrics::improvement_pct(means[0], means[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    fn quick(seed: u64) -> Scenario {
        // Tiny controlled run: EP is the cheapest preset.
        Scenario::fig5_style("EP", 1, Strategy::Vanilla, seed)
    }

    #[test]
    fn run_seeds_produces_one_result_per_seed() {
        let results = run_seeds(1, 2, quick);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.measured().makespan.is_some());
        }
    }

    #[test]
    fn seeded_runs_are_deterministic() {
        let a = quick(7).run();
        let b = quick(7).run();
        assert_eq!(a.measured().makespan, b.measured().makespan);
        assert_eq!(a.hv.preemptions, b.hv.preemptions);
    }

    #[test]
    fn different_seeds_differ_slightly() {
        let a = quick(1).run();
        let b = quick(2).run();
        // Jittered compute makes exact ties essentially impossible.
        assert_ne!(a.measured().makespan, b.measured().makespan);
    }

    #[test]
    fn forked_branches_match_scratch() {
        let scratch = quick(3).run();
        let (branches, saved) = run_forked(
            quick(3),
            SystemConfig::default(),
            SimTime::from_millis(50),
            3,
            2,
        );
        assert_eq!(branches.len(), 3);
        assert!(saved > 0, "a 50 ms warmup must have processed events");
        for b in &branches {
            assert_eq!(format!("{b:?}"), format!("{scratch:?}"));
        }
    }

    #[test]
    fn forked_grid_matches_scratch_per_group() {
        let make = |g: usize| {
            // Two distinct groups: vanilla and IRS of the same workload.
            let strat = if g == 0 { Strategy::Vanilla } else { Strategy::Irs };
            Scenario::fig5_style("EP", 1, strat, 11)
        };
        let (grouped, saved) = run_forked_grid(
            2,
            SimTime::from_millis(40),
            &SystemConfig::default(),
            &[2, 3],
            make,
        );
        assert_eq!(grouped[0].len(), 2);
        assert_eq!(grouped[1].len(), 3);
        assert!(saved > 0, "two groups of >1 branches must share warmups");
        for (g, branches) in grouped.iter().enumerate() {
            let scratch = format!("{:?}", make(g).run());
            for b in branches {
                assert_eq!(format!("{b:?}"), scratch);
            }
        }
    }

    #[test]
    fn grid_matches_per_constructor_means() {
        let irs = |seed| Scenario::fig5_style("EP", 1, Strategy::Irs, seed);
        let grid = grid_mean_makespans(1, 2, 2, &[&quick, &irs]);
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[0], mean_makespan_ms_jobs(1, 2, 1, quick));
        assert_eq!(grid[1], mean_makespan_ms_jobs(1, 2, 1, irs));
    }
}
