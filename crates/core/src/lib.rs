//! # irs-core — interference-resilient SMP VM scheduling, assembled
//!
//! This crate is the paper's system put together: it co-simulates the
//! Xen-like hypervisor (`irs-xen`) and one Linux-like guest per VM
//! (`irs-guest`), executes workload programs (`irs-workloads`) over the
//! synchronization substrate (`irs-sync`), and wires the **scheduler
//! activation** round trip end to end:
//!
//! ```text
//!   Xen credit scheduler decides to preempt a runnable vCPU
//!     └─ SA sender: VIRQ_SA_UPCALL, preemption delayed        (irs-xen)
//!          └─ SA receiver + context switcher: deschedule the
//!             current task, mark it migrating, pick next,
//!             ack with SCHEDOP_block / SCHEDOP_yield          (irs-guest)
//!               └─ migrator: probe real vCPU runstates, move
//!                  the task to an idle or least-loaded
//!                  *running* sibling                          (irs-guest)
//!                    └─ preemption completes ~20-26 µs after
//!                       the notification                      (here)
//! ```
//!
//! The public surface:
//!
//! * [`Strategy`] — Vanilla Xen, PLE, Relaxed-Co, IRS, and the paper's
//!   §6 future-work variant `IrsPull`.
//! * [`Scenario`] / [`VmScenario`] — declarative experiment setup: pCPUs,
//!   VMs with workloads, pinning, interference.
//! * [`System`] — the discrete-event co-simulation.
//! * [`RunResult`] / [`VmResult`] — makespans, utilization, request
//!   latencies, LHP/LWP counts, scheduler statistics.
//! * [`runner`] — multi-seed experiment helpers (the paper averages 5
//!   runs).
//! * [`faults`] — deterministic fault injection for the SA protocol
//!   (upcall loss, ack loss/delay, guest wedge, deadline jitter, pCPU
//!   degradation), driving the `figures chaos` campaign.
//!
//! # Example
//!
//! Reproduce the core of the paper in a dozen lines — streamcluster in a
//! 4-vCPU VM, one CPU hog co-located with vCPU 0, vanilla vs IRS:
//!
//! ```
//! use irs_core::{Scenario, Strategy};
//!
//! let vanilla = Scenario::fig5_style("streamcluster", 1, Strategy::Vanilla, 42)
//!     .run();
//! let irs = Scenario::fig5_style("streamcluster", 1, Strategy::Irs, 42).run();
//! let base = vanilla.vms[0].makespan.expect("completed");
//! let with_irs = irs.vms[0].makespan.expect("completed");
//! assert!(with_irs < base, "IRS must beat vanilla under interference");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
mod domain;
mod events;
mod exec;
pub mod faults;
pub mod parallel;
mod results;
pub mod runner;
mod scenario;
mod strategy;
mod system;

/// The degradation contract's shared threshold: under faults or hostile
/// neighbors, IRS's cost metric must stay within this factor of vanilla's
/// (IRS ≤ vanilla × 1.15). Both the `figures chaos` campaign (per fault
/// profile) and the `figures fleet` campaign (per policy × adversary-mix
/// cell) assert against this one constant so the two contracts cannot
/// drift apart.
pub const DEGRADATION_MARGIN: f64 = 1.15;

pub use faults::{FaultConfig, FaultStats};
pub use results::{RunResult, VmResult};
pub use scenario::{Scenario, VmScenario};
pub use strategy::Strategy;
pub use system::{
    set_tickless_enabled, take_tickless_events_saved, tickless_enabled, Snapshot, System,
    SystemConfig,
};
