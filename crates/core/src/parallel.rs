//! Deterministic parallel fan-out for independent simulation jobs.
//!
//! The paper's evaluation grid is hundreds of *independent* runs — each a
//! pure function of a `(scenario constructor, seed)` pair — so they can be
//! spread across OS threads without any work stealing or shared mutable
//! state. Execution lives in [`irs_pool`]: a process-wide persistent
//! worker pool (spawned lazily on first use, parked between campaigns)
//! with chunked index claiming — a `figures` invocation running dozens of
//! sweeps pays thread creation once, not per table.
//!
//! Because each job owns its entire state (the `System` constructs its own
//! [`irs_sim::SimRng`] from the scenario seed) and results are reassembled
//! canonically **into index order**, the output is *bit-for-bit identical*
//! for any worker count — `--jobs 8` and `--jobs 1` produce the same
//! tables. Worker threads only affect wall-clock time, never results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Process-wide default worker count used when a call site passes
/// `jobs == 0`. Itself `0` (the initial value) means "ask the OS", i.e.
/// [`std::thread::available_parallelism`].
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count (the `figures --jobs` flag
/// lands here). `0` restores "use all available cores".
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// The worker count used when a call site passes `jobs == 0`: the value
/// from [`set_default_jobs`] if any, otherwise the machine's available
/// parallelism (at least 1).
pub fn default_jobs() -> usize {
    let configured = DEFAULT_JOBS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolves a per-call worker request: `0` means [`default_jobs`].
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        default_jobs()
    } else {
        jobs
    }
}

/// Runs `f(0..n)` across up to `jobs` workers (`0` = default) and returns
/// the results in index order.
///
/// `f` must be a pure function of its index for the determinism guarantee
/// to hold; the engine guarantees each index runs exactly once and that
/// `out[i] == f(i)` regardless of worker count or scheduling. With one
/// worker (or `n <= 1`) the pool is not touched at all, so `jobs = 1` is
/// *exactly* the sequential code path. Wider calls execute on the
/// persistent [`irs_pool`] workers, with the calling thread participating
/// as the first executor.
///
/// A panic in any job propagates to the caller with its original payload
/// after the remaining jobs drain.
pub fn ordered_map<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    irs_pool::ordered_map(resolve_jobs(jobs).min(n), n, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for jobs in [1, 2, 3, 8] {
            let out = ordered_map(jobs, 37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_resolves_to_a_positive_default() {
        assert!(default_jobs() >= 1);
        let out = ordered_map(0, 5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn set_default_jobs_round_trips() {
        // Note: process-global; keep the test self-restoring.
        set_default_jobs(3);
        assert_eq!(default_jobs(), 3);
        assert_eq!(resolve_jobs(0), 3);
        assert_eq!(resolve_jobs(7), 7);
        set_default_jobs(0);
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(ordered_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(ordered_map(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn worker_count_does_not_change_heavyish_results() {
        // A job with nontrivial per-index state, run at several widths.
        let f = |i: usize| {
            let mut acc = i as u64;
            for k in 0..1000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        };
        let sequential = ordered_map(1, 64, f);
        for jobs in [2, 4, 16] {
            assert_eq!(ordered_map(jobs, 64, f), sequential);
        }
    }

    #[test]
    #[should_panic(expected = "boom at 13")]
    fn worker_panics_propagate() {
        let _ = ordered_map(4, 32, |i| {
            if i == 13 {
                panic!("boom at 13");
            }
            i
        });
    }
}
