//! End-to-end tests for the online invariant sanitizer (`irs_core::check`):
//! clean strategies stay clean, checking never perturbs results, and a
//! deliberately corrupted scheduler is caught with a named invariant and a
//! trace dump.

use irs_core::{Scenario, Strategy, System, SystemConfig};
use irs_sim::SimTime;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn checked_cfg() -> SystemConfig {
    SystemConfig {
        check: true,
        ..SystemConfig::default()
    }
}

fn short_fig5(strategy: Strategy, seed: u64) -> Scenario {
    Scenario::fig5_style("streamcluster", 2, strategy, seed).horizon(SimTime::from_secs(5))
}

/// Every shipping strategy survives a checked run with zero violations
/// (a violation panics, so reaching the result *is* the assertion).
#[test]
fn checked_runs_are_clean_for_all_strategies() {
    for strategy in Strategy::ALL {
        let res = System::with_config(short_fig5(strategy, 7), checked_cfg()).run();
        assert!(res.events > 0, "{strategy}: no events processed");
    }
}

/// Strict co-scheduling exercises the gang-rotation paths the default four
/// strategies never touch; keep it honest under the sanitizer too.
#[test]
fn checked_strict_co_is_clean() {
    let res = System::with_config(short_fig5(Strategy::StrictCo, 7), checked_cfg()).run();
    assert!(res.events > 0);
}

/// The sanitizer (and the trace rings it arms) must be observers only:
/// the same scenario with checking on and off produces bit-identical
/// results, down to the debug rendering of every per-VM metric.
#[test]
fn checking_does_not_perturb_results() {
    let plain = System::new(short_fig5(Strategy::Irs, 42)).run();
    let checked = System::with_config(short_fig5(Strategy::Irs, 42), checked_cfg()).run();
    assert_eq!(plain.events, checked.events, "event counts diverged");
    assert_eq!(plain.elapsed, checked.elapsed, "elapsed time diverged");
    assert_eq!(
        format!("{:?}", plain.vms),
        format!("{:?}", checked.vms),
        "per-VM results diverged between checked and unchecked runs"
    );
}

/// A scheduler that double-books a pCPU on wake-up must be caught, and the
/// panic report must name the invariant and carry a timestamped trace of
/// the decisions that led to the corruption.
#[test]
fn fault_injection_trips_the_sanitizer() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        System::with_config(short_fig5(Strategy::FaultDoubleRun, 42), checked_cfg()).run()
    }));
    let err = result.expect_err("the double-run fault must trip the sanitizer");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload should be a string");
    assert!(
        msg.contains("scheduler invariant violated: pcpu-double-run"),
        "report does not name the tripped invariant:\n{msg}"
    );
    assert!(
        msg.contains("last scheduling decisions"),
        "report carries no trace dump:\n{msg}"
    );
    // The dump is rendered as `[<timestamp>] <category> <decision>` lines;
    // the wake that double-booked the pCPU must be among them, timestamped.
    assert!(
        msg.lines()
            .any(|l| l.trim_start().starts_with('[') && l.contains("xen.wake")),
        "trace dump lacks timestamped wake decisions:\n{msg}"
    );
}
