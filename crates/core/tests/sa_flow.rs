//! Event-level walkthrough of one complete scheduler-activation round:
//! the mechanism of paper Figures 3/4 and Algorithms 1/2, observed through
//! the public API step by step.

use irs_core::{Scenario, Strategy, System, SystemConfig, VmScenario};
use irs_guest::TaskId;
use irs_sim::SimTime;
use irs_sync::SyncSpace;
use irs_workloads::{presets, ProgramBuilder, WorkloadBundle};
use irs_xen::{PcpuId, RunState, VcpuRef, VmId};

/// A 2-vCPU IRS VM with one long-running task per vCPU, plus one hog VM
/// contending pCPU 0. The hog's slice-expiry preemptions of vCPU 0 must go
/// through the full SA round.
fn build() -> System {
    let mut space = SyncSpace::new();
    let _ = &mut space;
    let prog = ProgramBuilder::new()
        .forever(|b| b.compute_us(10_000, 0.0))
        .build();
    let bundle = WorkloadBundle::interference(
        "busy",
        vec![prog.clone(), prog],
        SyncSpace::new(),
        0.0,
    );
    let scenario = Scenario::new(2, Strategy::Irs, 3)
        .vm(
            VmScenario::new(bundle, 2)
                .pin(vec![PcpuId(0), PcpuId(1)])
                .measured()
                .irs_guest(true),
        )
        .vm(VmScenario::new(presets::hog::cpu_hogs(1), 1).pin(vec![PcpuId(0)]))
        .horizon(SimTime::from_secs(20));
    System::with_config(
        scenario,
        SystemConfig {
            trace_capacity: 1 << 16,
            ..SystemConfig::default()
        },
    )
}

#[test]
fn one_complete_sa_round() {
    let mut sys = build();
    let v0 = VcpuRef::new(VmId(0), 0);

    // Step until the first SA is delivered.
    while sys.hypervisor().stats().sa_sent == 0 {
        assert!(sys.step());
        assert!(
            sys.now() < SimTime::from_secs(2),
            "an SA round must occur within the first contended slices"
        );
    }
    let sent_at = sys.now();
    assert!(sys.hypervisor().is_sa_pending(v0), "pending flag set");
    assert_eq!(
        sys.hypervisor().pcpu_current(PcpuId(0)),
        Some(v0),
        "the preemption is deferred: the preemptee keeps running"
    );
    // The receiver top half already marked the softirq pending.
    assert!(sys
        .guest(0)
        .softirq_is_pending(0, irs_guest::Softirq::Upcall));

    // Step until the round completes (ack processed).
    while sys.hypervisor().is_sa_pending(v0) {
        assert!(sys.step());
    }
    let acked_at = sys.now();
    let delay = acked_at - sent_at;
    assert!(
        delay >= SimTime::from_micros(20) && delay <= SimTime::from_micros(30),
        "SA round took {delay}, expected the paper's 20-26 us band"
    );
    assert_eq!(sys.hypervisor().stats().sa_acked, 1);
    assert_eq!(sys.hypervisor().stats().sa_timeouts, 0);

    // The preemption has now actually happened: the hog runs on pCPU 0 and
    // v0 is runnable or (post context-switch with an empty queue) blocked.
    let cur = sys.hypervisor().pcpu_current(PcpuId(0)).expect("busy pCPU");
    assert_eq!(cur.vm, VmId(1), "the hog won the pCPU after the ack");
    assert_ne!(sys.hypervisor().vcpu_state(v0), RunState::Running);

    // The migrator then moves the descheduled task off vCPU 0 — not
    // necessarily on the very first round: its rt_avg comparison uses the
    // steal-clock EWMA, which needs a preemption or two to see vCPU 0's
    // contention. Within a few rounds the move must happen, targeting the
    // uncontended vCPU 1.
    let deadline = sys.now() + SimTime::from_millis(200);
    while sys.guest(0).stats().sa_migrations == 0 {
        assert!(sys.step());
        assert!(
            sys.now() < deadline,
            "migrator never moved the descheduled task"
        );
    }
    let g = sys.guest(0);
    assert!(g.stats().sa_migrations >= 1);

    // The trace recorded the full round.
    let dump = sys.trace().dump();
    assert!(dump.contains("VIRQ_SA_UPCALL"));
    assert!(dump.contains("SCHEDOP"), "ack visible");
    assert!(
        dump.contains("migrate task0: v0 -> v1") || dump.contains("migrate task1: v0 -> v1"),
        "the stranded task lands on the uncontended vCPU 1"
    );
    sys.check_invariants();
}

#[test]
fn sa_rounds_repeat_for_every_preemption() {
    let mut sys = build();
    while sys.now() < SimTime::from_secs(3) {
        assert!(sys.step());
    }
    let hv = sys.hypervisor().stats().clone();
    // pCPU 0 alternates ~30 ms slices between the hog and whatever hosts
    // the VM's work; every involuntary preemption of the SA-capable vCPU
    // must be announced. Expect dozens of rounds in 3 s.
    assert!(hv.sa_sent > 20, "only {} SA rounds in 3s", hv.sa_sent);
    assert_eq!(hv.sa_sent, hv.sa_acked + hv.sa_timeouts);
    assert_eq!(hv.sa_timeouts, 0);
    sys.check_invariants();
}

#[test]
fn vanilla_round_for_comparison_has_no_deferral() {
    // Same setup, vanilla strategy: the preemption happens instantly at
    // slice expiry; no SA, no guest reaction, the task strands.
    let prog = ProgramBuilder::new()
        .forever(|b| b.compute_us(10_000, 0.0))
        .build();
    let bundle = WorkloadBundle::interference(
        "busy",
        vec![prog.clone(), prog],
        SyncSpace::new(),
        0.0,
    );
    let scenario = Scenario::new(2, Strategy::Vanilla, 3)
        .vm(
            VmScenario::new(bundle, 2)
                .pin(vec![PcpuId(0), PcpuId(1)])
                .measured(),
        )
        .vm(VmScenario::new(presets::hog::cpu_hogs(1), 1).pin(vec![PcpuId(0)]))
        .horizon(SimTime::from_secs(20));
    let mut sys = System::new(scenario);
    while sys.now() < SimTime::from_secs(2) {
        assert!(sys.step());
    }
    assert_eq!(sys.hypervisor().stats().sa_sent, 0);
    assert_eq!(sys.guest(0).stats().sa_migrations, 0);
    // The stranded task never leaves vCPU 0.
    assert_eq!(sys.guest(0).task(TaskId(0)).cpu, 0);
    assert!(sys.hypervisor().stats().preemptions > 20);
    sys.check_invariants();
}
