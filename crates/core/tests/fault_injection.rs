//! End-to-end fault-injection tests (`irs_core::faults`): a wedged guest
//! drives the SA completion-limit force path, dropped/delayed acks resolve
//! without desync, the sanitizer stays clean under faults, and fault
//! schedules are bit-reproducible.

use irs_core::{FaultConfig, Scenario, Strategy, System, SystemConfig};
use irs_sim::SimTime;
use irs_xen::{PcpuId, RunState};

fn short_fig5(strategy: Strategy, seed: u64) -> Scenario {
    Scenario::fig5_style("streamcluster", 2, strategy, seed).horizon(SimTime::from_secs(5))
}

fn cfg_with(faults: FaultConfig) -> SystemConfig {
    SystemConfig {
        faults: Some(faults),
        check: true,
        ..SystemConfig::default()
    }
}

/// The ISSUE's flagship scenario: vCPUs that wedge (ignore vIRQs) for
/// multi-millisecond windows force the hypervisor through the §4.1 timeout
/// path. The victim must come off with yield semantics (still runnable,
/// never blocked), every freeze must clear, the online sanitizer must stay
/// clean throughout, and the system must quiesce.
#[test]
fn wedged_guest_drives_the_timeout_force_path() {
    let faults = FaultConfig {
        wedge_prob: 1.0,
        wedge_window: SimTime::from_millis(3),
        ..FaultConfig::default()
    };
    let mut sys = System::with_config(short_fig5(Strategy::Irs, 11), cfg_with(faults));
    let bound = SimTime::from_secs(5);

    // Step until the first forced timeout, tracking which vCPU held the
    // freeze so we can check what the force did to it.
    let mut victim = None;
    while sys.hypervisor().stats().sa_timeouts == 0 {
        for p in 0..sys.hypervisor().n_pcpus() {
            if let Some(w) = sys.hypervisor().pcpu_sa_wait(PcpuId(p)) {
                victim = Some(w);
            }
        }
        assert!(sys.step(), "ran out of events before any SA timeout");
        assert!(sys.now() < bound, "no SA timeout before the horizon");
    }
    let victim = victim.expect("a timeout implies a frozen pCPU was seen");
    // Yield semantics: the forced victim is still schedulable, not parked.
    let st = sys.hypervisor().vcpu_state(victim);
    assert!(
        st == RunState::Runnable || st == RunState::Running,
        "forced victim must stay runnable, got {st:?}"
    );
    assert!(!sys.hypervisor().is_sa_pending(victim), "round must be closed");

    // Run to quiescence; the sanitizer (check: true) panics on any
    // invariant violation, so completing is itself the assertion.
    let r = sys.run();
    assert!(r.hv.sa_timeouts > 0);
    assert!(r.hv.sa_sent > r.hv.sa_acked, "wedges must cost some acks");
    let f = r.faults.expect("fault stats present when faults configured");
    assert!(f.wedges > 0, "wedge schedule never fired");
    assert!(
        r.measured().makespan.is_some(),
        "measured workload must still complete under wedges"
    );
}

/// 100% upcall loss: the guest never sees a single SA vIRQ. Rounds can
/// still close as acks when the frozen-but-running vCPU *voluntarily*
/// blocks or yields for its own reasons (any `sched_op` from the pending
/// vCPU releases the freeze); everything else must resolve through the
/// completion limit — and the run must still terminate.
#[test]
fn total_upcall_loss_resolves_every_round_by_timeout() {
    let faults = FaultConfig {
        upcall_loss: 1.0,
        ..FaultConfig::default()
    };
    let r = System::with_config(short_fig5(Strategy::Irs, 3), cfg_with(faults)).run();
    assert!(r.hv.sa_sent > 0, "scenario produced no SA rounds");
    assert!(r.hv.sa_timeouts > 0, "lost upcalls must drive the force path");
    // Voluntary acks + timeouts cover all but in-flight rounds (at most
    // one open per pCPU at termination).
    assert!(r.hv.sa_sent - r.hv.sa_timeouts - r.hv.sa_acked <= 4);
    assert_eq!(r.faults.unwrap().upcalls_dropped, r.hv.sa_sent);
    assert!(r.measured().makespan.is_some());
}

/// Acks deferred past the completion limit always lose the race: the
/// timeout force-closes the round first and the late ack must be discarded
/// as stale instead of desynchronizing a newer round.
#[test]
fn delayed_acks_past_the_limit_are_discarded_as_stale() {
    let faults = FaultConfig {
        ack_delay_prob: 1.0,
        ack_delay: SimTime::from_micros(800), // > 500 µs completion limit
        ..FaultConfig::default()
    };
    let r = System::with_config(short_fig5(Strategy::Irs, 5), cfg_with(faults)).run();
    let f = r.faults.unwrap();
    assert!(f.acks_delayed > 0);
    assert!(f.stale_acks_discarded > 0, "delayed acks must lose to the timeout");
    // Delayed acks still in flight at termination never get discarded.
    assert!(f.stale_acks_discarded <= f.acks_delayed);
    assert_eq!(r.hv.sa_acked, 0, "an 800 µs delay can never beat a 500 µs limit");
    assert!(r.hv.sa_timeouts > 0);
}

/// The fault stream is forked from the scenario seed, not from the
/// checking machinery: the same faulted scenario is bit-identical with the
/// sanitizer on and off, down to every per-VM metric and fault counter.
#[test]
fn faulted_runs_are_bit_identical_checked_vs_unchecked() {
    let run = |check: bool| {
        let cfg = SystemConfig {
            faults: Some(FaultConfig::everything()),
            check,
            ..SystemConfig::default()
        };
        System::with_config(short_fig5(Strategy::Irs, 42), cfg).run()
    };
    let plain = run(false);
    let checked = run(true);
    assert_eq!(plain.events, checked.events, "event counts diverged");
    assert_eq!(plain.elapsed, checked.elapsed, "elapsed time diverged");
    assert_eq!(plain.faults, checked.faults, "fault schedules diverged");
    assert_eq!(
        format!("{:?}", plain.vms),
        format!("{:?}", checked.vms),
        "per-VM results diverged between checked and unchecked faulted runs"
    );
}

/// Every shipping strategy survives every fault preset under the sanitizer
/// and still terminates — the graceful-degradation floor of the chaos
/// campaign, at e2e-test scale.
#[test]
fn all_strategies_survive_all_presets_checked() {
    let presets = [
        FaultConfig::upcall_storm(),
        FaultConfig::ack_chaos(),
        FaultConfig::wedged_guest(),
        FaultConfig::jittery_timer(),
        FaultConfig::degraded_host(),
        FaultConfig::everything(),
    ];
    for strategy in Strategy::ALL {
        for preset in &presets {
            let r =
                System::with_config(short_fig5(strategy, 7), cfg_with(preset.clone())).run();
            assert!(r.events > 0, "{strategy}: no events processed");
        }
    }
}
