//! Time-anchored workload constructs end to end: absolute-time sleeps
//! (`SleepUntil`/`AlignTo`), gang-epoch safepoints, and open-loop
//! arrival sources, threaded through the core execution engine.
//!
//! Covers the contracts the serving campaign stands on: tickless
//! equivalence for timer-anchored sleeps, construction-time rejection of
//! unbalanced gang epochs, forked-vs-scratch bit-identity with epoch and
//! arrival-process state in the snapshot, and explicit accounting of
//! requests truncated at the horizon.

use irs_core::{Scenario, Strategy, System, SystemConfig, VmScenario};
use irs_sim::SimTime;
use irs_sync::{ArrivalDist, SyncSpace, WaitMode};
use irs_workloads::{presets, ProgramBuilder, WorkloadBundle};

fn with_hogs(s: Scenario, n_inter: usize) -> Scenario {
    if n_inter == 0 {
        s
    } else {
        s.vm(VmScenario::new(presets::hog::cpu_hogs(n_inter), 4).pin_one_to_one())
    }
}

fn serving_scenario(n_inter: usize, strategy: Strategy, seed: u64) -> Scenario {
    let s = Scenario::new(4, strategy, seed).vm(
        VmScenario::new(presets::server::serving_tiers(2, 2, 0.6), 4)
            .pin_one_to_one()
            .measured(),
    );
    with_hogs(s, n_inter).horizon(SimTime::from_secs(2))
}

fn specjbb_scenario(n_inter: usize, strategy: Strategy, seed: u64) -> Scenario {
    let s = Scenario::new(4, strategy, seed).vm(
        VmScenario::new(presets::server::specjbb(4), 4)
            .pin_one_to_one()
            .measured(),
    );
    with_hogs(s, n_inter).horizon(SimTime::from_secs(2))
}

#[test]
fn specjbb_safepoints_make_progress() {
    for strategy in [Strategy::Vanilla, Strategy::Irs] {
        let r = specjbb_scenario(1, strategy, 42).run();
        let m = r.measured();
        // ~333 tx/s/warehouse uncontended; even heavily interfered the
        // 4 warehouses must commit plenty of transactions in 2 s.
        assert!(
            m.requests > 500,
            "{strategy:?}: only {} transactions with safepoints armed",
            m.requests
        );
        assert_eq!(m.latencies_us.len(), m.requests as usize);
    }
}

#[test]
fn serving_tiers_complete_requests_end_to_end() {
    let r = serving_scenario(1, Strategy::Vanilla, 7).run();
    let m = r.measured();
    // Backends bound capacity at ~2857 rps; 0.6 load over 2 s ≈ 3400
    // arrivals. Most must complete end-to-end.
    assert!(m.requests > 2_000, "only {} requests completed", m.requests);
    assert_eq!(m.latencies_us.len(), m.requests as usize);
    // Every latency includes at least the back-end service time.
    assert!(m.latencies_us.iter().all(|&l| l > 0.0));
    // The horizon cuts an open-loop service mid-flight: the in-flight
    // tail is counted, not silently dropped.
    assert!(
        m.requests_truncated > 0,
        "expected in-flight requests at the horizon"
    );
}

#[test]
fn serving_forked_run_is_bit_identical_to_scratch() {
    // Snapshot/fork must carry epoch and arrival-process state: a branch
    // resumed mid-run finishes bit-identically to a from-scratch run.
    let cfg = SystemConfig::default();
    let scratch = System::with_config(serving_scenario(1, Strategy::Irs, 9), cfg.clone()).run();
    let mut warm = System::with_config(serving_scenario(1, Strategy::Irs, 9), cfg);
    assert!(warm.run_until(SimTime::from_millis(300)));
    let branch = warm.fork(1).pop().unwrap().run();
    assert_eq!(
        format!("{scratch:?}"),
        format!("{branch:?}"),
        "forked serving run diverged from scratch"
    );
}

#[test]
fn time_anchored_sleeps_are_tickless_equivalent() {
    // SleepUntil + AlignTo drive the WakeTimer path; tickless
    // fast-forward must treat a live anchored sleep as non-elidable and
    // produce bit-identical results.
    let mk = || {
        let prog = ProgramBuilder::new()
            .sleep_until_us(1_500)
            .compute_us(200, 0.0)
            .forever(|b| b.align_to_us(1_000, 250).compute_us(300, 0.1))
            .build();
        let vm = WorkloadBundle::server("anchored", vec![prog], SyncSpace::new(), 0.0, None);
        Scenario::new(2, Strategy::Irs, 5)
            .vm(VmScenario::new(vm, 1).pin(vec![irs_xen::PcpuId(0)]).measured())
            .vm(VmScenario::new(presets::hog::cpu_hogs(2), 2).pin_one_to_one())
            .horizon(SimTime::from_millis(500))
    };
    let cfg = |tickless| SystemConfig {
        tickless,
        ..SystemConfig::default()
    };
    let ticked = System::with_config(mk(), cfg(false)).run();
    let tickless = System::with_config(mk(), cfg(true)).run();
    assert_eq!(
        format!("{ticked:?}"),
        format!("{tickless:?}"),
        "tickless diverged across time-anchored sleeps"
    );
    // The anchored VM actually computed (it woke from its anchors).
    assert!(ticked.measured().useful.as_nanos() > 0);
}

#[test]
#[should_panic(expected = "unbalanced")]
fn unbalanced_gang_epoch_is_rejected_at_construction() {
    // Epoch declares 2 participants, but only one thread polls it: a
    // release could never fire. Must die in System construction, not
    // deadlock at runtime.
    let mut space = SyncSpace::new();
    let epoch = space.new_epoch(1_000_000, 2, WaitMode::Block);
    let polls = ProgramBuilder::new()
        .forever(|b| b.safepoint_poll(epoch).compute_us(100, 0.0))
        .build();
    let silent = ProgramBuilder::new()
        .forever(|b| b.compute_us(100, 0.0))
        .build();
    let vm = WorkloadBundle::server("bad-gang", vec![polls, silent], space, 0.0, None);
    let _ = System::new(
        Scenario::new(2, Strategy::Vanilla, 1)
            .vm(VmScenario::new(vm, 2).pin_one_to_one().measured())
            .horizon(SimTime::from_millis(10)),
    );
}

#[test]
#[should_panic(expected = "unallocated")]
fn out_of_range_arrival_is_rejected_at_construction() {
    let prog = ProgramBuilder::new()
        .forever(|b| b.await_arrival(irs_sync::ArrivalId(3)).compute_us(100, 0.0))
        .build();
    let vm = WorkloadBundle::server("bad-arrival", vec![prog], SyncSpace::new(), 0.0, None);
    let _ = System::new(
        Scenario::new(1, Strategy::Vanilla, 1)
            .vm(VmScenario::new(vm, 1).measured())
            .horizon(SimTime::from_millis(10)),
    );
}

#[test]
fn arrival_schedule_is_seed_stable() {
    // Same scenario seed → identical arrival schedules → identical runs;
    // different seed → different arrival draws.
    let a = serving_scenario(0, Strategy::Vanilla, 3).run();
    let b = serving_scenario(0, Strategy::Vanilla, 3).run();
    let c = serving_scenario(0, Strategy::Vanilla, 4).run();
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert_ne!(
        format!("{:?}", a.measured().latencies_us),
        format!("{:?}", c.measured().latencies_us),
        "seed must perturb the arrival schedule"
    );
}

#[test]
fn gang_epoch_stall_tracks_interference() {
    // The safepoint stall is the slowest thread's time-to-poll: with more
    // interference the gang waits longer, so throughput drops. (The IRS
    // vs vanilla comparison lives in `figures fig8`; here we only pin the
    // mechanism's direction.)
    let calm = specjbb_scenario(0, Strategy::Vanilla, 21).run();
    let hammered = specjbb_scenario(4, Strategy::Vanilla, 21).run();
    let calm_rps = calm.measured().throughput_rps(calm.elapsed);
    let hammered_rps = hammered.measured().throughput_rps(hammered.elapsed);
    assert!(
        hammered_rps < calm_rps * 0.9,
        "interference must cost safepoint throughput (calm {calm_rps:.0} vs hammered {hammered_rps:.0} rps)"
    );
}

#[test]
fn arrival_dist_uniform_also_runs() {
    // The uniform arrival distribution exercises the other draw path.
    let mut space = SyncSpace::new();
    let arr = space.new_arrival(ArrivalDist::Uniform {
        lo_ns: 500_000,
        hi_ns: 1_500_000,
    });
    let prog = ProgramBuilder::new()
        .forever(|b| b.await_arrival(arr).compute_us(200, 0.1).request_done())
        .build();
    let vm = WorkloadBundle::server("uniform-loop", vec![prog], space, 0.0, None);
    let r = Scenario::new(1, Strategy::Vanilla, 6)
        .vm(VmScenario::new(vm, 1).measured())
        .horizon(SimTime::from_millis(500))
        .run();
    // Mean gap 1 ms over 500 ms → ~500 requests.
    let m = r.measured();
    assert!(
        (300..=700).contains(&(m.requests as usize)),
        "got {} requests",
        m.requests
    );
}
