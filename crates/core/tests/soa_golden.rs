//! SoA/struct coherence golden test.
//!
//! The hot-state layout refactor (struct-of-arrays task state in
//! `irs_core::domain`, the flattened vCPU arena in `irs_xen`, the timer
//! wheel in `irs_sim`) must be observationally invisible: the same
//! scenarios must produce the same `RunResult` — every float, counter,
//! and latency sample — as the pre-refactor binary-heap/AoS code did.
//!
//! `golden/soa_baseline.txt` was captured from the pre-refactor tree
//! (one `Debug`-rendered `RunResult` per scenario; Rust's `f64` Debug is
//! shortest-roundtrip, so text equality is bit equality). Every run here
//! executes with the online invariant sanitizer armed, so the comparison
//! also proves the sanitizer reads identical values through the new SoA
//! accessors (`irs_core::check` walks credits, runstates, vruntimes, and
//! task states through the refactored layout on every event).
//!
//! To re-bless after an *intentional* semantic change:
//! `IRS_BLESS=1 cargo test -p irs-core --test soa_golden`.

use irs_core::{FaultConfig, Scenario, Strategy, System, SystemConfig};

/// The fixed scenario battery: every strategy, 1–2 interferers, plus a
/// fault-injected run, so credits, SA rounds, co-scheduling, PLE windows,
/// and the fault paths all appear in the baseline.
const BATTERY: [(&str, usize, Strategy); 6] = [
    ("EP", 1, Strategy::Vanilla),
    ("EP", 2, Strategy::Irs),
    ("blackscholes", 1, Strategy::Ple),
    ("streamcluster", 1, Strategy::Irs),
    ("LU", 1, Strategy::RelaxedCo),
    ("swaptions", 2, Strategy::Irs),
];

/// Renders the whole battery, checked, ticked and tickless (both must
/// already agree; the golden pins them against history), plus one
/// fault-injected run covering the injector paths.
fn render() -> String {
    let mut out = String::new();
    let mut emit = |label: &str, bench: &str, n_inter: usize, strategy: Strategy,
                    faults: Option<FaultConfig>| {
        for tickless in [false, true] {
            let cfg = SystemConfig {
                check: true,
                tickless,
                faults: faults.clone(),
                ..SystemConfig::default()
            };
            let scenario = Scenario::fig5_style(bench, n_inter, strategy, 42);
            let result = System::with_config(scenario, cfg).run();
            out.push_str(&format!("=== {label} tickless={tickless}\n{result:?}\n"));
        }
    };
    for (bench, n_inter, strategy) in BATTERY {
        emit(
            &format!("{bench}+{n_inter} {strategy:?}"),
            bench,
            n_inter,
            strategy,
            None,
        );
    }
    emit(
        "EP+1 Irs faulted",
        "EP",
        1,
        Strategy::Irs,
        Some(FaultConfig::everything()),
    );
    out
}

#[test]
fn run_results_match_pre_refactor_golden() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/soa_baseline.txt");
    let got = render();
    if std::env::var_os("IRS_BLESS").is_some() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, &got).unwrap();
        eprintln!("blessed {path}");
        return;
    }
    let want = std::fs::read_to_string(path)
        .expect("golden file missing; run with IRS_BLESS=1 to create it");
    // Compare per line so a mismatch names the offending scenario instead
    // of dumping two multi-kilobyte blobs.
    for (g, w) in got.lines().zip(want.lines()) {
        assert_eq!(g, w, "SoA refactor diverged from the pre-refactor baseline");
    }
    assert_eq!(got.len(), want.len(), "baseline length mismatch");
}
