//! Snapshot/fork determinism — the headline contract of `System::snapshot`:
//! a forked branch must be **bit-identical** (Debug-rendered `RunResult` +
//! `FaultStats`) to a from-scratch run of the same scenario and config, at
//! any `--jobs N`, tickless or not, checked or not.
//!
//! Comparison is by `Debug` rendering, as in `tickless.rs`: `f64` Debug is
//! shortest-roundtrip, so equal renderings mean every float is bit-equal.

use irs_core::{parallel, runner, FaultConfig, Scenario, Strategy, System, SystemConfig};
use irs_sim::SimTime;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn quick(strategy: Strategy, seed: u64) -> Scenario {
    // EP is the cheapest preset; one interferer keeps scheduling non-trivial.
    Scenario::fig5_style("EP", 1, strategy, seed)
}

/// Scratch-runs the config, then forks two branches off a 40 ms warmup and
/// completes them through the worker pool at `--jobs 1` and `--jobs 2`;
/// every branch (and the warmup system itself) must render identically.
fn assert_fork_identity(strategy: Strategy, faults: Option<FaultConfig>, tickless: bool) {
    let cfg = SystemConfig {
        faults,
        tickless,
        ..SystemConfig::default()
    };
    let label = format!("{strategy:?} faults={} tickless={tickless}", cfg.faults.is_some());
    let scratch = System::with_config(quick(strategy, 11), cfg.clone()).run();
    let want = format!("{scratch:?}");

    let mut warm = System::with_config(quick(strategy, 11), cfg);
    warm.run_until(SimTime::from_millis(40));
    let snap = warm.snapshot();
    for jobs in [1usize, 2] {
        let branches = parallel::ordered_map(jobs, 2, |_| snap.resume().run());
        for b in &branches {
            assert_eq!(
                format!("{b:?}"),
                want,
                "[{label}] forked branch diverged from scratch at jobs={jobs}"
            );
            assert_eq!(b.faults, scratch.faults, "[{label}] FaultStats diverged");
        }
    }
    // The warmup system is itself a branch: finishing it must agree too.
    let warm_result = warm.run();
    assert_eq!(format!("{warm_result:?}"), want, "[{label}] warmup finish diverged");
}

/// The acceptance matrix: 4 strategies × fault profiles × tickless on/off.
/// Each strategy pairs with the no-faults baseline plus a rotating heavy
/// profile, so every fault family crosses the snapshot boundary somewhere.
#[test]
fn fork_matrix_strategies_faults_tickless() {
    let profiles = [
        FaultConfig::everything(),
        FaultConfig::wedged_guest(),
        FaultConfig::ack_chaos(),
        FaultConfig::jittery_timer(),
    ];
    let strategies = [
        Strategy::Vanilla,
        Strategy::Ple,
        Strategy::RelaxedCo,
        Strategy::Irs,
    ];
    for (i, strategy) in strategies.into_iter().enumerate() {
        for tickless in [false, true] {
            assert_fork_identity(strategy, None, tickless);
            assert_fork_identity(strategy, Some(profiles[i].clone()), tickless);
        }
    }
}

/// Gang scheduling keeps a `GangRotate` timer permanently in flight and
/// disables tickless — the snapshot must carry that timer across too.
#[test]
fn fork_under_strict_co() {
    assert_fork_identity(Strategy::StrictCo, None, false);
}

/// Forking a *checked* run rebuilds the sanitizer at the snapshot instant;
/// results must still match an unchecked scratch run (checking is already
/// proven result-neutral in `sanitizer.rs`).
#[test]
fn fork_with_sanitizer_armed() {
    let scratch = System::new(quick(Strategy::Irs, 23)).run();
    let cfg = SystemConfig {
        check: true,
        ..SystemConfig::default()
    };
    let mut warm = System::with_config(quick(Strategy::Irs, 23), cfg);
    warm.run_until(SimTime::from_millis(40));
    for sys in warm.fork(2) {
        let b = sys.run();
        assert_eq!(format!("{b:?}"), format!("{scratch:?}"));
    }
}

/// `restore` rewinds: run past the snapshot point, rewind, and the re-run
/// must replay the identical suffix.
#[test]
fn restore_rewinds_to_the_snapshot_instant() {
    let mut sys = System::new(quick(Strategy::Irs, 5));
    sys.run_until(SimTime::from_millis(30));
    let snap = sys.snapshot();
    let first = sys.run();
    let mut rewound = snap.resume();
    rewound.restore(&snap);
    assert_eq!(rewound.now(), snap.now());
    assert_eq!(rewound.events_processed(), snap.events_processed());
    let second = rewound.run();
    assert_eq!(format!("{first:?}"), format!("{second:?}"));
}

/// Snapshotting at *any* boundary is valid, including a completed run and
/// time zero (a boot snapshot is just a from-scratch run).
#[test]
fn snapshot_boundaries_are_arbitrary() {
    let want = format!("{:?}", System::new(quick(Strategy::Vanilla, 9)).run());
    // Boot snapshot.
    let boot = System::new(quick(Strategy::Vanilla, 9)).snapshot();
    assert_eq!(format!("{:?}", boot.resume().run()), want);
    // Completed snapshot: resuming is a no-op finish.
    let mut done = System::new(quick(Strategy::Vanilla, 9));
    assert!(!done.run_until(SimTime::MAX), "run must complete");
    let snap = done.snapshot();
    assert_eq!(format!("{:?}", snap.resume().run()), want);
}

/// The grid-runner primitive: one shared warmup, branches through the pool.
#[test]
fn run_forked_reports_savings_and_identical_branches() {
    let want = format!(
        "{:?}",
        System::with_config(quick(Strategy::Ple, 2), SystemConfig::default()).run()
    );
    let (branches, saved) = runner::run_forked(
        quick(Strategy::Ple, 2),
        SystemConfig::default(),
        SimTime::from_millis(40),
        4,
        2,
    );
    assert_eq!(branches.len(), 4);
    assert!(saved > 0, "warmup sharing must save events");
    for b in &branches {
        assert_eq!(format!("{b:?}"), want);
    }
}

/// Rolling checkpoints + sanitizer: a violation re-runs the window from
/// the last checkpoint with a deep trace ring armed and appends the
/// replay's report — which must reproduce the same named invariant.
#[test]
fn sanitizer_violation_replays_from_checkpoint() {
    let cfg = SystemConfig {
        check: true,
        checkpoint_period: Some(SimTime::from_millis(5)),
        ..SystemConfig::default()
    };
    let scenario = Scenario::fig5_style("streamcluster", 2, Strategy::FaultDoubleRun, 42)
        .horizon(SimTime::from_secs(5));
    let result = catch_unwind(AssertUnwindSafe(|| {
        System::with_config(scenario, cfg).run()
    }));
    let err = result.expect_err("the double-run fault must trip the sanitizer");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .expect("panic payload should be a string");
    assert!(
        msg.contains("scheduler invariant violated: pcpu-double-run"),
        "report does not name the tripped invariant:\n{msg}"
    );
    assert!(
        msg.contains("--- checkpoint replay:"),
        "report carries no checkpoint replay:\n{msg}"
    );
    assert_eq!(
        msg.matches("scheduler invariant violated: pcpu-double-run").count(),
        2,
        "the replay must reproduce the violation:\n{msg}"
    );
}

/// Checkpointing must never perturb results (snapshots mutate nothing).
#[test]
fn checkpointing_does_not_perturb_results() {
    let plain = System::new(quick(Strategy::Irs, 17)).run();
    let cfg = SystemConfig {
        checkpoint_period: Some(SimTime::from_millis(10)),
        ..SystemConfig::default()
    };
    let checkpointed = System::with_config(quick(Strategy::Irs, 17), cfg).run();
    assert_eq!(format!("{plain:?}"), format!("{checkpointed:?}"));
}
