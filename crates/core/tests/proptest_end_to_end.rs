//! End-to-end property tests: randomly composed workloads, strategies, and
//! interference always run to completion with cross-layer invariants and
//! physical time conservation intact.

use irs_core::{Scenario, Strategy, System, VmScenario};
use irs_sim::SimTime;
use irs_sync::{SyncSpace, WaitMode};
use irs_workloads::{presets, ProgramBuilder, WorkloadBundle};
use proptest::prelude::*;

/// A random small parallel workload: n threads, barrier or mutex, blocking
/// or spinning, short enough to finish fast.
fn random_bundle(
    threads: usize,
    iters: u64,
    grain_us: u64,
    barrier: bool,
    spin: bool,
) -> WorkloadBundle {
    let mode = if spin { WaitMode::Spin } else { WaitMode::Block };
    let mut space = SyncSpace::new();
    if barrier {
        let bar = space.new_barrier(threads, mode);
        let progs = (0..threads)
            .map(|_| {
                ProgramBuilder::new()
                    .repeat(iters, |b| b.compute_us(grain_us, 0.1).barrier(bar))
                    .build()
            })
            .collect();
        WorkloadBundle::parallel("prop", progs, space, 0.5)
    } else {
        let lock = space.new_lock(mode);
        let join = space.new_barrier(threads, mode);
        let progs = (0..threads)
            .map(|_| {
                ProgramBuilder::new()
                    .repeat(iters, |b| {
                        b.compute_us(grain_us, 0.1)
                            .lock(lock)
                            .compute_us(20, 0.1)
                            .unlock(lock)
                    })
                    .barrier(join)
                    .build()
            })
            .collect();
        WorkloadBundle::parallel("prop", progs, space, 0.5)
    }
}

fn strategy_from(idx: u8) -> Strategy {
    match idx % 6 {
        0 => Strategy::Vanilla,
        1 => Strategy::Ple,
        2 => Strategy::RelaxedCo,
        3 => Strategy::Irs,
        4 => Strategy::StrictCo,
        _ => Strategy::IrsPull,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any random configuration completes, conserves physical time, and
    /// keeps every layer's invariants at sampled points.
    #[test]
    fn random_scenarios_complete_cleanly(
        threads in 2usize..6,
        iters in 3u64..12,
        grain_us in 500u64..8_000,
        barrier in any::<bool>(),
        spin in any::<bool>(),
        strategy_idx in 0u8..6,
        n_inter in 1usize..4,
        pinned in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let bundle = random_bundle(threads, iters, grain_us, barrier, spin);
        let strategy = strategy_from(strategy_idx);
        let mut scenario = Scenario::new(4, strategy, seed)
            .vm(VmScenario::new(bundle, 4).pin_one_to_one().measured())
            .vm(VmScenario::new(presets::hog::cpu_hogs(n_inter), 4).pin_one_to_one())
            .horizon(SimTime::from_secs(60));
        if !pinned {
            for vm in &mut scenario.vms {
                vm.pinning = None;
            }
        }
        let mut sys = System::new(scenario);
        let mut steps = 0u64;
        loop {
            prop_assert!(sys.step(), "event queue drained unexpectedly");
            steps += 1;
            if steps.is_multiple_of(509) {
                sys.check_invariants();
            }
            if sys.guest(0).n_tasks() > 0
                && (0..sys.guest(0).n_tasks())
                    .all(|t| sys.guest(0).task(irs_guest::TaskId(t)).state
                        == irs_guest::TaskState::Exited)
            {
                break;
            }
            prop_assert!(
                sys.now() < SimTime::from_secs(59),
                "workload failed to complete ({strategy}, spin={spin}, barrier={barrier})"
            );
        }
        sys.check_invariants();

        // Physical conservation: the two VMs' CPU time cannot exceed the
        // machine's capacity over the elapsed window.
        let elapsed = sys.now();
        let hv = sys.hypervisor();
        let total: u64 = (0..2)
            .map(|vm| hv.vm_cpu_time(irs_xen::VmId(vm), elapsed).as_nanos())
            .sum();
        prop_assert!(total <= 4 * elapsed.as_nanos() + 1000);
    }
}
