//! Calibration probes: run the paper's headline setups and print the key
//! numbers so the shape can be compared against the published figures.
//! (Assertions here are deliberately loose — the strict shape checks live
//! in the integration suite at the workspace root.)

use irs_core::{Scenario, Strategy};
use irs_metrics::{improvement_pct, slowdown};

fn makespan_ms(s: Scenario) -> f64 {
    s.run().measured().makespan_ms()
}

#[test]
fn fig1a_slowdowns() {
    for bench in ["fluidanimate", "ua", "raytrace"] {
        let solo = {
            let mut s = Scenario::fig5_style(bench, 1, Strategy::Vanilla, 1);
            s.vms.truncate(1); // no interference
            makespan_ms(s)
        };
        let inter = makespan_ms(Scenario::fig5_style(bench, 1, Strategy::Vanilla, 1));
        println!(
            "fig1a {bench}: solo {solo:.0} ms, 1-inter {inter:.0} ms, slowdown {:.2}x",
            slowdown(solo, inter)
        );
    }
}

#[test]
fn fig5_streamcluster_irs() {
    for n_inter in [1usize, 2, 4] {
        let base = makespan_ms(Scenario::fig5_style("streamcluster", n_inter, Strategy::Vanilla, 1));
        let irs = makespan_ms(Scenario::fig5_style("streamcluster", n_inter, Strategy::Irs, 1));
        let ple = makespan_ms(Scenario::fig5_style("streamcluster", n_inter, Strategy::Ple, 1));
        let co = makespan_ms(Scenario::fig5_style("streamcluster", n_inter, Strategy::RelaxedCo, 1));
        println!(
            "fig5 streamcluster {n_inter}-inter: vanilla {base:.0} ms | IRS {:+.1}% | PLE {:+.1}% | Co {:+.1}%",
            improvement_pct(base, irs),
            improvement_pct(base, ple),
            improvement_pct(base, co),
        );
    }
}

#[test]
fn fig6_mg_spinning() {
    for n_inter in [1usize, 2, 4] {
        let base = makespan_ms(Scenario::fig5_style("MG", n_inter, Strategy::Vanilla, 1));
        let irs = makespan_ms(Scenario::fig5_style("MG", n_inter, Strategy::Irs, 1));
        let ple = makespan_ms(Scenario::fig5_style("MG", n_inter, Strategy::Ple, 1));
        println!(
            "fig6 MG {n_inter}-inter: vanilla {base:.0} ms | IRS {:+.1}% | PLE {:+.1}%",
            improvement_pct(base, irs),
            improvement_pct(base, ple),
        );
    }
}

#[test]
fn fig2_utilization() {
    for bench in ["streamcluster", "raytrace", "ua"] {
        let r = Scenario::fig5_style(bench, 1, Strategy::Vanilla, 1).run();
        let m = r.measured();
        // Fair share: 3 uncontended pCPUs + half of the contended one.
        let util = m.utilization_vs_fair_share(3.5, r.elapsed);
        println!("fig2 {bench}: utilization vs fair share {:.2}", util);
    }
}

#[test]
fn sa_round_statistics() {
    let r = Scenario::fig5_style("streamcluster", 1, Strategy::Irs, 1).run();
    println!(
        "IRS run: sa_sent {} acked {} timeouts {} | guest sa_migrations {} idle_targets {} | lhp {} lwp {}",
        r.hv.sa_sent,
        r.hv.sa_acked,
        r.hv.sa_timeouts,
        r.measured().guest.sa_migrations,
        r.measured().guest.sa_idle_targets,
        r.measured().lhp,
        r.measured().lwp,
    );
    assert!(r.hv.sa_sent > 0, "SA rounds must occur under interference");
    assert_eq!(r.hv.sa_sent, r.hv.sa_acked + r.hv.sa_timeouts);
}

#[test]
fn trace_captures_the_sa_round_trip() {
    use irs_core::{System, SystemConfig};
    let scenario = Scenario::fig5_style("streamcluster", 1, Strategy::Irs, 1);
    let mut sys = System::with_config(
        scenario,
        SystemConfig {
            trace_capacity: 4096,
            ..SystemConfig::default()
        },
    );
    while sys.now() < irs_sim::SimTime::from_millis(200) {
        assert!(sys.step());
    }
    let dump = sys.trace().dump();
    assert!(dump.contains("VIRQ_SA_UPCALL"), "trace must show the upcall");
    assert!(dump.contains("migrate"), "trace must show migrator moves");
    assert!(dump.contains("xen"), "hypervisor actions recorded");
    assert!(dump.contains("guest"), "guest actions recorded");
}

#[test]
fn pv_spin_halt_helps_vanilla_spinning() {
    use irs_core::{System, SystemConfig};
    let run = |pv: Option<irs_sim::SimTime>| -> f64 {
        let scenario = Scenario::fig5_style("MG", 2, Strategy::Vanilla, 1);
        System::with_config(
            scenario,
            SystemConfig {
                pv_spin: pv,
                ..SystemConfig::default()
            },
        )
        .run()
        .measured()
        .makespan_ms()
    };
    let plain = run(None);
    let pv = run(Some(irs_sim::SimTime::from_micros(100)));
    assert!(
        pv < plain * 0.95,
        "spin-then-halt must beat pure spinning under contention: {pv:.0} vs {plain:.0}"
    );
}

#[test]
fn slice_override_changes_the_hypervisor_slice() {
    use irs_core::System;
    let scenario = Scenario::fig5_style("EP", 1, Strategy::Vanilla, 1)
        .time_slice(irs_sim::SimTime::from_millis(6));
    let sys = System::new(scenario);
    assert_eq!(
        sys.hypervisor().config().time_slice,
        irs_sim::SimTime::from_millis(6)
    );
}
