//! Tickless fast-forward equivalence: `SystemConfig::tickless` must be a
//! pure wall-clock optimisation. Every run here executes twice — ticked
//! and tickless — and the full [`RunResult`] (per-VM metrics, request
//! latencies, hypervisor and guest counters, event totals, `FaultStats`)
//! must be bit-identical, faults or not, sanitizer armed or not.
//!
//! Comparison is by `Debug` rendering: Rust's `f64` Debug is
//! shortest-roundtrip, so two renderings are equal iff every float is
//! bit-equal (modulo NaN, which no metric here produces).

use irs_core::{
    take_tickless_events_saved, FaultConfig, Scenario, Strategy, System, SystemConfig,
};

/// Runs `scenario` ticked and tickless under otherwise identical knobs;
/// asserts bit-identity and returns (events, events elided tickless).
fn assert_equivalent(mk: impl Fn() -> Scenario, faults: Option<FaultConfig>, check: bool) -> (u64, u64) {
    let cfg = |tickless| SystemConfig {
        faults: faults.clone(),
        check,
        tickless,
        ..SystemConfig::default()
    };
    take_tickless_events_saved();
    let ticked = System::with_config(mk(), cfg(false)).run();
    assert_eq!(take_tickless_events_saved(), 0, "ticked run must elide nothing");
    let tickless = System::with_config(mk(), cfg(true)).run();
    let saved = take_tickless_events_saved();
    assert_eq!(
        format!("{ticked:?}"),
        format!("{tickless:?}"),
        "tickless result diverged"
    );
    assert_eq!(ticked.faults, tickless.faults, "FaultStats diverged");
    (ticked.events, saved)
}

fn report(label: &str, events: u64, saved: u64) {
    eprintln!(
        "tickless {label}: {saved}/{events} events elided ({:.1}%)",
        100.0 * saved as f64 / events.max(1) as f64
    );
}

#[test]
fn fig5_matrix_all_strategies() {
    for strat in [
        Strategy::Vanilla,
        Strategy::Ple,
        Strategy::RelaxedCo,
        Strategy::Irs,
    ] {
        let (events, saved) = assert_equivalent(
            || Scenario::fig5_style("streamcluster", 1, strat, 42),
            None,
            false,
        );
        report(&format!("fig5/{strat:?}"), events, saved);
    }
}

#[test]
fn strict_co_gang_mode_disables_elision_but_stays_identical() {
    // The gang-rotate epilogue in `System::step` keys off every processed
    // event, so fast-forward must stand down entirely under strict co.
    let (events, saved) = assert_equivalent(
        || Scenario::fig5_style("streamcluster", 1, Strategy::StrictCo, 42),
        None,
        false,
    );
    assert_eq!(saved, 0, "no elision under gang scheduling");
    report("fig5/StrictCo", events, saved);
}

#[test]
fn fig2_idle_heavy_class() {
    let (events, saved) = assert_equivalent(|| Scenario::fig2_style("lu", 7), None, false);
    report("fig2/lu", events, saved);
    assert!(saved > 0, "idle-heavy scenario must elide something");
}

#[test]
fn fault_profiles_replay_the_rng_exactly() {
    // degraded_host exercises the quiescent-HvTick fault-draw replay; the
    // everything profile layers every stream at once.
    for (name, profile) in [
        ("degraded_host", FaultConfig::degraded_host()),
        ("everything", FaultConfig::everything()),
    ] {
        let (events, saved) = assert_equivalent(
            || Scenario::fig5_style("streamcluster", 1, Strategy::Irs, 42),
            Some(profile),
            false,
        );
        report(&format!("fig5/Irs+{name}"), events, saved);
    }
}

#[test]
fn sanitizer_verdict_is_unchanged() {
    // With the invariant sanitizer armed, elided events skip their checker
    // pass — legitimate exactly because they change no state. A clean run
    // must stay clean and produce identical results.
    let (events, saved) = assert_equivalent(
        || Scenario::fig5_style("streamcluster", 1, Strategy::Irs, 42),
        None,
        true,
    );
    report("fig5/Irs+check", events, saved);
}

/// The bench crate's io_latency shape: a sleep-5ms/serve-100µs ping VM
/// sharing pCPU0 with one vCPU of a parallel VM — the paper's §3.1
/// idle-heavy class, and a scenario whose result carries per-request f64
/// latencies (the strictest bit-identity surface we have).
fn io_latency_scenario(strategy: Strategy, seed: u64) -> Scenario {
    use irs_core::VmScenario;
    let prog = irs_workloads::ProgramBuilder::new()
        .forever(|b| {
            b.request_start()
                .sleep_us(5_000)
                .compute_us(100, 0.0)
                .request_done()
        })
        .build();
    let io = irs_workloads::WorkloadBundle::server(
        "io-ping",
        vec![prog],
        irs_sync::SyncSpace::new(),
        0.0,
        None,
    );
    let fg = irs_workloads::presets::by_name("streamcluster", 4, irs_sync::WaitMode::Block)
        .unwrap();
    Scenario::new(4, strategy, seed)
        .vm(
            VmScenario::new(fg.into_background(), 4)
                .pin_one_to_one()
                .irs_guest(strategy.sa_capable_guest()),
        )
        .vm(
            VmScenario::new(io, 1)
                .pin(vec![irs_xen::PcpuId(0)])
                .measured(),
        )
        .horizon(irs_sim::SimTime::from_secs(10))
}

#[test]
fn io_latency_server_bit_identical() {
    for strat in [Strategy::Vanilla, Strategy::Irs] {
        let (events, saved) = assert_equivalent(|| io_latency_scenario(strat, 11), None, false);
        report(&format!("io_latency/{strat:?}"), events, saved);
    }
}

#[test]
fn process_wide_switch_covers_default_configs() {
    // `Scenario::run()` builds its own SystemConfig; the process-wide
    // switch (what `figures --tickless` flips) must reach it.
    let ticked = Scenario::fig5_style("ep", 1, Strategy::Irs, 3).run();
    irs_core::set_tickless_enabled(true);
    take_tickless_events_saved();
    let tickless = Scenario::fig5_style("ep", 1, Strategy::Irs, 3).run();
    let saved = take_tickless_events_saved();
    irs_core::set_tickless_enabled(false);
    assert_eq!(format!("{ticked:?}"), format!("{tickless:?}"));
    report("fig5/ep global switch", ticked.events, saved);
}
