//! # irs-pool — a persistent worker pool for deterministic fan-out
//!
//! The experiment engine (`irs_core::parallel`) fans hundreds of
//! independent simulation runs across OS threads. Its original engine
//! spawned a fresh `thread::scope` per campaign — correct, but every
//! `figures` table paid thread creation and teardown for each of its
//! (often dozens of) sweeps. This crate keeps one process-wide set of
//! workers alive across campaigns instead:
//!
//! * workers are **lazily spawned** on first use and parked on a condvar
//!   between campaigns — an idle pool costs nothing but stack space;
//! * a campaign is published once, workers **claim chunked index ranges**
//!   from an atomic cursor (each index runs exactly once, in no
//!   particular order) and write results into per-index slots;
//! * the **submitting thread participates** as the first worker, so
//!   `jobs = N` means N executors, not N+1;
//! * results are reassembled **in index order**, making the output
//!   bit-for-bit identical for any worker count — the same contract the
//!   scoped engine had.
//!
//! Panics in a job are caught per-index, the first payload is stashed,
//! and the campaign still runs to completion (the scoped engine likewise
//! drained remaining workers before propagating); the submitter then
//! re-raises the original payload.
//!
//! Nested submissions (a job calling [`ordered_map`] again) execute
//! sequentially on the calling worker: the pool runs one campaign at a
//! time, and a worker that blocked waiting for a second campaign would
//! deadlock the first. A thread-local marks pool workers so the fallback
//! is automatic. Distinct *top-level* submitters simply queue on the
//! submission lock.
//!
//! ## Why the one `unsafe` is sound
//!
//! A campaign stores its job as a lifetime-erased `&'static dyn
//! Fn(usize)`, though the closure really lives on the submitter's stack.
//! The submitter does not return before every index is claimed *and*
//! executed (`completed == n`); a worker dereferences the job reference
//! only while executing an index `< n`. After the last completion the
//! campaign is also unpublished, so late-waking workers can at most read
//! the campaign's atomics through their own `Arc` — never the erased
//! reference. The borrow therefore never outlives the frame it points
//! into.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// Upper bound on pool threads, a sanity cap well above any sensible
/// `--jobs` request (the claim protocol is correct at any size; this only
/// bounds lazy growth).
const MAX_WORKERS: usize = 256;

/// One published fan-out: the erased job plus the claim/completion state.
struct Campaign {
    /// The erased job; see the crate docs for the lifetime argument.
    job: &'static (dyn Fn(usize) + Sync),
    /// Total number of indices.
    n: usize,
    /// Claim granularity (indices per `fetch_add`).
    chunk: usize,
    /// Next unclaimed index (may overshoot `n`).
    cursor: AtomicUsize,
    /// Indices fully executed (including panicked ones).
    completed: AtomicUsize,
    /// Pool workers still allowed to join (the submitter is the +1th).
    seats: AtomicUsize,
    /// First panic payload from any job, re-raised by the submitter.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Completion signal: the submitter waits here after running out of
    /// indices to claim itself.
    done_mu: Mutex<()>,
    done_cv: Condvar,
}

impl Campaign {
    /// Claims and executes chunks until the cursor runs past `n`.
    fn run_claims(&self) {
        loop {
            let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.n {
                return;
            }
            let end = (start + self.chunk).min(self.n);
            for i in start..end {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.job)(i))) {
                    let mut slot = self.panic.lock().unwrap();
                    slot.get_or_insert(payload);
                }
                let done = self.completed.fetch_add(1, Ordering::AcqRel) + 1;
                if done == self.n {
                    // Empty critical section pairs with the submitter's
                    // check-then-wait under `done_mu`: no missed wakeup.
                    drop(self.done_mu.lock().unwrap());
                    self.done_cv.notify_all();
                }
            }
        }
    }

    /// Takes a participation seat; `false` once `jobs - 1` pool workers
    /// have already joined.
    fn try_seat(&self) -> bool {
        self.seats
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |s| s.checked_sub(1))
            .is_ok()
    }
}

/// What parked workers watch: a campaign pointer plus an epoch so a worker
/// never re-services the campaign it just finished.
struct Board {
    epoch: u64,
    campaign: Option<Arc<Campaign>>,
}

struct Pool {
    board: Mutex<Board>,
    wake: Condvar,
    /// Serializes campaigns (one at a time; see crate docs on nesting).
    submit: Mutex<()>,
    spawned: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Set on pool threads: a job that fans out again runs sequentially.
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        board: Mutex::new(Board {
            epoch: 0,
            campaign: None,
        }),
        wake: Condvar::new(),
        submit: Mutex::new(()),
        spawned: AtomicUsize::new(0),
    })
}

/// The body of every pool thread: wait for an unseen epoch, take a seat if
/// one is left, work the campaign, park again.
fn worker_loop(pool: &'static Pool) {
    IS_POOL_WORKER.with(|f| f.set(true));
    let mut seen = 0u64;
    loop {
        let campaign = {
            let mut board = pool.board.lock().unwrap();
            loop {
                if board.epoch != seen {
                    seen = board.epoch;
                    if let Some(c) = &board.campaign {
                        if c.try_seat() {
                            break c.clone();
                        }
                    }
                }
                board = pool.wake.wait(board).unwrap();
            }
        };
        campaign.run_claims();
    }
}

/// Ensures at least `target` pool threads exist (lazy growth, capped).
fn ensure_workers(pool: &'static Pool, target: usize) {
    let target = target.min(MAX_WORKERS);
    loop {
        let have = pool.spawned.load(Ordering::Acquire);
        if have >= target {
            return;
        }
        if pool
            .spawned
            .compare_exchange(have, have + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            continue;
        }
        thread::Builder::new()
            .name(format!("irs-pool-{have}"))
            .spawn(move || worker_loop(pool))
            .expect("spawning a pool worker failed");
    }
}

/// Number of pool threads spawned so far (diagnostics / bench reporting).
pub fn spawned_workers() -> usize {
    pool().spawned.load(Ordering::Acquire)
}

/// Runs `f(0..n)` across up to `workers` executors (the calling thread
/// plus `workers - 1` pool threads) and returns the results in index
/// order.
///
/// `f` must be a pure function of its index for the determinism guarantee
/// to hold; each index runs exactly once and `out[i] == f(i)` regardless
/// of worker count or scheduling. With `workers <= 1` or `n <= 1` no pool
/// machinery is touched at all — that is *exactly* the sequential path —
/// and a call from inside a pool job falls back to it too.
///
/// A panic in any job propagates to the caller with its original payload
/// after the remaining indices finish.
pub fn ordered_map<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n <= 1 || IS_POOL_WORKER.with(|w| w.get()) {
        return (0..n).map(f).collect();
    }
    let pool = pool();

    // Per-index result slots. A Mutex per slot is uncontended (each index
    // is written once) and keeps this crate's unsafe confined to the
    // lifetime erasure below.
    let mut slots: Vec<Mutex<Option<T>>> = Vec::with_capacity(n);
    slots.resize_with(n, || Mutex::new(None));
    let run_one = |i: usize| {
        let value = f(i);
        *slots[i].lock().unwrap() = Some(value);
    };

    let job: &(dyn Fn(usize) + Sync) = &run_one;
    // SAFETY: the campaign is fully executed and unpublished before this
    // frame returns, and workers only call `job` for indices < n, all of
    // which complete before then — see the crate-level argument.
    let job: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };

    let campaign = Arc::new(Campaign {
        job,
        n,
        chunk: (n / (4 * workers)).max(1),
        cursor: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        seats: AtomicUsize::new(workers - 1),
        panic: Mutex::new(None),
        done_mu: Mutex::new(()),
        done_cv: Condvar::new(),
    });

    let submit = pool.submit.lock().unwrap();
    ensure_workers(pool, workers - 1);
    {
        let mut board = pool.board.lock().unwrap();
        board.epoch += 1;
        board.campaign = Some(campaign.clone());
    }
    pool.wake.notify_all();

    // Participate, then wait for stragglers working their last chunk.
    // While executing jobs this thread counts as a pool worker: a job
    // that fans out again must take the sequential fallback rather than
    // re-enter the (non-reentrant) submission lock this frame holds.
    IS_POOL_WORKER.with(|w| w.set(true));
    campaign.run_claims();
    IS_POOL_WORKER.with(|w| w.set(false));
    {
        let mut guard = campaign.done_mu.lock().unwrap();
        while campaign.completed.load(Ordering::Acquire) < n {
            guard = campaign.done_cv.wait(guard).unwrap();
        }
    }

    // Unpublish before the job closure dies; late-waking workers then see
    // an empty board at a new epoch and park again.
    {
        let mut board = pool.board.lock().unwrap();
        board.campaign = None;
    }
    drop(submit);

    if let Some(payload) = campaign.panic.lock().unwrap().take() {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.into_inner()
                .unwrap()
                .unwrap_or_else(|| panic!("job {i} produced no result"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_and_identical_at_any_width() {
        let f = |i: usize| {
            let mut acc = i as u64;
            for k in 0..1000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        };
        let sequential: Vec<u64> = (0..64).map(f).collect();
        for workers in [2, 3, 8, 16] {
            assert_eq!(ordered_map(workers, 64, f), sequential);
        }
    }

    #[test]
    fn pool_persists_across_campaigns() {
        let _ = ordered_map(4, 16, |i| i);
        let after_first = spawned_workers();
        assert!(after_first >= 1, "pool never spawned");
        for _ in 0..10 {
            let _ = ordered_map(4, 16, |i| i * 2);
        }
        // Other tests run concurrently and may grow the pool, but this
        // width was already satisfied — repeated campaigns at the same
        // width must not keep spawning.
        assert!(spawned_workers() <= MAX_WORKERS);
    }

    #[test]
    fn nested_fan_out_runs_sequentially_not_deadlocking() {
        let out = ordered_map(4, 8, |i| {
            let inner = ordered_map(4, 4, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn concurrent_top_level_campaigns_serialize() {
        let a = std::thread::spawn(|| ordered_map(3, 40, |i| i + 1));
        let b = ordered_map(3, 40, |i| i + 2);
        assert_eq!(a.join().unwrap(), (1..=40).collect::<Vec<_>>());
        assert_eq!(b, (2..=41).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "pool boom at 7")]
    fn panics_propagate_with_their_payload() {
        let _ = ordered_map(4, 16, |i| {
            if i == 7 {
                panic!("pool boom at 7");
            }
            i
        });
    }

    #[test]
    fn zero_and_single_inputs() {
        assert_eq!(ordered_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(ordered_map(4, 1, |i| i + 10), vec![10]);
    }
}
