//! # irs-guest — a Linux-like paravirtual guest kernel model
//!
//! The guest half of the *Scheduler Activations for Interference-Resilient
//! SMP Virtual Machine Scheduling* reproduction. The paper's ~130-line Linux
//! 3.18 patch lives in a kernel whose scheduling machinery this crate
//! remodels:
//!
//! * **CFS essentials** ([`Runqueue`]): per-vCPU runqueues ordered by
//!   `vruntime`, a 6 ms scheduling latency with a minimum granularity, and
//!   wakeup preemption — the "finer-grained time slices (6 ms)" and
//!   "migrated task likely has smaller virtual runtime and would be
//!   prioritized" effects the paper invokes in §5.2.
//! * **Load balancing** (`balance` module): periodic push balancing, idle
//!   (pull) balancing, and wakeup placement. Exactly as the paper observes,
//!   none of these can move a task that is *current* on a vCPU — even when
//!   that vCPU has been preempted by the hypervisor — and the hypervisor's
//!   imbalance is invisible to them. That is the reverse semantic gap.
//! * **`rt_avg`-style load tracking** including **steal time** obtained from
//!   the hypervisor's runstate accounting (the paravirtual steal clock).
//! * **The migration stopper** ([`GuestOs::request_stop_migration`]): the
//!   vanilla path for migrating a *running* task must execute on the source
//!   vCPU — which is precisely why Fig 1(b)'s migration latency grows by one
//!   hypervisor scheduling delay per co-located VM.
//! * **The IRS guest side** (`sa` module): the `VIRQ_SA_UPCALL` receiver,
//!   the context switcher that deschedules the current task and answers the
//!   hypervisor with `SCHEDOP_block`/`SCHEDOP_yield`, the migrator kernel
//!   thread implementing Algorithm 2, and the pingpong-avoidance wake-up
//!   tagging of Fig 4.
//!
//! Like `irs-xen`, this crate is a library of state machines: methods mutate
//! guest state and return [`GuestAction`]s that the embedding simulation
//! (`irs-core`) interprets — hypercalls go up, context-switch notifications
//! go out.
//!
//! # Example
//!
//! ```
//! use irs_guest::{GuestConfig, GuestOs};
//! use irs_sim::SimTime;
//!
//! let mut guest = GuestOs::new(GuestConfig::default(), 2);
//! let t0 = guest.spawn(0);
//! let t1 = guest.spawn(1);
//! let actions = guest.start(SimTime::ZERO);
//! assert_eq!(actions.len(), 2, "one dispatch per vCPU");
//! assert_eq!(guest.current(0), Some(t0));
//! assert_eq!(guest.current(1), Some(t1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actions;
pub mod balance;
mod config;
mod guest;
mod rq;
pub mod sa;
pub mod softirq;
mod stats;
mod task;

pub use actions::{GuestAction, VcpuView};
pub use config::{GuestConfig, GuestSaConfig};
pub use guest::GuestOs;
pub use rq::Runqueue;
pub use softirq::{Softirq, SoftirqOutcome};
pub use stats::GuestStats;
pub use task::{Task, TaskId, TaskState};
