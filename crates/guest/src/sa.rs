//! The guest half of IRS: SA receiver, context switcher, migrator.
//!
//! Paper §3.2–§3.3 and §4.2, condensed:
//!
//! * The **SA receiver** is the `VIRQ_SA_UPCALL` interrupt handler. It must
//!   be small, so it delegates to the context switcher, implemented as the
//!   bottom half of the vIRQ (a softirq at lower priority than the timer
//!   softirq — modelled in the embedder's event ordering).
//! * The **context switcher** deschedules the current task on the preemptee
//!   vCPU, marks it migrating, picks the next task, and answers the
//!   hypervisor: `SCHEDOP_block` when the runqueue drained (the idle task
//!   was installed), `SCHEDOP_yield` otherwise — so the vCPU lands in the
//!   hypervisor state that preserves Xen's scheduling policy.
//! * The **migrator** is a system-wide kernel thread woken asynchronously.
//!   Unlike `migration_cpu_stop`, it need not run on the source vCPU; it
//!   probes actual vCPU runstates via `VCPUOP_get_runstate` and moves the
//!   descheduled task to an **idle** sibling if one exists, else to the
//!   sibling with the least `rt_avg` among those actually **running**
//!   (Algorithm 2). Preempted (runnable) siblings are never targets.

use crate::actions::{GuestAction, VcpuView};
use crate::guest::GuestOs;
use crate::task::TaskState;
use irs_xen::{RunState, SchedOp};

/// Result of handling one SA upcall: the acknowledgement operation to send
/// via `HYPERVISOR_sched_op`, plus the usual actions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaOutcome {
    /// `SCHEDOP_block` if the vCPU is now idle, `SCHEDOP_yield` otherwise.
    pub op: SchedOp,
    /// Context-switch notifications and the migrator wake-up.
    pub actions: Vec<GuestAction>,
}

impl GuestOs {
    /// Handles a `VIRQ_SA_UPCALL` on `vcpu`: receiver + context switcher.
    ///
    /// The embedding simulation calls this after modelling the
    /// receiver/softirq delay ([`crate::GuestSaConfig::sa_round_delay`]) and
    /// then forwards [`SaOutcome::op`] to the hypervisor as the
    /// acknowledgement.
    ///
    /// A vanilla guest (no [`crate::GuestConfig::sa`]) has no handler
    /// registered; callers should not route the vIRQ here in that case, but
    /// doing so acknowledges with a plain yield and moves nothing —
    /// mirroring footnote 1 of the paper (the background VM "ignores the SA
    /// notification").
    pub fn sa_upcall(&mut self, vcpu: usize) -> SaOutcome {
        debug_assert!(
            !self.softirq_is_pending(vcpu, crate::Softirq::Timer),
            "with a timer softirq pending, use process_softirqs for §4.2 ordering"
        );
        self.upcall_softirq(vcpu)
    }

    /// The `UPCALL_SOFTIRQ` handler body (context switcher). Called by the
    /// softirq layer after any pending timer work, per §4.2.
    pub(crate) fn upcall_softirq(&mut self, vcpu: usize) -> SaOutcome {
        let mut actions = Vec::new();
        if self.cfg.sa.is_none() {
            return SaOutcome {
                op: SchedOp::Yield,
                actions,
            };
        }
        self.stats.sa_upcalls += 1;

        let Some(cur) = self.rqs[vcpu].current else {
            // The vCPU was in (or entering) its idle loop: nothing to
            // migrate; tell the hypervisor to block or yield by queue state.
            let op = if self.rqs[vcpu].leftmost().is_none() {
                SchedOp::Block
            } else {
                SchedOp::Yield
            };
            return SaOutcome { op, actions };
        };

        // Context switcher: deschedule the current task and hand it to the
        // migrator (it is Ready but *not* enqueued — migrator custody).
        self.rqs[vcpu].current = None;
        self.tasks[cur.0].state = TaskState::Ready;
        self.tasks[cur.0].in_custody = true;
        actions.push(GuestAction::StopTask { vcpu, task: cur });
        self.migrator_pending.push_back(cur);
        actions.push(GuestAction::WakeMigrator);

        // Pick the next task so the vCPU reflects its true load when the
        // hypervisor re-examines it.
        let op = if self.rqs[vcpu].leftmost().is_some() {
            self.pick_and_run(vcpu, &mut actions);
            SchedOp::Yield
        } else {
            self.stats.idle_blocks += 1;
            SchedOp::Block
        };
        SaOutcome { op, actions }
    }

    /// Runs the migrator thread (Algorithm 2) over every task in custody.
    ///
    /// `views[v]` must reflect vCPU `v`'s actual hypervisor runstate and
    /// recent steal fraction at the time of the call.
    pub fn migrator_run(&mut self, views: &[VcpuView]) -> Vec<GuestAction> {
        let mut out = self.out_buf();
        while let Some(task) = self.migrator_pending.pop_front() {
            if !self.tasks[task.0].in_custody || self.tasks[task.0].state != TaskState::Ready {
                continue; // re-blocked, re-woken, or exited in the meantime
            }
            self.tasks[task.0].in_custody = false;
            let source = self.tasks[task.0].cpu;
            let target = self.pick_migration_target(source, views);
            match target {
                Some(dest) if dest != source => {
                    let was_idle = self.rqs[dest].is_idle();
                    let vr = self.rqs[dest]
                        .migration_vruntime(self.tasks[task.0].vruntime, self.rqs[source].min_vruntime);
                    self.tasks[task.0].vruntime = vr;
                    self.tasks[task.0].cpu = dest;
                    self.tasks[task.0].migrations += 1;
                    self.tasks[task.0].preempt_migrated =
                        self.cfg.sa.as_ref().is_some_and(|sa| sa.pingpong_tagging);
                    self.rqs[dest].enqueue(vr, task);
                    self.stats.sa_migrations += 1;
                    out.push(GuestAction::TaskMigrated {
                        task,
                        from: source,
                        to: dest,
                    });
                    if was_idle {
                        self.stats.sa_idle_targets += 1;
                        if views[dest].state == RunState::Running {
                            // Executing its idle loop: picks immediately.
                            self.pick_and_run(dest, &mut out);
                        } else {
                            // Sleeping (or preempted) in the hypervisor:
                            // ask for a wake — it will return BOOSTed,
                            // which is the IRS payoff.
                            out.push(GuestAction::WakeVcpu { vcpu: dest });
                        }
                    }
                }
                _ => {
                    // No better vCPU: leave the task queued on its source
                    // (keeping its vruntime — this is not a migration); it
                    // runs when the preempted vCPU is rescheduled. The
                    // source may have blocked when the context switcher
                    // drained it — wake it so the task is not stranded.
                    let vr = self.tasks[task.0].vruntime;
                    self.rqs[source].enqueue(vr, task);
                    if self.rqs[source].current.is_none() {
                        out.push(GuestAction::WakeVcpu { vcpu: source });
                    }
                }
            }
        }
        out
    }

    /// The §6 "Limitation" oracle: ideal **pull-based** migration. A vCPU
    /// that is about to idle pulls the stranded *running* task straight off
    /// a hypervisor-preempted sibling — the mechanism the paper says would
    /// require new kernel machinery ("migrating a 'running' task from a
    /// preempted vCPU"). Implemented here as the upper bound the real IRS
    /// is compared against in the ablation benches.
    ///
    /// # Panics
    ///
    /// Panics if `src` has no current task or `dst` is not idle.
    pub fn pull_running(&mut self, dst: usize, src: usize) -> Vec<GuestAction> {
        let mut out = self.out_buf();
        assert!(self.rqs[dst].current.is_none(), "pull target must be idle");
        let cur = self.rqs[src]
            .current
            .take()
            .expect("pull source has no running task");
        self.tasks[cur.0].state = TaskState::Ready;
        out.push(GuestAction::StopTask { vcpu: src, task: cur });
        let vr = self.rqs[dst].migration_vruntime(self.tasks[cur.0].vruntime, self.rqs[src].min_vruntime);
        self.tasks[cur.0].vruntime = vr;
        self.tasks[cur.0].cpu = dst;
        self.tasks[cur.0].migrations += 1;
        self.rqs[dst].enqueue(vr, cur);
        self.stats.pull_migrations += 1;
        out.push(GuestAction::TaskMigrated {
            task: cur,
            from: src,
            to: dst,
        });
        self.pick_and_run(dst, &mut out);
        out
    }

    /// Algorithm 2's target search: an idle vCPU short-circuits; otherwise
    /// the least `rt_avg` among vCPUs the hypervisor reports `Running`.
    /// Preempted (`Runnable`) vCPUs are skipped — migrating there would
    /// re-create the very stall IRS is resolving.
    #[allow(clippy::needless_range_loop)] // v indexes rqs *and* views
    fn pick_migration_target(&self, source: usize, views: &[VcpuView]) -> Option<usize> {
        let idle_first = self
            .cfg
            .sa
            .as_ref()
            .is_none_or(|sa| sa.idle_first);
        // Staying costs waiting out the source's contention: the candidate
        // must beat the source's own effective load (queue + the returning
        // task, scaled by steal) or the migration only trades one stall for
        // another — the churn behind the paper's 4-inter regressions.
        let source_load =
            (self.rqs[source].nr_queued() as f64 + 1.0) * (1.0 + views[source].steal_frac);
        let mut min: Option<(f64, usize)> = None;
        for v in 0..self.rqs.len() {
            if v == source {
                continue;
            }
            match views[v].state {
                RunState::Blocked if self.rqs[v].is_idle() => {
                    if idle_first {
                        return Some(v); // idle fast path (Algorithm 2 line 8-10)
                    }
                    // Ablation: idle vCPUs rank by rt_avg like everyone else.
                    let load = self.rt_avg(v, &views[v]);
                    if min.is_none_or(|(ml, _)| load < ml) {
                        min = Some((load, v));
                    }
                }
                RunState::Running => {
                    let load = self.rt_avg(v, &views[v]);
                    if load < source_load && min.is_none_or(|(ml, _)| load < ml) {
                        min = Some((load, v));
                    }
                }
                _ => {}
            }
        }
        min.map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GuestConfig, GuestSaConfig};
    use crate::task::TaskId;
    use irs_sim::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn irs_guest(n: usize) -> GuestOs {
        GuestOs::new(GuestConfig::with_irs(), n)
    }

    #[test]
    fn upcall_deschedules_current_and_yields_when_queue_nonempty() {
        let mut g = irs_guest(1);
        let a = g.spawn(0);
        let b = g.spawn(0);
        g.start(t(0));
        let outcome = g.sa_upcall(0);
        g.check_invariants();
        assert_eq!(outcome.op, SchedOp::Yield);
        assert_eq!(g.current(0), Some(b), "next task installed");
        assert_eq!(g.task(a).state, TaskState::Ready);
        assert!(g.migrator_pending.contains(&a));
        assert!(outcome
            .actions
            .iter()
            .any(|x| matches!(x, GuestAction::WakeMigrator)));
        assert_eq!(g.stats().sa_upcalls, 1);
    }

    #[test]
    fn upcall_blocks_when_queue_drains() {
        let mut g = irs_guest(1);
        let a = g.spawn(0);
        g.start(t(0));
        let outcome = g.sa_upcall(0);
        g.check_invariants();
        assert_eq!(outcome.op, SchedOp::Block, "idle task installed");
        assert_eq!(g.current(0), None);
        assert!(g.migrator_pending.contains(&a));
    }

    #[test]
    fn upcall_on_vanilla_guest_is_inert() {
        let mut g = GuestOs::new(GuestConfig::default(), 1);
        let a = g.spawn(0);
        g.start(t(0));
        let outcome = g.sa_upcall(0);
        assert_eq!(outcome.op, SchedOp::Yield);
        assert!(outcome.actions.is_empty());
        assert_eq!(g.current(0), Some(a), "nothing descheduled");
        assert_eq!(g.stats().sa_upcalls, 0);
    }

    #[test]
    fn migrator_prefers_idle_vcpu_and_wakes_it() {
        let mut g = irs_guest(3);
        let a = g.spawn(0);
        g.spawn(1); // vCPU1 busy
        g.start(t(0)); // vCPU2 idle (blocked in hv)
        g.sa_upcall(0);
        let views = vec![
            VcpuView::preempted(0.8), // source: being preempted
            VcpuView::running(),
            VcpuView::blocked(), // idle sibling
        ];
        let acts = g.migrator_run(&views);
        g.check_invariants();
        assert_eq!(g.task(a).cpu, 2, "idle sibling chosen");
        assert!(g.task(a).preempt_migrated, "Fig 4 tag applied");
        assert_eq!(g.stats().sa_migrations, 1);
        assert_eq!(g.stats().sa_idle_targets, 1);
        assert!(acts
            .iter()
            .any(|x| matches!(x, GuestAction::WakeVcpu { vcpu: 2 })));
    }

    #[test]
    fn migrator_skips_preempted_siblings() {
        let mut g = irs_guest(3);
        let a = g.spawn(0);
        g.spawn(1);
        g.spawn(2);
        g.start(t(0));
        g.sa_upcall(0);
        // vCPU1 preempted (runnable); vCPU2 running: only vCPU2 qualifies.
        let views = vec![
            VcpuView::preempted(0.8),
            VcpuView::preempted(0.9),
            VcpuView::running(),
        ];
        g.migrator_run(&views);
        g.check_invariants();
        assert_eq!(g.task(a).cpu, 2, "preempted sibling must be skipped");
    }

    #[test]
    fn migrator_picks_least_rt_avg_when_no_idle() {
        let mut g = irs_guest(3);
        let a = g.spawn(0);
        g.spawn(1);
        g.spawn(1); // vCPU1: 2 tasks
        g.spawn(2); // vCPU2: 1 task
        g.start(t(0));
        g.sa_upcall(0);
        let views = vec![
            VcpuView::preempted(0.5),
            VcpuView::running(),
            VcpuView::running(),
        ];
        g.migrator_run(&views);
        g.check_invariants();
        assert_eq!(g.task(a).cpu, 2, "lighter running sibling wins");
    }

    #[test]
    fn steal_breaks_rt_avg_ties() {
        let mut g = irs_guest(3);
        let a = g.spawn(0);
        g.spawn(1);
        g.spawn(2);
        g.start(t(0));
        g.sa_upcall(0);
        // Same queue depth; vCPU1 suffers steal, vCPU2 does not.
        let views = vec![
            VcpuView::preempted(0.5),
            VcpuView {
                state: RunState::Running,
                steal_frac: 0.6,
            },
            VcpuView::running(),
        ];
        g.migrator_run(&views);
        assert_eq!(g.task(a).cpu, 2, "contended sibling loses");
    }

    #[test]
    fn migrator_falls_back_to_source_when_all_siblings_preempted() {
        let mut g = irs_guest(2);
        let a = g.spawn(0);
        g.spawn(1);
        g.start(t(0));
        g.sa_upcall(0);
        let views = vec![VcpuView::preempted(0.9), VcpuView::preempted(0.9)];
        let acts = g.migrator_run(&views);
        g.check_invariants();
        assert_eq!(g.task(a).cpu, 0, "stays queued on the source");
        assert_eq!(g.stats().sa_migrations, 0);
        // The drained source must be re-woken or the task would strand.
        assert_eq!(acts, vec![GuestAction::WakeVcpu { vcpu: 0 }]);
        // And it is actually queued (not lost in custody).
        assert!(g.rq(0).iter().any(|(_, id)| id == a));
    }

    #[test]
    fn migrator_drops_tasks_that_blocked_in_custody() {
        let mut g = irs_guest(2);
        let a = g.spawn(0);
        g.start(t(0));
        g.sa_upcall(0);
        // The task blocks before the migrator runs (e.g. its futex grace
        // expired mid-custody): the custody entry must be discarded.
        g.block_queued(a);
        assert_eq!(g.task(a).state, TaskState::Blocked);
        let acts = g.migrator_run(&[VcpuView::preempted(0.5), VcpuView::blocked()]);
        assert!(acts.is_empty());
        g.check_invariants();
        assert_eq!(g.task(TaskId(0)).cpu, 0);
    }

    #[test]
    fn pingpong_tag_not_applied_when_tagging_disabled() {
        let cfg = GuestConfig {
            sa: Some(GuestSaConfig {
                pingpong_tagging: false,
                ..GuestSaConfig::default()
            }),
            ..GuestConfig::default()
        };
        let mut g = GuestOs::new(cfg, 2);
        let a = g.spawn(0);
        g.start(t(0));
        g.sa_upcall(0);
        g.migrator_run(&[VcpuView::preempted(0.5), VcpuView::blocked()]);
        assert_eq!(g.task(a).cpu, 1);
        assert!(!g.task(a).preempt_migrated);
    }

    #[test]
    fn pull_oracle_moves_the_running_task() {
        let mut g = irs_guest(2);
        let a = g.spawn(0);
        g.spawn(1);
        g.start(t(0));
        // vCPU1's task blocks; vCPU1 would idle. The oracle pulls a, which
        // is "running" on the (conceptually preempted) vCPU0.
        g.block_current(1, t(1), &[VcpuView::preempted(0.9), VcpuView::running()]);
        let acts = g.pull_running(1, 0);
        g.check_invariants();
        assert_eq!(g.current(1), Some(a));
        assert_eq!(g.current(0), None);
        assert_eq!(g.task(a).cpu, 1);
        assert!(acts
            .iter()
            .any(|x| matches!(x, GuestAction::TaskMigrated { from: 0, to: 1, .. })));
    }

    #[test]
    fn timer_softirq_runs_before_the_upcall() {
        // §4.2: when a timer tick and an SA arrive together, the timer's
        // task switching must run first so a task that was about to be
        // descheduled by CFS is not pointlessly migrated.
        use crate::softirq::Softirq;
        use irs_sim::SimTime;
        let mut g = irs_guest_n(1);
        let a = g.spawn(0);
        let b = g.spawn(0);
        g.start(SimTime::ZERO);
        assert_eq!(g.current(0), Some(a));
        // Run `a` far past its slice so the pending timer will switch to b.
        g.account_runtime(0, SimTime::from_millis(10));
        g.raise_softirq(0, Softirq::Timer);
        g.raise_softirq(0, Softirq::Upcall);
        let out = g.process_softirqs(0, SimTime::from_millis(10), &[VcpuView::running()]);
        // Without the ordering, `a` (pre-switch current) would be migrated.
        // With it, the timer switches to `b` first and the context switcher
        // takes `b` off — `a` stays placidly queued, never entering custody.
        assert!(g.migrator_pending.contains(&b), "upcall ran after the switch");
        assert!(!g.migrator_pending.contains(&a), "a was spared migration");
        assert!(out.sa_ack.is_some());
        g.check_invariants();
    }

    fn irs_guest_n(n: usize) -> GuestOs {
        GuestOs::new(crate::GuestConfig::with_irs(), n)
    }

    #[test]
    fn sa_round_counts_match() {
        let mut g = irs_guest(2);
        g.spawn(0);
        g.spawn(1);
        g.start(t(0));
        for _ in 0..5 {
            g.sa_upcall(0);
            g.migrator_run(&[VcpuView::preempted(0.5), VcpuView::running()]);
            // Re-install a current on vCPU0 if the queue has work.
            g.ensure_current(0);
        }
        assert_eq!(g.stats().sa_upcalls, 5);
        g.check_invariants();
    }
}
