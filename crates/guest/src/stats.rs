//! Guest scheduler counters.

/// Counters of guest scheduling and load-balancing activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GuestStats {
    /// Task context switches (a new current was installed on some vCPU).
    pub context_switches: u64,
    /// Wake-ups processed.
    pub wakeups: u64,
    /// Migrations by the periodic (push) balancer.
    pub push_migrations: u64,
    /// Migrations by idle (pull) balancing.
    pub pull_migrations: u64,
    /// Wake-up placements away from the task's previous vCPU.
    pub wake_migrations: u64,
    /// Migrations performed by the IRS migrator (Algorithm 2).
    pub sa_migrations: u64,
    /// IRS migrator targets that were idle vCPUs (Algorithm 2 fast path).
    pub sa_idle_targets: u64,
    /// SA upcalls handled by the receiver.
    pub sa_upcalls: u64,
    /// Wakers that preempted a tagged task in place (Fig 4 pingpong fix).
    pub pingpong_preempts: u64,
    /// Migrations executed by the stopper (vanilla running-task migration).
    pub stopper_migrations: u64,
    /// Times a vCPU went idle and blocked in the hypervisor.
    pub idle_blocks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_zero() {
        let s = GuestStats::default();
        assert_eq!(s, GuestStats::default());
        assert_eq!(s.sa_migrations, 0);
    }
}
