//! Per-vCPU CFS runqueue.
//!
//! A faithful-in-the-essentials model of `cfs_rq`: ready tasks ordered by
//! `vruntime` in a balanced tree, a `min_vruntime` watermark that newly
//! placed tasks are normalized against, and the pick/preempt rules that give
//! the ~6 ms effective slices the paper contrasts with Xen's 30 ms.

use crate::task::TaskId;
use std::collections::BTreeSet;

/// A per-vCPU run queue.
///
/// The runqueue stores only *ready* tasks; the running task is held in
/// [`Runqueue::current`]. `nr_queued + current` is the load the balancers
/// reason about.
#[derive(Debug, Clone, Default)]
pub struct Runqueue {
    /// Ready tasks ordered by `(vruntime, id)`.
    tree: BTreeSet<(u64, TaskId)>,
    /// The task currently executing on this vCPU (from the guest's point of
    /// view — the vCPU itself may be preempted by the hypervisor).
    pub current: Option<TaskId>,
    /// Monotonic floor used to normalize migrated/woken tasks' vruntime.
    pub min_vruntime: u64,
}

impl Runqueue {
    /// Creates an empty runqueue.
    pub fn new() -> Self {
        Runqueue::default()
    }

    /// Inserts a ready task keyed by its vruntime.
    pub fn enqueue(&mut self, vruntime: u64, id: TaskId) {
        let inserted = self.tree.insert((vruntime, id));
        debug_assert!(inserted, "{id} enqueued twice");
    }

    /// Removes a ready task; `vruntime` must be the key it was queued under.
    ///
    /// Returns whether it was present.
    pub fn dequeue(&mut self, vruntime: u64, id: TaskId) -> bool {
        self.tree.remove(&(vruntime, id))
    }

    /// The queued task with the smallest vruntime, if any.
    pub fn leftmost(&self) -> Option<(u64, TaskId)> {
        self.tree.first().copied()
    }

    /// Removes and returns the leftmost task, advancing `min_vruntime`.
    pub fn pick_next(&mut self) -> Option<(u64, TaskId)> {
        let first = self.tree.pop_first();
        if let Some((vr, _)) = first {
            self.min_vruntime = self.min_vruntime.max(vr);
        }
        first
    }

    /// Number of ready (queued, not running) tasks.
    pub fn nr_queued(&self) -> usize {
        self.tree.len()
    }

    /// Tasks wanting CPU on this vCPU (queued + current).
    pub fn nr_running(&self) -> usize {
        self.tree.len() + usize::from(self.current.is_some())
    }

    /// True if nothing is running or queued: the guest-idle condition that
    /// makes the vCPU block in the hypervisor.
    pub fn is_idle(&self) -> bool {
        self.current.is_none() && self.tree.is_empty()
    }

    /// Normalizes a *woken* task's vruntime against this queue so it
    /// neither starves the queue nor monopolizes it.
    ///
    /// Mirrors CFS `place_entity` for wake-ups: the task resumes at
    /// roughly the queue's watermark, keeping any surplus it already had.
    /// **Migrations must use [`Runqueue::migration_vruntime`] instead** —
    /// flooring a migrated task to the destination watermark would erase
    /// the lag that entitles it to run.
    pub fn normalized_vruntime(&self, incoming_vruntime: u64) -> u64 {
        incoming_vruntime.max(self.min_vruntime)
    }

    /// Surplus a migrated task may carry into its new queue (one scheduling
    /// latency period). Re-basing preserves *relative* position, but an
    /// unbounded surplus glues itself to the task across hops: every
    /// balancer move would reset the destination's catch-up race and can
    /// starve the task outright. Real CFS bounds placement credit the same
    /// way (`place_entity` clamps to about one latency period).
    pub const MIGRATION_SURPLUS_CAP: u64 = 6_000_000;

    /// Re-bases a *migrated* task's vruntime from its source queue to this
    /// one, preserving its relative lag or surplus up to
    /// [`Runqueue::MIGRATION_SURPLUS_CAP`] (CFS subtracts the old
    /// `min_vruntime` on dequeue and adds the new one on enqueue).
    pub fn migration_vruntime(&self, incoming_vruntime: u64, src_min_vruntime: u64) -> u64 {
        let rel = incoming_vruntime
            .saturating_sub(src_min_vruntime)
            .min(Self::MIGRATION_SURPLUS_CAP);
        self.min_vruntime.saturating_add(rel)
    }

    /// Iterates over queued tasks in vruntime order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, TaskId)> + '_ {
        self.tree.iter().copied()
    }

    /// Raises the watermark to at least `vruntime` (called as the running
    /// task accrues vruntime, so sleepers re-enter at a fair point).
    pub fn update_min_vruntime(&mut self, vruntime: u64) {
        // min_vruntime may not exceed the leftmost queued key, or a queued
        // task would be re-placed unfairly far ahead.
        let cap = self.leftmost().map(|(vr, _)| vr).unwrap_or(u64::MAX);
        self.min_vruntime = self.min_vruntime.max(vruntime.min(cap));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_next_returns_smallest_vruntime() {
        let mut rq = Runqueue::new();
        rq.enqueue(300, TaskId(0));
        rq.enqueue(100, TaskId(1));
        rq.enqueue(200, TaskId(2));
        assert_eq!(rq.pick_next(), Some((100, TaskId(1))));
        assert_eq!(rq.pick_next(), Some((200, TaskId(2))));
        assert_eq!(rq.pick_next(), Some((300, TaskId(0))));
        assert_eq!(rq.pick_next(), None);
    }

    #[test]
    fn equal_vruntime_breaks_ties_by_id() {
        let mut rq = Runqueue::new();
        rq.enqueue(100, TaskId(5));
        rq.enqueue(100, TaskId(2));
        assert_eq!(rq.pick_next(), Some((100, TaskId(2))));
    }

    #[test]
    fn pick_advances_min_vruntime() {
        let mut rq = Runqueue::new();
        rq.enqueue(500, TaskId(0));
        rq.pick_next();
        assert_eq!(rq.min_vruntime, 500);
        // A long sleeper waking with tiny vruntime is normalized forward.
        assert_eq!(rq.normalized_vruntime(10), 500);
        // A task already ahead keeps its surplus.
        assert_eq!(rq.normalized_vruntime(900), 900);
    }

    #[test]
    fn nr_running_counts_current() {
        let mut rq = Runqueue::new();
        assert!(rq.is_idle());
        rq.current = Some(TaskId(0));
        assert_eq!(rq.nr_running(), 1);
        rq.enqueue(1, TaskId(1));
        assert_eq!(rq.nr_running(), 2);
        assert_eq!(rq.nr_queued(), 1);
        assert!(!rq.is_idle());
    }

    #[test]
    fn dequeue_requires_matching_key() {
        let mut rq = Runqueue::new();
        rq.enqueue(100, TaskId(0));
        assert!(!rq.dequeue(99, TaskId(0)));
        assert!(rq.dequeue(100, TaskId(0)));
        assert_eq!(rq.nr_queued(), 0);
    }

    #[test]
    fn update_min_vruntime_capped_by_leftmost() {
        let mut rq = Runqueue::new();
        rq.enqueue(100, TaskId(0));
        rq.update_min_vruntime(500);
        assert_eq!(rq.min_vruntime, 100, "capped by the queued task");
        rq.dequeue(100, TaskId(0));
        rq.update_min_vruntime(500);
        assert_eq!(rq.min_vruntime, 500);
    }

    #[test]
    fn iter_is_vruntime_ordered() {
        let mut rq = Runqueue::new();
        rq.enqueue(3, TaskId(0));
        rq.enqueue(1, TaskId(1));
        rq.enqueue(2, TaskId(2));
        let order: Vec<TaskId> = rq.iter().map(|(_, id)| id).collect();
        assert_eq!(order, vec![TaskId(1), TaskId(2), TaskId(0)]);
    }
}

#[cfg(test)]
mod migration_tests {
    use super::*;

    #[test]
    fn migration_preserves_relative_lag() {
        let mut src = Runqueue::new();
        let mut dst = Runqueue::new();
        src.min_vruntime = 1_000;
        dst.min_vruntime = 5_000;
        // A task 300 behind its source watermark... (vr can't be below the
        // watermark while queued; model a task 300 *ahead*.)
        assert_eq!(dst.migration_vruntime(1_300, src.min_vruntime), 5_300);
        // A task exactly at the watermark lands exactly at the new one.
        assert_eq!(dst.migration_vruntime(1_000, src.min_vruntime), 5_000);
        let _ = &mut src;
    }

    #[test]
    fn migration_surplus_is_capped() {
        let mut dst = Runqueue::new();
        dst.min_vruntime = 1_000;
        // A task 16 ms ahead of its source clock carries at most one
        // latency period into the new queue.
        let placed = dst.migration_vruntime(16_000_000, 0);
        assert_eq!(placed, 1_000 + Runqueue::MIGRATION_SURPLUS_CAP);
    }

    #[test]
    fn migration_to_a_behind_queue_does_not_inflate() {
        let mut dst = Runqueue::new();
        dst.min_vruntime = 10;
        // Unlike normalized_vruntime (a max), migration re-bases downward
        // too: the migrated task competes fairly on the new queue.
        assert_eq!(dst.migration_vruntime(5_000, 4_990), 20);
        assert!(dst.migration_vruntime(5_000, 4_990) < dst.normalized_vruntime(5_000));
    }
}
