//! Actions emitted by guest state transitions, and the hypervisor view the
//! guest receives through paravirtual channels.

use crate::task::TaskId;
use irs_xen::{RunState, SchedOp};
use std::fmt;

/// Externally visible consequence of a guest scheduling decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuestAction {
    /// `task` became current on `vcpu`: resume executing its program.
    RunTask {
        /// vCPU index within this guest.
        vcpu: usize,
        /// The task now current.
        task: TaskId,
    },
    /// `task` was descheduled on `vcpu`: checkpoint its execution progress.
    StopTask {
        /// vCPU index within this guest.
        vcpu: usize,
        /// The task that stopped.
        task: TaskId,
    },
    /// Return control to the hypervisor (`HYPERVISOR_sched_op`).
    ///
    /// Emitted when a vCPU goes idle (`SCHEDOP_block`) and as the SA
    /// acknowledgement (either op, per the context switcher's decision).
    Hypercall {
        /// vCPU index within this guest performing the hypercall.
        vcpu: usize,
        /// The scheduling operation.
        op: SchedOp,
    },
    /// Ask the hypervisor to wake `vcpu` (a task was enqueued on a vCPU
    /// that is blocked in the hypervisor).
    WakeVcpu {
        /// vCPU index within this guest.
        vcpu: usize,
    },
    /// Wake the IRS migrator kernel thread (asynchronously, after
    /// [`crate::GuestSaConfig::migrator_delay`]).
    WakeMigrator,
    /// `task` moved between runqueues; the embedder applies the cache
    /// warm-up penalty to its next compute segment.
    TaskMigrated {
        /// The migrated task.
        task: TaskId,
        /// Source vCPU index.
        from: usize,
        /// Destination vCPU index.
        to: usize,
    },
}

impl fmt::Display for GuestAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuestAction::RunTask { vcpu, task } => write!(f, "run {task} on v{vcpu}"),
            GuestAction::StopTask { vcpu, task } => write!(f, "stop {task} on v{vcpu}"),
            GuestAction::Hypercall { vcpu, op } => write!(f, "v{vcpu} hypercall {op}"),
            GuestAction::WakeVcpu { vcpu } => write!(f, "wake v{vcpu}"),
            GuestAction::WakeMigrator => write!(f, "wake migrator"),
            GuestAction::TaskMigrated { task, from, to } => {
                write!(f, "migrate {task}: v{from} -> v{to}")
            }
        }
    }
}

/// What the guest can learn about one of its own vCPUs from the hypervisor:
/// the actual runstate (via `VCPUOP_get_runstate`) and the recent steal
/// fraction (via the paravirtual steal clock).
///
/// The embedding simulation constructs these views; the guest consumes them
/// in the migrator (Algorithm 2 line 7) and in `rt_avg` load estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VcpuView {
    /// Actual hypervisor runstate of the vCPU.
    pub state: RunState,
    /// Fraction of recent time stolen (runnable-but-preempted), in `[0, 1]`.
    pub steal_frac: f64,
}

impl VcpuView {
    /// A view of an uncontended running vCPU (useful default in tests).
    pub fn running() -> Self {
        VcpuView {
            state: RunState::Running,
            steal_frac: 0.0,
        }
    }

    /// A view of a vCPU that is idle in the hypervisor.
    pub fn blocked() -> Self {
        VcpuView {
            state: RunState::Blocked,
            steal_frac: 0.0,
        }
    }

    /// A view of a preempted vCPU with the given recent steal fraction.
    pub fn preempted(steal_frac: f64) -> Self {
        VcpuView {
            state: RunState::Runnable,
            steal_frac,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_render() {
        assert_eq!(
            GuestAction::RunTask { vcpu: 1, task: TaskId(3) }.to_string(),
            "run task3 on v1"
        );
        assert_eq!(
            GuestAction::Hypercall { vcpu: 0, op: SchedOp::Block }.to_string(),
            "v0 hypercall SCHEDOP_block"
        );
        assert_eq!(
            GuestAction::TaskMigrated { task: TaskId(2), from: 0, to: 3 }.to_string(),
            "migrate task2: v0 -> v3"
        );
    }

    #[test]
    fn view_constructors() {
        assert_eq!(VcpuView::running().state, RunState::Running);
        assert_eq!(VcpuView::blocked().state, RunState::Blocked);
        let p = VcpuView::preempted(0.5);
        assert_eq!(p.state, RunState::Runnable);
        assert!((p.steal_frac - 0.5).abs() < 1e-12);
    }
}
