//! Guest load balancing: wake-up placement, periodic (push) balancing, idle
//! (pull) balancing, and the stopper thread.
//!
//! These are the mechanisms §2.3 dissects. Two structural limits — kept
//! deliberately — explain why the vanilla guest cannot mitigate LHP/LWP:
//!
//! 1. **Only `Ready` tasks move.** A task that is current on a vCPU is
//!    `Running` to the guest even when the hypervisor preempted that vCPU,
//!    so pull migration skips exactly the lock holder that matters.
//! 2. **Hypervisor imbalance is invisible.** The balancers act on guest
//!    runqueue lengths (scaled by the steal clock where available); a
//!    preempted vCPU with one pinned task looks perfectly balanced.
//!
//! The wake-up path additionally carries IRS's Fig 4 modification: when the
//! task occupying the waker's previous vCPU is tagged `preempt_migrated`,
//! the waker preempts it in place rather than migrating away, preventing
//! pingpong migration.

use crate::actions::{GuestAction, VcpuView};
use crate::guest::{GuestOs, StopRequest};
use crate::task::{TaskId, TaskState};
use irs_xen::RunState;

impl GuestOs {
    // ==================================================================
    // wake-up placement
    // ==================================================================

    /// Wakes a blocked task: chooses a vCPU, enqueues, and applies wakeup
    /// preemption. Returns the actions for the embedder (including
    /// `WakeVcpu` when the chosen vCPU is idle in the hypervisor).
    ///
    /// Waking a task that is not blocked is a no-op (spurious wake).
    pub fn wake(&mut self, task: TaskId, views: &[VcpuView]) -> Vec<GuestAction> {
        let mut out = self.out_buf();
        if self.tasks[task.0].state != TaskState::Blocked {
            return out;
        }
        self.stats.wakeups += 1;
        let prev = self.tasks[task.0].cpu;

        // --- target selection -----------------------------------------
        let mut preempt_tagged = false;
        let target = if self.rqs[prev].current.is_none() {
            // Previous vCPU is free: wake in place.
            prev
        } else if self.pingpong_tagging_enabled()
            && self.rqs[prev]
                .current
                .is_some_and(|c| self.tasks[c.0].preempt_migrated)
        {
            // Fig 4: the occupant was migrated here off a preempted vCPU;
            // wake in place and preempt it instead of migrating away.
            preempt_tagged = true;
            prev
        } else if let Some(idle) = self.find_guest_idle_vcpu() {
            // select_idle_sibling: an idle vCPU runs the waker immediately.
            // (A *hypervisor-preempted* vCPU never looks idle here — its
            // stranded current task still occupies it — so this choice can
            // still be a bad one when the idle vCPU's pCPU is contended;
            // the guest cannot tell. That is the semantic gap.)
            idle
        } else {
            // Everyone is busy: least loaded by the steal-scaled rt_avg.
            self.least_loaded_vcpu(prev, views)
        };

        // --- enqueue with sleeper credit --------------------------------
        // Cross-queue wakes re-base the vruntime into the target queue's
        // clock first (CFS `migrate_task_rq_fair` does this for every
        // cross-rq move) — queue clocks diverge arbitrarily, and carrying
        // absolute vruntimes across them inflates without bound.
        let base_vr = if target != prev {
            self.rqs[target]
                .migration_vruntime(self.tasks[task.0].vruntime, self.rqs[prev].min_vruntime)
        } else {
            self.tasks[task.0].vruntime
        };
        let sleeper_bonus = self.cfg.sched_latency.as_nanos() / 2;
        let floor = self.rqs[target].min_vruntime.saturating_sub(sleeper_bonus);
        let vr = base_vr.max(floor);
        self.tasks[task.0].vruntime = vr;
        self.tasks[task.0].state = TaskState::Ready;
        if target != prev {
            self.tasks[task.0].cpu = target;
            self.tasks[task.0].migrations += 1;
            self.stats.wake_migrations += 1;
            out.push(GuestAction::TaskMigrated {
                task,
                from: prev,
                to: target,
            });
        }
        self.rqs[target].enqueue(vr, task);

        // --- run / preempt ----------------------------------------------
        match self.rqs[target].current {
            None => {
                if views[target].state == RunState::Running {
                    // The vCPU is executing its idle loop right now: it
                    // picks the waker immediately.
                    self.pick_and_run(target, &mut out);
                } else {
                    // Idle in the hypervisor: ask for a (BOOSTed) wake; the
                    // embedder calls `ensure_current` when it starts.
                    out.push(GuestAction::WakeVcpu { vcpu: target });
                }
            }
            Some(cur) => {
                let should_preempt = if preempt_tagged {
                    self.stats.pingpong_preempts += 1;
                    true
                } else {
                    let gran = self.tasks[cur.0].vruntime_delta(self.cfg.wakeup_granularity);
                    self.tasks[cur.0].vruntime > vr.saturating_add(gran)
                };
                // An in-place switch needs the vCPU to actually execute; on
                // a preempted vCPU the switch happens when it resumes (the
                // tick path picks it up).
                if should_preempt && views[target].state == RunState::Running {
                    self.deschedule_current(target, TaskState::Ready, &mut out);
                    self.run_specific(target, task, &mut out);
                }
            }
        }
        out
    }

    fn pingpong_tagging_enabled(&self) -> bool {
        self.cfg
            .sa
            .as_ref()
            .is_some_and(|sa| sa.pingpong_tagging)
    }

    /// First guest-idle vCPU (no current, empty queue), if any.
    pub(crate) fn find_guest_idle_vcpu(&self) -> Option<usize> {
        (0..self.rqs.len()).find(|&v| self.rqs[v].is_idle())
    }

    /// The vCPU with the smallest steal-scaled load, preferring `prev`.
    #[allow(clippy::needless_range_loop)] // v indexes rqs *and* views
    fn least_loaded_vcpu(&self, prev: usize, views: &[VcpuView]) -> usize {
        let mut best = prev;
        let mut best_load = self.rt_avg(prev, &views[prev]);
        for v in 0..self.rqs.len() {
            let load = self.rt_avg(v, &views[v]);
            if load + 1e-9 < best_load {
                best = v;
                best_load = load;
            }
        }
        best
    }

    // ==================================================================
    // periodic (push) and idle (pull) balancing
    // ==================================================================

    /// Periodic balance toward `vcpu`: if the busiest runqueue's
    /// steal-scaled load exceeds this one's by more than one task, pull one
    /// *queued* task over. Clears the Fig 4 tag — this is the "existing
    /// Linux balancer moves the tagged task back" path.
    #[allow(clippy::needless_range_loop)] // v indexes rqs *and* views
    pub(crate) fn periodic_balance(
        &mut self,
        vcpu: usize,
        views: &[VcpuView],
        out: &mut Vec<GuestAction>,
    ) {
        let my_load = self.rt_avg(vcpu, &views[vcpu]);
        let mut busiest: Option<(f64, usize)> = None;
        for v in 0..self.rqs.len() {
            if v == vcpu || self.rqs[v].nr_queued() == 0 {
                continue;
            }
            let load = self.rt_avg(v, &views[v]);
            if busiest.is_none_or(|(bl, _)| load > bl) {
                busiest = Some((load, v));
            }
        }
        let Some((busiest_load, from)) = busiest else {
            return;
        };
        // Pull only when the gap exceeds one *scaled* task-load on the
        // source: with every vCPU suffering similar steal, {2,1} queues are
        // balanced, and pulling would only bounce the task between queues
        // (resetting its preemption race each hop — a starvation recipe).
        if busiest_load <= my_load + (1.0 + views[from].steal_frac) {
            return;
        }
        // Steal the coldest queued task (largest vruntime): least likely to
        // be cache-hot on its current vCPU.
        let Some((_, victim)) = self.rqs[from].iter().last() else {
            return;
        };
        self.tasks[victim.0].preempt_migrated = false;
        self.migrate_queued(victim, vcpu, out);
        self.stats.push_migrations += 1;
        if self.rqs[vcpu].current.is_none() {
            self.pick_and_run(vcpu, out);
        }
    }

    /// Idle balance: a vCPU about to idle pulls one queued task from the
    /// busiest runqueue. **Running tasks are never pulled**, even if their
    /// vCPU is hypervisor-preempted — the semantic gap, verbatim.
    #[allow(clippy::needless_range_loop)] // v indexes rqs *and* views
    pub(crate) fn idle_pull(
        &mut self,
        vcpu: usize,
        views: &[VcpuView],
        out: &mut Vec<GuestAction>,
    ) {
        let mut busiest: Option<(f64, usize)> = None;
        for v in 0..self.rqs.len() {
            if v == vcpu || self.rqs[v].nr_queued() == 0 {
                continue;
            }
            let load = self.rt_avg(v, &views[v]);
            if busiest.is_none_or(|(bl, _)| load > bl) {
                busiest = Some((load, v));
            }
        }
        let Some((_, from)) = busiest else {
            return;
        };
        let Some((_, victim)) = self.rqs[from].iter().last() else {
            return;
        };
        self.tasks[victim.0].preempt_migrated = false;
        self.migrate_queued(victim, vcpu, out);
        self.stats.pull_migrations += 1;
    }

    // ==================================================================
    // the stopper thread (vanilla running-task migration)
    // ==================================================================

    /// Requests migration of `task` to vCPU `dest` through the vanilla
    /// kernel path (`migration_cpu_stop` semantics):
    ///
    /// * a **queued** task moves immediately;
    /// * a **running** task needs the stopper to run **on its source
    ///   vCPU**, so the request parks until that vCPU's next tick — which
    ///   only fires when the vCPU actually executes. This is the mechanism
    ///   measured by Fig 1(b): each co-located VM adds one hypervisor
    ///   scheduling delay (~30 ms) before the source vCPU runs again.
    ///
    /// Returns actions for an immediate (queued-task) migration; `None`-like
    /// empty actions mean the stopper was parked.
    pub fn request_stop_migration(&mut self, task: TaskId, dest: usize) -> Vec<GuestAction> {
        let mut out = self.out_buf();
        match self.tasks[task.0].state {
            TaskState::Ready => {
                if self.tasks[task.0].in_custody {
                    // In IRS custody; the migrator will place it.
                    return out;
                }
                self.migrate_queued(task, dest, &mut out);
                self.stats.stopper_migrations += 1;
            }
            TaskState::Running => {
                self.stopper_pending.push(StopRequest { task, dest });
            }
            TaskState::Blocked | TaskState::Exited => {
                // Nothing to do: a blocked task migrates at wake-up.
            }
        }
        out
    }

    /// Executes pending stopper work whose source vCPU is `vcpu` (called
    /// from the tick, i.e. only while the vCPU truly runs).
    pub(crate) fn run_stopper(&mut self, vcpu: usize, out: &mut Vec<GuestAction>) {
        let mut i = 0;
        while i < self.stopper_pending.len() {
            let req = self.stopper_pending[i];
            let on_this_vcpu = self.tasks[req.task.0].cpu == vcpu;
            if !on_this_vcpu {
                i += 1;
                continue;
            }
            self.stopper_pending.remove(i);
            match self.tasks[req.task.0].state {
                TaskState::Running => {
                    // Deschedule on the source and move.
                    debug_assert_eq!(self.rqs[vcpu].current, Some(req.task));
                    self.deschedule_current(vcpu, TaskState::Ready, out);
                    self.migrate_queued(req.task, req.dest, out);
                    self.stats.stopper_migrations += 1;
                    if self.rqs[vcpu].leftmost().is_some() {
                        self.pick_and_run(vcpu, out);
                    }
                    if self.rqs[req.dest].current.is_none() {
                        self.pick_and_run(req.dest, out);
                        // If the destination vCPU is idle in the hypervisor
                        // the embedder must wake it.
                        out.push(GuestAction::WakeVcpu { vcpu: req.dest });
                    }
                }
                TaskState::Ready
                    // A task can land in IRS-migrator custody (Ready but
                    // unqueued) between the stop request and this tick; the
                    // migrator owns its placement then.
                    if !self.tasks[req.task.0].in_custody => {
                        self.migrate_queued(req.task, req.dest, out);
                        self.stats.stopper_migrations += 1;
                    }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GuestConfig;
    use irs_sim::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn all_running(n: usize) -> Vec<VcpuView> {
        vec![VcpuView::running(); n]
    }

    #[test]
    fn wake_in_place_when_prev_vcpu_is_free() {
        let mut g = GuestOs::new(GuestConfig::default(), 2);
        let a = g.spawn(0);
        g.spawn(1);
        g.start(t(0));
        g.block_current(0, t(1), &all_running(2));
        let acts = g.wake(a, &all_running(2));
        g.check_invariants();
        assert_eq!(g.task(a).cpu, 0);
        assert_eq!(g.current(0), Some(a), "idle-loop vCPU picks immediately");
        assert!(!acts
            .iter()
            .any(|x| matches!(x, GuestAction::TaskMigrated { .. })));
    }

    #[test]
    fn wake_emits_wake_vcpu_when_target_is_hv_blocked() {
        let mut g = GuestOs::new(GuestConfig::default(), 2);
        let a = g.spawn(0);
        g.spawn(1);
        g.start(t(0));
        g.block_current(0, t(1), &all_running(2));
        let views = vec![VcpuView::blocked(), VcpuView::running()];
        let acts = g.wake(a, &views);
        g.check_invariants();
        assert_eq!(g.current(0), None, "switch deferred until the vCPU wakes");
        assert!(acts
            .iter()
            .any(|x| matches!(x, GuestAction::WakeVcpu { vcpu: 0 })));
        // The embedder then starts the vCPU and installs the task:
        let acts2 = g.ensure_current(0);
        assert_eq!(g.current(0), Some(a));
        assert!(acts2
            .iter()
            .any(|x| matches!(x, GuestAction::RunTask { .. })));
    }

    #[test]
    fn wake_moves_to_idle_sibling_when_prev_is_busy() {
        let mut g = GuestOs::new(GuestConfig::default(), 2);
        let a = g.spawn(0);
        g.spawn(0); // keeps vCPU0 busy after a blocks
        g.start(t(0));
        g.block_current(0, t(1), &all_running(2)); // a blocks; b runs on v0
        let acts = g.wake(a, &all_running(2));
        g.check_invariants();
        assert_eq!(g.task(a).cpu, 1, "woken on the idle sibling");
        assert_eq!(g.current(1), Some(a));
        assert!(acts
            .iter()
            .any(|x| matches!(x, GuestAction::TaskMigrated { from: 0, to: 1, .. })));
        assert_eq!(g.stats().wake_migrations, 1);
    }

    #[test]
    fn pingpong_fix_wakes_in_place_and_preempts_tagged_task() {
        let mut g = GuestOs::new(GuestConfig::with_irs(), 2);
        let t1 = g.spawn(0); // will play the migrated lock holder
        let t2 = g.spawn(1); // the waiter whose vCPU t1 invades
        g.start(t(0));
        // t2 blocks on vCPU1; t1 gets "migrated" there and tagged (as the
        // IRS migrator would after vCPU0's preemption).
        g.block_current(1, t(1), &all_running(2));
        let mut out = Vec::new();
        g.deschedule_current(0, TaskState::Ready, &mut out);
        g.migrate_queued(t1, 1, &mut out);
        g.tasks[t1.0].preempt_migrated = true;
        g.pick_and_run(1, &mut out);
        assert_eq!(g.current(1), Some(t1));
        // t2 wakes: vanilla would migrate it away (vCPU1 busy); the Fig 4
        // fix wakes it in place and preempts the tagged t1.
        let acts = g.wake(t2, &all_running(2));
        g.check_invariants();
        assert_eq!(g.task(t2).cpu, 1, "woken on its own vCPU");
        assert_eq!(g.current(1), Some(t2), "waker preempted the intruder");
        assert_eq!(g.task(t1).state, TaskState::Ready);
        assert_eq!(g.stats().pingpong_preempts, 1);
        assert!(!acts
            .iter()
            .any(|x| matches!(x, GuestAction::TaskMigrated { task, .. } if *task == t2)));
    }

    #[test]
    fn vanilla_guest_never_pingpong_preempts() {
        let mut g = GuestOs::new(GuestConfig::default(), 2);
        let t1 = g.spawn(0);
        let t2 = g.spawn(1);
        g.start(t(0));
        g.block_current(1, t(1), &all_running(2));
        let mut out = Vec::new();
        g.deschedule_current(0, TaskState::Ready, &mut out);
        g.migrate_queued(t1, 1, &mut out);
        g.tasks[t1.0].preempt_migrated = true; // tag exists but tagging is off
        g.pick_and_run(1, &mut out);
        g.wake(t2, &all_running(2));
        g.check_invariants();
        assert_eq!(g.stats().pingpong_preempts, 0);
        // t2 migrated away to the now-idle vCPU0 — the pingpong the paper
        // diagnoses.
        assert_eq!(g.task(t2).cpu, 0);
    }

    #[test]
    fn periodic_balance_pulls_from_busiest() {
        let mut g = GuestOs::new(GuestConfig::default(), 2);
        g.spawn(0);
        g.spawn(0);
        g.spawn(0); // v0: 3 tasks
        g.spawn(1); // v1: 1 task
        g.start(t(0));
        let mut out = Vec::new();
        g.periodic_balance(1, &all_running(2), &mut out);
        g.check_invariants();
        assert_eq!(g.stats().push_migrations, 1);
        assert_eq!(g.rq(1).nr_running(), 2);
        assert_eq!(g.rq(0).nr_running(), 2);
    }

    #[test]
    fn periodic_balance_respects_balance() {
        let mut g = GuestOs::new(GuestConfig::default(), 2);
        g.spawn(0);
        g.spawn(0);
        g.spawn(1);
        g.start(t(0));
        let mut out = Vec::new();
        g.periodic_balance(1, &all_running(2), &mut out);
        assert_eq!(g.stats().push_migrations, 0, "2 vs 1 is balanced enough");
    }

    #[test]
    fn steal_awareness_biases_balance() {
        // v0 has 2 tasks but 100% steal: its scaled load (4.0) exceeds
        // v1's (1.0) enough to justify pulling even though raw counts are
        // 2 vs 1.
        let mut g = GuestOs::new(GuestConfig::default(), 2);
        g.spawn(0);
        g.spawn(0);
        g.spawn(1);
        g.start(t(0));
        let views = vec![VcpuView::preempted(1.0), VcpuView::running()];
        let mut out = Vec::new();
        g.periodic_balance(1, &views, &mut out);
        assert_eq!(g.stats().push_migrations, 1);
    }

    #[test]
    fn pull_never_takes_a_running_task() {
        // v0 runs one task (its current); v1 goes idle. Nothing is queued
        // anywhere, so idle pull must find nothing — even though v0 might be
        // hypervisor-preempted with its "running" task stranded.
        let mut g = GuestOs::new(GuestConfig::default(), 2);
        let a = g.spawn(0);
        let b = g.spawn(1);
        g.start(t(0));
        let views = vec![VcpuView::preempted(0.9), VcpuView::running()];
        let acts = g.block_current(1, t(1), &views);
        g.check_invariants();
        assert_eq!(g.task(a).cpu, 0, "running task may not be pulled");
        assert_eq!(g.current(0), Some(a));
        assert!(acts.iter().any(|x| matches!(
            x,
            GuestAction::Hypercall { vcpu: 1, op: irs_xen::SchedOp::Block }
        )));
        let _ = b;
    }

    #[test]
    fn idle_pull_takes_a_queued_task() {
        let mut g = GuestOs::new(GuestConfig::default(), 2);
        g.spawn(0);
        let queued = g.spawn(0);
        let b = g.spawn(1);
        g.start(t(0));
        let acts = g.block_current(1, t(1), &all_running(2));
        g.check_invariants();
        assert_eq!(g.task(queued).cpu, 1, "queued task pulled to idle vCPU");
        assert_eq!(g.current(1), Some(queued));
        assert_eq!(g.stats().pull_migrations, 1);
        assert!(!acts.iter().any(|x| matches!(x, GuestAction::Hypercall { .. })));
        let _ = b;
    }

    #[test]
    fn stopper_migrates_queued_task_immediately() {
        let mut g = GuestOs::new(GuestConfig::default(), 2);
        g.spawn(0);
        let queued = g.spawn(0);
        g.start(t(0));
        let acts = g.request_stop_migration(queued, 1);
        g.check_invariants();
        assert_eq!(g.task(queued).cpu, 1);
        assert!(acts
            .iter()
            .any(|x| matches!(x, GuestAction::TaskMigrated { .. })));
    }

    #[test]
    fn stopper_waits_for_the_source_vcpu_to_run() {
        let mut g = GuestOs::new(GuestConfig::default(), 2);
        let running = g.spawn(0);
        g.start(t(0));
        let acts = g.request_stop_migration(running, 1);
        assert!(acts.is_empty(), "running task: stopper parked");
        assert_eq!(g.task(running).cpu, 0);
        // The migration completes at the source vCPU's next (real) tick.
        let out = g.tick(0, t(1), &all_running(2));
        g.check_invariants();
        assert_eq!(g.task(running).cpu, 1);
        assert_eq!(g.current(1), Some(running));
        assert_eq!(g.stats().stopper_migrations, 1);
        assert!(out
            .actions
            .iter()
            .any(|x| matches!(x, GuestAction::WakeVcpu { vcpu: 1 })));
    }

    #[test]
    fn stopper_ignores_blocked_tasks() {
        let mut g = GuestOs::new(GuestConfig::default(), 2);
        let a = g.spawn(0);
        g.start(t(0));
        g.block_current(0, t(1), &all_running(2));
        let acts = g.request_stop_migration(a, 1);
        assert!(acts.is_empty());
        assert_eq!(g.task(a).cpu, 0, "blocked tasks migrate at wake-up");
    }
}
