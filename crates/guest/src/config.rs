//! Guest kernel configuration.

use irs_sim::SimTime;

/// Configuration of the guest scheduler, defaults matching Linux 3.18's CFS
/// as characterized in the paper (§5.2 cites the guest's ~6 ms slices).
#[derive(Debug, Clone)]
pub struct GuestConfig {
    /// Periodic scheduler tick (1 ms, `CONFIG_HZ=1000`).
    pub tick_period: SimTime,
    /// CFS targeted scheduling latency (6 ms).
    pub sched_latency: SimTime,
    /// CFS minimum preemption granularity (0.75 ms).
    pub min_granularity: SimTime,
    /// Wakeup preemption granularity (1 ms).
    pub wakeup_granularity: SimTime,
    /// Run the periodic (push) load balancer every this many ticks.
    pub balance_interval_ticks: u64,
    /// IRS guest support; `None` models a vanilla kernel that has no
    /// `VIRQ_SA_UPCALL` handler and simply ignores SA notifications.
    pub sa: Option<GuestSaConfig>,
}

impl Default for GuestConfig {
    fn default() -> Self {
        GuestConfig {
            tick_period: SimTime::from_millis(1),
            sched_latency: SimTime::from_millis(6),
            min_granularity: SimTime::from_micros(750),
            wakeup_granularity: SimTime::from_millis(1),
            balance_interval_ticks: 4,
            sa: None,
        }
    }
}

impl GuestConfig {
    /// A guest with IRS support at its default parameters.
    pub fn with_irs() -> Self {
        GuestConfig {
            sa: Some(GuestSaConfig::default()),
            ..GuestConfig::default()
        }
    }
}

/// Parameters of the guest half of IRS (§4.2).
#[derive(Debug, Clone)]
pub struct GuestSaConfig {
    /// Cost of the vIRQ handler (the SA receiver raising the softirq).
    pub receiver_delay: SimTime,
    /// Cost of the context switcher softirq (deschedule + pick next). The
    /// paper profiles the whole SA round at 20–26 µs; receiver + switcher
    /// here default to 2 + 20 µs.
    pub context_switch_cost: SimTime,
    /// Delay before the asynchronously woken migrator thread runs.
    pub migrator_delay: SimTime,
    /// Fig 4 pingpong-avoidance tagging; disable for the ablation bench.
    pub pingpong_tagging: bool,
    /// Algorithm 2's idle-vCPU fast path (line 8-10). Disabling it makes
    /// the migrator rank every candidate purely by `rt_avg` — the design
    /// ablation called out in DESIGN.md §5.
    pub idle_first: bool,
}

impl Default for GuestSaConfig {
    fn default() -> Self {
        GuestSaConfig {
            receiver_delay: SimTime::from_micros(2),
            context_switch_cost: SimTime::from_micros(20),
            migrator_delay: SimTime::from_micros(5),
            pingpong_tagging: true,
            idle_first: true,
        }
    }
}

impl GuestSaConfig {
    /// Total delay the SA round imposes on the hypervisor's schedule path
    /// (receiver + context switch; the migrator runs asynchronously and
    /// does not hold up the preemption).
    pub fn sa_round_delay(&self) -> SimTime {
        self.receiver_delay + self.context_switch_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_linux_cfs() {
        let cfg = GuestConfig::default();
        assert_eq!(cfg.tick_period, SimTime::from_millis(1));
        assert_eq!(cfg.sched_latency, SimTime::from_millis(6));
        assert!(cfg.sa.is_none());
    }

    #[test]
    fn sa_round_delay_is_in_the_papers_band() {
        // Paper §3.1: 20–26 µs added to the hypervisor scheduling path.
        let sa = GuestSaConfig::default();
        let d = sa.sa_round_delay();
        assert!(d >= SimTime::from_micros(20) && d <= SimTime::from_micros(26));
    }

    #[test]
    fn with_irs_enables_sa() {
        assert!(GuestConfig::with_irs().sa.is_some());
    }
}
