//! The guest's softirq layer (§4.2).
//!
//! IRS implements its context switcher as the bottom half of the new
//! `VIRQ_SA_UPCALL` interrupt, as a softirq (`UPCALL_SOFTIRQ`) deliberately
//! prioritized **below** `TIMER_SOFTIRQ`: when a timer interrupt and an SA
//! arrive together, the timer's task switching must run first, so a task
//! that was about to be descheduled anyway is not pointlessly migrated.
//! This module makes that ordering structural: [`Softirq`] handlers run in
//! priority order inside `GuestOs::process_softirqs`.

use crate::actions::GuestAction;
use irs_xen::SchedOp;

/// Softirq lines, in priority order (lower = runs first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Softirq {
    /// `TIMER_SOFTIRQ` — the scheduler tick bottom half.
    Timer,
    /// `UPCALL_SOFTIRQ` — the IRS context switcher (lower priority,
    /// paper §4.2).
    Upcall,
}

impl Softirq {
    pub(crate) const fn bit(self) -> u8 {
        match self {
            Softirq::Timer => 0b01,
            Softirq::Upcall => 0b10,
        }
    }
}

/// Result of one softirq processing pass on a vCPU.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SoftirqOutcome {
    /// Context-switch notifications, balancing moves, wake requests.
    pub actions: Vec<GuestAction>,
    /// If the upcall softirq ran, the acknowledgement to send to the
    /// hypervisor via `HYPERVISOR_sched_op` (completing the SA round).
    pub sa_ack: Option<SchedOp>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_bits_are_distinct() {
        assert_ne!(Softirq::Timer.bit(), Softirq::Upcall.bit());
        assert_eq!(Softirq::Timer.bit() | Softirq::Upcall.bit(), 0b11);
    }

    #[test]
    fn default_outcome_is_empty() {
        let o = SoftirqOutcome::default();
        assert!(o.actions.is_empty());
        assert!(o.sa_ack.is_none());
    }
}
