//! The guest kernel aggregate: tasks, runqueues, tick handling, and the
//! basic scheduling entry points. Load balancing lives in
//! [`crate::balance`], the IRS machinery in [`crate::sa`].

use crate::actions::{GuestAction, VcpuView};
use crate::config::GuestConfig;
use crate::rq::Runqueue;
use crate::softirq::{Softirq, SoftirqOutcome};
use crate::stats::GuestStats;
use crate::task::{Task, TaskId, TaskState, NICE0_WEIGHT};
use irs_sim::trace::{TraceEvent, TraceRing};
use irs_sim::SimTime;
use irs_xen::SchedOp;
use std::collections::VecDeque;

/// A pending stopper-thread migration (vanilla running-task migration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StopRequest {
    pub task: TaskId,
    pub dest: usize,
}

/// The Linux-like guest kernel of one VM.
///
/// See the [crate-level documentation](crate) for scope and an example.
///
/// `GuestOs` is `Clone` for `System::snapshot()` checkpointing: the clone
/// copies all CFS/softirq/migrator state; the embedded trace ring clones
/// its configuration but starts empty (rings are observability, not state).
#[derive(Debug, Clone)]
pub struct GuestOs {
    pub(crate) cfg: GuestConfig,
    pub(crate) tasks: Vec<Task>,
    pub(crate) rqs: Vec<Runqueue>,
    /// Tasks descheduled by the SA context switcher, awaiting the migrator.
    pub(crate) migrator_pending: VecDeque<TaskId>,
    /// Stopper-thread requests, keyed by source vCPU at execution time.
    pub(crate) stopper_pending: Vec<StopRequest>,
    pub(crate) stats: GuestStats,
    /// Recycled action buffers — public entry points pop one instead of
    /// allocating, and the embedder hands drained buffers back via
    /// [`GuestOs::recycle_actions`].
    pub(crate) spare_bufs: Vec<Vec<GuestAction>>,
    /// Pending softirq bits per vCPU (see [`crate::softirq`]).
    softirq_pending: Vec<u8>,
    tick_counts: Vec<u64>,
    started: bool,
    /// Typed trace bus for context-switch decisions (disabled by default).
    trace: TraceRing,
    /// VM index stamped into emitted trace events (set by `enable_trace`).
    trace_vm: usize,
    /// Latest virtual time the embedder synced; entry points without a
    /// `now` parameter timestamp their trace events with this.
    clock: SimTime,
}

impl GuestOs {
    /// Creates a guest kernel managing `n_vcpus` virtual CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `n_vcpus == 0`.
    pub fn new(cfg: GuestConfig, n_vcpus: usize) -> Self {
        assert!(n_vcpus > 0, "a guest needs at least one vCPU");
        GuestOs {
            cfg,
            tasks: Vec::new(),
            rqs: (0..n_vcpus).map(|_| Runqueue::new()).collect(),
            migrator_pending: VecDeque::new(),
            stopper_pending: Vec::new(),
            stats: GuestStats::default(),
            spare_bufs: Vec::new(),
            softirq_pending: vec![0; n_vcpus],
            tick_counts: vec![0; n_vcpus],
            started: false,
            trace: TraceRing::disabled(),
            trace_vm: 0,
            clock: SimTime::ZERO,
        }
    }

    /// Enables the typed trace bus with a ring of `capacity` records.
    /// Emitted events carry `vm` as their VM index. Tracing never changes
    /// scheduling decisions; it only captures them.
    pub fn enable_trace(&mut self, vm: usize, capacity: usize) {
        self.trace = TraceRing::enabled(capacity);
        self.trace_vm = vm;
    }

    /// The guest's trace ring (empty and disabled unless
    /// [`GuestOs::enable_trace`] was called).
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Advances the timestamp used for trace events emitted by entry points
    /// that take no `now` (wakes, balancing, migrator runs). The embedding
    /// simulation calls this as virtual time advances; it has no effect on
    /// scheduling decisions.
    pub fn sync_clock(&mut self, now: SimTime) {
        self.clock = now;
    }

    /// Pops a recycled action buffer (or allocates a fresh one).
    pub(crate) fn out_buf(&mut self) -> Vec<GuestAction> {
        self.spare_bufs.pop().unwrap_or_default()
    }

    /// Returns a drained action buffer to the pool so the next entry point
    /// can reuse its capacity instead of allocating. The pool is bounded;
    /// surplus buffers are simply dropped.
    pub fn recycle_actions(&mut self, mut buf: Vec<GuestAction>) {
        if self.spare_bufs.len() < 16 {
            buf.clear();
            self.spare_bufs.push(buf);
        }
    }

    /// Spawns a nice-0 task initially placed on `vcpu`'s runqueue.
    ///
    /// # Panics
    ///
    /// Panics if `vcpu` is out of range.
    pub fn spawn(&mut self, vcpu: usize) -> TaskId {
        self.spawn_weighted(vcpu, NICE0_WEIGHT)
    }

    /// Spawns a task with an explicit CFS weight.
    pub fn spawn_weighted(&mut self, vcpu: usize, weight: u64) -> TaskId {
        assert!(vcpu < self.rqs.len(), "vcpu {vcpu} out of range");
        let id = TaskId(self.tasks.len());
        let mut task = Task::new(id, vcpu, weight);
        task.vruntime = self.rqs[vcpu].min_vruntime;
        self.tasks.push(task);
        let vr = self.tasks[id.0].vruntime;
        self.rqs[vcpu].enqueue(vr, id);
        id
    }

    /// Installs an initial current task on every vCPU. vCPUs with empty
    /// runqueues emit `SCHEDOP_block` so the hypervisor idles them.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start(&mut self, _now: SimTime) -> Vec<GuestAction> {
        assert!(!self.started, "start() must be called exactly once");
        self.started = true;
        let mut out = self.out_buf();
        for v in 0..self.rqs.len() {
            if self.rqs[v].is_idle() {
                self.stats.idle_blocks += 1;
                out.push(GuestAction::Hypercall {
                    vcpu: v,
                    op: SchedOp::Block,
                });
            } else {
                self.pick_and_run(v, &mut out);
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // time accounting
    // ------------------------------------------------------------------

    /// Charges `delta` of actual execution to the current task of `vcpu`.
    ///
    /// The embedding simulation calls this whenever it checkpoints task
    /// progress (at stops, ticks, and task program events); the guest only
    /// maintains vruntime, never wall time.
    pub fn account_runtime(&mut self, vcpu: usize, delta: SimTime) {
        if delta.is_zero() {
            return;
        }
        let Some(cur) = self.rqs[vcpu].current else {
            return;
        };
        let vr_delta = self.tasks[cur.0].vruntime_delta(delta);
        let task = &mut self.tasks[cur.0];
        task.vruntime += vr_delta;
        task.total_runtime += delta;
        let vr = task.vruntime;
        self.rqs[vcpu].update_min_vruntime(vr);
    }

    // ------------------------------------------------------------------
    // the scheduler tick
    // ------------------------------------------------------------------

    /// The 1 ms scheduler tick for `vcpu`: raises and runs `TIMER_SOFTIRQ`.
    ///
    /// Only delivered while the vCPU actually executes (a preempted vCPU's
    /// ticks are deferred, exactly as on real hardware). A pending SA
    /// upcall is deliberately *not* consumed here: its bottom half carries
    /// a 20–26 µs processing cost that the embedder models as the
    /// softirq-delay event, which calls [`GuestOs::process_softirqs`] — and
    /// that path runs any simultaneous timer work first (§4.2's rule).
    pub fn tick(&mut self, vcpu: usize, now: SimTime, views: &[VcpuView]) -> SoftirqOutcome {
        self.raise_softirq(vcpu, Softirq::Timer);
        let mut outcome = SoftirqOutcome {
            actions: self.out_buf(),
            sa_ack: None,
        };
        self.softirq_pending[vcpu] &= !Softirq::Timer.bit();
        self.timer_softirq(vcpu, now, views, &mut outcome.actions);
        outcome
    }

    /// True when the next tick on `vcpu` would be *quiet*: no stopper work
    /// is pending anywhere, no softirq is pending on this vCPU, nothing is
    /// queued on its runqueue (so the CFS preempt check and the nohz kick
    /// cannot act), and the tick count it would reach does not land on a
    /// balance interval. A quiet tick emits no actions and its only state
    /// change inside the kernel is `tick_counts += 1` — the embedder's
    /// tickless fast-forward elides the tick event and replays that
    /// bookkeeping through [`GuestOs::note_quiet_tick`].
    pub fn tick_is_quiet(&self, vcpu: usize) -> bool {
        self.stopper_pending.is_empty()
            && self.softirq_pending[vcpu] == 0
            && self.rqs[vcpu].nr_queued() == 0
            && !(self.tick_counts[vcpu] + 1).is_multiple_of(self.cfg.balance_interval_ticks)
    }

    /// Replays the tick-count bookkeeping of one elided quiet tick (see
    /// [`GuestOs::tick_is_quiet`]), keeping the balance-interval phase
    /// bit-identical with a kernel that dispatched the tick for real.
    pub fn note_quiet_tick(&mut self, vcpu: usize) {
        debug_assert!(self.tick_is_quiet(vcpu), "tick on v{vcpu} is not quiet");
        self.tick_counts[vcpu] += 1;
    }

    /// Marks a softirq pending on `vcpu` (interrupt top half).
    pub fn raise_softirq(&mut self, vcpu: usize, s: Softirq) {
        self.softirq_pending[vcpu] |= s.bit();
    }

    /// True if `s` is pending on `vcpu`.
    pub fn softirq_is_pending(&self, vcpu: usize, s: Softirq) -> bool {
        self.softirq_pending[vcpu] & s.bit() != 0
    }

    /// Runs pending softirq handlers on `vcpu` in priority order:
    /// `TIMER_SOFTIRQ` first, then `UPCALL_SOFTIRQ` (the IRS context
    /// switcher). See [`crate::softirq`].
    pub fn process_softirqs(
        &mut self,
        vcpu: usize,
        now: SimTime,
        views: &[VcpuView],
    ) -> SoftirqOutcome {
        let mut outcome = SoftirqOutcome {
            actions: self.out_buf(),
            sa_ack: None,
        };
        if self.softirq_pending[vcpu] & Softirq::Timer.bit() != 0 {
            self.softirq_pending[vcpu] &= !Softirq::Timer.bit();
            self.timer_softirq(vcpu, now, views, &mut outcome.actions);
        }
        if self.softirq_pending[vcpu] & Softirq::Upcall.bit() != 0 {
            self.softirq_pending[vcpu] &= !Softirq::Upcall.bit();
            let sa = self.upcall_softirq(vcpu);
            let mut buf = sa.actions;
            outcome.actions.append(&mut buf);
            self.recycle_actions(buf);
            outcome.sa_ack = Some(sa.op);
        }
        outcome
    }

    /// The `TIMER_SOFTIRQ` body: pending stopper work, the CFS preemption
    /// check, and — every [`GuestConfig::balance_interval_ticks`] ticks —
    /// periodic balancing plus the nohz kick.
    fn timer_softirq(
        &mut self,
        vcpu: usize,
        now: SimTime,
        views: &[VcpuView],
        out: &mut Vec<GuestAction>,
    ) {
        self.run_stopper(vcpu, out);
        self.preempt_check(vcpu, out);
        self.tick_counts[vcpu] += 1;
        if self.tick_counts[vcpu].is_multiple_of(self.cfg.balance_interval_ticks) {
            self.periodic_balance(vcpu, views, out);
        }
        // nohz balancer kick: an overloaded runqueue wakes a sleeping idle
        // vCPU so it can pull (Linux `nohz_balancer_kick`). Without this, a
        // vCPU that idled after the IRS migrator drained it would sleep
        // forever while siblings queue work.
        if self.rqs[vcpu].nr_queued() > 0 {
            if let Some(idle) = self.find_guest_idle_vcpu() {
                out.push(GuestAction::WakeVcpu { vcpu: idle });
            }
        }
        let _ = now;
    }

    /// Idle balancing on a vCPU that just woke with nothing to run: pull
    /// from the busiest queue and start the pulled task (the receiving end
    /// of the nohz kick).
    pub fn idle_balance(&mut self, vcpu: usize, views: &[VcpuView]) -> Vec<GuestAction> {
        let mut out = self.out_buf();
        if self.rqs[vcpu].current.is_some() {
            return out;
        }
        if self.rqs[vcpu].leftmost().is_none() {
            self.idle_pull(vcpu, views, &mut out);
        }
        if self.rqs[vcpu].leftmost().is_some() {
            self.pick_and_run(vcpu, &mut out);
        }
        out
    }

    /// CFS `check_preempt_tick`: switch when the incumbent's vruntime lead
    /// over the leftmost queued task exceeds its ideal slice.
    pub(crate) fn preempt_check(&mut self, vcpu: usize, out: &mut Vec<GuestAction>) {
        let Some(cur) = self.rqs[vcpu].current else {
            return;
        };
        let Some((left_vr, _)) = self.rqs[vcpu].leftmost() else {
            return;
        };
        let nr = self.rqs[vcpu].nr_running().max(1) as u64;
        let slice = SimTime::from_nanos(
            (self.cfg.sched_latency.as_nanos() / nr).max(self.cfg.min_granularity.as_nanos()),
        );
        let slice_vr = self.tasks[cur.0].vruntime_delta(slice);
        if self.tasks[cur.0].vruntime > left_vr.saturating_add(slice_vr) {
            self.deschedule_current(vcpu, TaskState::Ready, out);
            self.pick_and_run(vcpu, out);
        }
    }

    // ------------------------------------------------------------------
    // blocking / exiting / resuming
    // ------------------------------------------------------------------

    /// The current task of `vcpu` blocks (sleeps on synchronization or I/O).
    ///
    /// Attempts idle (pull) balancing before conceding the vCPU; if nothing
    /// can be pulled, emits `SCHEDOP_block` so the hypervisor idles the vCPU.
    pub fn block_current(
        &mut self,
        vcpu: usize,
        now: SimTime,
        views: &[VcpuView],
    ) -> Vec<GuestAction> {
        let mut out = self.out_buf();
        if self.rqs[vcpu].current.is_none() {
            return out;
        }
        self.deschedule_current(vcpu, TaskState::Blocked, &mut out);
        self.find_work_or_block(vcpu, views, &mut out);
        let _ = now;
        out
    }

    /// The current task of `vcpu` exits.
    pub fn exit_current(
        &mut self,
        vcpu: usize,
        now: SimTime,
        views: &[VcpuView],
    ) -> Vec<GuestAction> {
        let mut out = self.out_buf();
        if self.rqs[vcpu].current.is_none() {
            return out;
        }
        self.deschedule_current(vcpu, TaskState::Exited, &mut out);
        self.find_work_or_block(vcpu, views, &mut out);
        let _ = now;
        out
    }

    /// Picks a next task or, failing idle-pull, blocks the vCPU.
    pub(crate) fn find_work_or_block(
        &mut self,
        vcpu: usize,
        views: &[VcpuView],
        out: &mut Vec<GuestAction>,
    ) {
        if self.rqs[vcpu].leftmost().is_none() {
            self.idle_pull(vcpu, views, out);
        }
        if self.rqs[vcpu].leftmost().is_some() {
            self.pick_and_run(vcpu, out);
        } else {
            self.stats.idle_blocks += 1;
            out.push(GuestAction::Hypercall {
                vcpu,
                op: SchedOp::Block,
            });
        }
    }

    /// A *ready* (not running) task goes to sleep — the futex path of a
    /// task that was descheduled (or handed to the IRS migrator) mid-wait.
    /// No-op for other states.
    pub fn block_queued(&mut self, task: TaskId) -> Vec<GuestAction> {
        let out = Vec::new();
        if self.tasks[task.0].state != TaskState::Ready {
            return out;
        }
        let cpu = self.tasks[task.0].cpu;
        let vr = self.tasks[task.0].vruntime;
        // A task in migrator custody is Ready but unqueued; it simply
        // blocks in place and the migrator discards its custody entry.
        if self.tasks[task.0].in_custody {
            self.tasks[task.0].in_custody = false;
        } else {
            let removed = self.rqs[cpu].dequeue(vr, task);
            debug_assert!(removed, "{task} Ready but neither queued nor in custody");
        }
        self.tasks[task.0].state = TaskState::Blocked;
        out
    }

    /// Called when the hypervisor (re)starts a vCPU the guest had idled:
    /// picks a current task if work arrived in the meantime.
    pub fn ensure_current(&mut self, vcpu: usize) -> Vec<GuestAction> {
        let mut out = self.out_buf();
        if self.rqs[vcpu].current.is_none() && self.rqs[vcpu].leftmost().is_some() {
            self.pick_and_run(vcpu, &mut out);
        }
        out
    }

    // ------------------------------------------------------------------
    // internal switch helpers
    // ------------------------------------------------------------------

    /// Takes the current task off `vcpu`, putting it into `to`. `Ready`
    /// re-enqueues locally; other states leave the task unqueued.
    pub(crate) fn deschedule_current(
        &mut self,
        vcpu: usize,
        to: TaskState,
        out: &mut Vec<GuestAction>,
    ) {
        let cur = self.rqs[vcpu]
            .current
            .take()
            .expect("deschedule_current on an idle vCPU");
        self.tasks[cur.0].state = to;
        if to == TaskState::Ready {
            let vr = self.tasks[cur.0].vruntime;
            self.rqs[vcpu].enqueue(vr, cur);
        }
        let (at, vm) = (self.clock, self.trace_vm);
        self.trace.emit(at, || TraceEvent::TaskStop {
            vm,
            vcpu,
            task: cur.0,
        });
        out.push(GuestAction::StopTask { vcpu, task: cur });
    }

    /// Installs the leftmost queued task as current.
    pub(crate) fn pick_and_run(&mut self, vcpu: usize, out: &mut Vec<GuestAction>) {
        let (_, next) = self.rqs[vcpu]
            .pick_next()
            .expect("pick_and_run on an empty runqueue");
        self.tasks[next.0].state = TaskState::Running;
        self.tasks[next.0].cpu = vcpu;
        self.rqs[vcpu].current = Some(next);
        self.stats.context_switches += 1;
        let (at, vm) = (self.clock, self.trace_vm);
        self.trace.emit(at, || TraceEvent::TaskRun {
            vm,
            vcpu,
            task: next.0,
        });
        out.push(GuestAction::RunTask { vcpu, task: next });
    }

    /// Installs a specific queued task as current (wakeup preemption puts
    /// the waker itself on CPU, not merely the leftmost task).
    pub(crate) fn run_specific(&mut self, vcpu: usize, task: TaskId, out: &mut Vec<GuestAction>) {
        debug_assert!(self.rqs[vcpu].current.is_none());
        let vr = self.tasks[task.0].vruntime;
        let removed = self.rqs[vcpu].dequeue(vr, task);
        debug_assert!(removed, "{task} not queued on v{vcpu}");
        self.rqs[vcpu].update_min_vruntime(vr);
        self.tasks[task.0].state = TaskState::Running;
        self.tasks[task.0].cpu = vcpu;
        self.rqs[vcpu].current = Some(task);
        self.stats.context_switches += 1;
        let (at, vm) = (self.clock, self.trace_vm);
        self.trace.emit(at, || TraceEvent::TaskRun {
            vm,
            vcpu,
            task: task.0,
        });
        out.push(GuestAction::RunTask { vcpu, task });
    }

    /// Moves a *queued* (Ready) task between runqueues.
    ///
    /// # Panics
    ///
    /// Panics if the task is not queued on its recorded runqueue.
    pub(crate) fn migrate_queued(
        &mut self,
        task: TaskId,
        to: usize,
        out: &mut Vec<GuestAction>,
    ) {
        let from = self.tasks[task.0].cpu;
        let vr = self.tasks[task.0].vruntime;
        let removed = self.rqs[from].dequeue(vr, task);
        assert!(removed, "{task} not queued on its recorded rq v{from}");
        let placed = self.rqs[to].migration_vruntime(vr, self.rqs[from].min_vruntime);
        self.tasks[task.0].vruntime = placed;
        self.tasks[task.0].cpu = to;
        self.tasks[task.0].migrations += 1;
        self.rqs[to].enqueue(placed, task);
        let (at, vm) = (self.clock, self.trace_vm);
        self.trace.emit(at, || TraceEvent::TaskMigrate {
            vm,
            task: task.0,
            from,
            to,
        });
        out.push(GuestAction::TaskMigrated { task, from, to });
    }

    // ------------------------------------------------------------------
    // read surface
    // ------------------------------------------------------------------

    /// Number of vCPUs.
    pub fn n_vcpus(&self) -> usize {
        self.rqs.len()
    }

    /// Number of tasks ever spawned.
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// The current task of `vcpu`, if any.
    pub fn current(&self, vcpu: usize) -> Option<TaskId> {
        self.rqs[vcpu].current
    }

    /// Read access to a task.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Read access to a runqueue.
    pub fn rq(&self, vcpu: usize) -> &Runqueue {
        &self.rqs[vcpu]
    }

    /// Guest scheduler counters.
    pub fn stats(&self) -> &GuestStats {
        &self.stats
    }

    /// The configuration this guest was built with.
    pub fn config(&self) -> &GuestConfig {
        &self.cfg
    }

    /// The `rt_avg`-style load of `vcpu`: runnable weight scaled up by the
    /// recent steal fraction the paravirtual clock reports. This is the
    /// metric Algorithm 2 compares (line 12-17).
    pub fn rt_avg(&self, vcpu: usize, view: &VcpuView) -> f64 {
        self.rqs[vcpu].nr_running() as f64 * (1.0 + view.steal_frac)
    }

    /// Verifies internal consistency (used heavily by tests):
    /// * `Running` tasks are current on exactly their recorded vCPU;
    /// * `Ready` tasks are queued exactly once (or in migrator custody);
    /// * `Blocked`/`Exited` tasks appear nowhere.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on violation.
    pub fn check_invariants(&self) {
        for task in &self.tasks {
            let queued: usize = self
                .rqs
                .iter()
                .map(|rq| rq.iter().filter(|&(_, id)| id == task.id).count())
                .sum();
            let current_on: Vec<usize> = self
                .rqs
                .iter()
                .enumerate()
                .filter(|(_, rq)| rq.current == Some(task.id))
                .map(|(v, _)| v)
                .collect();
            let in_custody = task.in_custody;
            match task.state {
                TaskState::Running => {
                    assert_eq!(
                        current_on,
                        vec![task.cpu],
                        "{} Running but current on {current_on:?} (cpu {})",
                        task.id,
                        task.cpu
                    );
                    assert_eq!(queued, 0, "{} Running but queued", task.id);
                    assert!(!in_custody, "{} Running but in custody", task.id);
                }
                TaskState::Ready => {
                    assert!(current_on.is_empty(), "{} Ready but current", task.id);
                    if in_custody {
                        assert_eq!(queued, 0, "{} in custody but queued", task.id);
                    } else {
                        assert_eq!(queued, 1, "{} Ready queued {queued} times", task.id);
                    }
                }
                TaskState::Blocked => {
                    assert!(current_on.is_empty(), "{} blocked but current", task.id);
                    assert_eq!(queued, 0, "{} blocked but queued", task.id);
                    assert!(!in_custody, "{} blocked but in custody", task.id);
                }
                TaskState::Exited => {
                    assert!(current_on.is_empty(), "{} exited but current", task.id);
                    assert_eq!(queued, 0, "{} exited but queued", task.id);
                    assert!(!in_custody, "{} exited but in custody", task.id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(n: usize) -> Vec<VcpuView> {
        vec![VcpuView::running(); n]
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn start_runs_one_task_per_vcpu_and_blocks_idle_vcpus() {
        let mut g = GuestOs::new(GuestConfig::default(), 3);
        let a = g.spawn(0);
        let b = g.spawn(0);
        let acts = g.start(t(0));
        g.check_invariants();
        assert_eq!(g.current(0), Some(a));
        assert_eq!(g.task(b).state, TaskState::Ready);
        // vCPUs 1 and 2 have no work: they block in the hypervisor.
        let blocks = acts
            .iter()
            .filter(|a| matches!(a, GuestAction::Hypercall { op: SchedOp::Block, .. }))
            .count();
        assert_eq!(blocks, 2);
    }

    #[test]
    fn account_runtime_advances_vruntime() {
        let mut g = GuestOs::new(GuestConfig::default(), 1);
        let a = g.spawn(0);
        g.start(t(0));
        g.account_runtime(0, SimTime::from_millis(2));
        assert_eq!(g.task(a).vruntime, 2_000_000);
        assert_eq!(g.task(a).total_runtime, SimTime::from_millis(2));
    }

    #[test]
    fn tick_preempts_after_ideal_slice() {
        let mut g = GuestOs::new(GuestConfig::default(), 1);
        let a = g.spawn(0);
        let b = g.spawn(0);
        g.start(t(0));
        assert_eq!(g.current(0), Some(a));
        // Run a for 1 ms at a time; with 2 tasks the ideal slice is 3 ms, so
        // by the 4th tick the lead (4 ms > 3 ms) forces the switch.
        let mut switched_at = None;
        for i in 1..=6u64 {
            g.account_runtime(0, t(1));
            let out = g.tick(0, t(i), &views(1));
            if out
                .actions
                .iter()
                .any(|x| matches!(x, GuestAction::RunTask { task, .. } if *task == b))
            {
                switched_at = Some(i);
                break;
            }
        }
        g.check_invariants();
        assert_eq!(switched_at, Some(4), "CFS slice of 3 ms (+granularity)");
        assert_eq!(g.current(0), Some(b));
        assert_eq!(g.task(a).state, TaskState::Ready);
    }

    #[test]
    fn sole_task_is_never_preempted() {
        let mut g = GuestOs::new(GuestConfig::default(), 1);
        let a = g.spawn(0);
        g.start(t(0));
        for i in 1..=20u64 {
            g.account_runtime(0, t(1));
            let out = g.tick(0, t(i), &views(1));
            assert!(out.actions.is_empty(), "unexpected actions: {out:?}");
            assert!(out.sa_ack.is_none());
        }
        assert_eq!(g.current(0), Some(a));
    }

    #[test]
    fn block_switches_to_next_task() {
        let mut g = GuestOs::new(GuestConfig::default(), 1);
        let a = g.spawn(0);
        let b = g.spawn(0);
        g.start(t(0));
        let acts = g.block_current(0, t(1), &views(1));
        g.check_invariants();
        assert_eq!(g.task(a).state, TaskState::Blocked);
        assert_eq!(g.current(0), Some(b));
        assert!(acts.iter().any(|x| matches!(x, GuestAction::RunTask { .. })));
        assert!(!acts
            .iter()
            .any(|x| matches!(x, GuestAction::Hypercall { .. })));
    }

    #[test]
    fn block_with_empty_queue_blocks_the_vcpu() {
        let mut g = GuestOs::new(GuestConfig::default(), 1);
        let a = g.spawn(0);
        g.start(t(0));
        let acts = g.block_current(0, t(1), &views(1));
        g.check_invariants();
        assert_eq!(g.task(a).state, TaskState::Blocked);
        assert_eq!(g.current(0), None);
        assert!(acts.iter().any(|x| matches!(
            x,
            GuestAction::Hypercall { vcpu: 0, op: SchedOp::Block }
        )));
    }

    #[test]
    fn exit_removes_the_task_for_good() {
        let mut g = GuestOs::new(GuestConfig::default(), 1);
        let a = g.spawn(0);
        g.spawn(0);
        g.start(t(0));
        g.exit_current(0, t(1), &views(1));
        g.check_invariants();
        assert_eq!(g.task(a).state, TaskState::Exited);
        assert_ne!(g.current(0), Some(a));
    }

    #[test]
    fn ensure_current_fills_an_idle_vcpu() {
        let mut g = GuestOs::new(GuestConfig::default(), 2);
        let a = g.spawn(0);
        g.start(t(0));
        g.block_current(0, t(1), &views(2));
        assert_eq!(g.current(0), None);
        // Simulate a wake placing the task back (state juggling via wake is
        // exercised in balance tests; here drive the internals directly).
        let mut out = Vec::new();
        g.tasks[a.0].state = TaskState::Ready;
        let vr = g.rqs[0].normalized_vruntime(g.tasks[a.0].vruntime);
        g.tasks[a.0].vruntime = vr;
        g.rqs[0].enqueue(vr, a);
        let acts = g.ensure_current(0);
        out.extend(acts.iter().cloned());
        assert_eq!(g.current(0), Some(a));
        g.check_invariants();
    }

    #[test]
    fn migrate_queued_normalizes_vruntime() {
        let mut g = GuestOs::new(GuestConfig::default(), 2);
        let a = g.spawn(0);
        let b = g.spawn(0);
        let c = g.spawn(1);
        g.start(t(0));
        // Run vcpu1's task far ahead so rq1.min_vruntime is large.
        g.account_runtime(1, t(50));
        let _ = c;
        // b is queued on rq0 with vruntime 0; migrate to rq1.
        let mut out = Vec::new();
        g.migrate_queued(b, 1, &mut out);
        g.check_invariants();
        assert_eq!(g.task(b).cpu, 1);
        assert!(
            g.task(b).vruntime >= g.rq(1).min_vruntime,
            "incoming task must not starve the destination queue"
        );
        assert_eq!(g.task(b).migrations, 1);
        let _ = a;
        assert!(out
            .iter()
            .any(|x| matches!(x, GuestAction::TaskMigrated { from: 0, to: 1, .. })));
    }

    #[test]
    fn rt_avg_scales_with_steal() {
        let mut g = GuestOs::new(GuestConfig::default(), 1);
        g.spawn(0);
        g.spawn(0);
        g.start(t(0));
        let calm = g.rt_avg(0, &VcpuView::running());
        let stolen = g.rt_avg(0, &VcpuView::preempted(1.0));
        assert!((calm - 2.0).abs() < 1e-9);
        assert!((stolen - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "exactly once")]
    fn double_start_panics() {
        let mut g = GuestOs::new(GuestConfig::default(), 1);
        g.spawn(0);
        g.start(t(0));
        g.start(t(0));
    }
}
