//! Guest tasks (threads) as the scheduler sees them.

use irs_sim::SimTime;
use std::fmt;

/// Identifier of a task within one guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Scheduler-visible task state.
///
/// Note the gap the paper §2.3 dwells on: a task that is `Running` on a
/// vCPU which the *hypervisor* has preempted still reports `Running` here —
/// the guest cannot tell, and that is why pull migration skips it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskState {
    /// On a runqueue, waiting to be picked.
    Ready,
    /// Current on some vCPU (whether or not that vCPU holds a pCPU).
    Running,
    /// Sleeping (blocking synchronization, I/O, …).
    Blocked,
    /// Finished; never scheduled again.
    Exited,
}

impl fmt::Display for TaskState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskState::Ready => "ready",
            TaskState::Running => "running",
            TaskState::Blocked => "blocked",
            TaskState::Exited => "exited",
        };
        f.write_str(s)
    }
}

/// The weight of a nice-0 task (Linux `NICE_0_LOAD`).
pub(crate) const NICE0_WEIGHT: u64 = 1024;

/// Scheduler bookkeeping for one task.
#[derive(Debug, Clone)]
pub struct Task {
    /// Identity.
    pub id: TaskId,
    /// CFS load weight (nice-0 = 1024).
    pub weight: u64,
    /// Virtual runtime in weight-scaled nanoseconds.
    pub vruntime: u64,
    /// Scheduler state.
    pub state: TaskState,
    /// Index of the vCPU whose runqueue owns this task.
    pub cpu: usize,
    /// IRS tag: this task was migrated off a preempted vCPU (Fig 4). The
    /// wakeup balancer lets a waking task preempt a tagged task in place
    /// instead of migrating away, preserving locality.
    pub preempt_migrated: bool,
    /// In IRS-migrator custody: descheduled by the SA context switcher and
    /// awaiting placement (Ready but on no runqueue).
    pub in_custody: bool,
    /// Cumulative CPU time consumed.
    pub total_runtime: SimTime,
    /// Number of cross-vCPU migrations this task has suffered.
    pub migrations: u64,
}

impl Task {
    pub(crate) fn new(id: TaskId, cpu: usize, weight: u64) -> Self {
        Task {
            id,
            weight,
            vruntime: 0,
            state: TaskState::Ready,
            cpu,
            preempt_migrated: false,
            in_custody: false,
            total_runtime: SimTime::ZERO,
            migrations: 0,
        }
    }

    /// Converts `delta` of wall execution into weight-scaled vruntime.
    pub(crate) fn vruntime_delta(&self, delta: SimTime) -> u64 {
        // Nice-0 tasks (the overwhelmingly common case) scale 1:1; skip
        // the 64-bit multiply + divide for them.
        if self.weight == NICE0_WEIGHT {
            return delta.as_nanos();
        }
        delta.as_nanos().saturating_mul(NICE0_WEIGHT) / self.weight.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nice0_task_vruntime_is_wall_time() {
        let t = Task::new(TaskId(0), 0, NICE0_WEIGHT);
        assert_eq!(t.vruntime_delta(SimTime::from_micros(5)), 5_000);
    }

    #[test]
    fn heavier_tasks_accrue_vruntime_slower() {
        let t = Task::new(TaskId(0), 0, 2 * NICE0_WEIGHT);
        assert_eq!(t.vruntime_delta(SimTime::from_micros(4)), 2_000);
    }

    #[test]
    fn zero_weight_does_not_divide_by_zero() {
        let t = Task::new(TaskId(0), 0, 0);
        let _ = t.vruntime_delta(SimTime::from_micros(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(TaskId(3).to_string(), "task3");
        assert_eq!(TaskState::Blocked.to_string(), "blocked");
    }
}
