//! Property tests: the guest scheduler's invariants survive arbitrary
//! interleavings of scheduling, balancing, and IRS operations.

use irs_guest::{GuestConfig, GuestOs, TaskId, TaskState, VcpuView};
use irs_sim::SimTime;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
#[allow(dead_code)] // variants carry data read via Debug in failure reports
enum Op {
    Tick(u8),
    AccountAndTick(u8, u16),
    BlockCurrent(u8),
    Wake(u8),
    SaUpcall(u8),
    MigratorRun(u8),
    EnsureCurrent(u8),
    IdleBalance(u8),
    StopMigrate(u8, u8),
    BlockQueued(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4).prop_map(Op::Tick),
        (0u8..4, 1u16..3000).prop_map(|(v, us)| Op::AccountAndTick(v, us)),
        (0u8..4).prop_map(Op::BlockCurrent),
        (0u8..8).prop_map(Op::Wake),
        (0u8..4).prop_map(Op::SaUpcall),
        (0u8..8).prop_map(Op::MigratorRun),
        (0u8..4).prop_map(Op::EnsureCurrent),
        (0u8..4).prop_map(Op::IdleBalance),
        (0u8..8, 0u8..4).prop_map(|(t, v)| Op::StopMigrate(t, v)),
        (0u8..8).prop_map(Op::BlockQueued),
    ]
}

/// View combinations the ops cycle through (deterministic per op index so
/// failures shrink well).
fn views(i: usize) -> Vec<VcpuView> {
    match i % 3 {
        0 => vec![VcpuView::running(); 4],
        1 => vec![
            VcpuView::preempted(0.6),
            VcpuView::running(),
            VcpuView::blocked(),
            VcpuView::running(),
        ],
        _ => vec![
            VcpuView::running(),
            VcpuView::preempted(0.3),
            VcpuView::preempted(0.9),
            VcpuView::blocked(),
        ],
    }
}

fn build() -> GuestOs {
    let mut g = GuestOs::new(GuestConfig::with_irs(), 4);
    for i in 0..8 {
        g.spawn(i % 4);
    }
    g.start(SimTime::ZERO);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scheduler invariants hold after every operation.
    #[test]
    fn invariants_hold(ops in prop::collection::vec(op_strategy(), 1..250)) {
        let mut g = build();
        let mut now = SimTime::ZERO;
        for (i, op) in ops.into_iter().enumerate() {
            now += SimTime::from_micros(311);
            let vs = views(i);
            match op {
                Op::Tick(v) => {
                    g.tick(v as usize, now, &vs);
                }
                Op::AccountAndTick(v, us) => {
                    g.account_runtime(v as usize, SimTime::from_micros(us as u64));
                    g.tick(v as usize, now, &vs);
                }
                Op::BlockCurrent(v) => {
                    g.block_current(v as usize, now, &vs);
                }
                Op::Wake(t) => {
                    g.wake(TaskId(t as usize), &vs);
                }
                Op::SaUpcall(v) => {
                    g.sa_upcall(v as usize);
                }
                Op::MigratorRun(_) => {
                    g.migrator_run(&vs);
                }
                Op::EnsureCurrent(v) => {
                    g.ensure_current(v as usize);
                }
                Op::IdleBalance(v) => {
                    g.idle_balance(v as usize, &vs);
                }
                Op::StopMigrate(t, v) => {
                    g.request_stop_migration(TaskId(t as usize), v as usize);
                }
                Op::BlockQueued(t) => {
                    g.block_queued(TaskId(t as usize));
                }
            }
            g.check_invariants();
        }
    }

    /// vruntime is monotone per task, and total runtime equals what was
    /// charged.
    #[test]
    fn vruntime_is_monotone(charges in prop::collection::vec((0u8..4, 1u16..5000), 1..100)) {
        let mut g = build();
        let mut last: Vec<u64> = (0..8).map(|i| g.task(TaskId(i)).vruntime).collect();
        for (v, us) in charges {
            g.account_runtime(v as usize, SimTime::from_micros(us as u64));
            for (i, prev) in last.iter_mut().enumerate() {
                let vr = g.task(TaskId(i)).vruntime;
                prop_assert!(vr >= *prev, "task{i} vruntime went backwards");
                *prev = vr;
            }
        }
    }

    /// No task is ever lost: every task is always exactly one of
    /// running / queued / custody / blocked / exited.
    #[test]
    fn no_task_lost(ops in prop::collection::vec(op_strategy(), 1..250)) {
        let mut g = build();
        let mut now = SimTime::ZERO;
        for (i, op) in ops.into_iter().enumerate() {
            now += SimTime::from_micros(173);
            let vs = views(i);
            match op {
                Op::Tick(v) => { g.tick(v as usize, now, &vs); }
                Op::AccountAndTick(v, us) => {
                    g.account_runtime(v as usize, SimTime::from_micros(us as u64));
                    g.tick(v as usize, now, &vs);
                }
                Op::BlockCurrent(v) => { g.block_current(v as usize, now, &vs); }
                Op::Wake(t) => { g.wake(TaskId(t as usize), &vs); }
                Op::SaUpcall(v) => { g.sa_upcall(v as usize); }
                Op::MigratorRun(_) => { g.migrator_run(&vs); }
                Op::EnsureCurrent(v) => { g.ensure_current(v as usize); }
                Op::IdleBalance(v) => { g.idle_balance(v as usize, &vs); }
                Op::StopMigrate(t, v) => {
                    g.request_stop_migration(TaskId(t as usize), v as usize);
                }
                Op::BlockQueued(t) => { g.block_queued(TaskId(t as usize)); }
            }
            // check_invariants validates placement; additionally assert
            // every non-exited task is reachable somewhere.
            for t in 0..8usize {
                let state = g.task(TaskId(t)).state;
                prop_assert_ne!(state, TaskState::Exited, "no op exits tasks here");
            }
            g.check_invariants();
        }
    }
}
