//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build container has no network access and no crates.io registry
//! cache, so the real `criterion` cannot be resolved. This workspace-local
//! crate implements the subset of its API used by the benches under
//! `crates/bench/benches/` — `criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, `Bencher::iter`/`iter_batched`, and
//! benchmark groups with the chainable `sampling_mode`/`sample_size`
//! builders — on top of plain `std::time::Instant` timing.
//!
//! It reports min/mean/max nanoseconds per iteration to stdout. There is
//! no statistical outlier analysis, HTML report, or baseline comparison;
//! for tracked numbers use `figures perf`, which writes `BENCH_runner.json`.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working (same as
/// `std::hint::black_box`).
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The stand-in times each routine
/// call individually, so the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Sampling strategy hint; accepted and ignored (timing is always flat).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    Auto,
    Linear,
    Flat,
}

/// Per-benchmark measurement statistics, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
struct Stats {
    min: f64,
    mean: f64,
    max: f64,
    iters: u64,
}

fn report(id: &str, s: Stats) {
    println!(
        "bench {id:<44} min {} | mean {} | max {}   ({} iters)",
        fmt_ns(s.min),
        fmt_ns(s.mean),
        fmt_ns(s.max),
        s.iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.3} s ", ns / 1_000_000_000.0)
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: usize,
    /// Soft wall-clock budget per benchmark; bounds how many iterations a
    /// sample runs.
    budget: Duration,
    stats: Option<Stats>,
}

impl Bencher {
    fn new(samples: usize, budget: Duration) -> Self {
        Bencher {
            samples,
            budget,
            stats: None,
        }
    }

    /// Times `routine` called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up / calibration: one timed call sizes the batches.
        let t0 = Instant::now();
        black_box(routine());
        let est = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (self.budget.as_nanos() / self.samples.max(1) as u128).max(1);
        let batch = ((per_sample / est.as_nanos().max(1)) as u64).clamp(1, 1_000_000);

        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let d = t.elapsed();
            let per = d.as_nanos() as f64 / batch as f64;
            min = min.min(per);
            max = max.max(per);
            total += d;
            iters += batch;
        }
        self.stats = Some(Stats {
            min,
            mean: total.as_nanos() as f64 / iters.max(1) as f64,
            max,
            iters,
        });
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let est = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (self.budget.as_nanos() / self.samples.max(1) as u128).max(1);
        let batch = ((per_sample / est.as_nanos().max(1)) as u64).clamp(1, 100_000);

        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let mut sample = Duration::ZERO;
            for _ in 0..batch {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                sample += t.elapsed();
            }
            let per = sample.as_nanos() as f64 / batch as f64;
            min = min.min(per);
            max = max.max(per);
            total += sample;
            iters += batch;
        }
        self.stats = Some(Stats {
            min,
            mean: total.as_nanos() as f64 / iters.max(1) as f64,
            max,
            iters,
        });
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            budget: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// No-op for CLI compatibility with real criterion's generated mains.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.budget);
        f(&mut b);
        match b.stats {
            Some(s) => report(id, s),
            None => println!("bench {id}: no measurement recorded"),
        }
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named group of related benchmarks (`<group>/<id>` labels).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher::new(samples, self.criterion.budget);
        f(&mut b);
        let label = format!("{}/{}", self.name, id);
        match b.stats {
            Some(s) => report(&label, s),
            None => println!("bench {label}: no measurement recorded"),
        }
        self
    }

    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runner, like real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_stats() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut b = Bencher::new(3, Duration::from_millis(5));
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        let s = b.stats.expect("stats recorded");
        assert!(s.iters >= 3);
        assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(2, Duration::from_millis(2));
        b.iter_batched(
            || vec![1u8; 64],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.stats.is_some());
    }

    #[test]
    fn group_chain_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sampling_mode(SamplingMode::Flat).sample_size(2);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
