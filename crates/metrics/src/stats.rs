//! Summary statistics and paper-derived quantities.

/// Mean / standard deviation / extrema of a sample set.
///
/// # Example
///
/// ```
/// use irs_metrics::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// assert_eq!(s.n, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample (0 for an empty sample).
    pub min: f64,
    /// Largest sample (0 for an empty sample).
    pub max: f64,
    /// Sample count.
    pub n: usize,
}

impl Summary {
    /// Summarizes `samples`.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                n: 0,
            };
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            mean,
            std_dev: var.sqrt(),
            min,
            max,
            n: samples.len(),
        }
    }

    /// Coefficient of variation (`std_dev / mean`); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }

    /// Standard error of the mean (0 for fewer than two samples).
    pub fn sem(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.std_dev / (self.n as f64).sqrt()
        }
    }

    /// Half-width of a ~95% normal-approximation confidence interval for
    /// the mean (`1.96 × SEM`; 0 for fewer than two samples).
    pub fn ci95(&self) -> f64 {
        1.96 * self.sem()
    }
}

/// Nearest-rank percentile (`p` in `[0, 100]`). Sorts a copy; fine for the
/// sample sizes the harness produces.
///
/// Returns NaN for an empty slice — a percentile of nothing is not a
/// number, and 0.0 would render as a *perfect* p99 in a latency table.
/// [`crate::Table`] renders NaN cells as `—`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any sample is NaN.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Performance improvement of `new` over `baseline` in percent, where the
/// metric is a *cost* (runtime, latency): lower is better.
///
/// `improvement_pct(100.0, 58.0) == 42.0` — the paper's "42% improvement".
///
/// Returns 0 when the baseline is not positive.
pub fn improvement_pct(baseline_cost: f64, new_cost: f64) -> f64 {
    if baseline_cost <= 0.0 {
        return 0.0;
    }
    (baseline_cost - new_cost) / baseline_cost * 100.0
}

/// Slowdown factor of `cost` relative to `reference_cost` (Fig 1a's y-axis).
///
/// Returns 0 when the reference is not positive.
pub fn slowdown(reference_cost: f64, cost: f64) -> f64 {
    if reference_cost <= 0.0 {
        return 0.0;
    }
    cost / reference_cost
}

/// The paper's system-efficiency metric (§5.4): the average of per-
/// application speedups, where each speedup is `vanilla_cost / cost` for
/// cost metrics. A weighted speedup of 1.0 matches vanilla Xen/Linux;
/// Figs 7 and 9 report it in percent (×100).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn weighted_speedup(vanilla_costs: &[f64], costs: &[f64]) -> f64 {
    assert_eq!(
        vanilla_costs.len(),
        costs.len(),
        "speedup needs matched samples"
    );
    assert!(!costs.is_empty(), "speedup of zero applications");
    let sum: f64 = vanilla_costs
        .iter()
        .zip(costs)
        .map(|(&v, &c)| if c > 0.0 { v / c } else { 0.0 })
        .sum();
    sum / costs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn sem_and_ci() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        // std_dev 2.0, n 8 -> SEM = 2/sqrt(8), CI95 = 1.96 * SEM.
        let expected_sem = 2.0 / 8f64.sqrt();
        assert!((s.sem() - expected_sem).abs() < 1e-12);
        assert!((s.ci95() - 1.96 * expected_sem).abs() < 1e-12);
        assert_eq!(Summary::of(&[1.0]).ci95(), 0.0);
    }

    #[test]
    fn summary_std_dev() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 30.0), 20.0);
        assert_eq!(percentile(&v, 100.0), 50.0);
        assert_eq!(percentile(&v, 0.0), 15.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn percentile_unsorted_input() {
        let v = [50.0, 15.0, 40.0, 20.0, 35.0];
        assert_eq!(percentile(&v, 50.0), 35.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_rejects_bad_p() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn improvement_matches_paper_arithmetic() {
        assert!((improvement_pct(100.0, 58.0) - 42.0).abs() < 1e-12);
        assert!((improvement_pct(100.0, 146.0) + 46.0).abs() < 1e-12);
        assert_eq!(improvement_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn slowdown_is_a_ratio() {
        assert!((slowdown(10.0, 25.0) - 2.5).abs() < 1e-12);
        assert_eq!(slowdown(0.0, 25.0), 0.0);
    }

    #[test]
    fn weighted_speedup_averages_speedups() {
        // App A twice as fast, app B unchanged: (2.0 + 1.0)/2 = 1.5.
        let ws = weighted_speedup(&[10.0, 8.0], &[5.0, 8.0]);
        assert!((ws - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matched samples")]
    fn weighted_speedup_rejects_mismatch() {
        weighted_speedup(&[1.0], &[1.0, 2.0]);
    }
}
