//! A log-bucketed latency histogram.
//!
//! Request latencies in the server experiments span four orders of
//! magnitude (µs service times to multi-slice stall tails); a
//! logarithmically bucketed histogram summarizes them compactly and makes
//! percentile queries cheap without storing every sample.

/// A histogram with logarithmic buckets (fixed 2× growth from `min_bucket`).
///
/// # Example
///
/// ```
/// use irs_metrics::Histogram;
///
/// let mut h = Histogram::new(1.0, 24);
/// for v in [2.0, 3.0, 5.0, 100.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.quantile(0.5) >= 2.0 && h.quantile(0.5) <= 8.0);
/// assert!(h.quantile(1.0) >= 64.0);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    min_bucket: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    max: f64,
    min: f64,
}

impl Histogram {
    /// Creates a histogram whose first bucket ends at `min_bucket` and with
    /// `n_buckets` buckets doubling from there (values beyond the last
    /// bucket clamp into it).
    ///
    /// # Panics
    ///
    /// Panics if `min_bucket <= 0` or `n_buckets == 0`.
    pub fn new(min_bucket: f64, n_buckets: usize) -> Self {
        assert!(min_bucket > 0.0, "min_bucket must be positive");
        assert!(n_buckets > 0, "need at least one bucket");
        Histogram {
            min_bucket,
            counts: vec![0; n_buckets],
            total: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
            min: f64::INFINITY,
        }
    }

    /// Index of the bucket holding `value`.
    fn bucket_of(&self, value: f64) -> usize {
        if value <= self.min_bucket {
            return 0;
        }
        let idx = (value / self.min_bucket).log2().ceil() as usize;
        idx.min(self.counts.len() - 1)
    }

    /// Upper bound of bucket `i`.
    fn bucket_upper(&self, i: usize) -> f64 {
        self.min_bucket * 2f64.powi(i as i32)
    }

    /// Records one sample (negative samples clamp to the first bucket).
    pub fn record(&mut self, value: f64) {
        let b = self.bucket_of(value.max(0.0));
        self.counts[b] += 1;
        self.total += 1;
        self.sum += value;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the q-th sample (an over-estimate by at most one bucket
    /// width, i.e. 2×). Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram with identical bucket layout.
    ///
    /// # Panics
    ///
    /// Panics on layout mismatch.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.min_bucket, other.min_bucket, "bucket layout mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "bucket layout mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new(1.0, 16);
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        assert_eq!(h.max(), 100.0);
        assert_eq!(h.min(), 1.0);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new(1.0, 16);
        for v in [1.0, 2.0, 4.0, 8.0] {
            h.record(v);
        }
        // Exact powers of two land on bucket boundaries.
        assert!(h.quantile(0.25) <= 2.0);
        assert!(h.quantile(1.0) >= 8.0);
        // Quantile never exceeds the recorded max.
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn overflow_clamps_to_last_bucket() {
        let mut h = Histogram::new(1.0, 4); // buckets up to 8
        h.record(1e12);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), h.bucket_upper(3).clamp(8.0, 1e12));
    }

    #[test]
    fn quantile_accuracy_within_2x() {
        let mut h = Histogram::new(1.0, 40);
        let mut exact: Vec<f64> = Vec::new();
        for i in 0..10_000 {
            let v = (i as f64 * 7.3) % 5000.0 + 1.0;
            h.record(v);
            exact.push(v);
        }
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.9, 0.99] {
            let approx = h.quantile(q);
            let truth = exact[((q * exact.len() as f64) as usize).min(exact.len() - 1)];
            assert!(
                approx >= truth * 0.99 && approx <= truth * 2.01,
                "q{q}: approx {approx} vs exact {truth}"
            );
        }
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new(1.0, 8);
        let mut b = Histogram::new(1.0, 8);
        a.record(1.0);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 100.0);
        assert_eq!(a.min(), 1.0);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new(1.0, 8);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_quantile_panics() {
        Histogram::new(1.0, 8).quantile(1.5);
    }
}
