//! # irs-metrics — statistics and reporting
//!
//! Small, dependency-free statistics used across the reproduction:
//!
//! * [`Summary`] — mean / std-dev / min / max over f64 samples.
//! * [`percentile`] — nearest-rank percentiles for latency distributions
//!   (the 99th-percentile `ab` latency of Fig 8).
//! * [`improvement_pct`] / [`slowdown`] / [`weighted_speedup`] — the
//!   derived quantities every figure of the paper reports.
//! * [`Histogram`] — log-bucketed latency distributions with cheap
//!   quantiles.
//! * [`Table`] and [`Series`] — fixed-width text (and CSV) rendering so the
//!   `figures` binary prints the same rows/series the paper plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod stats;
mod table;

pub use histogram::Histogram;
pub use stats::{improvement_pct, percentile, slowdown, weighted_speedup, Summary};
pub use table::{Series, Table};
