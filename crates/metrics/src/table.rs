//! Fixed-width text rendering for the figure harness.

use std::fmt;

/// A labelled series of `(x label, value)` points — one line of a figure.
///
/// # Example
///
/// ```
/// use irs_metrics::Series;
///
/// let mut s = Series::new("1-inter. IRS");
/// s.point("streamcluster", 38.2);
/// s.point("raytrace", 1.4);
/// assert_eq!(s.values(), &[38.2, 1.4]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    name: String,
    points: Vec<(String, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends one point.
    pub fn point(&mut self, x: impl Into<String>, value: f64) -> &mut Self {
        self.points.push((x.into(), value));
        self
    }

    /// Series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// X labels in insertion order.
    pub fn labels(&self) -> Vec<&str> {
        self.points.iter().map(|(x, _)| x.as_str()).collect()
    }

    /// Values in insertion order.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// Value at a given x label, if present.
    pub fn value_at(&self, x: &str) -> Option<f64> {
        self.points.iter().find(|(l, _)| l == x).map(|&(_, v)| v)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points have been added.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// A fixed-width table assembled from several [`Series`] sharing x labels —
/// the text rendering of one figure panel.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    series: Vec<Series>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            series: Vec::new(),
        }
    }

    /// Adds one series (one row group / plotted line).
    pub fn add(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The contained series.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Looks up a series by name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name() == name)
    }

    /// Renders the table: a header of x labels, one row per series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut labels: Vec<&str> = Vec::new();
        for s in &self.series {
            for l in s.labels() {
                if !labels.contains(&l) {
                    labels.push(l);
                }
            }
        }
        let name_w = self
            .series
            .iter()
            .map(|s| s.name().len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        let col_w = labels
            .iter()
            .map(|l| l.len().max(8))
            .max()
            .unwrap_or(8)
            .min(14);

        out.push_str(&format!("## {}\n", self.title));
        out.push_str(&format!("{:name_w$}", ""));
        for l in &labels {
            out.push_str(&format!(" {:>col_w$}", truncate(l, col_w)));
        }
        out.push('\n');
        for s in &self.series {
            out.push_str(&format!("{:name_w$}", s.name()));
            for l in &labels {
                match s.value_at(l) {
                    // An empty-sample statistic (NaN, e.g. a percentile of
                    // zero requests) renders as an em dash, never as a
                    // numeric value that could read as a perfect score.
                    Some(v) if v.is_nan() => out.push_str(&format!(" {:>col_w$}", "—")),
                    Some(v) => out.push_str(&format!(" {:>col_w$.2}", v)),
                    None => out.push_str(&format!(" {:>col_w$}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

impl Table {
    /// Renders the table as CSV: a header of x labels, one row per series.
    /// Labels containing commas or quotes are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut labels: Vec<&str> = Vec::new();
        for s in &self.series {
            for l in s.labels() {
                if !labels.contains(&l) {
                    labels.push(l);
                }
            }
        }
        let mut out = String::new();
        out.push_str("series");
        for l in &labels {
            out.push(',');
            out.push_str(&field(l));
        }
        out.push('\n');
        for s in &self.series {
            out.push_str(&field(s.name()));
            for l in &labels {
                out.push(',');
                // NaN (empty-sample statistic) exports as an empty cell,
                // same as a missing one.
                if let Some(v) = s.value_at(l) {
                    if !v.is_nan() {
                        out.push_str(&format!("{v}"));
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn truncate(s: &str, w: usize) -> &str {
    if s.len() <= w {
        s
    } else {
        &s[..w]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_lookup() {
        let mut s = Series::new("irs");
        s.point("a", 1.0).point("b", 2.0);
        assert_eq!(s.value_at("b"), Some(2.0));
        assert_eq!(s.value_at("c"), None);
        assert_eq!(s.labels(), vec!["a", "b"]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn table_renders_all_series() {
        let mut t = Table::new("Fig 5(a)");
        let mut s1 = Series::new("1-inter. IRS");
        s1.point("streamcluster", 38.25).point("raytrace", 1.0);
        let mut s2 = Series::new("1-inter. PLE");
        s2.point("streamcluster", 10.0);
        t.add(s1);
        t.add(s2);
        let text = t.render();
        assert!(text.contains("Fig 5(a)"));
        assert!(text.contains("38.25"));
        assert!(text.contains("1-inter. PLE"));
        // Missing cell rendered as '-'.
        let last = text.lines().last().unwrap();
        assert!(last.trim_end().ends_with('-'));
    }

    #[test]
    fn table_series_named() {
        let mut t = Table::new("x");
        t.add(Series::new("a"));
        assert!(t.series_named("a").is_some());
        assert!(t.series_named("b").is_none());
    }

    #[test]
    fn csv_export() {
        let mut t = Table::new("x");
        let mut s1 = Series::new("a,b");
        s1.point("l1", 1.5).point("l2", 2.0);
        let mut s2 = Series::new("c");
        s2.point("l2", 3.0);
        t.add(s1);
        t.add(s2);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,l1,l2");
        assert_eq!(lines[1], "\"a,b\",1.5,2");
        assert_eq!(lines[2], "c,,3");
    }

    #[test]
    fn nan_cells_render_as_dash_and_empty_csv() {
        let mut t = Table::new("x");
        let mut s = Series::new("p99");
        s.point("ok", 12.5).point("empty", f64::NAN);
        t.add(s);
        let text = t.render();
        assert!(text.contains('—'), "NaN must render as an em dash:\n{text}");
        assert!(!text.contains("NaN"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "p99,12.5,");
    }

    #[test]
    fn long_labels_are_truncated() {
        let mut t = Table::new("x");
        let mut s = Series::new("s");
        s.point("averyveryverylonglabelindeed", 1.0);
        t.add(s);
        let text = t.render();
        assert!(text.contains("averyveryveryl"));
        assert!(!text.contains("longlabelindeed"));
    }
}
