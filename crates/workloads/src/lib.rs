//! # irs-workloads — workload models for the IRS reproduction
//!
//! The paper evaluates IRS on PARSEC (pthreads, blocking synchronization),
//! NPB (OpenMP, spinning when `OMP_WAIT_POLICY=active`), SPECjbb2005, the
//! Apache `ab` benchmark, and a CPU-hog micro-benchmark. None of those can
//! run on a scheduling simulator directly, so this crate provides the
//! closest synthetic equivalents: each benchmark becomes a set of small
//! **programs** (one per thread) over the `irs-sync` primitives, with
//! per-benchmark parameters — synchronization type and granularity,
//! pipeline shape, memory intensity — matched to the structural properties
//! the paper's analysis relies on (see `DESIGN.md` §1 for the substitution
//! table and `presets` for the catalog).
//!
//! The pieces:
//!
//! * [`Program`] / [`ProgramBuilder`] — a tiny validated bytecode: compute
//!   segments with jitter, lock/unlock, barrier arrival, channel push/pop,
//!   work-steal loops, bounded/infinite loops, request markers, and the
//!   time-anchored ops — absolute/periodic sleeps (`sleep_until_us`,
//!   `align_to_us`), gang-epoch safepoint polls, and deterministic
//!   open-loop arrival waits (`await_arrival`).
//! * [`ProgramRunner`] — resumable interpreter; yields [`Step`]s to the
//!   embedding simulation, which models time, blocking, and spinning.
//! * [`WorkloadBundle`] — a named set of thread programs plus their
//!   [`SyncSpace`](irs_sync::SyncSpace), memory intensity, and (for servers) the open-loop
//!   arrival process.
//! * [`presets`] — the catalog: 13 PARSEC-like, 9 NPB-like, 2 server, and
//!   the hog micro-benchmark.
//!
//! # Example
//!
//! ```
//! use irs_sim::SimRng;
//! use irs_sync::WaitMode;
//! use irs_workloads::presets;
//! use irs_workloads::{ProgramRunner, Step};
//!
//! let mut bundle = presets::parsec::streamcluster(4, WaitMode::Block);
//! assert_eq!(bundle.threads.len(), 4);
//! let mut rng = SimRng::seed_from(1);
//! let mut runner = ProgramRunner::new(bundle.threads[0].clone());
//! // The first step of a streamcluster thread is a compute segment.
//! match runner.next(&mut rng, &mut bundle.space) {
//!     Step::Compute { ns } => assert!(ns > 0),
//!     other => panic!("unexpected first step {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bundle;
pub mod presets;
mod program;
mod runner;

pub use bundle::{OpenLoop, WorkloadBundle, WorkloadKind};
pub use program::{Op, Program, ProgramBuilder};
pub use runner::{ProgramRunner, Step};
