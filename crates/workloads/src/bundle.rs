//! Workload bundles: the unit a scenario assigns to a VM.

use crate::program::Program;
use irs_sim::SimTime;
use irs_sync::{ChannelId, SyncSpace};

/// What kind of workload a bundle is — determines the completion criterion
/// and which metrics are meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Parallel program: done when every thread's program completes; the
    /// metric is the makespan.
    Parallel,
    /// Server: runs until the measurement horizon; the metrics are request
    /// throughput and latency.
    Server,
    /// Interference: runs forever; only its CPU consumption matters.
    Interference,
}

/// Open-loop request arrivals for a server bundle (the `ab` model): a
/// Poisson process pushing requests into a channel that worker threads pop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoop {
    /// Channel the generator pushes into and the workers pop from.
    pub channel: ChannelId,
    /// Mean inter-arrival time of requests.
    pub mean_interarrival: SimTime,
}

/// A named workload: one program per thread, the synchronization objects
/// they share, and the modelling knobs the embedder needs.
#[derive(Debug)]
pub struct WorkloadBundle {
    /// Human-readable benchmark name (e.g. `"streamcluster"`).
    pub name: String,
    /// One program per thread; thread `i` starts on vCPU `i % n_vcpus`.
    pub threads: Vec<Program>,
    /// Shared synchronization objects.
    pub space: SyncSpace,
    /// Completion/metric semantics.
    pub kind: WorkloadKind,
    /// Memory intensity in `[0, 1]`: scales the cache warm-up penalty a
    /// task pays after a cross-vCPU migration. Calibrated per benchmark —
    /// the mechanism behind the paper's observation that frequent migration
    /// "violates cache locality ... especially for memory-intensive
    /// workloads" (§5.2).
    pub memory_intensity: f64,
    /// Open-loop arrival process, for `ab`-style servers.
    pub open_loop: Option<OpenLoop>,
}

impl WorkloadBundle {
    /// Creates a parallel bundle.
    pub fn parallel(
        name: impl Into<String>,
        threads: Vec<Program>,
        space: SyncSpace,
        memory_intensity: f64,
    ) -> Self {
        WorkloadBundle {
            name: name.into(),
            threads,
            space,
            kind: WorkloadKind::Parallel,
            memory_intensity: memory_intensity.clamp(0.0, 1.0),
            open_loop: None,
        }
    }

    /// Creates a server bundle.
    pub fn server(
        name: impl Into<String>,
        threads: Vec<Program>,
        space: SyncSpace,
        memory_intensity: f64,
        open_loop: Option<OpenLoop>,
    ) -> Self {
        WorkloadBundle {
            name: name.into(),
            threads,
            space,
            kind: WorkloadKind::Server,
            memory_intensity: memory_intensity.clamp(0.0, 1.0),
            open_loop,
        }
    }

    /// Creates an interference bundle (runs forever).
    pub fn interference(
        name: impl Into<String>,
        threads: Vec<Program>,
        space: SyncSpace,
        memory_intensity: f64,
    ) -> Self {
        WorkloadBundle {
            name: name.into(),
            threads,
            space,
            kind: WorkloadKind::Interference,
            memory_intensity: memory_intensity.clamp(0.0, 1.0),
            open_loop: None,
        }
    }

    /// Converts a parallel bundle into an interference bundle by wrapping
    /// every thread in an infinite loop — the background-VM treatment of
    /// §5.4 (real applications as interference, repeated indefinitely).
    ///
    /// # Panics
    ///
    /// Panics if the bundle uses a work pool (pools exhaust and cannot
    /// repeat) — none of the paper's background workloads do.
    pub fn into_background(mut self) -> Self {
        assert!(
            self.kind == WorkloadKind::Parallel,
            "only parallel bundles can become background interference"
        );
        self.threads = self
            .threads
            .drain(..)
            .map(|p| p.repeat_forever())
            .collect();
        self.kind = WorkloadKind::Interference;
        self.name = format!("{}(bg)", self.name);
        self
    }

    /// Number of threads.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn parallel_bundle_basics() {
        let p = ProgramBuilder::new().compute_us(1, 0.0).build();
        let b = WorkloadBundle::parallel("x", vec![p.clone(), p], SyncSpace::new(), 0.5);
        assert_eq!(b.kind, WorkloadKind::Parallel);
        assert_eq!(b.n_threads(), 2);
        assert!((b.memory_intensity - 0.5).abs() < 1e-12);
    }

    #[test]
    fn memory_intensity_is_clamped() {
        let p = ProgramBuilder::new().compute_us(1, 0.0).build();
        let b = WorkloadBundle::parallel("x", vec![p], SyncSpace::new(), 7.0);
        assert_eq!(b.memory_intensity, 1.0);
    }

    #[test]
    fn into_background_wraps_threads() {
        let p = ProgramBuilder::new().compute_us(1, 0.0).build();
        let before_len = p.len();
        let b = WorkloadBundle::parallel("ua", vec![p], SyncSpace::new(), 0.5).into_background();
        assert_eq!(b.kind, WorkloadKind::Interference);
        assert_eq!(b.name, "ua(bg)");
        assert_eq!(b.threads[0].len(), before_len + 2);
    }
}
