//! The resumable program interpreter.

use crate::program::{Op, Program};
use irs_sim::SimRng;
use irs_sync::{ArrivalId, BarrierId, ChannelId, EpochId, LockId, SyncSpace};
use std::sync::Arc;

/// An externally visible step of a running program.
///
/// Control flow (loops, jumps, work stealing) is resolved inside the
/// runner; the embedding simulation only ever sees steps that take time or
/// touch the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Execute for `ns` nanoseconds of CPU time.
    Compute {
        /// Resolved (jittered) segment length.
        ns: u64,
    },
    /// Attempt to acquire this lock.
    Acquire(LockId),
    /// Release this lock.
    Release(LockId),
    /// Arrive at this barrier.
    Arrive(BarrierId),
    /// Push into this channel.
    Push(ChannelId),
    /// Pop from this channel.
    Pop(ChannelId),
    /// Close this channel.
    Close(ChannelId),
    /// Sleep for `ns` nanoseconds (off-CPU, not waiting on anyone).
    Sleep {
        /// Sleep length.
        ns: u64,
    },
    /// Sleep until an absolute instant (no-op if already past). The
    /// embedder resolves it against the virtual clock — the runner is
    /// clockless.
    SleepUntil {
        /// Absolute wake instant in nanoseconds since boot.
        at_ns: u64,
    },
    /// Sleep to the next periodic boundary strictly after now.
    AlignTo {
        /// Alignment period.
        period_ns: u64,
        /// Boundary phase offset.
        offset_ns: u64,
    },
    /// Poll this gang-epoch safepoint.
    SafepointPoll(EpochId),
    /// Take the next open-loop request from this arrival process.
    AwaitArrival(ArrivalId),
    /// Request-start marker (timestamp me).
    RequestStart,
    /// Request-completion marker (account my latency).
    RequestDone,
    /// Program finished.
    Done,
}

/// Interpreter state for one task's program.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct ProgramRunner {
    /// Shared, immutable instruction sequence. Sibling tasks running the
    /// same program (every parallel preset spawns N identical threads)
    /// share one allocation instead of each cloning the op vector; the
    /// interpreter's mutable state is everything below.
    program: Arc<Program>,
    pc: usize,
    loop_stack: Vec<LoopFrame>,
    done: bool,
    steps: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LoopFrame {
    start_pc: usize,
    remaining: u64,
}

impl ProgramRunner {
    /// Creates a runner positioned at the program start.
    pub fn new(program: Program) -> Self {
        Self::from_shared(Arc::new(program))
    }

    /// Creates a runner over an already-shared program, positioned at the
    /// start. Use this when many tasks run the same program: the op vector
    /// is reference-counted, not cloned per task.
    pub fn from_shared(program: Arc<Program>) -> Self {
        ProgramRunner {
            program,
            pc: 0,
            loop_stack: Vec::new(),
            done: false,
            steps: 0,
        }
    }

    /// Advances to the next externally visible step.
    ///
    /// `rng` resolves compute jitter; `space` is needed because work-steal
    /// loops claim chunks inline (stealing is non-blocking and has no
    /// scheduling consequence, so it never surfaces as a step).
    ///
    /// After [`Step::Done`] every further call returns `Done`.
    pub fn next(&mut self, rng: &mut SimRng, space: &mut SyncSpace) -> Step {
        if self.done {
            return Step::Done;
        }
        loop {
            let Some(op) = self.program.op(self.pc) else {
                self.done = true;
                return Step::Done;
            };
            match *op {
                Op::LoopStart { count } => {
                    if count == 0 {
                        self.pc = self.program.matching_loop_end(self.pc) + 1;
                    } else {
                        self.loop_stack.push(LoopFrame {
                            start_pc: self.pc,
                            remaining: count,
                        });
                        self.pc += 1;
                    }
                }
                Op::LoopEnd => {
                    let frame = self
                        .loop_stack
                        .last_mut()
                        .expect("validated program: LoopEnd has a frame");
                    frame.remaining = frame.remaining.saturating_sub(1);
                    if frame.remaining > 0 {
                        self.pc = frame.start_pc + 1;
                    } else {
                        self.loop_stack.pop();
                        self.pc += 1;
                    }
                }
                Op::Jump { target } => {
                    self.pc = target;
                }
                Op::StealOrExit(pool) => {
                    if space.pool(pool).steal() {
                        self.pc += 1;
                    } else {
                        self.done = true;
                        return Step::Done;
                    }
                }
                Op::Compute { mean_ns, jitter } => {
                    self.pc += 1;
                    self.steps += 1;
                    return Step::Compute {
                        ns: rng.jittered(mean_ns, jitter),
                    };
                }
                Op::Lock(l) => {
                    self.pc += 1;
                    self.steps += 1;
                    return Step::Acquire(l);
                }
                Op::Unlock(l) => {
                    self.pc += 1;
                    self.steps += 1;
                    return Step::Release(l);
                }
                Op::Barrier(b) => {
                    self.pc += 1;
                    self.steps += 1;
                    return Step::Arrive(b);
                }
                Op::Push(c) => {
                    self.pc += 1;
                    self.steps += 1;
                    return Step::Push(c);
                }
                Op::Pop(c) => {
                    self.pc += 1;
                    self.steps += 1;
                    return Step::Pop(c);
                }
                Op::Close(c) => {
                    self.pc += 1;
                    self.steps += 1;
                    return Step::Close(c);
                }
                Op::Sleep { ns } => {
                    self.pc += 1;
                    self.steps += 1;
                    return Step::Sleep { ns };
                }
                Op::SleepUntil { at_ns } => {
                    self.pc += 1;
                    self.steps += 1;
                    return Step::SleepUntil { at_ns };
                }
                Op::AlignTo { period_ns, offset_ns } => {
                    self.pc += 1;
                    self.steps += 1;
                    return Step::AlignTo { period_ns, offset_ns };
                }
                Op::SafepointPoll(e) => {
                    self.pc += 1;
                    self.steps += 1;
                    return Step::SafepointPoll(e);
                }
                Op::AwaitArrival(a) => {
                    self.pc += 1;
                    self.steps += 1;
                    return Step::AwaitArrival(a);
                }
                Op::RequestStart => {
                    self.pc += 1;
                    self.steps += 1;
                    return Step::RequestStart;
                }
                Op::RequestDone => {
                    self.pc += 1;
                    self.steps += 1;
                    return Step::RequestDone;
                }
            }
        }
    }

    /// True once the program has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Number of externally visible steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use irs_sync::WaitMode;

    fn rng() -> SimRng {
        SimRng::seed_from(42)
    }

    #[test]
    fn straight_line_program_runs_to_done() {
        let mut space = SyncSpace::new();
        let l = space.new_lock(WaitMode::Block);
        let p = ProgramBuilder::new()
            .compute_us(10, 0.0)
            .lock(l)
            .unlock(l)
            .build();
        let mut r = ProgramRunner::new(p);
        let mut rng = rng();
        assert_eq!(r.next(&mut rng, &mut space), Step::Compute { ns: 10_000 });
        assert_eq!(r.next(&mut rng, &mut space), Step::Acquire(l));
        assert_eq!(r.next(&mut rng, &mut space), Step::Release(l));
        assert_eq!(r.next(&mut rng, &mut space), Step::Done);
        assert!(r.is_done());
        assert_eq!(r.next(&mut rng, &mut space), Step::Done, "done is sticky");
        assert_eq!(r.steps_taken(), 3);
    }

    #[test]
    fn loops_repeat_the_body() {
        let mut space = SyncSpace::new();
        let p = ProgramBuilder::new()
            .repeat(3, |b| b.compute_us(1, 0.0))
            .build();
        let mut r = ProgramRunner::new(p);
        let mut rng = rng();
        let mut computes = 0;
        while r.next(&mut rng, &mut space) != Step::Done {
            computes += 1;
        }
        assert_eq!(computes, 3);
    }

    #[test]
    fn nested_loops_multiply() {
        let mut space = SyncSpace::new();
        let p = ProgramBuilder::new()
            .repeat(4, |b| b.repeat(5, |b| b.compute_us(1, 0.0)))
            .build();
        let mut r = ProgramRunner::new(p);
        let mut rng = rng();
        let mut computes = 0;
        while r.next(&mut rng, &mut space) != Step::Done {
            computes += 1;
        }
        assert_eq!(computes, 20);
    }

    #[test]
    fn zero_count_loop_is_skipped() {
        let mut space = SyncSpace::new();
        let p = ProgramBuilder::new()
            .repeat(0, |b| b.compute_us(1, 0.0))
            .compute_us(2, 0.0)
            .build();
        let mut r = ProgramRunner::new(p);
        let mut rng = rng();
        assert_eq!(r.next(&mut rng, &mut space), Step::Compute { ns: 2_000 });
        assert_eq!(r.next(&mut rng, &mut space), Step::Done);
    }

    #[test]
    fn steal_loop_consumes_the_pool_then_exits() {
        let mut space = SyncSpace::new();
        let pool = space.new_pool(7);
        let p = ProgramBuilder::new().steal_loop(pool, 100, 0.0).build();
        let mut r = ProgramRunner::new(p);
        let mut rng = rng();
        let mut chunks = 0;
        while r.next(&mut rng, &mut space) != Step::Done {
            chunks += 1;
        }
        assert_eq!(chunks, 7);
        assert!(space.pool(pool).is_exhausted());
    }

    #[test]
    fn two_runners_share_a_pool() {
        let mut space = SyncSpace::new();
        let pool = space.new_pool(10);
        let p = ProgramBuilder::new().steal_loop(pool, 100, 0.0).build();
        let mut a = ProgramRunner::new(p.clone());
        let mut b = ProgramRunner::new(p);
        let mut rng = rng();
        let mut total = 0;
        // Interleave: the pool arbitrates, totals must equal the pool size.
        loop {
            let sa = a.next(&mut rng, &mut space);
            let sb = b.next(&mut rng, &mut space);
            if sa == Step::Done && sb == Step::Done {
                break;
            }
            total += usize::from(sa != Step::Done) + usize::from(sb != Step::Done);
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn jitter_is_resolved_per_step() {
        let mut space = SyncSpace::new();
        let p = ProgramBuilder::new()
            .repeat(50, |b| b.compute_us(1_000, 0.5))
            .build();
        let mut r = ProgramRunner::new(p);
        let mut rng = rng();
        let mut seen = std::collections::HashSet::new();
        while let Step::Compute { ns } = r.next(&mut rng, &mut space) {
            assert!((500_000..=1_500_000).contains(&ns));
            seen.insert(ns);
        }
        assert!(seen.len() > 10, "jitter should vary across iterations");
    }

    #[test]
    fn request_markers_surface() {
        let mut space = SyncSpace::new();
        let p = ProgramBuilder::new()
            .request_start()
            .compute_us(5, 0.0)
            .request_done()
            .build();
        let mut r = ProgramRunner::new(p);
        let mut rng = rng();
        assert_eq!(r.next(&mut rng, &mut space), Step::RequestStart);
        assert!(matches!(r.next(&mut rng, &mut space), Step::Compute { .. }));
        assert_eq!(r.next(&mut rng, &mut space), Step::RequestDone);
    }

    #[test]
    fn time_anchored_steps_surface() {
        let mut space = SyncSpace::new();
        let e = space.new_epoch(1_000_000, 1, WaitMode::Block);
        let a = space.new_arrival(irs_sync::ArrivalDist::Poisson { mean_ns: 1_000 });
        let p = ProgramBuilder::new()
            .sleep_until_us(100)
            .align_to_us(50, 5)
            .safepoint_poll(e)
            .await_arrival(a)
            .build();
        let mut r = ProgramRunner::new(p);
        let mut rng = rng();
        assert_eq!(
            r.next(&mut rng, &mut space),
            Step::SleepUntil { at_ns: 100_000 }
        );
        assert_eq!(
            r.next(&mut rng, &mut space),
            Step::AlignTo {
                period_ns: 50_000,
                offset_ns: 5_000
            }
        );
        assert_eq!(r.next(&mut rng, &mut space), Step::SafepointPoll(e));
        assert_eq!(r.next(&mut rng, &mut space), Step::AwaitArrival(a));
        assert_eq!(r.next(&mut rng, &mut space), Step::Done);
    }

    #[test]
    fn empty_program_is_immediately_done() {
        let mut space = SyncSpace::new();
        let mut r = ProgramRunner::new(Program::new(vec![]));
        assert_eq!(r.next(&mut rng(), &mut space), Step::Done);
    }

    #[test]
    fn forever_loop_keeps_producing() {
        let mut space = SyncSpace::new();
        let p = ProgramBuilder::new()
            .forever(|b| b.compute_us(1, 0.0))
            .build();
        let mut r = ProgramRunner::new(p);
        let mut rng = rng();
        for _ in 0..10_000 {
            assert!(matches!(r.next(&mut rng, &mut space), Step::Compute { .. }));
        }
        assert!(!r.is_done());
    }
}
