//! The workload bytecode and its builder.

use irs_sync::{ArrivalId, BarrierId, ChannelId, EpochId, LockId, PoolId};

/// One instruction of a thread program.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Execute for `mean_ns` nanoseconds ± `jitter` (multiplicative).
    Compute {
        /// Mean segment length in nanoseconds.
        mean_ns: u64,
        /// Relative jitter in `[0, 1]`.
        jitter: f64,
    },
    /// Acquire a lock (blocking or spinning per the lock's mode).
    Lock(LockId),
    /// Release a lock.
    Unlock(LockId),
    /// Arrive at a barrier.
    Barrier(BarrierId),
    /// Push one item into a channel (blocks when full).
    Push(ChannelId),
    /// Pop one item from a channel (blocks when empty).
    Pop(ChannelId),
    /// Close a channel, disconnecting its consumers.
    Close(ChannelId),
    /// Claim one chunk from a work pool; on exhaustion, jump to program end.
    StealOrExit(PoolId),
    /// Sleep for a fixed duration (timed wait, I/O think time).
    Sleep {
        /// Sleep length in nanoseconds.
        ns: u64,
    },
    /// Sleep until an absolute virtual-time instant; a no-op if that
    /// instant has already passed. Rejected inside loops (a loop body
    /// would re-anchor to the same instant and spin).
    SleepUntil {
        /// Absolute wake instant in nanoseconds since boot.
        at_ns: u64,
    },
    /// Sleep to the next `offset_ns + k·period_ns` boundary strictly
    /// after the current instant (periodic wall-clock alignment: tick
    /// handlers, heartbeat emitters, metronomic phases).
    AlignTo {
        /// Alignment period in nanoseconds.
        period_ns: u64,
        /// Phase offset of the boundaries in nanoseconds.
        offset_ns: u64,
    },
    /// Poll a gang-epoch safepoint: pass free unless the epoch's
    /// wall-clock deadline has been reached, in which case park until
    /// every participant has arrived (JVM stop-the-world shape).
    SafepointPoll(EpochId),
    /// Take the next request from an open-loop arrival process: starts
    /// the request's latency clock at the *arrival* instant and sleeps
    /// until then if the arrival is still in the future.
    AwaitArrival(ArrivalId),
    /// Begin a counted loop (use `u64::MAX` for effectively-forever).
    LoopStart {
        /// Number of iterations of the loop body.
        count: u64,
    },
    /// End of the innermost loop body.
    LoopEnd,
    /// Unconditional jump to an absolute instruction index.
    Jump {
        /// Absolute target index.
        target: usize,
    },
    /// Mark the start of a request (service-time measurement).
    RequestStart,
    /// Mark the completion of a request (latency/throughput accounting).
    RequestDone,
}

/// A validated thread program.
///
/// Construct through [`ProgramBuilder`]; validation guarantees balanced
/// loops and in-range jump targets, so the interpreter never faults.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    ops: Vec<Op>,
}

impl Program {
    /// Validates and wraps an instruction sequence.
    ///
    /// # Panics
    ///
    /// Panics on unbalanced `LoopStart`/`LoopEnd`, an out-of-range jump,
    /// a `SleepUntil` inside a loop body (each iteration would re-anchor
    /// to the same absolute instant, degenerating into a spin), or a
    /// zero-period `AlignTo`.
    pub fn new(ops: Vec<Op>) -> Self {
        let mut depth = 0i64;
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::LoopStart { .. } => depth += 1,
                Op::LoopEnd => {
                    depth -= 1;
                    assert!(depth >= 0, "LoopEnd without LoopStart at op {i}");
                }
                Op::Jump { target } => {
                    assert!(*target <= ops.len(), "jump target {target} out of range at op {i}");
                }
                Op::SleepUntil { .. } => {
                    assert!(
                        depth == 0,
                        "time anchor inside a loop: SleepUntil at op {i} would re-anchor \
                         every iteration to the same absolute instant"
                    );
                }
                Op::AlignTo { period_ns, .. } => {
                    assert!(*period_ns > 0, "AlignTo with zero period at op {i}");
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced loops: {depth} LoopStart(s) unclosed");
        Program { ops }
    }

    /// The instruction at `pc`, or `None` past the end.
    pub fn op(&self, pc: usize) -> Option<&Op> {
        self.ops.get(pc)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for the empty program (immediately done).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Distinct gang epochs this program polls ([`Op::SafepointPoll`]),
    /// in first-reference order. The embedding simulation uses this to
    /// verify every epoch's participant count matches the number of
    /// threads actually polling it.
    pub fn epochs_polled(&self) -> Vec<EpochId> {
        let mut out = Vec::new();
        for op in &self.ops {
            if let Op::SafepointPoll(e) = op {
                if !out.contains(e) {
                    out.push(*e);
                }
            }
        }
        out
    }

    /// Distinct arrival processes this program awaits
    /// ([`Op::AwaitArrival`]), in first-reference order.
    pub fn arrivals_awaited(&self) -> Vec<ArrivalId> {
        let mut out = Vec::new();
        for op in &self.ops {
            if let Op::AwaitArrival(a) = op {
                if !out.contains(a) {
                    out.push(*a);
                }
            }
        }
        out
    }

    /// Index of the `LoopEnd` matching the `LoopStart` at `start_pc`.
    ///
    /// # Panics
    ///
    /// Panics if `start_pc` is not a `LoopStart` (validation makes a missing
    /// match impossible).
    pub(crate) fn matching_loop_end(&self, start_pc: usize) -> usize {
        assert!(matches!(self.ops[start_pc], Op::LoopStart { .. }));
        let mut depth = 0usize;
        for (i, op) in self.ops.iter().enumerate().skip(start_pc) {
            match op {
                Op::LoopStart { .. } => depth += 1,
                Op::LoopEnd => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        unreachable!("validated program has a matching LoopEnd");
    }

    /// Wraps the whole program in an infinite loop — how background
    /// (interfering) applications are kept running for the entire
    /// measurement window (§5.4 "repeated at least five times").
    pub fn repeat_forever(self) -> Program {
        let mut ops = Vec::with_capacity(self.ops.len() + 2);
        ops.push(Op::LoopStart { count: u64::MAX });
        ops.extend(self.ops);
        ops.push(Op::LoopEnd);
        Program::new(ops)
    }
}

/// Fluent builder for [`Program`]s.
///
/// # Example
///
/// ```
/// use irs_workloads::ProgramBuilder;
///
/// // 10 iterations of: compute ~5 ms (±10%), then a tiny tail compute.
/// let program = ProgramBuilder::new()
///     .repeat(10, |p| p.compute_us(5_000, 0.1))
///     .compute_us(100, 0.0)
///     .build();
/// assert_eq!(program.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
}

impl ProgramBuilder {
    /// Starts an empty program.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Appends a compute segment of `mean_us` microseconds ± `jitter`.
    pub fn compute_us(mut self, mean_us: u64, jitter: f64) -> Self {
        self.ops.push(Op::Compute {
            mean_ns: mean_us * 1_000,
            jitter,
        });
        self
    }

    /// Appends a compute segment of `mean_ns` nanoseconds ± `jitter`.
    pub fn compute_ns(mut self, mean_ns: u64, jitter: f64) -> Self {
        self.ops.push(Op::Compute { mean_ns, jitter });
        self
    }

    /// Appends a lock acquisition.
    pub fn lock(mut self, lock: LockId) -> Self {
        self.ops.push(Op::Lock(lock));
        self
    }

    /// Appends a lock release.
    pub fn unlock(mut self, lock: LockId) -> Self {
        self.ops.push(Op::Unlock(lock));
        self
    }

    /// Appends a barrier arrival.
    pub fn barrier(mut self, barrier: BarrierId) -> Self {
        self.ops.push(Op::Barrier(barrier));
        self
    }

    /// Appends a channel push.
    pub fn push(mut self, chan: ChannelId) -> Self {
        self.ops.push(Op::Push(chan));
        self
    }

    /// Appends a channel pop.
    pub fn pop(mut self, chan: ChannelId) -> Self {
        self.ops.push(Op::Pop(chan));
        self
    }

    /// Appends a channel close.
    pub fn close(mut self, chan: ChannelId) -> Self {
        self.ops.push(Op::Close(chan));
        self
    }

    /// Appends a sleep.
    pub fn sleep_us(mut self, us: u64) -> Self {
        self.ops.push(Op::Sleep { ns: us * 1_000 });
        self
    }

    /// Appends an absolute-time anchor: sleep until `at_us` microseconds
    /// after boot (no-op if already past).
    pub fn sleep_until_us(mut self, at_us: u64) -> Self {
        self.ops.push(Op::SleepUntil { at_ns: at_us * 1_000 });
        self
    }

    /// Appends a periodic alignment: sleep to the next
    /// `offset_us + k·period_us` boundary strictly in the future.
    pub fn align_to_us(mut self, period_us: u64, offset_us: u64) -> Self {
        self.ops.push(Op::AlignTo {
            period_ns: period_us * 1_000,
            offset_ns: offset_us * 1_000,
        });
        self
    }

    /// Appends a gang-epoch safepoint poll.
    pub fn safepoint_poll(mut self, epoch: EpochId) -> Self {
        self.ops.push(Op::SafepointPoll(epoch));
        self
    }

    /// Appends an open-loop arrival take: block until the process's next
    /// request instant, then start that request's latency clock there.
    pub fn await_arrival(mut self, arrival: ArrivalId) -> Self {
        self.ops.push(Op::AwaitArrival(arrival));
        self
    }

    /// Appends a request-start marker.
    pub fn request_start(mut self) -> Self {
        self.ops.push(Op::RequestStart);
        self
    }

    /// Appends a request-completion marker.
    pub fn request_done(mut self) -> Self {
        self.ops.push(Op::RequestDone);
        self
    }

    /// Appends `count` iterations of the body built by `f`.
    pub fn repeat(mut self, count: u64, f: impl FnOnce(ProgramBuilder) -> ProgramBuilder) -> Self {
        self.ops.push(Op::LoopStart { count });
        let body = f(ProgramBuilder::new());
        self.ops.extend(body.ops);
        self.ops.push(Op::LoopEnd);
        self
    }

    /// Appends an infinite loop of the body built by `f`.
    pub fn forever(self, f: impl FnOnce(ProgramBuilder) -> ProgramBuilder) -> Self {
        self.repeat(u64::MAX, f)
    }

    /// Appends a work-steal loop: claim a chunk from `pool`, compute
    /// `chunk_us` ± `jitter`, repeat until the pool is exhausted.
    pub fn steal_loop(mut self, pool: PoolId, chunk_us: u64, jitter: f64) -> Self {
        let head = self.ops.len();
        self.ops.push(Op::StealOrExit(pool));
        self.ops.push(Op::Compute {
            mean_ns: chunk_us * 1_000,
            jitter,
        });
        self.ops.push(Op::Jump { target: head });
        self
    }

    /// Finalizes (and validates) the program.
    ///
    /// # Panics
    ///
    /// Panics if the instruction sequence is malformed (see
    /// [`Program::new`]).
    pub fn build(self) -> Program {
        Program::new(self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_ops() {
        let l = LockId(0);
        let p = ProgramBuilder::new()
            .compute_us(100, 0.1)
            .lock(l)
            .compute_us(5, 0.0)
            .unlock(l)
            .build();
        assert_eq!(p.len(), 4);
        assert!(matches!(p.op(1), Some(Op::Lock(_))));
        assert!(p.op(4).is_none());
    }

    #[test]
    fn repeat_nests() {
        let p = ProgramBuilder::new()
            .repeat(3, |b| b.repeat(2, |b| b.compute_us(1, 0.0)))
            .build();
        // LoopStart, LoopStart, Compute, LoopEnd, LoopEnd
        assert_eq!(p.len(), 5);
        assert_eq!(p.matching_loop_end(0), 4);
        assert_eq!(p.matching_loop_end(1), 3);
    }

    #[test]
    fn steal_loop_shape() {
        let pool = PoolId(0);
        let p = ProgramBuilder::new().steal_loop(pool, 1_000, 0.1).build();
        assert!(matches!(p.op(0), Some(Op::StealOrExit(_))));
        assert!(matches!(p.op(2), Some(Op::Jump { target: 0 })));
    }

    #[test]
    fn repeat_forever_wraps() {
        let p = ProgramBuilder::new().compute_us(1, 0.0).build();
        let wrapped = p.repeat_forever();
        assert_eq!(wrapped.len(), 3);
        assert!(matches!(wrapped.op(0), Some(Op::LoopStart { count: u64::MAX })));
        assert!(matches!(wrapped.op(2), Some(Op::LoopEnd)));
    }

    #[test]
    #[should_panic(expected = "unbalanced loops")]
    fn unbalanced_loop_panics() {
        Program::new(vec![Op::LoopStart { count: 1 }]);
    }

    #[test]
    #[should_panic(expected = "LoopEnd without LoopStart")]
    fn stray_loop_end_panics() {
        Program::new(vec![Op::LoopEnd]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn wild_jump_panics() {
        Program::new(vec![Op::Jump { target: 7 }]);
    }

    #[test]
    fn time_anchors_build_at_top_level() {
        let p = ProgramBuilder::new()
            .sleep_until_us(500)
            .align_to_us(100, 10)
            .forever(|b| b.safepoint_poll(EpochId(0)).compute_us(10, 0.0))
            .build();
        assert!(matches!(p.op(0), Some(Op::SleepUntil { at_ns: 500_000 })));
        assert!(matches!(
            p.op(1),
            Some(Op::AlignTo {
                period_ns: 100_000,
                offset_ns: 10_000
            })
        ));
        assert!(matches!(p.op(3), Some(Op::SafepointPoll(_))));
    }

    #[test]
    #[should_panic(expected = "time anchor inside a loop")]
    fn sleep_until_inside_a_loop_panics() {
        ProgramBuilder::new()
            .repeat(3, |b| b.sleep_until_us(1_000))
            .build();
    }

    #[test]
    #[should_panic(expected = "time anchor inside a loop")]
    fn repeat_forever_around_a_time_anchor_panics() {
        ProgramBuilder::new()
            .sleep_until_us(1_000)
            .compute_us(5, 0.0)
            .build()
            .repeat_forever();
    }

    #[test]
    #[should_panic(expected = "zero period")]
    fn zero_period_align_panics() {
        Program::new(vec![Op::AlignTo {
            period_ns: 0,
            offset_ns: 0,
        }]);
    }

    #[test]
    fn align_and_arrivals_are_loop_safe() {
        // AlignTo advances each iteration and AwaitArrival consumes the
        // stream, so both belong in loop bodies.
        let p = ProgramBuilder::new()
            .forever(|b| {
                b.await_arrival(ArrivalId(0))
                    .compute_us(100, 0.1)
                    .align_to_us(1_000, 0)
            })
            .build();
        assert_eq!(p.len(), 5);
    }
}
