//! The benchmark catalog.
//!
//! Each preset reproduces the *synchronization structure* of its namesake —
//! the property the paper's results hinge on — at a scale that keeps
//! simulated runs fast (solo makespans around 1.5–2 virtual seconds).
//! Compute grains are chosen so that the ratio of synchronization interval
//! to the hypervisor's 30 ms slice matches each benchmark's published
//! character (e.g. streamcluster's 20–30 ms barriers, §5.1).
//!
//! * [`parsec`] — 13 pthread-style benchmarks (blocking by default).
//! * [`npb`] — 9 OpenMP-style kernels (spinning with
//!   `OMP_WAIT_POLICY=active`, blocking with `passive`).
//! * [`server`] — SPECjbb-like closed-loop and ab-like open-loop servers.
//! * [`hog`] — the CPU-hog interference micro-benchmark.
//! * [`adversarial`] — scheduler-attack tenants for the fleet campaign.

pub mod adversarial;
pub mod hog;
pub mod npb;
pub mod parsec;
pub mod server;

use crate::bundle::WorkloadBundle;
use crate::program::ProgramBuilder;
use irs_sync::{SyncSpace, WaitMode};

/// Builds a classic data-parallel benchmark: `iters` rounds of a compute
/// grain followed by a full barrier, one program per thread.
pub(crate) fn data_parallel(
    name: &str,
    n_threads: usize,
    iters: u64,
    grain_us: u64,
    jitter: f64,
    mode: WaitMode,
    memory_intensity: f64,
) -> WorkloadBundle {
    assert!(n_threads > 0, "{name} needs at least one thread");
    let mut space = SyncSpace::new();
    let bar = space.new_barrier(n_threads, mode);
    let threads = (0..n_threads)
        .map(|_| {
            ProgramBuilder::new()
                .repeat(iters, |b| b.compute_us(grain_us, jitter).barrier(bar))
                .build()
        })
        .collect();
    WorkloadBundle::parallel(name, threads, space, memory_intensity)
}

/// Builds a mutex-centric benchmark: rounds of a compute grain, then a
/// short critical section under a single shared lock, with a periodic
/// barrier every `barrier_every` rounds (0 disables the barrier).
#[allow(clippy::too_many_arguments)]
pub(crate) fn lock_parallel(
    name: &str,
    n_threads: usize,
    iters: u64,
    grain_us: u64,
    cs_us: u64,
    barrier_every: u64,
    mode: WaitMode,
    memory_intensity: f64,
) -> WorkloadBundle {
    assert!(n_threads > 0, "{name} needs at least one thread");
    let mut space = SyncSpace::new();
    let lock = space.new_lock(mode);
    let bar = if barrier_every > 0 {
        Some(space.new_barrier(n_threads, mode))
    } else {
        None
    };
    let outer = match barrier_every {
        0 => 1,
        n => iters / n,
    };
    let inner = if barrier_every > 0 { barrier_every } else { iters };
    // A final join barrier so the makespan is set by the slowest thread
    // even when no periodic barrier exists.
    let join = space.new_barrier(n_threads, mode);
    let threads = (0..n_threads)
        .map(|_| {
            ProgramBuilder::new()
                .repeat(outer.max(1), |b| {
                    let b = b.repeat(inner, |b| {
                        b.compute_us(grain_us, 0.1)
                            .lock(lock)
                            .compute_us(cs_us, 0.1)
                            .unlock(lock)
                    });
                    match bar {
                        Some(bar) => b.barrier(bar),
                        None => b,
                    }
                })
                .barrier(join)
                .build()
        })
        .collect();
    WorkloadBundle::parallel(name, threads, space, memory_intensity)
}

/// Builds an `n_stage` pipeline with `threads_per_stage` workers per stage
/// connected by bounded channels. Every worker handles a fixed share of
/// `items`; counts balance exactly so no close/sentinel protocol is needed.
pub(crate) fn pipeline(
    name: &str,
    n_stages: usize,
    threads_per_stage: usize,
    items: u64,
    stage_cost_us: u64,
    memory_intensity: f64,
) -> WorkloadBundle {
    assert!(n_stages >= 2, "{name} pipeline needs at least two stages");
    assert!(threads_per_stage > 0);
    let mut space = SyncSpace::new();
    let share = (items / threads_per_stage as u64).max(1);
    let chans: Vec<_> = (0..n_stages - 1)
        .map(|_| space.new_channel(8 * threads_per_stage))
        .collect();
    let mut threads = Vec::new();
    for stage in 0..n_stages {
        for _ in 0..threads_per_stage {
            let p = match stage {
                0 => ProgramBuilder::new()
                    .repeat(share, |b| b.compute_us(stage_cost_us, 0.15).push(chans[0]))
                    .build(),
                s if s == n_stages - 1 => ProgramBuilder::new()
                    .repeat(share, |b| {
                        b.pop(chans[s - 1]).compute_us(stage_cost_us, 0.15)
                    })
                    .build(),
                s => ProgramBuilder::new()
                    .repeat(share, |b| {
                        b.pop(chans[s - 1])
                            .compute_us(stage_cost_us, 0.15)
                            .push(chans[s])
                    })
                    .build(),
            };
            threads.push(p);
        }
    }
    WorkloadBundle::parallel(name, threads, space, memory_intensity)
}

/// Looks up any parallel preset by its benchmark name.
///
/// PARSEC names use blocking synchronization and NPB names use the given
/// `mode` (PARSEC ignores `mode` except where the paper varies it), matching
/// the paper's §5.1 configuration. Returns `None` for unknown names.
pub fn by_name(name: &str, n_threads: usize, mode: WaitMode) -> Option<WorkloadBundle> {
    let b = match name {
        // PARSEC (pthreads, blocking)
        "blackscholes" => parsec::blackscholes(n_threads, mode),
        "bodytrack" => parsec::bodytrack(n_threads, mode),
        "canneal" => parsec::canneal(n_threads, mode),
        "dedup" => parsec::dedup(n_threads),
        "facesim" => parsec::facesim(n_threads, mode),
        "ferret" => parsec::ferret(n_threads),
        "fluidanimate" => parsec::fluidanimate(n_threads, mode),
        "raytrace" => parsec::raytrace(n_threads),
        "streamcluster" => parsec::streamcluster(n_threads, mode),
        "swaptions" => parsec::swaptions(n_threads, mode),
        "vips" => parsec::vips(n_threads, mode),
        "x264" => parsec::x264(n_threads, mode),
        // NPB (OpenMP)
        "BT" | "bt" => npb::bt(n_threads, mode),
        "CG" | "cg" => npb::cg(n_threads, mode),
        "EP" | "ep" => npb::ep(n_threads, mode),
        "FT" | "ft" => npb::ft(n_threads, mode),
        "IS" | "is" => npb::is(n_threads, mode),
        "LU" | "lu" => npb::lu(n_threads, mode),
        "MG" | "mg" => npb::mg(n_threads, mode),
        "SP" | "sp" => npb::sp(n_threads, mode),
        "UA" | "ua" => npb::ua(n_threads, mode),
        _ => return None,
    };
    Some(b)
}

/// One row of the benchmark catalog: the structural properties a preset
/// encodes (the axes the paper's analysis runs on).
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// Benchmark name as accepted by [`by_name`].
    pub name: &'static str,
    /// Suite ("PARSEC" or "NPB").
    pub suite: &'static str,
    /// Dominant synchronization structure.
    pub sync: &'static str,
    /// Approximate synchronization interval at the preset's scale.
    pub grain: &'static str,
    /// Memory intensity in `[0, 1]` (scales migration cache penalties).
    pub memory_intensity: f64,
    /// Threads per vCPU when run with `n` vCPUs (pipelines run >1).
    pub threads_per_vcpu: usize,
}

/// The benchmark catalog with each preset's structural properties.
pub fn catalog() -> Vec<CatalogEntry> {
    let e = |name, suite, sync, grain, memory_intensity, threads_per_vcpu| CatalogEntry {
        name,
        suite,
        sync,
        grain,
        memory_intensity,
        threads_per_vcpu,
    };
    vec![
        e("blackscholes", "PARSEC", "barrier", "60ms", 0.2, 1),
        e("bodytrack", "PARSEC", "barrier+mutex", "15ms", 0.4, 1),
        e("canneal", "PARSEC", "fine mutex", "0.4ms", 0.8, 1),
        e("dedup", "PARSEC", "4-stage pipeline", "1.2ms/item", 0.6, 4),
        e("facesim", "PARSEC", "barrier", "45ms", 0.7, 1),
        e("ferret", "PARSEC", "5-stage pipeline", "1ms/item", 0.5, 5),
        e("fluidanimate", "PARSEC", "fine mutex+barrier", "5ms", 0.5, 1),
        e("raytrace", "PARSEC", "work stealing", "1ms/chunk", 0.3, 1),
        e("streamcluster", "PARSEC", "barrier", "25ms", 0.7, 1),
        e("swaptions", "PARSEC", "none (join)", "1.6s", 0.2, 1),
        e("vips", "PARSEC", "mutex+barrier", "30ms", 0.4, 1),
        e("x264", "PARSEC", "point-to-point mutex", "10ms", 0.5, 1),
        e("BT", "NPB", "barrier", "130ms", 0.5, 1),
        e("CG", "NPB", "barrier", "8ms", 0.7, 1),
        e("EP", "NPB", "none (join)", "0.8s", 0.1, 1),
        e("FT", "NPB", "barrier", "100ms", 0.8, 1),
        e("IS", "NPB", "barrier", "5ms", 0.6, 1),
        e("LU", "NPB", "barrier", "230ms", 0.5, 1),
        e("MG", "NPB", "barrier", "10ms", 0.7, 1),
        e("SP", "NPB", "barrier", "7ms", 0.6, 1),
        e("UA", "NPB", "barrier+mutex", "18ms", 0.6, 1),
    ]
}

/// The PARSEC benchmark names in the order Fig 5 plots them.
pub const PARSEC_NAMES: [&str; 12] = [
    "blackscholes",
    "dedup",
    "streamcluster",
    "canneal",
    "fluidanimate",
    "vips",
    "bodytrack",
    "ferret",
    "swaptions",
    "x264",
    "raytrace",
    "facesim",
];

/// The NPB benchmark names in the order Fig 6 plots them.
pub const NPB_NAMES: [&str; 9] = ["BT", "LU", "CG", "EP", "FT", "IS", "MG", "SP", "UA"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_every_published_name() {
        for name in PARSEC_NAMES.iter().chain(NPB_NAMES.iter()) {
            let b = by_name(name, 4, WaitMode::Block)
                .unwrap_or_else(|| panic!("{name} missing from catalog"));
            assert!(b.n_threads() >= 4, "{name} has too few threads");
        }
        assert!(by_name("doom", 4, WaitMode::Block).is_none());
    }

    #[test]
    fn data_parallel_shape() {
        let b = data_parallel("t", 4, 10, 1_000, 0.1, WaitMode::Block, 0.5);
        assert_eq!(b.n_threads(), 4);
        // repeat(10){compute;barrier} = LoopStart + 2 ops + LoopEnd
        assert_eq!(b.threads[0].len(), 4);
    }

    #[test]
    fn pipeline_thread_count_is_stages_times_workers() {
        let b = pipeline("t", 4, 4, 160, 1_000, 0.5);
        assert_eq!(b.n_threads(), 16);
    }

    #[test]
    #[should_panic(expected = "at least two stages")]
    fn single_stage_pipeline_panics() {
        pipeline("t", 1, 4, 100, 1_000, 0.5);
    }
}

#[cfg(test)]
mod catalog_tests {
    use super::*;

    #[test]
    fn catalog_matches_the_preset_constructors() {
        for entry in catalog() {
            let b = by_name(entry.name, 4, WaitMode::Block)
                .unwrap_or_else(|| panic!("{} missing", entry.name));
            assert!(
                (b.memory_intensity - entry.memory_intensity).abs() < 1e-9,
                "{}: catalog memory_intensity {} vs bundle {}",
                entry.name,
                entry.memory_intensity,
                b.memory_intensity
            );
            assert_eq!(
                b.n_threads(),
                4 * entry.threads_per_vcpu,
                "{}: thread count",
                entry.name
            );
        }
    }

    #[test]
    fn catalog_covers_both_suites_fully() {
        let c = catalog();
        assert_eq!(c.iter().filter(|e| e.suite == "PARSEC").count(), 12);
        assert_eq!(c.iter().filter(|e| e.suite == "NPB").count(), 9);
    }
}
