//! NPB-like presets (OpenMP data-parallel kernels).
//!
//! The paper runs NPB with `OMP_WAIT_POLICY=active` for the spinning
//! experiments (Fig 6) and `passive` for the utilization study (Fig 2);
//! the `mode` parameter selects between the two. All kernels are
//! barrier-iterative; they differ in barrier granularity and memory
//! intensity, which is what separates their Fig 6 columns.

use super::{data_parallel, lock_parallel};
use crate::bundle::WorkloadBundle;
use irs_sync::WaitMode;

/// BT: block-tridiagonal solver; coarse iterations.
pub fn bt(n: usize, mode: WaitMode) -> WorkloadBundle {
    data_parallel("BT", n, 12, 130_000, 0.06, mode, 0.5)
}

/// CG: conjugate gradient; fine-grained barriers, memory heavy.
pub fn cg(n: usize, mode: WaitMode) -> WorkloadBundle {
    data_parallel("CG", n, 200, 8_000, 0.08, mode, 0.7)
}

/// EP: embarrassingly parallel; essentially one slab and a final join
/// (the paper's "EP performs less synchronization", §5.5).
pub fn ep(n: usize, mode: WaitMode) -> WorkloadBundle {
    data_parallel("EP", n, 2, 800_000, 0.04, mode, 0.1)
}

/// FT: 3-D FFT; coarse transposes, very memory intensive.
pub fn ft(n: usize, mode: WaitMode) -> WorkloadBundle {
    data_parallel("FT", n, 16, 100_000, 0.07, mode, 0.8)
}

/// IS: integer sort; very fine-grained barriers.
pub fn is(n: usize, mode: WaitMode) -> WorkloadBundle {
    data_parallel("IS", n, 300, 5_000, 0.1, mode, 0.6)
}

/// LU: LU decomposition; the coarsest-grained kernel (used as the
/// coarse-grained background interference in §5.1).
pub fn lu(n: usize, mode: WaitMode) -> WorkloadBundle {
    data_parallel("LU", n, 7, 230_000, 0.05, mode, 0.5)
}

/// MG: multigrid; fine-grained barriers (§5.5 "MG (spinning)").
pub fn mg(n: usize, mode: WaitMode) -> WorkloadBundle {
    data_parallel("MG", n, 160, 10_000, 0.08, mode, 0.7)
}

/// SP: scalar pentadiagonal; fine-grained barriers.
pub fn sp(n: usize, mode: WaitMode) -> WorkloadBundle {
    data_parallel("SP", n, 220, 7_000, 0.08, mode, 0.6)
}

/// UA: unstructured adaptive mesh; medium-grained barriers plus shared
/// locks (the fine-grained background interference of §5.1, "1-2s" at full
/// scale).
pub fn ua(n: usize, mode: WaitMode) -> WorkloadBundle {
    lock_parallel("UA", n, 90, 18_000, 60, 1, mode, 0.6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{ProgramRunner, Step};
    use irs_sim::SimRng;

    fn solo_work_ns(bundle: &mut WorkloadBundle) -> u64 {
        let mut rng = SimRng::seed_from(7);
        let mut r = ProgramRunner::new(bundle.threads[0].clone());
        let mut total = 0u64;
        loop {
            match r.next(&mut rng, &mut bundle.space) {
                Step::Compute { ns } => total += ns,
                Step::Done => break,
                _ => {}
            }
        }
        total
    }

    #[test]
    fn all_kernels_are_in_the_1_to_3s_band() {
        for (name, mut b) in [
            ("BT", bt(4, WaitMode::Spin)),
            ("CG", cg(4, WaitMode::Spin)),
            ("EP", ep(4, WaitMode::Spin)),
            ("FT", ft(4, WaitMode::Spin)),
            ("IS", is(4, WaitMode::Spin)),
            ("LU", lu(4, WaitMode::Spin)),
            ("MG", mg(4, WaitMode::Spin)),
            ("SP", sp(4, WaitMode::Spin)),
            ("UA", ua(4, WaitMode::Spin)),
        ] {
            let work = solo_work_ns(&mut b);
            assert!(
                (1_000_000_000..3_000_000_000).contains(&work),
                "{name}: {} ms per thread",
                work / 1_000_000
            );
        }
    }

    #[test]
    fn mode_parameter_controls_wait_mode() {
        let spin = mg(4, WaitMode::Spin);
        let block = mg(4, WaitMode::Block);
        assert_eq!(spin.space.barrier_ref(irs_sync::BarrierId(0)).mode(), WaitMode::Spin);
        assert_eq!(
            block.space.barrier_ref(irs_sync::BarrierId(0)).mode(),
            WaitMode::Block
        );
    }

    #[test]
    fn granularity_ordering_matches_the_paper() {
        // LU must be coarser-grained than UA, which is coarser than IS
        // (barrier interval = compute grain between barriers).
        // LU: 230 ms, UA: 18 ms, IS: 5 ms.
        // Encoded in the presets; assert the relationships hold.
        let lu_grain = 230_000u64;
        let ua_grain = 18_000u64;
        let is_grain = 5_000u64;
        assert!(lu_grain > ua_grain && ua_grain > is_grain);
    }
}
