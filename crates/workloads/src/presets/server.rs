//! Multi-threaded server presets (§5.3): a SPECjbb2005-like closed-loop
//! warehouse model and an Apache-`ab`-like open-loop request model.

use crate::bundle::{OpenLoop, WorkloadBundle};
use crate::program::ProgramBuilder;
use irs_sim::SimTime;
use irs_sync::{ArrivalDist, SyncSpace, WaitMode};

/// JVM safepoint cadence for [`specjbb`]: how often the epoch deadline
/// gathers every warehouse thread (GC/deopt/bias-revocation pace of a
/// busy heap).
pub const SPECJBB_SAFEPOINT_PERIOD: SimTime = SimTime::from_millis(65);

/// SPECjbb2005-like closed loop: `warehouses` threads each processing
/// back-to-back transactions (the paper sets warehouses = vCPUs for a
/// one-to-one mapping). Each transaction computes ~3 ms and touches a
/// shared lock briefly ("SPECjbb performs little synchronization").
///
/// Latency of the `RequestStart`→`RequestDone` span models the "new order
/// transaction" latency of Fig 8(b).
///
/// The JVM's stop-the-world safepoints — the carrier of the paper's
/// Fig 8(a) *throughput* gain — are modelled by a *time-anchored* gang
/// epoch: each thread polls at the top of every transaction, the poll is
/// free until the wall-clock deadline (every
/// [`SPECJBB_SAFEPOINT_PERIOD`]) comes due, and then the whole gang
/// rendezvouses — every thread stalls until the last participant reaches
/// its next poll. A vCPU preempted mid-transaction therefore holds *all*
/// warehouses at the safepoint for the length of its preemption, exactly
/// the amplification SMP interference inflicts on a real JVM. Unlike a
/// work-anchored barrier epoch, threads do **not** run equal transaction
/// counts between safepoints — whoever got more CPU commits more
/// transactions, so the model does not lockstep throughput to the most
/// interfered vCPU.
pub fn specjbb(warehouses: usize) -> WorkloadBundle {
    assert!(warehouses > 0, "specjbb needs at least one warehouse");
    let mut space = SyncSpace::new();
    let lock = space.new_lock(WaitMode::Block);
    let safepoint = space.new_epoch(
        SPECJBB_SAFEPOINT_PERIOD.as_nanos(),
        warehouses,
        WaitMode::Block,
    );
    let threads = (0..warehouses)
        .map(|_| {
            ProgramBuilder::new()
                .forever(|b| {
                    b.safepoint_poll(safepoint)
                        .request_start()
                        .compute_us(3_000, 0.4)
                        .lock(lock)
                        .compute_us(20, 0.1)
                        .unlock(lock)
                        .request_done()
                })
                .build()
        })
        .collect();
    WorkloadBundle::server("specjbb", threads, space, 0.4, None)
}

/// Front-end work per request in [`serving_tiers`] (µs).
const FRONT_US: u64 = 300;
/// Back-end work per request in [`serving_tiers`] (µs).
const BACK_US: u64 = 700;

/// Multi-tier latency-SLO service: `frontends` threads each drive their
/// own deterministic open-loop Poisson arrival source (`AwaitArrival`),
/// do the request's front-end work, and hand it through a bounded queue
/// to `backends` threads that finish it (`RequestDone`).
///
/// The latency of a request is anchored at its *scheduled arrival
/// instant*: a frontend running behind its arrival schedule does not slow
/// the clock down (no coordinated omission), and the stamp rides the
/// queue item across tiers, so `RequestDone` measures true end-to-end
/// service latency including all queueing.
///
/// `offered_load` sets the aggregate arrival rate as a fraction of the
/// service capacity (the slower tier bounds it).
pub fn serving_tiers(frontends: usize, backends: usize, offered_load: f64) -> WorkloadBundle {
    assert!(frontends > 0 && backends > 0, "both tiers need threads");
    assert!(
        offered_load > 0.0 && offered_load < 1.0,
        "offered load must be in (0, 1) for a stable open loop"
    );
    let front_cap = frontends as f64 * 1e6 / FRONT_US as f64;
    let back_cap = backends as f64 * 1e6 / BACK_US as f64;
    let rate_rps = front_cap.min(back_cap) * offered_load;
    // Each frontend owns an independent arrival stream carrying an equal
    // share of the load.
    let mean_ns = (frontends as f64 * 1e9 / rate_rps).round() as u64;

    let mut space = SyncSpace::new();
    let queue = space.new_channel(256);
    let mut threads = Vec::with_capacity(frontends + backends);
    for _ in 0..frontends {
        let arrival = space.new_arrival(ArrivalDist::Poisson { mean_ns });
        threads.push(
            ProgramBuilder::new()
                .forever(|b| {
                    b.await_arrival(arrival)
                        .compute_us(FRONT_US, 0.3)
                        .push(queue)
                })
                .build(),
        );
    }
    for _ in 0..backends {
        threads.push(
            ProgramBuilder::new()
                .forever(|b| b.pop(queue).compute_us(BACK_US, 0.3).request_done())
                .build(),
        );
    }
    WorkloadBundle::server("serving", threads, space, 0.3, None)
}

/// Apache-`ab`-like open loop: `workers` independent threads popping
/// requests from a shared accept queue (no synchronization between
/// requests, matching "threads servicing client requests are independent").
///
/// The paper uses 1000 connections against `MaxClient` 512, i.e. far more
/// threads than vCPUs — which is why IRS helps `ab` little (§5.3): the
/// guest balancer already spreads this many threads by interference level.
///
/// `offered_load` sets the arrival rate as a fraction of the service
/// capacity of `capacity_vcpus` vCPUs.
pub fn apache_ab(workers: usize, capacity_vcpus: usize, offered_load: f64) -> WorkloadBundle {
    assert!(workers > 0, "ab needs at least one worker");
    assert!(capacity_vcpus > 0);
    assert!(
        offered_load > 0.0 && offered_load < 1.0,
        "offered load must be in (0, 1) for a stable open loop"
    );
    let service_us = 2_000u64;
    let mut space = SyncSpace::new();
    let accept_queue = space.new_channel(4096);
    let threads = (0..workers)
        .map(|_| {
            ProgramBuilder::new()
                .forever(|b| {
                    b.pop(accept_queue)
                        .compute_us(service_us, 0.3)
                        .request_done()
                })
                .build()
        })
        .collect();
    let capacity_rps = capacity_vcpus as f64 * 1e6 / service_us as f64;
    let mean_interarrival =
        SimTime::from_nanos((1e9 / (capacity_rps * offered_load)).round() as u64);
    WorkloadBundle::server(
        "ab",
        threads,
        space,
        0.2,
        Some(OpenLoop {
            channel: accept_queue,
            mean_interarrival,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::WorkloadKind;

    #[test]
    fn specjbb_shape() {
        let b = specjbb(4);
        assert_eq!(b.kind, WorkloadKind::Server);
        assert_eq!(b.n_threads(), 4);
        assert!(b.open_loop.is_none(), "closed loop has no arrival process");
        // The safepoint epoch exists and is balanced: one poll per thread.
        assert_eq!(b.space.n_epochs(), 1);
        assert_eq!(
            b.space.epoch_ref(irs_sync::EpochId(0)).participants(),
            4,
            "every warehouse participates in the safepoint"
        );
        for t in &b.threads {
            assert_eq!(t.epochs_polled(), vec![irs_sync::EpochId(0)]);
        }
    }

    #[test]
    fn serving_tiers_shape() {
        let b = serving_tiers(2, 2, 0.6);
        assert_eq!(b.kind, WorkloadKind::Server);
        assert_eq!(b.n_threads(), 4);
        assert!(b.open_loop.is_none(), "arrivals live in the DSL now");
        assert_eq!(b.space.n_arrivals(), 2, "one stream per frontend");
        // Backends bound capacity: 2 × (1e6/700) ≈ 2857 rps; at 0.6 load
        // split over 2 frontends each stream carries ~857 rps → ~1167 µs.
        let a = b.space.arrival_ref(irs_sync::ArrivalId(0));
        match a.dist() {
            irs_sync::ArrivalDist::Poisson { mean_ns } => {
                let us = mean_ns / 1_000;
                assert!((1_100..=1_250).contains(&us), "got {us} µs");
            }
            ref other => panic!("unexpected dist {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "stable open loop")]
    fn serving_overload_is_rejected() {
        serving_tiers(2, 2, 1.0);
    }

    #[test]
    fn ab_shape_and_rate() {
        let b = apache_ab(512, 4, 0.6);
        assert_eq!(b.n_threads(), 512);
        let ol = b.open_loop.expect("ab is open loop");
        // Capacity 2000 rps × 0.6 = 1200 rps → ~833 µs inter-arrival.
        let us = ol.mean_interarrival.as_micros();
        assert!((830..=840).contains(&us), "got {us} µs");
    }

    #[test]
    #[should_panic(expected = "stable open loop")]
    fn overload_is_rejected() {
        apache_ab(8, 4, 1.5);
    }
}
