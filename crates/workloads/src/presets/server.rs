//! Multi-threaded server presets (§5.3): a SPECjbb2005-like closed-loop
//! warehouse model and an Apache-`ab`-like open-loop request model.

use crate::bundle::{OpenLoop, WorkloadBundle};
use crate::program::ProgramBuilder;
use irs_sim::SimTime;
use irs_sync::{SyncSpace, WaitMode};

/// SPECjbb2005-like closed loop: `warehouses` threads each processing
/// back-to-back transactions (the paper sets warehouses = vCPUs for a
/// one-to-one mapping). Each transaction computes ~3 ms and touches a
/// shared lock briefly ("SPECjbb performs little synchronization").
///
/// Latency of the `RequestStart`→`RequestDone` span models the "new order
/// transaction" latency of Fig 8(b).
///
/// Deliberately absent: the JVM's stop-the-world safepoints, the likely
/// carrier of the paper's Fig 8(a) *throughput* gain. A safepoint is
/// *time-anchored* — every thread stops at its next poll, wherever it is
/// in its work — while this DSL's synchronization ops are all
/// *work-anchored* (a thread reaches a `barrier` only at a fixed point in
/// its instruction stream). A work-anchored barrier epoch forces equal
/// transaction counts per thread and locksteps the whole VM to the most
/// interfered vCPU, grossly overstating the gain; see EXPERIMENTS.md
/// ("Fig 8 — servers") for the measured comparison.
pub fn specjbb(warehouses: usize) -> WorkloadBundle {
    assert!(warehouses > 0, "specjbb needs at least one warehouse");
    let mut space = SyncSpace::new();
    let lock = space.new_lock(WaitMode::Block);
    let threads = (0..warehouses)
        .map(|_| {
            ProgramBuilder::new()
                .forever(|b| {
                    b.request_start()
                        .compute_us(3_000, 0.4)
                        .lock(lock)
                        .compute_us(20, 0.1)
                        .unlock(lock)
                        .request_done()
                })
                .build()
        })
        .collect();
    WorkloadBundle::server("specjbb", threads, space, 0.4, None)
}

/// Apache-`ab`-like open loop: `workers` independent threads popping
/// requests from a shared accept queue (no synchronization between
/// requests, matching "threads servicing client requests are independent").
///
/// The paper uses 1000 connections against `MaxClient` 512, i.e. far more
/// threads than vCPUs — which is why IRS helps `ab` little (§5.3): the
/// guest balancer already spreads this many threads by interference level.
///
/// `offered_load` sets the arrival rate as a fraction of the service
/// capacity of `capacity_vcpus` vCPUs.
pub fn apache_ab(workers: usize, capacity_vcpus: usize, offered_load: f64) -> WorkloadBundle {
    assert!(workers > 0, "ab needs at least one worker");
    assert!(capacity_vcpus > 0);
    assert!(
        offered_load > 0.0 && offered_load < 1.0,
        "offered load must be in (0, 1) for a stable open loop"
    );
    let service_us = 2_000u64;
    let mut space = SyncSpace::new();
    let accept_queue = space.new_channel(4096);
    let threads = (0..workers)
        .map(|_| {
            ProgramBuilder::new()
                .forever(|b| {
                    b.pop(accept_queue)
                        .compute_us(service_us, 0.3)
                        .request_done()
                })
                .build()
        })
        .collect();
    let capacity_rps = capacity_vcpus as f64 * 1e6 / service_us as f64;
    let mean_interarrival =
        SimTime::from_nanos((1e9 / (capacity_rps * offered_load)).round() as u64);
    WorkloadBundle::server(
        "ab",
        threads,
        space,
        0.2,
        Some(OpenLoop {
            channel: accept_queue,
            mean_interarrival,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::WorkloadKind;

    #[test]
    fn specjbb_shape() {
        let b = specjbb(4);
        assert_eq!(b.kind, WorkloadKind::Server);
        assert_eq!(b.n_threads(), 4);
        assert!(b.open_loop.is_none(), "closed loop has no arrival process");
    }

    #[test]
    fn ab_shape_and_rate() {
        let b = apache_ab(512, 4, 0.6);
        assert_eq!(b.n_threads(), 512);
        let ol = b.open_loop.expect("ab is open loop");
        // Capacity 2000 rps × 0.6 = 1200 rps → ~833 µs inter-arrival.
        let us = ol.mean_interarrival.as_micros();
        assert!((830..=840).contains(&us), "got {us} µs");
    }

    #[test]
    #[should_panic(expected = "stable open loop")]
    fn overload_is_rejected() {
        apache_ab(8, 4, 1.5);
    }
}
