//! Adversarial tenant programs for the fleet campaign.
//!
//! Each preset encodes one scheduler attack from the cloud-scheduling
//! attack literature, expressed against the simulated credit scheduler's
//! actual mechanisms (30 ms slice, 10 ms credit-burn tick, BOOST on wake
//! rate-limited to one grant per 30 ms accounting period, BOOST expiry at
//! the first tick that observes the vCPU running):
//!
//! * [`boost_gamer`] — computes for just under one slice, then blocks for
//!   a token 500 µs. Every wake re-arms BOOST at the maximum rate the
//!   rate limiter allows (once per accounting period), so the tenant runs
//!   with wake-preemption priority for nearly its whole duty cycle while
//!   never exhausting a slice and never being caught by slice expiry.
//! * [`cycle_stealer`] — an 88% duty cycle phase-locked to the 10 ms
//!   credit-burn tick: it sleeps across tick boundaries so it is rarely
//!   *running* when a tick fires. Against tick-sampled accounting this
//!   hides nearly all consumed time; the simulator charges credit burn
//!   exactly (from cumulative run-time deltas), so what remains of the
//!   attack is dodging the tick-time unboost/preempt checks.
//! * [`tick_evader`] — sub-millisecond bursts separated by short sleeps
//!   (65% duty). With ~10 wake-ups per tick period it is almost never
//!   observed running at a tick, evading tick-driven BOOST expiry, and its
//!   wake storm stresses the wake/preemption path of every strategy.
//!
//! All three are [`WorkloadKind::Interference`] bundles built from
//! `forever` loops: they never finish, so fleet runs are horizon-bounded
//! and per-tenant throughput (`VmResult::work_rate`) is the comparable
//! victim/attacker metric.
//!
//! [`WorkloadKind::Interference`]: crate::bundle::WorkloadKind::Interference

use crate::bundle::WorkloadBundle;
use crate::program::ProgramBuilder;
use irs_sync::SyncSpace;

/// Compute stretch of the boost gamer: just under the 30 ms slice, so the
/// vCPU always blocks voluntarily before slice expiry can demote it.
pub const BOOST_GAMER_BURST_US: u64 = 27_000;
const _: () = assert!(
    BOOST_GAMER_BURST_US < 30_000,
    "the attack depends on blocking before the 30 ms slice expires"
);

/// Builds the boost-gaming tenant: `n_threads` identical loops of
/// `compute 27 ms; sleep 500 µs`, yielding just before slice expiry so
/// each wake is eligible for a fresh BOOST grant.
pub fn boost_gamer(n_threads: usize) -> WorkloadBundle {
    duty_loop("boost_gamer", n_threads, BOOST_GAMER_BURST_US, 500)
}

/// Builds the cycle-stealing tenant: `n_threads` loops of `compute
/// 8.8 ms; sleep 1.2 ms` — a 10 ms period matching the credit-burn tick,
/// with the sleep positioned so tick instants land inside it.
pub fn cycle_stealer(n_threads: usize) -> WorkloadBundle {
    duty_loop("cycle_stealer", n_threads, 8_800, 1_200)
}

/// Builds the tick-evading tenant: `n_threads` loops of `compute 650 µs;
/// sleep 350 µs` — bursts far shorter than the 10 ms tick, so almost no
/// tick observes the vCPU running, at the cost of ~1000 wakes/sec.
pub fn tick_evader(n_threads: usize) -> WorkloadBundle {
    duty_loop("tick_evader", n_threads, 650, 350)
}

/// One attack loop per thread: deterministic (zero-jitter) compute burst
/// followed by a sleep, forever. Zero jitter keeps the phase relationship
/// with the hypervisor's periodic timers stable — the attacks rely on it.
fn duty_loop(name: &str, n_threads: usize, burst_us: u64, sleep_us: u64) -> WorkloadBundle {
    assert!(n_threads > 0, "{name} needs at least one thread");
    let threads = (0..n_threads)
        .map(|_| {
            ProgramBuilder::new()
                .forever(|b| b.compute_us(burst_us, 0.0).sleep_us(sleep_us))
                .build()
        })
        .collect();
    WorkloadBundle::interference(name, threads, SyncSpace::new(), 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::WorkloadKind;

    #[test]
    fn adversaries_are_endless_interference_bundles() {
        for b in [boost_gamer(2), cycle_stealer(2), tick_evader(2)] {
            assert_eq!(b.kind, WorkloadKind::Interference);
            assert_eq!(b.n_threads(), 2);
        }
    }
}
