//! PARSEC-like presets (pthreads; the paper compiles them with blocking
//! synchronization — mutexes, condition variables, barriers).
//!
//! The per-benchmark parameters encode each program's published structure:
//! what it synchronizes with, how often, and how memory-bound it is. These
//! are exactly the attributes the paper uses to explain Fig 5's spread —
//! e.g. dedup/ferret gain little (pipeline, >1 thread per vCPU), raytrace
//! is already resilient (user-level work stealing), memory-intensive codes
//! regress under 4-inter migration churn.

use super::{data_parallel, lock_parallel, pipeline};
use crate::bundle::WorkloadBundle;
use crate::program::ProgramBuilder;
use irs_sync::{SyncSpace, WaitMode};

/// blackscholes: embarrassingly parallel option pricing; a barrier per
/// coarse iteration.
pub fn blackscholes(n: usize, mode: WaitMode) -> WorkloadBundle {
    data_parallel("blackscholes", n, 30, 60_000, 0.05, mode, 0.2)
}

/// bodytrack: per-frame barriers plus a small shared-state lock.
pub fn bodytrack(n: usize, mode: WaitMode) -> WorkloadBundle {
    lock_parallel("bodytrack", n, 100, 15_000, 50, 1, mode, 0.4)
}

/// canneal: fine-grained lock contention on the netlist (memory heavy).
pub fn canneal(n: usize, mode: WaitMode) -> WorkloadBundle {
    lock_parallel("canneal", n, 3_000, 400, 30, 0, mode, 0.8)
}

/// dedup: 4-stage pipeline with `n` threads per stage (the paper: "4
/// threads for each pipeline stage"), so 4×`n` threads on `n` vCPUs.
pub fn dedup(n: usize) -> WorkloadBundle {
    pipeline("dedup", 4, n, 1_200, 1_200, 0.6)
}

/// facesim: barrier-synchronized physics phases, memory intensive.
pub fn facesim(n: usize, mode: WaitMode) -> WorkloadBundle {
    data_parallel("facesim", n, 40, 45_000, 0.1, mode, 0.7)
}

/// ferret: 5-stage similarity-search pipeline, `n` threads per stage.
pub fn ferret(n: usize) -> WorkloadBundle {
    pipeline("ferret", 5, n, 1_500, 1_000, 0.5)
}

/// fluidanimate: fine-grained per-cell mutexes plus per-frame barriers.
pub fn fluidanimate(n: usize, mode: WaitMode) -> WorkloadBundle {
    lock_parallel("fluidanimate", n, 300, 5_000, 20, 5, mode, 0.5)
}

/// raytrace: user-level work stealing over a shared tile pool — the
/// paper's interference-resilient exhibit (no kernel help needed).
pub fn raytrace(n: usize) -> WorkloadBundle {
    let mut space = SyncSpace::new();
    let pool = space.new_pool(6_000);
    let threads = (0..n)
        .map(|_| ProgramBuilder::new().steal_loop(pool, 1_000, 0.2).build())
        .collect();
    WorkloadBundle::parallel("raytrace", threads, space, 0.3)
}

/// streamcluster: barriers every 20–30 ms of compute (§5.1's "fine-grained
/// synchronization at the granularity of 20-30ms"), memory intensive.
pub fn streamcluster(n: usize, mode: WaitMode) -> WorkloadBundle {
    data_parallel("streamcluster", n, 70, 25_000, 0.08, mode, 0.7)
}

/// swaptions: almost no synchronization; one long independent slab each.
pub fn swaptions(n: usize, mode: WaitMode) -> WorkloadBundle {
    data_parallel("swaptions", n, 1, 1_600_000, 0.05, mode, 0.2)
}

/// vips: image pipeline approximated by moderate lock + barrier phases.
pub fn vips(n: usize, mode: WaitMode) -> WorkloadBundle {
    lock_parallel("vips", n, 50, 30_000, 40, 1, mode, 0.4)
}

/// x264: exclusively mutex-based point-to-point synchronization between
/// neighbouring worker threads (§5.5 "x264 (mutex)").
pub fn x264(n: usize, mode: WaitMode) -> WorkloadBundle {
    assert!(n >= 2, "x264 needs at least two threads");
    let mut space = SyncSpace::new();
    let locks: Vec<_> = (0..n).map(|_| space.new_lock(mode)).collect();
    let join = space.new_barrier(n, mode);
    let threads = (0..n)
        .map(|i| {
            let own = locks[i];
            let next = locks[(i + 1) % n];
            ProgramBuilder::new()
                .repeat(150, |b| {
                    b.compute_us(10_000, 0.1)
                        .lock(own)
                        .compute_us(30, 0.1)
                        .unlock(own)
                        .lock(next)
                        .compute_us(30, 0.1)
                        .unlock(next)
                })
                .barrier(join)
                .build()
        })
        .collect();
    WorkloadBundle::parallel("x264", threads, space, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::WorkloadKind;
    use crate::runner::{ProgramRunner, Step};
    use irs_sim::SimRng;

    /// Rough single-thread work estimate (ns), ignoring waiting.
    fn solo_work_ns(bundle: &mut WorkloadBundle, thread: usize) -> u64 {
        let mut rng = SimRng::seed_from(7);
        let mut r = ProgramRunner::new(bundle.threads[thread].clone());
        let mut total = 0u64;
        loop {
            match r.next(&mut rng, &mut bundle.space) {
                Step::Compute { ns } => total += ns,
                Step::Done => break,
                _ => {}
            }
        }
        total
    }

    #[test]
    fn per_thread_work_is_in_the_1_to_3s_band() {
        // Keeps simulated experiments comparable across benchmarks.
        for (name, mut b) in [
            ("blackscholes", blackscholes(4, WaitMode::Block)),
            ("streamcluster", streamcluster(4, WaitMode::Block)),
            ("facesim", facesim(4, WaitMode::Block)),
            ("swaptions", swaptions(4, WaitMode::Block)),
            ("fluidanimate", fluidanimate(4, WaitMode::Block)),
            ("bodytrack", bodytrack(4, WaitMode::Block)),
            ("canneal", canneal(4, WaitMode::Block)),
            ("vips", vips(4, WaitMode::Block)),
            ("x264", x264(4, WaitMode::Block)),
        ] {
            let work = solo_work_ns(&mut b, 0);
            assert!(
                (1_000_000_000..3_000_000_000).contains(&work),
                "{name}: {} ms per thread",
                work / 1_000_000
            );
        }
    }

    #[test]
    fn raytrace_threads_share_one_pool() {
        let mut b = raytrace(4);
        // One thread alone would do all 6000 chunks.
        let work = solo_work_ns(&mut b, 0);
        assert!(work > 5_000_000_000, "pool fully consumed by one thread");
        // The pool is now empty: the remaining threads finish immediately.
        let rest = solo_work_ns(&mut b, 1);
        assert_eq!(rest, 0);
    }

    #[test]
    fn pipelines_have_threads_per_stage() {
        assert_eq!(dedup(4).n_threads(), 16);
        assert_eq!(ferret(4).n_threads(), 20);
    }

    #[test]
    fn all_are_parallel_kind() {
        assert_eq!(raytrace(4).kind, WorkloadKind::Parallel);
        assert_eq!(dedup(4).kind, WorkloadKind::Parallel);
        assert_eq!(x264(4, WaitMode::Block).kind, WorkloadKind::Parallel);
    }

    #[test]
    #[should_panic(expected = "at least two threads")]
    fn x264_rejects_single_thread() {
        x264(1, WaitMode::Block);
    }
}
