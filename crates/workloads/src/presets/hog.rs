//! The CPU-hog interference micro-benchmark (§5.1): persistent compute
//! with "almost zero memory footprint".

use crate::bundle::WorkloadBundle;
use crate::program::ProgramBuilder;
use irs_sync::SyncSpace;

/// `n` CPU hogs, each an endless compute loop. In a scenario, hog `i` lands
/// on vCPU `i` of its VM, so `cpu_hogs(2)` in a 4-vCPU interfering VM is
/// exactly the paper's "2-inter." configuration.
pub fn cpu_hogs(n: usize) -> WorkloadBundle {
    assert!(n > 0, "need at least one hog");
    let threads = (0..n)
        .map(|_| {
            ProgramBuilder::new()
                .forever(|b| b.compute_us(10_000, 0.0))
                .build()
        })
        .collect();
    WorkloadBundle::interference("cpu-hogs", threads, SyncSpace::new(), 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::WorkloadKind;
    use crate::runner::{ProgramRunner, Step};
    use irs_sim::SimRng;

    #[test]
    fn hogs_never_finish() {
        let mut b = cpu_hogs(2);
        assert_eq!(b.kind, WorkloadKind::Interference);
        assert_eq!(b.n_threads(), 2);
        let mut rng = SimRng::seed_from(1);
        let mut r = ProgramRunner::new(b.threads[0].clone());
        for _ in 0..1000 {
            assert!(matches!(r.next(&mut rng, &mut b.space), Step::Compute { .. }));
        }
    }

    #[test]
    fn hogs_have_zero_memory_footprint() {
        assert_eq!(cpu_hogs(1).memory_intensity, 0.0);
    }
}
