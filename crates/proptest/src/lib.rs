//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build container has no network access and no crates.io registry
//! cache, so the real `proptest` cannot be resolved. This workspace-local
//! crate implements the subset of its API that the irs-sched test suites
//! actually use, with the same semantics where it matters:
//!
//! * `proptest! { ... }` with an optional `#![proptest_config(...)]`,
//!   `arg in strategy` parameters, and `prop_assert!`-style assertions
//!   that fail the case without aborting the whole process state;
//! * [`Strategy`] with `prop_map`, integer-range strategies, tuple
//!   strategies, [`Just`], `prop_oneof!`, `prop::collection::vec`, and
//!   `any::<bool>()`;
//! * deterministic input generation: each test function derives its RNG
//!   stream from its module path and name, so runs are reproducible
//!   across invocations and machines.
//!
//! Differences from real proptest: no shrinking (failures report the raw
//! inputs of the failing case instead of a minimized counterexample), no
//! persistence files, and no `PROPTEST_*` knobs beyond `PROPTEST_CASES`.

pub mod test_runner {
    /// Run-time configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test function executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// A failed `prop_assert*` inside a test case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic SplitMix64 stream used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary label (FNV-1a over the bytes),
        /// typically `module_path!() :: test_name`.
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Unbiased draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (bound as u128);
                if (m as u64) >= bound || (m as u64) >= bound.wrapping_neg() % bound {
                    return (m >> 64) as u64;
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// Generates random values of an associated type. Unlike real proptest
    /// there is no value tree / shrinking: a strategy is just a seeded
    /// sampler.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!` to mix arms of
        /// different concrete types).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    trait DynStrategy<V> {
        fn dyn_generate(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy; see [`Strategy::boxed`].
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives; built by `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].0.dyn_generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// `prop::collection::vec(element, len_range)` — a `Vec` whose length is
    /// uniform over `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty => $any:ident),+) => {$(
            pub struct $any;
            impl Strategy for $any {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = $any;
                fn arbitrary() -> $any { $any }
            }
        )+};
    }

    arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize);
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each function runs `config.cases` deterministic random cases; a failed
/// `prop_assert*` aborts that case and panics with the raw inputs (no
/// shrinking in this stand-in).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __inputs = {
                        let mut __s = ::std::string::String::new();
                        $(
                            __s.push_str("  ");
                            __s.push_str(stringify!($arg));
                            __s.push_str(" = ");
                            __s.push_str(&::std::format!("{:?}", &$arg));
                            __s.push('\n');
                        )+
                        __s
                    };
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __result {
                        ::std::panic!(
                            "proptest case {}/{} failed: {}\nraw inputs (not shrunk):\n{}",
                            __case + 1,
                            __config.cases,
                            __e,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Like `assert!`, but fails only the current proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Like `assert_eq!`, but fails only the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n  {}",
                    __l,
                    __r,
                    ::std::format!($($fmt)*)
                );
            }
        }
    };
}

/// Like `assert_ne!`, but fails only the current proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `left != right`\n  both: `{:?}`",
                    __l
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `left != right`\n  both: `{:?}`\n  {}",
                    __l,
                    ::std::format!($($fmt)*)
                );
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategy_respects_bounds() {
        let mut rng = TestRng::deterministic("range");
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..100 {
            let v = Strategy::generate(&prop::collection::vec(0u8..4, 1..9), &mut rng);
            assert!((1..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::deterministic("oneof");
        let strat = prop_oneof![Just(0u8), Just(1u8), (2u8..4).prop_map(|x| x)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro machinery itself: params, tuples, asserts.
        #[test]
        fn macro_roundtrip(
            pairs in prop::collection::vec((0u8..4, 1u16..100), 1..20),
            flag in any::<bool>(),
        ) {
            prop_assert!(!pairs.is_empty());
            for (a, b) in &pairs {
                prop_assert!(*a < 4);
                prop_assert_ne!(*b, 0, "b is drawn from 1..100 (flag={flag})");
            }
            let doubled: Vec<u16> = pairs.iter().map(|(_, b)| b * 2).collect();
            prop_assert_eq!(doubled.len(), pairs.len());
        }
    }

    #[test]
    #[should_panic(expected = "raw inputs")]
    fn failing_case_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u8..2) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
