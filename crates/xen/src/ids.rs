//! Identifier newtypes for the hypervisor domain.

use std::fmt;

/// Index of a physical CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PcpuId(pub usize);

impl fmt::Display for PcpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pcpu{}", self.0)
    }
}

/// Identifier of a virtual machine (a Xen domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmId(pub usize);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// A `(vm, vcpu index)` pair naming one virtual CPU in the whole system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VcpuRef {
    /// Owning VM.
    pub vm: VmId,
    /// Index of the vCPU within the VM (0-based).
    pub idx: usize,
}

impl VcpuRef {
    /// Creates a vCPU reference.
    pub fn new(vm: VmId, idx: usize) -> Self {
        VcpuRef { vm, idx }
    }
}

impl fmt::Display for VcpuRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.v{}", self.vm, self.idx)
    }
}

/// Virtual interrupt lines delivered over event channels.
///
/// The reproduction needs only the two lines the paper discusses: the
/// periodic guest timer and the new SA upcall added by IRS (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Virq {
    /// Periodic guest timer interrupt.
    Timer,
    /// `VIRQ_SA_UPCALL` — the scheduler-activation notification IRS adds.
    SaUpcall,
}

impl fmt::Display for Virq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Virq::Timer => write!(f, "VIRQ_TIMER"),
            Virq::SaUpcall => write!(f, "VIRQ_SA_UPCALL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(PcpuId(3).to_string(), "pcpu3");
        assert_eq!(VmId(1).to_string(), "vm1");
        assert_eq!(VcpuRef::new(VmId(1), 2).to_string(), "vm1.v2");
        assert_eq!(Virq::SaUpcall.to_string(), "VIRQ_SA_UPCALL");
    }

    #[test]
    fn vcpu_ref_ordering_is_by_vm_then_idx() {
        let a = VcpuRef::new(VmId(0), 5);
        let b = VcpuRef::new(VmId(1), 0);
        assert!(a < b);
    }
}
