//! The hypervisor aggregate: pCPUs, VMs, vCPUs, and the public surface.
//!
//! Scheduling *logic* lives in [`crate::credit`], [`crate::sa`], and
//! [`crate::relaxed_co`]; this module owns the state, the lifecycle
//! (VM creation, start), the hypercall read surface, and the internal
//! consistency checks the test suite leans on.

use crate::actions::HvAction;
use crate::config::XenConfig;
use crate::ids::{PcpuId, VcpuRef, VmId};
use crate::pcpu::{DispatchInfo, Pcpu};
use crate::runstate::{RunState, RunstateInfo};
use crate::stats::{HvStats, StatsStore, VcpuStats};
use crate::vcpu::Vcpu;
use crate::vm::{Vm, VmSpec};
use irs_sim::trace::TraceRing;
use irs_sim::SimTime;

/// The Xen-like hypervisor model.
///
/// See the [crate-level documentation](crate) for the scope of the model and
/// an end-to-end example.
///
/// `Hypervisor` is `Clone` for `System::snapshot()` checkpointing: the
/// clone is a complete copy of scheduler state (credit arena, runqueues,
/// SA rounds, runstate clocks, stats), except the trace ring, whose clone
/// keeps configuration but starts empty (rings are observability, not
/// state — see `irs_sim::trace`).
#[derive(Debug, Clone)]
pub struct Hypervisor {
    pub(crate) cfg: XenConfig,
    pub(crate) pcpus: Vec<Pcpu>,
    pub(crate) vms: Vec<Vm>,
    /// All vCPUs in one contiguous arena, VM-major (every VM's vCPUs are
    /// adjacent, in index order). Keeping the hot per-vCPU scheduler state
    /// in a single flat allocation is what lets the 10 ms tick and the
    /// 30 ms accounting pass stream linearly instead of chasing one heap
    /// allocation per VM; [`Hypervisor::vm_base`] maps a [`VmId`] to its
    /// first slot.
    pub(crate) vcpus: Vec<Vcpu>,
    /// `vm_base[vm]` = index of `vm`'s first vCPU in [`Hypervisor::vcpus`].
    pub(crate) vm_base: Vec<u32>,
    pub(crate) stats: StatsStore,
    pub(crate) queue_seq: u64,
    /// Bumps whenever *any* pCPU's dispatch changes (a superset counter
    /// over the per-pCPU `dispatch_gen`s). Embedders compare it between
    /// events to skip the all-pCPU slice-timer re-arm scan when no
    /// dispatch moved — which is most events.
    pub(crate) dispatch_epoch: u64,
    /// Per-VM runstate epochs: `runstate_epoch[vm]` bumps on every
    /// runstate transition of one of that VM's vCPUs. If two reads return
    /// the same value, none of the VM's vCPUs changed state in between, so
    /// cached guest-visible runstate views for it are still exact.
    pub(crate) runstate_epoch: Vec<u64>,
    pub(crate) started: bool,
    /// The VM currently holding the gang slot (strict co-scheduling only).
    pub(crate) gang_current: Option<VmId>,
    /// Recycled action buffers: every public entry point starts from one of
    /// these (via [`Hypervisor::out_buf`]) and the driver hands the drained
    /// `Vec` back through [`Hypervisor::recycle_actions`], so steady-state
    /// scheduling decisions allocate nothing.
    pub(crate) spare_bufs: Vec<Vec<HvAction>>,
    /// Typed trace bus for scheduling decisions (disabled by default).
    pub(crate) trace: TraceRing,
}

impl Hypervisor {
    /// Creates a hypervisor managing `n_pcpus` physical CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `n_pcpus == 0`.
    pub fn new(cfg: XenConfig, n_pcpus: usize) -> Self {
        assert!(n_pcpus > 0, "a hypervisor needs at least one pCPU");
        Hypervisor {
            cfg,
            pcpus: (0..n_pcpus).map(|i| Pcpu::new(PcpuId(i))).collect(),
            vms: Vec::new(),
            vcpus: Vec::new(),
            vm_base: Vec::new(),
            stats: StatsStore::default(),
            queue_seq: 0,
            dispatch_epoch: 0,
            runstate_epoch: Vec::new(),
            started: false,
            gang_current: None,
            spare_bufs: Vec::new(),
            trace: TraceRing::disabled(),
        }
    }

    /// Enables the typed trace bus with a ring of `capacity` records.
    ///
    /// Tracing never changes scheduling decisions; it only captures them.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = TraceRing::enabled(capacity);
    }

    /// The hypervisor's trace ring (empty and disabled unless
    /// [`Hypervisor::enable_trace`] was called).
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Coarse, deterministic estimate of this hypervisor's heap bytes
    /// (arena vectors plus per-pCPU runqueue slack) — a building block of
    /// snapshot-cache budgeting in `irs-core`. Trace-ring contents are
    /// excluded: snapshots clone rings configuration-only.
    pub fn approx_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        /// Runqueue backing store and stats slack per pCPU.
        const PER_PCPU_SLACK: usize = 256;
        self.pcpus.capacity() * (size_of::<Pcpu>() + PER_PCPU_SLACK)
            + self.vms.capacity() * size_of::<Vm>()
            + self.vcpus.capacity() * size_of::<Vcpu>()
            + self.vm_base.capacity() * size_of::<u32>()
            + self.runstate_epoch.capacity() * size_of::<u64>()
    }

    /// Takes an empty action buffer from the recycle pool (or allocates the
    /// first few times). Pair with [`Hypervisor::recycle_actions`].
    pub(crate) fn out_buf(&mut self) -> Vec<HvAction> {
        self.spare_bufs.pop().unwrap_or_default()
    }

    /// Returns a drained action buffer to the recycle pool. Callers that
    /// consume a `Vec<HvAction>` (e.g. the `irs-core` dispatch loop) call
    /// this to keep the schedule→apply hot path allocation-free; dropping
    /// the buffer instead is always safe, just slower.
    pub fn recycle_actions(&mut self, mut buf: Vec<HvAction>) {
        // Nested scheduling (an action application re-entering the
        // hypervisor) keeps a handful of buffers alive at once; a small cap
        // bounds pool growth if a caller recycles foreign buffers.
        if self.spare_bufs.len() < 16 {
            buf.clear();
            self.spare_bufs.push(buf);
        }
    }

    /// Creates a VM from `spec`. All of its vCPUs begin `Runnable`; nothing
    /// is dispatched until [`Hypervisor::start`].
    ///
    /// # Panics
    ///
    /// Panics if called after `start`, if the spec has zero vCPUs, or if a
    /// pinning target does not exist.
    pub fn create_vm(&mut self, spec: VmSpec) -> VmId {
        assert!(!self.started, "VMs must be created before start()");
        assert!(spec.n_vcpus > 0, "a VM needs at least one vCPU");
        if let Some(pins) = &spec.pinning {
            for p in pins {
                assert!(p.0 < self.pcpus.len(), "pinning names nonexistent {p}");
            }
        }
        let vm_id = VmId(self.vms.len());
        self.vm_base.push(self.vcpus.len() as u32);
        self.runstate_epoch.push(0);
        let vcpus: Vec<Vcpu> = (0..spec.n_vcpus)
            .map(|i| {
                let vref = VcpuRef::new(vm_id, i);
                let (affinity, home) = match &spec.pinning {
                    Some(pins) => (Some(pins[i]), pins[i]),
                    None => {
                        let home = match self.cfg.placement_salt {
                            None => PcpuId(i % self.pcpus.len()),
                            Some(salt) => {
                                let mut h = salt
                                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                    .wrapping_add((vm_id.0 as u64) << 32)
                                    .wrapping_add(i as u64 + 1);
                                h ^= h >> 31;
                                h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                                h ^= h >> 29;
                                PcpuId((h % self.pcpus.len() as u64) as usize)
                            }
                        };
                        (None, home)
                    }
                };
                let mut v = Vcpu::new(vref, affinity, home);
                // Fresh VMs start with a full credit allowance, matching a
                // just-created Xen domain that has not burned anything yet.
                v.credits = crate::credit::CREDIT_CAP;
                v.refresh_priority();
                v
            })
            .collect();
        self.vms.push(Vm {
            weight: spec.weight,
            sa_capable: spec.sa_capable,
            n_vcpus: spec.n_vcpus,
        });
        self.vcpus.extend(vcpus);
        vm_id
    }

    /// Marks a vCPU as initially blocked, before [`Hypervisor::start`].
    ///
    /// Guests whose runqueues are empty at boot (spare vCPUs of a server
    /// VM, interference VMs with fewer hogs than vCPUs) report this so the
    /// scheduler never dispatches an idle-looping vCPU.
    ///
    /// # Panics
    ///
    /// Panics if called after `start`.
    pub fn block_before_start(&mut self, v: VcpuRef) {
        assert!(!self.started, "block_before_start() only applies before start()");
        self.runstate_epoch[v.vm.0] += 1;
        self.vc_mut(v)
            .clock
            .transition(RunState::Blocked, SimTime::ZERO);
    }

    /// Enqueues every runnable vCPU and performs the initial dispatch on
    /// every pCPU.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start(&mut self, now: SimTime) -> Vec<HvAction> {
        assert!(!self.started, "start() must be called exactly once");
        self.started = true;
        let refs: Vec<VcpuRef> = self
            .vcpus
            .iter()
            .filter(|v| v.state() == RunState::Runnable)
            .map(|v| v.vref)
            .collect();
        for vref in refs {
            let home = self.vc(vref).home;
            self.enqueue(vref, home);
        }
        let mut out = self.out_buf();
        for p in 0..self.pcpus.len() {
            self.do_schedule(
                PcpuId(p),
                now,
                crate::actions::ScheduleReason::Start,
                false,
                &mut out,
            );
        }
        out
    }

    // ------------------------------------------------------------------
    // internal accessors
    // ------------------------------------------------------------------

    #[inline]
    pub(crate) fn vc(&self, v: VcpuRef) -> &Vcpu {
        &self.vcpus[self.vm_base[v.vm.0] as usize + v.idx]
    }

    #[inline]
    pub(crate) fn vc_mut(&mut self, v: VcpuRef) -> &mut Vcpu {
        &mut self.vcpus[self.vm_base[v.vm.0] as usize + v.idx]
    }

    /// `vm`'s slice of the flat vCPU arena.
    #[inline]
    pub(crate) fn vm_vcpus(&self, vm: VmId) -> &[Vcpu] {
        let base = self.vm_base[vm.0] as usize;
        &self.vcpus[base..base + self.vms[vm.0].n_vcpus]
    }

    /// Mutable form of [`Hypervisor::vm_vcpus`].
    #[inline]
    pub(crate) fn vm_vcpus_mut(&mut self, vm: VmId) -> &mut [Vcpu] {
        let base = self.vm_base[vm.0] as usize;
        let n = self.vms[vm.0].n_vcpus;
        &mut self.vcpus[base..base + n]
    }

    pub(crate) fn enqueue(&mut self, v: VcpuRef, pcpu: PcpuId) {
        let seq = self.queue_seq;
        self.queue_seq += 1;
        {
            let vc = self.vc_mut(v);
            vc.home = pcpu;
            vc.queued_at = seq;
        }
        debug_assert!(
            !self.pcpus[pcpu.0].runq.contains(&v),
            "{v} double-enqueued on {pcpu}"
        );
        self.pcpus[pcpu.0].runq.push_back(v);
    }

    // ------------------------------------------------------------------
    // public read surface
    // ------------------------------------------------------------------

    /// Number of physical CPUs.
    pub fn n_pcpus(&self) -> usize {
        self.pcpus.len()
    }

    /// Number of VMs.
    pub fn n_vms(&self) -> usize {
        self.vms.len()
    }

    /// Number of vCPUs of `vm`.
    pub fn vm_vcpu_count(&self, vm: VmId) -> usize {
        self.vms[vm.0].n_vcpus
    }

    /// Whether `vm`'s guest registered the SA upcall handler.
    pub fn vm_sa_capable(&self, vm: VmId) -> bool {
        self.vms[vm.0].sa_capable
    }

    /// The configuration the hypervisor was built with.
    pub fn config(&self) -> &XenConfig {
        &self.cfg
    }

    /// Iterator over every vCPU in the system.
    pub fn all_vcpus(&self) -> impl Iterator<Item = VcpuRef> + '_ {
        self.vcpus.iter().map(|v| v.vref)
    }

    /// The vCPU currently executing on `pcpu`, if any.
    pub fn pcpu_current(&self, pcpu: PcpuId) -> Option<VcpuRef> {
        self.pcpus[pcpu.0].current
    }

    /// Snapshot of the current dispatch on `pcpu` for slice-timer arming.
    pub fn dispatch_info(&self, pcpu: PcpuId) -> Option<DispatchInfo> {
        let p = &self.pcpus[pcpu.0];
        p.current.map(|vcpu| DispatchInfo {
            vcpu,
            since: p.dispatch_start,
            slice: p.cur_slice,
            generation: p.dispatch_gen,
        })
    }

    /// The raw dispatch generation of `pcpu`, advancing on every context
    /// switch (including to idle, where [`Hypervisor::dispatch_info`] is
    /// `None`). A slice-expiry timer armed under a different generation is
    /// provably stale: [`Hypervisor::slice_expired`] would discard it.
    pub fn dispatch_generation(&self, pcpu: PcpuId) -> u64 {
        self.pcpus[pcpu.0].dispatch_gen
    }

    /// Machine-wide dispatch epoch: bumps whenever any pCPU's dispatch
    /// changes. If two reads return the same value, every
    /// [`Hypervisor::dispatch_info`] snapshot is unchanged between them,
    /// so per-pCPU timer re-arm scans can be skipped wholesale.
    #[inline]
    pub fn dispatch_epoch(&self) -> u64 {
        self.dispatch_epoch
    }

    /// Per-VM runstate epoch: bumps on every runstate transition of one of
    /// `vm`'s vCPUs. Equal values across two reads mean every state byte
    /// of the VM is unchanged between them; embedders use this to keep
    /// cached per-VM runstate views alive across events.
    #[inline]
    pub fn runstate_epoch(&self, vm: VmId) -> u64 {
        self.runstate_epoch[vm.0]
    }

    /// Current runstate of a vCPU (the cheap form of the hypercall).
    pub fn vcpu_state(&self, v: VcpuRef) -> RunState {
        self.vc(v).state()
    }

    /// `VCPUOP_get_runstate_info`: cumulative residencies at `now`.
    pub fn runstate(&self, v: VcpuRef, now: SimTime) -> RunstateInfo {
        self.vc(v).clock.info(now)
    }

    /// `vm`'s runstate clocks in vCPU-index order — the bulk form of
    /// [`Hypervisor::runstate`] for embedders that walk a whole VM per
    /// event. One slice lookup instead of a [`VcpuRef`] resolution per
    /// vCPU, and the clocks stream out of the contiguous arena.
    #[inline]
    pub fn vm_clocks(&self, vm: VmId) -> impl Iterator<Item = &crate::runstate::RunstateClock> + '_ {
        self.vm_vcpus(vm).iter().map(|v| &v.clock)
    }

    /// The pCPU whose runqueue currently owns `v`.
    pub fn vcpu_home(&self, v: VcpuRef) -> PcpuId {
        self.vc(v).home
    }

    /// Current credit balance of a vCPU (diagnostics).
    pub fn vcpu_credits(&self, v: VcpuRef) -> i64 {
        self.vc(v).credits
    }

    /// Current scheduling priority of a vCPU (diagnostics).
    pub fn vcpu_priority(&self, v: VcpuRef) -> crate::vcpu::CreditPriority {
        self.vc(v).priority
    }

    /// Whether an SA notification is outstanding on `v`.
    pub fn is_sa_pending(&self, v: VcpuRef) -> bool {
        self.vc(v).sa_pending
    }

    /// The vCPU (if any) whose pending SA acknowledgement has `pcpu`'s
    /// scheduling frozen. External invariant checkers use this to prove no
    /// pCPU stays frozen past the completion limit.
    pub fn pcpu_sa_wait(&self, pcpu: PcpuId) -> Option<VcpuRef> {
        self.pcpus[pcpu.0].sa_wait
    }

    /// SA round counter for `v` (guards stale timeout events).
    pub fn sa_generation(&self, v: VcpuRef) -> u64 {
        self.vc(v).sa_gen
    }

    /// Global scheduler counters.
    pub fn stats(&self) -> &HvStats {
        &self.stats.global
    }

    /// Counters for one vCPU (zeros if it never scheduled).
    pub fn vcpu_stats(&self, v: VcpuRef) -> VcpuStats {
        self.vc(v).stats.clone()
    }

    /// True if any vCPU of `vm` currently wants CPU.
    pub fn vm_wants_cpu(&self, vm: VmId) -> bool {
        self.vm_vcpus(vm).iter().any(|v| v.state().wants_cpu())
    }

    /// Total CPU time consumed by `vm` up to `now`.
    pub fn vm_cpu_time(&self, vm: VmId, now: SimTime) -> SimTime {
        self.vm_vcpus(vm)
            .iter()
            .fold(SimTime::ZERO, |acc, v| acc + v.clock.info(now).running)
    }

    /// Total steal time suffered by `vm` up to `now`.
    pub fn vm_steal_time(&self, vm: VmId, now: SimTime) -> SimTime {
        self.vm_vcpus(vm)
            .iter()
            .fold(SimTime::ZERO, |acc, v| acc + v.clock.info(now).runnable)
    }

    /// Renders one pCPU's scheduler state for diagnostics: the current
    /// vCPU, the queue with priorities/credits/flags, and any SA freeze.
    pub fn debug_pcpu(&self, pcpu: PcpuId) -> String {
        let p = &self.pcpus[pcpu.0];
        let mut out = format!(
            "{pcpu}: current={:?} since={} slice={} sa_wait={:?} runq=[",
            p.current.map(|v| v.to_string()),
            p.dispatch_start,
            p.cur_slice,
            p.sa_wait.map(|v| v.to_string()),
        );
        for (i, &v) in p.runq.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let vc = self.vc(v);
            out.push_str(&format!(
                "{v} {} cr={} yb={} parked={}",
                vc.priority, vc.credits, vc.yield_bias, vc.parked
            ));
        }
        out.push(']');
        if let Some(cur) = p.current {
            let vc = self.vc(cur);
            out.push_str(&format!(
                " | cur {} cr={} pend={}",
                vc.priority, vc.credits, vc.sa_pending
            ));
        }
        out
    }

    /// Verifies internal consistency; used liberally by the test suites.
    ///
    /// Invariants checked:
    /// * every `Running` vCPU is the `current` of exactly its home pCPU;
    /// * every `Runnable` vCPU sits in exactly one runqueue (its home's);
    /// * `Blocked`/`Offline` vCPUs are in no runqueue and not current;
    /// * pinned vCPUs are at their pinned pCPU;
    /// * an `sa_wait` pCPU's waiting vCPU is its current and has
    ///   `sa_pending` set.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if any invariant is violated.
    pub fn check_invariants(&self) {
        for v in &self.vcpus {
            let vref = v.vref;
            let home = &self.pcpus[v.home.0];
            let queued: usize = self
                .pcpus
                .iter()
                .map(|p| p.runq.iter().filter(|&&q| q == vref).count())
                .sum();
            let current_on: Vec<PcpuId> = self
                .pcpus
                .iter()
                .filter(|p| p.current == Some(vref))
                .map(|p| p.id)
                .collect();
            match v.state() {
                RunState::Running => {
                    assert_eq!(
                        current_on,
                        vec![v.home],
                        "{vref} is Running but current on {current_on:?}, home {}",
                        v.home
                    );
                    assert_eq!(queued, 0, "{vref} Running but also queued");
                }
                RunState::Runnable => {
                    assert!(current_on.is_empty(), "{vref} Runnable but current");
                    assert_eq!(queued, 1, "{vref} Runnable queued {queued} times");
                    assert!(
                        home.runq.contains(&vref),
                        "{vref} queued away from home {}",
                        v.home
                    );
                }
                RunState::Blocked | RunState::Offline => {
                    assert!(current_on.is_empty(), "{vref} {} but current", v.state());
                    assert_eq!(queued, 0, "{vref} {} but queued", v.state());
                }
            }
            if let Some(pin) = v.affinity {
                assert_eq!(v.home, pin, "{vref} strayed from its pin {pin}");
            }
        }
        for p in &self.pcpus {
            if let Some(w) = p.sa_wait {
                assert_eq!(
                    p.current,
                    Some(w),
                    "{} sa_wait {w} is not its current vCPU",
                    p.id
                );
                assert!(self.vc(w).sa_pending, "{w} in sa_wait without sa_pending");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_vm_assigns_round_robin_homes_when_unpinned() {
        let mut hv = Hypervisor::new(XenConfig::default(), 2);
        let vm = hv.create_vm(VmSpec::new(4));
        assert_eq!(hv.vc(VcpuRef::new(vm, 0)).home, PcpuId(0));
        assert_eq!(hv.vc(VcpuRef::new(vm, 1)).home, PcpuId(1));
        assert_eq!(hv.vc(VcpuRef::new(vm, 2)).home, PcpuId(0));
        assert_eq!(hv.vc(VcpuRef::new(vm, 3)).home, PcpuId(1));
    }

    #[test]
    fn start_dispatches_one_vcpu_per_pcpu() {
        let mut hv = Hypervisor::new(XenConfig::default(), 2);
        hv.create_vm(VmSpec::new(2).pin(vec![PcpuId(0), PcpuId(1)]));
        hv.create_vm(VmSpec::new(2).pin(vec![PcpuId(0), PcpuId(1)]));
        let actions = hv.start(SimTime::ZERO);
        let started = actions
            .iter()
            .filter(|a| matches!(a, HvAction::VcpuStarted { .. }))
            .count();
        assert_eq!(started, 2);
        hv.check_invariants();
        assert!(hv.pcpu_current(PcpuId(0)).is_some());
        assert!(hv.pcpu_current(PcpuId(1)).is_some());
    }

    #[test]
    fn block_before_start_keeps_vcpu_off_the_runqueue() {
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        let a = hv.create_vm(VmSpec::new(2).pin_all(PcpuId(0)));
        hv.block_before_start(VcpuRef::new(a, 1));
        hv.start(SimTime::ZERO);
        hv.check_invariants();
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(VcpuRef::new(a, 0)));
        assert_eq!(hv.vcpu_state(VcpuRef::new(a, 1)), RunState::Blocked);
        // It wakes normally later.
        let acts = hv.vcpu_wake(VcpuRef::new(a, 1), SimTime::from_millis(5));
        assert!(!acts.is_empty());
        hv.check_invariants();
    }

    #[test]
    #[should_panic(expected = "exactly once")]
    fn double_start_panics() {
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        hv.create_vm(VmSpec::new(1));
        hv.start(SimTime::ZERO);
        hv.start(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "nonexistent")]
    fn pinning_to_missing_pcpu_panics() {
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        hv.create_vm(VmSpec::new(1).pin(vec![PcpuId(5)]));
    }

    #[test]
    fn dispatch_info_reflects_current() {
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        let vm = hv.create_vm(VmSpec::new(1));
        hv.start(SimTime::ZERO);
        let info = hv.dispatch_info(PcpuId(0)).unwrap();
        assert_eq!(info.vcpu, VcpuRef::new(vm, 0));
        assert_eq!(info.since, SimTime::ZERO);
    }

    #[test]
    fn vm_cpu_time_accumulates_while_running() {
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        let vm = hv.create_vm(VmSpec::new(1));
        hv.start(SimTime::ZERO);
        let t = SimTime::from_millis(7);
        assert_eq!(hv.vm_cpu_time(vm, t), t);
        assert_eq!(hv.vm_steal_time(vm, t), SimTime::ZERO);
    }
}
