//! Relaxed co-scheduling (the paper's reimplementation of VMware's scheme).
//!
//! Per §5.1: *"Relaxed-Co monitors the execution skew of each vCPU and stops
//! the vCPU that makes significantly more progress than the slowest vCPU. A
//! vCPU is considered to make progress when it executes guest instructions
//! or it is in the IDLE state. [...] when a VM's leading vCPU is stopped,
//! the hypervisor switches it with its slowest sibling vCPU to boost the
//! execution of this lagging vCPU."*
//!
//! The deliberate flaw the paper analyzes is kept: **blocked (idle) time
//! counts as progress**, so a vCPU idling because its sibling holds the lock
//! looks like a leader, while only steal time counts as lag. For spinning
//! workloads the leader really is ahead and parking it helps; for blocking
//! workloads the scheme parks victims and becomes destructive (Figs 5, 7).

use crate::actions::{HvAction, ScheduleReason};
use crate::hypervisor::Hypervisor;
use crate::ids::VcpuRef;
use crate::runstate::RunState;
use crate::vcpu::CreditPriority;
use irs_sim::SimTime;

impl Hypervisor {
    /// Runs the skew check for every multi-vCPU VM. Called from the 30 ms
    /// accounting pass when relaxed-co is configured.
    pub(crate) fn relaxed_co_balance(&mut self, now: SimTime, out: &mut Vec<HvAction>) {
        let threshold = self
            .cfg
            .relaxed_co
            .as_ref()
            .expect("relaxed_co_balance requires configuration")
            .skew_threshold;

        // Last period's parks expire first: every vCPU gets a fresh chance.
        for v in &mut self.vcpus {
            v.parked = false;
        }

        for vm_idx in 0..self.vms.len() {
            if self.vms[vm_idx].n_vcpus < 2 {
                continue;
            }
            // Progress = running + blocked (idle-as-progress); lag = steal.
            // Measured against the baseline captured at the last trigger so
            // skew is per-round, as a co-stop/co-start cycle would be.
            let progress: Vec<(VcpuRef, SimTime)> = self
                .vm_vcpus(crate::ids::VmId(vm_idx))
                .iter()
                .map(|v| {
                    let info = v.clock.info(now);
                    (v.vref, (info.running + info.blocked).saturating_sub(v.co_baseline))
                })
                .collect();
            // Only a vCPU that wants CPU can meaningfully be stopped.
            let Some(&(leader, lead_p)) = progress
                .iter()
                .filter(|&&(v, _)| self.vc(v).state().wants_cpu())
                .max_by_key(|&&(_, p)| p)
            else {
                continue;
            };
            let Some(&(laggard, lag_p)) = progress.iter().min_by_key(|&&(_, p)| p) else {
                continue;
            };
            if leader == laggard || lead_p.saturating_sub(lag_p) <= threshold {
                continue;
            }
            // Reset the measurement round.
            for v in self.vm_vcpus_mut(crate::ids::VmId(vm_idx)) {
                let info = v.clock.info(now);
                v.co_baseline = info.running + info.blocked;
            }

            // Stop the leader for one period.
            self.vc_mut(leader).parked = true;
            self.stats.global.co_parks += 1;
            let leader_home = self.vc(leader).home;
            if self.pcpus[leader_home.0].current == Some(leader)
                && self.pcpus[leader_home.0].sa_wait.is_none()
            {
                self.stop_current(leader_home, RunState::Runnable, now, out);
                self.do_schedule(leader_home, now, ScheduleReason::CoPark, false, out);
            }

            // Boost the laggard if it wants CPU: a preempted laggard takes
            // its pCPU back immediately; a running laggard's BOOST shields
            // it from preemption until the next tick (co-start semantics).
            if self.vc(laggard).state().wants_cpu() {
                self.vc_mut(laggard).priority = CreditPriority::Boost;
                let lag_home = self.vc(laggard).home;
                if self.vc(laggard).state() == RunState::Runnable {
                    let preempt = match self.pcpus[lag_home.0].current {
                        None => true,
                        Some(cur) => {
                            CreditPriority::Boost < self.vc(cur).priority
                        }
                    };
                    if preempt {
                        self.do_schedule(lag_home, now, ScheduleReason::CoPark, false, out);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::SchedOp;
    use crate::config::{RelaxedCoConfig, XenConfig};
    use crate::ids::PcpuId;
    use crate::vm::VmSpec;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn co_hv(n_pcpus: usize) -> Hypervisor {
        Hypervisor::new(
            XenConfig {
                relaxed_co: Some(RelaxedCoConfig::default()),
                ..XenConfig::default()
            },
            n_pcpus,
        )
    }

    /// Builds the canonical skew scenario: a 2-vCPU VM on two pCPUs where
    /// vCPU0 runs unhindered (leader) and vCPU1 is starved by a hog VM
    /// sharing its pCPU (laggard, accumulating steal time).
    fn skewed() -> (Hypervisor, VcpuRef, VcpuRef, VcpuRef) {
        let mut hv = co_hv(2);
        let par = hv.create_vm(VmSpec::new(2).pin(vec![PcpuId(0), PcpuId(1)]));
        let hog = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(1)));
        hv.start(t(0));
        let v0 = VcpuRef::new(par, 0);
        let v1 = VcpuRef::new(par, 1);
        let h = VcpuRef::new(hog, 0);
        // Ensure the hog is running on pcpu1 so v1 lags.
        if hv.pcpu_current(PcpuId(1)) != Some(h) {
            hv.sched_op(v1, SchedOp::Yield, t(0));
        }
        assert_eq!(hv.pcpu_current(PcpuId(1)), Some(h));
        (hv, v0, v1, h)
    }

    #[test]
    fn leader_is_parked_and_laggard_boosted() {
        let (mut hv, v0, v1, _h) = skewed();
        // After 60 ms: v0 progressed 60 ms, v1 progressed 0 (all steal).
        let acts = {
            let mut out = Vec::new();
            hv.relaxed_co_balance(t(60), &mut out);
            out
        };
        hv.check_invariants();
        assert!(hv.vc(v0).parked, "leader must be parked");
        assert_eq!(hv.vc(v1).priority, CreditPriority::Boost);
        // Leader was running alone on pcpu0: descheduled; pcpu0 idles
        // (nothing else runnable there).
        assert_eq!(hv.pcpu_current(PcpuId(0)), None);
        // Laggard preempted the hog on pcpu1.
        assert_eq!(hv.pcpu_current(PcpuId(1)), Some(v1));
        assert!(!acts.is_empty());
        assert_eq!(hv.stats().co_parks, 1);
    }

    #[test]
    fn no_action_below_threshold() {
        let (mut hv, v0, _v1, _h) = skewed();
        let mut out = Vec::new();
        // Only 10 ms of skew: below the 30 ms default threshold.
        hv.relaxed_co_balance(t(10), &mut out);
        assert!(!hv.vc(v0).parked);
        assert_eq!(hv.stats().co_parks, 0);
    }

    #[test]
    fn parks_expire_next_period() {
        let (mut hv, v0, _v1, _h) = skewed();
        let mut out = Vec::new();
        hv.relaxed_co_balance(t(60), &mut out);
        assert!(hv.vc(v0).parked);
        // Next accounting: v0's park expires (it may be re-parked only if
        // skew persists — it does here, so park again; then verify a pass
        // without skew unparks).
        let mut out2 = Vec::new();
        hv.relaxed_co_balance(t(61), &mut out2);
        // Either way, the parked flag was recomputed, not sticky from round 1.
        // Catch the unpark by checking a single-vCPU VM is never parked.
        let mut hv2 = co_hv(1);
        let solo = hv2.create_vm(VmSpec::new(1));
        hv2.start(t(0));
        let mut out3 = Vec::new();
        hv2.relaxed_co_balance(t(120), &mut out3);
        assert!(!hv2.vc(VcpuRef::new(solo, 0)).parked);
    }

    #[test]
    fn idle_counts_as_progress() {
        // A 2-vCPU VM alone on 2 pCPUs: vCPU0 runs, vCPU1 blocks (idle).
        // Blocking counts as progress, so no skew accumulates and relaxed-co
        // must NOT intervene — this is exactly the deceptive-idleness flaw.
        let mut hv = co_hv(2);
        let par = hv.create_vm(VmSpec::new(2).pin(vec![PcpuId(0), PcpuId(1)]));
        hv.start(t(0));
        let v1 = VcpuRef::new(par, 1);
        hv.sched_op(v1, SchedOp::Block, t(0));
        let mut out = Vec::new();
        hv.relaxed_co_balance(t(200), &mut out);
        assert_eq!(hv.stats().co_parks, 0, "idle sibling looks progressed");
        assert!(!hv.vc(VcpuRef::new(par, 0)).parked);
    }

    #[test]
    fn parked_vcpu_is_not_picked() {
        let (mut hv, v0, _v1, _h) = skewed();
        let mut out = Vec::new();
        hv.relaxed_co_balance(t(60), &mut out);
        assert!(hv.vc(v0).parked);
        // pcpu0 has only the parked v0 queued: scheduling leaves it idle.
        let mut out2 = Vec::new();
        hv.do_schedule(PcpuId(0), t(61), ScheduleReason::Accounting, false, &mut out2);
        assert_eq!(hv.pcpu_current(PcpuId(0)), None);
        hv.check_invariants();
    }

    #[test]
    fn single_vcpu_vms_are_skipped() {
        let mut hv = co_hv(1);
        hv.create_vm(VmSpec::new(1));
        hv.create_vm(VmSpec::new(1));
        hv.start(t(0));
        let mut out = Vec::new();
        hv.relaxed_co_balance(t(500), &mut out);
        assert_eq!(hv.stats().co_parks, 0);
    }
}
