//! Hypervisor configuration.

use irs_sim::SimTime;

/// Configuration of the hypervisor and its credit scheduler.
///
/// Defaults mirror Xen 4.5's credit scheduler as described in the paper:
/// 30 ms time slice, 10 ms credit-burn tick, 30 ms accounting period, and
/// wake-up boosting enabled.
///
/// # Example
///
/// ```
/// use irs_sim::SimTime;
/// use irs_xen::{SaConfig, XenConfig};
///
/// let cfg = XenConfig {
///     sa: Some(SaConfig::default()),
///     ..XenConfig::default()
/// };
/// assert_eq!(cfg.time_slice, SimTime::from_millis(30));
/// ```
#[derive(Debug, Clone)]
pub struct XenConfig {
    /// Maximum time a vCPU runs before the scheduler re-decides (30 ms).
    pub time_slice: SimTime,
    /// Half-width of the deterministic per-dispatch slice perturbation.
    ///
    /// Real hosts never run slices in perfect lockstep: interrupts, softirqs
    /// and timer skew desynchronize the per-pCPU schedules. Without this,
    /// co-located deterministic workloads phase-lock (all contended vCPUs
    /// stall in the same windows), which understates the stall unions that
    /// drive the paper's vanilla slowdowns. Zero disables the perturbation
    /// (unit tests rely on exact slice arithmetic).
    pub slice_jitter: SimTime,
    /// Period of the credit-burn tick (10 ms).
    pub tick_period: SimTime,
    /// Period of credit replenishment and priority recomputation (30 ms).
    pub accounting_period: SimTime,
    /// Whether vCPUs waking from `Blocked` receive the BOOST priority.
    pub boost: bool,
    /// Whether unpinned vCPUs are placed by load and stolen by idle pCPUs.
    ///
    /// Pinned vCPUs (hard affinity) are never migrated regardless.
    pub migration: bool,
    /// Initial placement of unpinned vCPUs: `None` assigns round-robin
    /// homes (exactly balanced — convenient for unit tests); `Some(salt)`
    /// hashes `(salt, vm, vcpu)` to a pCPU, producing the lumpy placements
    /// real creation order yields. Lumpy placement is a precondition for
    /// the §5.6 CPU-stacking pathology: with no idle pCPU to steal from,
    /// initially co-located sibling vCPUs stay co-located.
    pub placement_salt: Option<u64>,
    /// Scheduler-activation (IRS) sender; `None` disables SA entirely.
    pub sa: Option<SaConfig>,
    /// Pause-loop-exiting response; `None` means PLE exits are ignored.
    pub ple: Option<PleConfig>,
    /// Relaxed co-scheduling; `None` disables skew balancing.
    pub relaxed_co: Option<RelaxedCoConfig>,
    /// Strict (gang) co-scheduling — the VMware ESX 2.x baseline of §2.1:
    /// whole VMs rotate on gang slices; see [`crate::Hypervisor::gang_rotate`].
    pub strict_co: bool,
    /// **Deliberate fault injection** for the invariant sanitizer's own
    /// tests: on wake-up the scheduler marks the woken vCPU `Running` on its
    /// target pCPU *without* descheduling the incumbent, double-booking the
    /// pCPU. Never set outside sanitizer self-tests.
    pub fault_double_run: bool,
}

impl Default for XenConfig {
    fn default() -> Self {
        XenConfig {
            time_slice: SimTime::from_millis(30),
            slice_jitter: SimTime::ZERO,
            tick_period: SimTime::from_millis(10),
            accounting_period: SimTime::from_millis(30),
            boost: true,
            migration: false,
            placement_salt: None,
            sa: None,
            ple: None,
            relaxed_co: None,
            strict_co: false,
            fault_double_run: false,
        }
    }
}

/// Scheduler-activation sender parameters (paper §3.1, §4.1).
#[derive(Debug, Clone)]
pub struct SaConfig {
    /// Hard limit on guest SA processing before the hypervisor forces the
    /// preemption anyway — the paper's defense against rogue guests that
    /// never return control (§4.1). SA processing normally takes 20–26 µs,
    /// so a generous 500 µs limit never triggers for well-behaved guests.
    pub completion_limit: SimTime,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            completion_limit: SimTime::from_micros(500),
        }
    }
}

/// Pause-loop-exiting parameters.
///
/// PLE is a hardware feature: after a guest executes PAUSE in a tight loop
/// beyond a threshold window, the CPU takes a VM-exit. The *detection* is
/// modelled by the embedding simulation (it knows when a task spins); this
/// config controls the hypervisor's *response*, which in Xen's credit
/// scheduler is to yield the spinning vCPU.
#[derive(Debug, Clone)]
pub struct PleConfig {
    /// Continuous spin window that triggers a VM-exit (order of tens of µs
    /// on real hardware; the default models a 25 µs window).
    pub window: SimTime,
}

impl Default for PleConfig {
    fn default() -> Self {
        PleConfig {
            window: SimTime::from_micros(25),
        }
    }
}

/// Relaxed co-scheduling parameters (the paper's reimplementation of
/// VMware's scheme, §5.1).
///
/// Every accounting period the hypervisor measures per-vCPU *progress*,
/// where — crucially, and deliberately — **idle (blocked) time counts as
/// progress**. If the skew between the most- and least-progressed sibling
/// exceeds [`RelaxedCoConfig::skew_threshold`], the leading vCPU is stopped
/// for one period and the most-lagging runnable sibling is boosted.
#[derive(Debug, Clone)]
pub struct RelaxedCoConfig {
    /// Progress skew between siblings that triggers a leader/laggard swap.
    pub skew_threshold: SimTime,
}

impl Default for RelaxedCoConfig {
    fn default() -> Self {
        RelaxedCoConfig {
            skew_threshold: SimTime::from_millis(30),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_xen_credit() {
        let cfg = XenConfig::default();
        assert_eq!(cfg.time_slice, SimTime::from_millis(30));
        assert_eq!(cfg.tick_period, SimTime::from_millis(10));
        assert_eq!(cfg.accounting_period, SimTime::from_millis(30));
        assert!(cfg.boost);
        assert!(!cfg.migration);
        assert!(cfg.sa.is_none());
        assert!(cfg.ple.is_none());
        assert!(cfg.relaxed_co.is_none());
    }

    #[test]
    fn sa_limit_is_generous_relative_to_processing_cost() {
        // Paper: SA processing takes 20–26 µs; limit must not clip it.
        let sa = SaConfig::default();
        assert!(sa.completion_limit > SimTime::from_micros(26));
    }

    #[test]
    fn ple_window_is_sub_slice() {
        let ple = PleConfig::default();
        assert!(ple.window < XenConfig::default().time_slice);
    }
}
