//! # irs-xen — a Xen-like hypervisor model
//!
//! This crate reimplements the hypervisor half of the system evaluated in
//! *Scheduler Activations for Interference-Resilient SMP Virtual Machine
//! Scheduling* (Middleware '17): **Xen 4.5's credit scheduler** plus the
//! paper's ~30-line hypervisor patch (the scheduler-activation *SA sender*),
//! and the two hypervisor-side baselines the paper compares against
//! (**pause-loop-exiting** yields and **relaxed co-scheduling**).
//!
//! The model is faithful to the mechanisms the paper's analysis depends on:
//!
//! * 30 ms time slices, a 10 ms credit-burn tick, and a 30 ms accounting
//!   period with weight-proportional credit replenishment
//!   ([`credit`], [`XenConfig`]).
//! * Three-level run priorities `BOOST > UNDER > OVER`, where a vCPU waking
//!   from the blocked state is boosted — the property that makes IRS's
//!   "migrate to an idle (hence hypervisor-blocked) sibling" strategy pay off.
//! * vCPU runstates `running / runnable / blocked / offline` with full
//!   steal-time accounting, exposed to guests through the
//!   `VCPUOP_get_runstate` hypercall surface ([`RunstateInfo`]) — the same
//!   channel the paper's migrator uses to see through the "online but
//!   preempted" illusion.
//! * Hard CPU affinity (pinning) as used in §5.1, and load-based placement +
//!   idle stealing when unpinned, which reproduces the §5.6 CPU-stacking
//!   pathology.
//! * The SA sender of Algorithm 1: on an involuntary preemption of a
//!   runnable vCPU, send `VIRQ_SA_UPCALL`, set the per-vCPU `sa_pending`
//!   flag, and *delay the preemption* until the guest acknowledges via
//!   `SCHEDOP_block`/`SCHEDOP_yield` (or a hard completion limit fires).
//!
//! The crate is a *library of state machines*: methods mutate hypervisor
//! state and return [`HvAction`]s (context-switch notifications, vIRQ
//! deliveries, timer (re)arms) that the embedding simulation interprets. The
//! guest OS lives in `irs-guest`; the two only meet in `irs-core`.
//!
//! # Example
//!
//! Two single-vCPU VMs pinned to one pCPU time-share it in 30 ms slices:
//!
//! ```
//! use irs_sim::SimTime;
//! use irs_xen::{Hypervisor, PcpuId, VmSpec, XenConfig};
//!
//! let mut hv = Hypervisor::new(XenConfig::default(), 1);
//! let a = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
//! let b = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
//! let actions = hv.start(SimTime::ZERO);
//! assert!(!actions.is_empty());
//! // One of the two vCPUs is running, the other is runnable (preempted).
//! let running = hv.pcpu_current(PcpuId(0)).unwrap();
//! assert!(running.vm == a || running.vm == b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actions;
mod config;
pub mod credit;
mod hypervisor;
mod ids;
mod pcpu;
pub mod relaxed_co;
mod runstate;
pub mod sa;
pub mod strict_co;
mod stats;
mod vcpu;
mod vm;

pub use actions::{HvAction, ScheduleReason, SchedOp};
pub use config::{PleConfig, RelaxedCoConfig, SaConfig, XenConfig};
pub use hypervisor::Hypervisor;
pub use ids::{PcpuId, VcpuRef, Virq, VmId};
pub use pcpu::DispatchInfo;
pub use runstate::{RunState, RunstateClock, RunstateInfo};
pub use stats::{HvStats, VcpuStats};
pub use vcpu::CreditPriority;
pub use vm::VmSpec;
