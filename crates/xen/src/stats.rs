//! Scheduler event counters.
//!
//! These feed the paper's profiling claims (SA rounds, preemption counts,
//! migration counts for the CPU-stacking analysis) and the test suite's
//! invariant checks.

/// Global hypervisor counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HvStats {
    /// Scheduler invocations.
    pub schedules: u64,
    /// Involuntary preemptions of a runnable vCPU (the LHP/LWP trigger).
    pub preemptions: u64,
    /// SA notifications sent (`VIRQ_SA_UPCALL`).
    pub sa_sent: u64,
    /// SA rounds acknowledged by the guest in time.
    pub sa_acked: u64,
    /// SA rounds cut short by the hard completion limit.
    pub sa_timeouts: u64,
    /// Pause-loop VM-exits acted upon.
    pub ple_exits: u64,
    /// Relaxed-co leader parks.
    pub co_parks: u64,
    /// vCPU wake-ups.
    pub wakes: u64,
    /// Wake-ups that received BOOST priority.
    pub boosts: u64,
    /// vCPU migrations between pCPUs (placement or stealing).
    pub vcpu_migrations: u64,
    /// Gang rotations performed (strict co-scheduling).
    pub gang_rotations: u64,
}

/// Per-vCPU counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VcpuStats {
    /// Times this vCPU was dispatched on a pCPU.
    pub dispatches: u64,
    /// Involuntary preemptions suffered.
    pub preemptions: u64,
    /// SA notifications received.
    pub sa_received: u64,
    /// Wake-ups.
    pub wakes: u64,
}

/// Container for the global counters. Per-vCPU counters live inline on
/// each `Vcpu` in the flat arena (see `Hypervisor::vcpu_stats`): the hot
/// paths that bump them already hold the vCPU's cache lines, and the old
/// `HashMap<VcpuRef, VcpuStats>` hashed on every context switch.
#[derive(Debug, Clone, Default)]
pub(crate) struct StatsStore {
    pub global: HvStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XenConfig;
    use crate::hypervisor::Hypervisor;
    use crate::ids::{PcpuId, VcpuRef};
    use crate::vm::VmSpec;
    use irs_sim::SimTime;

    #[test]
    fn inline_vcpu_stats_count_dispatches() {
        // The per-vCPU counters live inline on the flat vCPU arena now;
        // exercise them end-to-end through a real dispatch.
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        let vm = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(SimTime::ZERO);
        let v = VcpuRef::new(vm, 0);
        assert_eq!(hv.vcpu_stats(v).dispatches, 1);
        assert_eq!(hv.vcpu_stats(v).preemptions, 0);
    }

    #[test]
    fn defaults_are_zero() {
        let s = HvStats::default();
        assert_eq!(s.preemptions, 0);
        assert_eq!(s.sa_sent, 0);
    }
}
