//! Scheduler event counters.
//!
//! These feed the paper's profiling claims (SA rounds, preemption counts,
//! migration counts for the CPU-stacking analysis) and the test suite's
//! invariant checks.

use crate::ids::VcpuRef;
use std::collections::HashMap;

/// Global hypervisor counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HvStats {
    /// Scheduler invocations.
    pub schedules: u64,
    /// Involuntary preemptions of a runnable vCPU (the LHP/LWP trigger).
    pub preemptions: u64,
    /// SA notifications sent (`VIRQ_SA_UPCALL`).
    pub sa_sent: u64,
    /// SA rounds acknowledged by the guest in time.
    pub sa_acked: u64,
    /// SA rounds cut short by the hard completion limit.
    pub sa_timeouts: u64,
    /// Pause-loop VM-exits acted upon.
    pub ple_exits: u64,
    /// Relaxed-co leader parks.
    pub co_parks: u64,
    /// vCPU wake-ups.
    pub wakes: u64,
    /// Wake-ups that received BOOST priority.
    pub boosts: u64,
    /// vCPU migrations between pCPUs (placement or stealing).
    pub vcpu_migrations: u64,
    /// Gang rotations performed (strict co-scheduling).
    pub gang_rotations: u64,
}

/// Per-vCPU counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VcpuStats {
    /// Times this vCPU was dispatched on a pCPU.
    pub dispatches: u64,
    /// Involuntary preemptions suffered.
    pub preemptions: u64,
    /// SA notifications received.
    pub sa_received: u64,
    /// Wake-ups.
    pub wakes: u64,
}

/// Container bundling the global and per-vCPU counters.
#[derive(Debug, Clone, Default)]
pub(crate) struct StatsStore {
    pub global: HvStats,
    pub per_vcpu: HashMap<VcpuRef, VcpuStats>,
}

impl StatsStore {
    pub(crate) fn vcpu_mut(&mut self, v: VcpuRef) -> &mut VcpuStats {
        self.per_vcpu.entry(v).or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VmId;

    #[test]
    fn vcpu_mut_creates_on_demand() {
        let mut s = StatsStore::default();
        let v = VcpuRef::new(VmId(1), 3);
        s.vcpu_mut(v).preemptions += 1;
        s.vcpu_mut(v).preemptions += 1;
        assert_eq!(s.per_vcpu[&v].preemptions, 2);
    }

    #[test]
    fn defaults_are_zero() {
        let s = HvStats::default();
        assert_eq!(s.preemptions, 0);
        assert_eq!(s.sa_sent, 0);
    }
}
