//! Actions emitted by hypervisor state transitions.
//!
//! The hypervisor never calls into the guest directly (there is a strict
//! privilege boundary in the real system, and a strict crate boundary here).
//! Every externally visible consequence of a scheduling decision is returned
//! as an [`HvAction`] for the embedding simulation to interpret.

use crate::ids::{PcpuId, VcpuRef, Virq};
use crate::runstate::RunState;
use irs_sim::SimTime;
use std::fmt;

/// Externally visible consequence of a hypervisor state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HvAction {
    /// `vcpu` was context-switched **in** on `pcpu`. The embedder should
    /// resume execution of whatever the guest had current on that vCPU.
    VcpuStarted {
        /// The vCPU now running.
        vcpu: VcpuRef,
        /// The pCPU it runs on.
        pcpu: PcpuId,
    },
    /// `vcpu` was context-switched **out** and is now in `state`. The
    /// embedder should checkpoint the progress of the guest task that was
    /// executing on it.
    VcpuStopped {
        /// The vCPU that stopped.
        vcpu: VcpuRef,
        /// Its new runstate (`Runnable` if preempted, `Blocked` if idle).
        state: RunState,
    },
    /// A virtual interrupt must be delivered to the guest owning `vcpu`.
    ///
    /// For [`Virq::SaUpcall`] the hypervisor has set `sa_pending` and is
    /// delaying the preemption; the embedder must arm a timeout at
    /// `deadline` (see [`crate::SaConfig::completion_limit`]) in case the
    /// guest never acknowledges.
    DeliverVirq {
        /// Target vCPU (the interrupt is per-vCPU).
        vcpu: VcpuRef,
        /// Which interrupt line.
        virq: Virq,
        /// For SA upcalls, the hard completion deadline; `None` otherwise.
        deadline: Option<SimTime>,
    },
    /// `pcpu` has nothing to run and enters the idle loop.
    PcpuIdle {
        /// The idle pCPU.
        pcpu: PcpuId,
    },
}

impl fmt::Display for HvAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvAction::VcpuStarted { vcpu, pcpu } => write!(f, "start {vcpu} on {pcpu}"),
            HvAction::VcpuStopped { vcpu, state } => write!(f, "stop {vcpu} -> {state}"),
            HvAction::DeliverVirq { vcpu, virq, .. } => write!(f, "deliver {virq} to {vcpu}"),
            HvAction::PcpuIdle { pcpu } => write!(f, "{pcpu} idle"),
        }
    }
}

/// Guest-to-hypervisor scheduling operation (`HYPERVISOR_sched_op`).
///
/// IRS's context switcher returns one of these to acknowledge an SA
/// notification (paper §3.2): `Block` if the vCPU's runqueue drained (the
/// idle task was installed), `Yield` if other runnable tasks remain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedOp {
    /// `SCHEDOP_block` — the vCPU has no work; put it in the blocked state.
    Block,
    /// `SCHEDOP_yield` — keep the vCPU runnable but cede the pCPU.
    Yield,
}

impl fmt::Display for SchedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedOp::Block => write!(f, "SCHEDOP_block"),
            SchedOp::Yield => write!(f, "SCHEDOP_yield"),
        }
    }
}

/// Why the scheduler ran on a pCPU (statistics and tracing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleReason {
    /// Initial dispatch at simulation start.
    Start,
    /// The running vCPU exhausted its time slice.
    SliceExpiry,
    /// A wake-up tickled this pCPU.
    Wake,
    /// The running vCPU blocked.
    Block,
    /// The running vCPU yielded.
    Yield,
    /// Credit accounting changed priorities.
    Accounting,
    /// The guest acknowledged a scheduler activation.
    SaAck,
    /// The SA completion limit fired before the guest acknowledged.
    SaTimeout,
    /// A pause-loop VM-exit yielded the spinning vCPU.
    PleExit,
    /// Relaxed co-scheduling parked the leading sibling.
    CoPark,
    /// A forced maintenance preemption (injected pCPU capacity
    /// degradation, [`Hypervisor::force_preempt`](crate::Hypervisor)).
    Degrade,
}

impl ScheduleReason {
    /// Static rendering, usable as a [`irs_sim::trace::TraceEvent`] tag.
    pub fn as_str(self) -> &'static str {
        match self {
            ScheduleReason::Start => "start",
            ScheduleReason::SliceExpiry => "slice-expiry",
            ScheduleReason::Wake => "wake",
            ScheduleReason::Block => "block",
            ScheduleReason::Yield => "yield",
            ScheduleReason::Accounting => "accounting",
            ScheduleReason::SaAck => "sa-ack",
            ScheduleReason::SaTimeout => "sa-timeout",
            ScheduleReason::PleExit => "ple-exit",
            ScheduleReason::CoPark => "co-park",
            ScheduleReason::Degrade => "degrade",
        }
    }
}

impl fmt::Display for ScheduleReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VmId;

    #[test]
    fn actions_render() {
        let v = VcpuRef::new(VmId(0), 1);
        assert_eq!(
            HvAction::VcpuStarted { vcpu: v, pcpu: PcpuId(2) }.to_string(),
            "start vm0.v1 on pcpu2"
        );
        assert_eq!(
            HvAction::VcpuStopped { vcpu: v, state: RunState::Runnable }.to_string(),
            "stop vm0.v1 -> runnable"
        );
        assert_eq!(
            HvAction::DeliverVirq { vcpu: v, virq: Virq::SaUpcall, deadline: None }.to_string(),
            "deliver VIRQ_SA_UPCALL to vm0.v1"
        );
        assert_eq!(HvAction::PcpuIdle { pcpu: PcpuId(0) }.to_string(), "pcpu0 idle");
    }

    #[test]
    fn sched_ops_render_like_xen() {
        assert_eq!(SchedOp::Block.to_string(), "SCHEDOP_block");
        assert_eq!(SchedOp::Yield.to_string(), "SCHEDOP_yield");
    }
}
