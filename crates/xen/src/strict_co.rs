//! Strict (gang) co-scheduling — the VMware ESX 2.x baseline of §2.1.
//!
//! All sibling vCPUs of a VM are scheduled and descheduled *synchronously*:
//! the machine is time-sliced between whole VMs. Within a VM's slot no
//! sibling can be preempted by another VM, so LHP/LWP cannot occur — but
//! a VM with fewer runnable vCPUs than pCPUs leaves the remainder idle
//! (**CPU fragmentation**), and a vCPU waking outside its VM's slot waits
//! for the next one (**priority inversion** against latency-sensitive
//! work). Both costs are exactly what the paper cites from its reference
//! \[28\] (the VMware co-scheduling white paper).
//!
//! The model is deliberately simple: VMs with at least one runnable vCPU
//! rotate round-robin on a gang slice; wakes during a foreign slot queue
//! until the VM's own slot. Weights are ignored (the paper's comparison
//! uses equal-weight VMs throughout).

use crate::actions::{HvAction, ScheduleReason};
use crate::hypervisor::Hypervisor;
use crate::ids::{PcpuId, VmId};
use crate::runstate::RunState;
use irs_sim::SimTime;

impl Hypervisor {
    /// The VM whose gang slot is currently open (`None` before the first
    /// rotation or when gang mode is off).
    pub fn gang_current(&self) -> Option<VmId> {
        self.gang_current
    }

    /// True when the hypervisor runs in strict co-scheduling mode.
    pub fn is_gang_mode(&self) -> bool {
        self.cfg.strict_co
    }

    /// Rotates the gang slot to the next VM with runnable work and
    /// synchronously switches every pCPU to that VM's vCPUs.
    ///
    /// The embedder calls this every gang slice (and may call it early when
    /// the current gang VM goes fully idle — see
    /// [`Hypervisor::gang_vm_fully_idle`]).
    ///
    /// # Panics
    ///
    /// Panics if strict co-scheduling is not configured.
    pub fn gang_rotate(&mut self, now: SimTime) -> Vec<HvAction> {
        assert!(self.cfg.strict_co, "gang_rotate requires strict_co mode");
        let mut out = self.out_buf();
        let n_vms = self.vms.len();
        if n_vms == 0 {
            return out;
        }
        // Next VM (round-robin) with at least one vCPU wanting CPU.
        let start = self.gang_current.map(|v| v.0 + 1).unwrap_or(0);
        let mut next = None;
        for off in 0..n_vms {
            let cand = VmId((start + off) % n_vms);
            let wants = self.vm_vcpus(cand).iter().any(|v| v.state().wants_cpu());
            if wants {
                next = Some(cand);
                break;
            }
        }
        let Some(gang) = next else {
            // Nothing runnable anywhere: close the slot.
            for p in 0..self.pcpus.len() {
                if self.pcpus[p].current.is_some() {
                    self.stop_current(PcpuId(p), RunState::Runnable, now, &mut out);
                }
                out.push(HvAction::PcpuIdle { pcpu: PcpuId(p) });
            }
            self.gang_current = None;
            return out;
        };
        self.gang_current = Some(gang);
        self.stats.global.gang_rotations += 1;

        // Synchronously stop every foreign current and start the gang VM's
        // runnable vCPUs on their home pCPUs.
        for p in 0..self.pcpus.len() {
            let pid = PcpuId(p);
            if let Some(cur) = self.pcpus[p].current {
                if cur.vm != gang {
                    self.stats.global.preemptions += 1;
                    self.vc_mut(cur).stats.preemptions += 1;
                    self.stop_current(pid, RunState::Runnable, now, &mut out);
                }
            }
            if self.pcpus[p].current.is_none() {
                self.do_schedule(pid, now, ScheduleReason::Start, false, &mut out);
                if self.pcpus[p].current.is_none() {
                    // Fragmentation: the gang VM has nothing runnable here.
                    out.push(HvAction::PcpuIdle { pcpu: pid });
                }
            }
        }
        out
    }

    /// True when the gang VM has no runnable or running vCPU left — the
    /// embedder should rotate early rather than idle the whole machine.
    pub fn gang_vm_fully_idle(&self) -> bool {
        match self.gang_current {
            None => true,
            Some(vm) => !self.vm_vcpus(vm).iter().any(|v| v.state().wants_cpu()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::SchedOp;
    use crate::config::XenConfig;
    use crate::ids::VcpuRef;
    use crate::vm::VmSpec;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn gang_hv() -> Hypervisor {
        let mut hv = Hypervisor::new(
            XenConfig {
                strict_co: true,
                ..XenConfig::default()
            },
            4,
        );
        // A 4-vCPU parallel VM and a 1-vCPU sequential VM.
        hv.create_vm(VmSpec::new(4).pin((0..4).map(PcpuId).collect()));
        hv.create_vm(VmSpec::new(1).pin(vec![PcpuId(0)]));
        hv.start(t(0));
        hv
    }

    #[test]
    fn rotation_schedules_whole_gangs() {
        let mut hv = gang_hv();
        hv.gang_rotate(t(0));
        assert_eq!(hv.gang_current(), Some(VmId(0)));
        // All four pCPUs run VM 0's vCPUs simultaneously.
        for p in 0..4 {
            let cur = hv.pcpu_current(PcpuId(p)).expect("gang slot fills pCPU");
            assert_eq!(cur.vm, VmId(0));
        }
        hv.check_invariants();
    }

    #[test]
    fn fragmentation_idles_pcpus_in_small_vm_slots() {
        let mut hv = gang_hv();
        hv.gang_rotate(t(0)); // VM 0's slot
        let acts = hv.gang_rotate(t(30)); // VM 1's slot
        assert_eq!(hv.gang_current(), Some(VmId(1)));
        assert_eq!(
            hv.pcpu_current(PcpuId(0)).map(|v| v.vm),
            Some(VmId(1)),
            "the sequential VM runs on its pCPU"
        );
        // The other three pCPUs are idle: CPU fragmentation.
        let idle = (1..4)
            .filter(|&p| hv.pcpu_current(PcpuId(p)).is_none())
            .count();
        assert_eq!(idle, 3, "three pCPUs fragment during the small VM's slot");
        assert!(acts.iter().any(|a| matches!(a, HvAction::PcpuIdle { .. })));
        hv.check_invariants();
    }

    #[test]
    fn no_cross_vm_preemption_within_a_slot() {
        let mut hv = gang_hv();
        hv.gang_rotate(t(0)); // VM 0's slot
        // VM 1's vCPU waking mid-slot must wait (priority inversion).
        let v1 = VcpuRef::new(VmId(1), 0);
        hv.sched_op(v1, SchedOp::Block, t(1)); // it is queued, not running: no-op
        let before = hv.pcpu_current(PcpuId(0));
        hv.vcpu_wake(v1, t(2));
        assert_eq!(hv.pcpu_current(PcpuId(0)), before, "no preemption mid-slot");
        hv.check_invariants();
    }

    #[test]
    fn rotation_skips_fully_idle_vms() {
        let mut hv = gang_hv();
        hv.gang_rotate(t(0));
        // Block all of VM 0's vCPUs.
        for i in 0..4 {
            let v = VcpuRef::new(VmId(0), i);
            if hv.pcpu_current(PcpuId(i)) == Some(v) {
                hv.sched_op(v, SchedOp::Block, t(1));
            }
        }
        assert!(hv.gang_vm_fully_idle() || hv.gang_current() == Some(VmId(0)));
        let _ = hv.gang_rotate(t(2));
        assert_eq!(hv.gang_current(), Some(VmId(1)), "idle VM skipped");
        hv.check_invariants();
    }

    #[test]
    fn rotation_counts_in_stats() {
        let mut hv = gang_hv();
        hv.gang_rotate(t(0));
        hv.gang_rotate(t(30));
        assert_eq!(hv.stats().gang_rotations, 2);
    }
}
