//! The credit scheduler.
//!
//! A faithful model of the mechanisms in Xen 4.5's `sched_credit.c` that the
//! paper's analysis rests on:
//!
//! * **30 ms time slices** — the source of the "one more VM ⇒ +30 ms
//!   migration latency" staircase in Fig 1(b).
//! * **10 ms tick** burning credits of the running vCPU, and a **30 ms
//!   accounting period** replenishing credits weight-proportionally.
//! * **Priorities `BOOST > UNDER > OVER`**, with BOOST granted on wake-up
//!   from the blocked state — the property IRS exploits when it migrates a
//!   critical thread to an idle (hypervisor-blocked) sibling vCPU.
//! * **Hard affinity** (the paper pins vCPUs in §5.1–5.5) and, when
//!   unpinned, **load-based wake placement + idle stealing**, which is
//!   exactly the combination that produces the §5.6 CPU-stacking pathology
//!   under deceptive idleness.
//!
//! The scheduler-activation hook sits on the involuntary-preemption path in
//! `Hypervisor::do_schedule`: where vanilla Xen would context-switch a
//! runnable vCPU out, an SA-enabled hypervisor first notifies the guest and
//! defers the switch (see [`crate::sa`]).

use crate::actions::{HvAction, SchedOp, ScheduleReason};
use crate::hypervisor::Hypervisor;
use crate::ids::{PcpuId, VcpuRef};
use crate::runstate::RunState;
use crate::vcpu::CreditPriority;
use irs_sim::trace::TraceEvent;
use irs_sim::SimTime;

/// Credits burned by a running vCPU per 10 ms tick (Xen: `CSCHED_CREDITS_PER_TICK`).
pub const CREDITS_PER_TICK: i64 = 100;
/// Credits distributed per pCPU per 30 ms accounting period.
pub const CREDITS_PER_ACCT: i64 = 300;
/// Upper bound on a vCPU's credit balance.
pub const CREDIT_CAP: i64 = 300;
/// Lower bound on a vCPU's credit balance.
pub const CREDIT_FLOOR: i64 = -300;

impl Hypervisor {
    // ==================================================================
    // periodic machinery
    // ==================================================================

    /// The 10 ms credit-burn tick.
    ///
    /// Burns credits in proportion to the running time each vCPU actually
    /// consumed since the previous tick ([`CREDITS_PER_TICK`] per full tick
    /// period), expires BOOST priorities of vCPUs caught running, and
    /// preempts where a queued vCPU now outranks the runner.
    pub fn tick(&mut self, now: SimTime) -> Vec<HvAction> {
        let mut out = self.out_buf();
        let tick_ns = self.cfg.tick_period.as_nanos().max(1);
        // One linear pass over the flat vCPU arena (VM-major order, same as
        // the old per-VM nesting).
        for i in 0..self.vcpus.len() {
            let vc = &mut self.vcpus[i];
            let run = vc.clock.info(now).running;
            let delta = run.saturating_sub(vc.burn_baseline).as_nanos();
            vc.burn_baseline = run;
            if delta > 0 {
                let burn = (delta as i64 * CREDITS_PER_TICK) / tick_ns as i64;
                vc.credits = (vc.credits - burn).max(CREDIT_FLOOR);
                let credits = vc.credits;
                let vref = vc.vref;
                self.trace.emit(now, || TraceEvent::CreditTick {
                    vm: vref.vm.0,
                    vcpu: vref.idx,
                    burned: burn,
                    credits,
                });
            }
            let vc = &mut self.vcpus[i];
            vc.refresh_priority();
        }
        for p in 0..self.pcpus.len() {
            let pid = PcpuId(p);
            if let Some(cur) = self.pcpus[p].current {
                // BOOST is a wake-up transient: it expires at the first tick
                // that observes the vCPU running (as in Xen's csched_tick).
                let vc = self.vc_mut(cur);
                vc.unboost();
            }
            self.preempt_check(pid, now, ScheduleReason::Accounting, &mut out);
        }
        out
    }

    /// The 30 ms accounting pass: replenish credits weight-proportionally,
    /// recompute priorities, run relaxed-co skew balancing if configured,
    /// and preempt where priorities changed.
    pub fn accounting(&mut self, now: SimTime) -> Vec<HvAction> {
        let mut out = self.out_buf();
        // Xen distributes a domain's share among its *active* vCPUs: those
        // that want CPU, plus blocked vCPUs still paying off a credit debt
        // (they stay on the active list until their balance recovers, which
        // is what lets them wake back up at UNDER and earn BOOST).
        let total_weight: u64 = self.vms.iter().map(|vm| vm.weight).sum();
        if total_weight > 0 {
            let pot = CREDITS_PER_ACCT * self.pcpus.len() as i64;
            for vm_idx in 0..self.vms.len() {
                let share = pot * self.vms[vm_idx].weight as i64 / total_weight as i64;
                let base = self.vm_base[vm_idx] as usize;
                let n = self.vms[vm_idx].n_vcpus;
                let active: Vec<usize> = (base..base + n)
                    .filter(|&i| {
                        let v = &self.vcpus[i];
                        v.state().wants_cpu() || v.credits < 0
                    })
                    .collect();
                if active.is_empty() {
                    continue;
                }
                let per_vcpu = share / active.len() as i64;
                for i in active {
                    let v = &mut self.vcpus[i];
                    v.credits = (v.credits + per_vcpu).min(CREDIT_CAP);
                    v.refresh_priority();
                }
            }
        }
        if self.cfg.relaxed_co.is_some() {
            self.relaxed_co_balance(now, &mut out);
        }
        for p in 0..self.pcpus.len() {
            self.preempt_check(PcpuId(p), now, ScheduleReason::Accounting, &mut out);
        }
        out
    }

    /// True when a [`Hypervisor::tick`] at `now` would mutate nothing and
    /// emit nothing — the quiescence predicate behind tickless fast-forward
    /// (`irs_core`'s `SystemConfig::tickless`).
    ///
    /// The conditions mirror `tick` line by line: no vCPU has unburned
    /// running time (`burn_baseline` already equals its cumulative running
    /// time, which cannot advance while nothing is dispatched), every
    /// priority is exactly what `refresh_priority` would recompute (a held
    /// BOOST disqualifies: `tick` would expire it), and every pCPU is idle
    /// with nothing eligible to pick, so the unboost and `preempt_check`
    /// epilogues cannot act. Callers must not use this under strict
    /// co-scheduling, where the embedder's gang-rotate epilogue keys off
    /// every processed event.
    pub fn tick_is_noop(&self, now: SimTime) -> bool {
        for vc in &self.vcpus {
            if vc.clock.info(now).running != vc.burn_baseline {
                return false;
            }
            let derived = if vc.credits > 0 {
                CreditPriority::Under
            } else {
                CreditPriority::Over
            };
            if vc.priority != derived {
                return false;
            }
        }
        self.pcpus_quiescent()
    }

    /// True when a [`Hypervisor::accounting`] pass would mutate nothing:
    /// no relaxed-co balancer configured, every VM's active set is empty
    /// (no vCPU wants CPU or carries a credit debt, so no replenishment
    /// happens), and every pCPU is idle with nothing to pick. Companion to
    /// [`Hypervisor::tick_is_noop`]; the same strict-co caveat applies.
    pub fn accounting_is_noop(&self) -> bool {
        if self.cfg.relaxed_co.is_some() {
            return false;
        }
        for vc in &self.vcpus {
            if vc.state().wants_cpu() || vc.credits < 0 {
                return false;
            }
        }
        self.pcpus_quiescent()
    }

    /// Every pCPU idle, unfrozen, and with an empty eligible runqueue.
    fn pcpus_quiescent(&self) -> bool {
        for p in 0..self.pcpus.len() {
            let pc = &self.pcpus[p];
            if pc.current.is_some() || pc.sa_wait.is_some() {
                return false;
            }
            if self.pick_local(PcpuId(p)).is_some() {
                return false;
            }
        }
        true
    }

    /// If a queued vCPU strictly outranks the runner on `pcpu`, reschedule.
    fn preempt_check(
        &mut self,
        pcpu: PcpuId,
        now: SimTime,
        reason: ScheduleReason,
        out: &mut Vec<HvAction>,
    ) {
        let Some(cur) = self.pcpus[pcpu.0].current else {
            // An idle pCPU with queued work should not exist (enqueue paths
            // dispatch immediately), but be safe.
            if self.pick_local(pcpu).is_some() {
                self.do_schedule(pcpu, now, reason, true, out);
            }
            return;
        };
        let cur_prio = self.vc(cur).priority;
        if let Some(best) = self.pick_local(pcpu) {
            if self.vc(best).priority < cur_prio {
                self.do_schedule(pcpu, now, reason, true, out);
            }
        }
    }

    // ==================================================================
    // external scheduling entry points
    // ==================================================================

    /// The running vCPU on `pcpu` exhausted its slice. `generation` guards
    /// against stale timers: pass the value from [`crate::DispatchInfo`].
    pub fn slice_expired(
        &mut self,
        pcpu: PcpuId,
        generation: u64,
        now: SimTime,
    ) -> Vec<HvAction> {
        let mut out = self.out_buf();
        if self.pcpus[pcpu.0].dispatch_gen != generation {
            return out; // a context switch beat the timer
        }
        self.do_schedule(pcpu, now, ScheduleReason::SliceExpiry, true, &mut out);
        out
    }

    /// Forced maintenance-style preemption of whatever `pcpu` is running,
    /// regardless of slice or priority state — the capacity-degradation
    /// hook of `irs_core::faults`. Routed through the same involuntary
    /// preemption shape as a slice-expiry switch, so an SA-capable victim
    /// gets a normal SA round rather than a silent context switch. No-op
    /// on an idle or SA-frozen pCPU, or when nothing else is runnable
    /// locally (degradation models losing the CPU to a competitor, not
    /// self-preemption churn).
    pub fn force_preempt(&mut self, pcpu: PcpuId, now: SimTime) -> Vec<HvAction> {
        let mut out = self.out_buf();
        if self.pcpus[pcpu.0].sa_wait.is_some() {
            return out;
        }
        let Some(cur) = self.pcpus[pcpu.0].current else {
            return out;
        };
        if self.vc(cur).state() != RunState::Running {
            return out;
        }
        let Some(next) = self.pick_local(pcpu) else {
            return out;
        };
        if self.cfg.sa.is_some()
            && self.vms[cur.vm.0].sa_capable
            && !self.vc(cur).sa_pending
        {
            self.send_sa(pcpu, cur, now, &mut out);
            return out;
        }
        self.remove_queued(next, pcpu);
        self.stats.global.preemptions += 1;
        self.vc_mut(cur).stats.preemptions += 1;
        self.stop_current(pcpu, RunState::Runnable, now, &mut out);
        self.dispatch(pcpu, next, now, ScheduleReason::Degrade, &mut out);
        out
    }

    /// Wakes `v` from the blocked state: places it (by load when unpinned),
    /// grants BOOST where eligible, and tickles the target pCPU.
    ///
    /// Waking a non-blocked vCPU is a harmless no-op (spurious wake).
    pub fn vcpu_wake(&mut self, v: VcpuRef, now: SimTime) -> Vec<HvAction> {
        let mut out = self.out_buf();
        if self.vc(v).state() != RunState::Blocked {
            return out;
        }
        self.stats.global.wakes += 1;
        self.vc_mut(v).stats.wakes += 1;

        let target = if self.cfg.migration && !self.cfg.strict_co && self.vc(v).affinity.is_none()
        {
            self.pick_pcpu(v)
        } else {
            self.vc(v).affinity.unwrap_or(self.vc(v).home)
        };
        if target != self.vc(v).home {
            self.stats.global.vcpu_migrations += 1;
        }

        self.runstate_epoch[v.vm.0] += 1;
        {
            let boost = self.cfg.boost;
            let cooldown = self.cfg.accounting_period;
            let vc = self.vc_mut(v);
            vc.clock.transition(RunState::Runnable, now);
            // BOOST is rate-limited to one grant per accounting period: a
            // vCPU cycling through fast block/wake churn (e.g. migrator
            // bounces) must not monopolize the pCPU over plain-UNDER
            // siblings (a boost storm).
            let recently_boosted = vc
                .last_boost
                .is_some_and(|t| now.saturating_sub(t) < cooldown);
            if boost && vc.credits >= 0 && !recently_boosted {
                vc.priority = CreditPriority::Boost;
                vc.last_boost = Some(now);
            } else {
                vc.refresh_priority();
            }
        }
        if self.vc(v).priority == CreditPriority::Boost {
            self.stats.global.boosts += 1;
        }
        self.enqueue(v, target);
        self.trace.emit(now, || TraceEvent::Wake {
            vm: v.vm.0,
            vcpu: v.idx,
            pcpu: target.0,
        });

        if self.cfg.fault_double_run {
            if let Some(_incumbent) = self.pcpus[target.0].current {
                // Deliberate corruption for the sanitizer's own tests (see
                // `XenConfig::fault_double_run`): mark the woken vCPU Running
                // and current on its target without descheduling the
                // incumbent, double-booking the pCPU.
                self.remove_queued(v, target);
                self.runstate_epoch[v.vm.0] += 1;
                self.vc_mut(v).clock.transition(RunState::Running, now);
                self.pcpus[target.0].current = Some(v);
                return out;
            }
        }

        let should_tickle = match self.pcpus[target.0].current {
            None => true,
            Some(cur) => self.vc(v).priority < self.vc(cur).priority,
        };
        if should_tickle {
            self.do_schedule(target, now, ScheduleReason::Wake, true, &mut out);
        }
        out
    }

    /// `HYPERVISOR_sched_op` from the guest running on `v`'s pCPU.
    ///
    /// Doubles as the SA acknowledgement channel (paper Algorithm 1 line
    /// 15): if an SA round is pending on `v`, it is completed first and the
    /// deferred preemption then proceeds under the requested operation.
    pub fn sched_op(&mut self, v: VcpuRef, op: SchedOp, now: SimTime) -> Vec<HvAction> {
        let mut out = self.out_buf();
        let home = self.vc(v).home;
        // The acknowledgement must release the pCPU that is actually frozen
        // on `v` — after a re-home race that may no longer be `v`'s home, so
        // search rather than trust the home index (mirrors `sa_timeout`).
        let frozen = self.pcpus.iter().position(|p| p.sa_wait == Some(v));
        let was_sa = self.vc(v).sa_pending && frozen.is_some();
        if was_sa {
            let p = frozen.unwrap();
            self.vc_mut(v).sa_pending = false;
            self.pcpus[p].sa_wait = None;
            self.stats.global.sa_acked += 1;
            let op_str = match op {
                SchedOp::Block => "SCHEDOP_block",
                SchedOp::Yield => "SCHEDOP_yield",
            };
            self.trace.emit(now, || TraceEvent::SaAck {
                vm: v.vm.0,
                vcpu: v.idx,
                op: op_str,
            });
            if self.pcpus[p].current != Some(v) {
                // The freeze outlived `v`'s tenure on that pCPU: unfreezing
                // must reschedule it, or it idles frozen forever.
                self.do_schedule(PcpuId(p), now, ScheduleReason::SaAck, false, &mut out);
            }
        }
        if self.pcpus[home.0].current != Some(v) || self.vc(v).state() != RunState::Running {
            return out; // spurious: only the running vCPU can hypercall
        }
        let reason = if was_sa {
            ScheduleReason::SaAck
        } else {
            match op {
                SchedOp::Block => ScheduleReason::Block,
                SchedOp::Yield => ScheduleReason::Yield,
            }
        };
        match op {
            SchedOp::Block => {
                self.stop_current(home, RunState::Blocked, now, &mut out);
            }
            SchedOp::Yield => {
                self.vc_mut(v).yield_bias = true;
                self.stop_current(home, RunState::Runnable, now, &mut out);
            }
        }
        self.do_schedule(home, now, reason, false, &mut out);
        out
    }

    /// A pause-loop VM-exit: the guest on `v` has been spinning beyond the
    /// PLE window. Xen's response is to yield the spinning vCPU.
    ///
    /// No-op unless PLE is configured and `v` is currently running.
    pub fn ple_exit(&mut self, v: VcpuRef, now: SimTime) -> Vec<HvAction> {
        let mut out = self.out_buf();
        if self.cfg.ple.is_none() {
            return out;
        }
        let home = self.vc(v).home;
        if self.pcpus[home.0].current != Some(v) || self.pcpus[home.0].sa_wait.is_some() {
            return out;
        }
        self.stats.global.ple_exits += 1;
        self.vc_mut(v).yield_bias = true;
        self.stop_current(home, RunState::Runnable, now, &mut out);
        self.do_schedule(home, now, ScheduleReason::PleExit, false, &mut out);
        out
    }

    // ==================================================================
    // the scheduler core
    // ==================================================================

    /// The central scheduling decision for one pCPU.
    ///
    /// When an involuntary preemption of a runnable vCPU is decided and the
    /// target VM is SA-capable, the preemption is *deferred*: an SA upcall
    /// is delivered instead and the pCPU freezes until [`Hypervisor::sched_op`]
    /// (the acknowledgement) or [`Hypervisor::sa_timeout`] unfreezes it.
    pub(crate) fn do_schedule(
        &mut self,
        pcpu: PcpuId,
        now: SimTime,
        reason: ScheduleReason,
        allow_sa: bool,
        out: &mut Vec<HvAction>,
    ) {
        if self.pcpus[pcpu.0].sa_wait.is_some() {
            return; // frozen awaiting the guest's SA acknowledgement
        }
        self.stats.global.schedules += 1;

        let cur = self.pcpus[pcpu.0].current;
        let cur_running =
            cur.is_some_and(|c| self.vc(c).state() == RunState::Running);

        if !cur_running {
            // Idle path (or the caller already stopped the previous vCPU).
            let candidate = self
                .pick_local(pcpu)
                .or_else(|| self.steal_for(pcpu));
            match candidate {
                Some(next) => {
                    self.remove_queued(next, pcpu);
                    self.dispatch(pcpu, next, now, reason, out);
                }
                None => {
                    if cur.is_none() {
                        out.push(HvAction::PcpuIdle { pcpu });
                    }
                }
            }
            return;
        }

        let c = cur.expect("cur_running implies current");
        let cur_prio = self.vc(c).priority;
        let slice_end = self.pcpus[pcpu.0].dispatch_start + self.pcpus[pcpu.0].cur_slice;
        let slice_up = now >= slice_end;

        let best = self.pick_local(pcpu);
        let switch = match best {
            None => false,
            Some(b) => {
                let bp = self.vc(b).priority;
                bp < cur_prio || (slice_up && bp <= cur_prio)
            }
        };

        if !switch {
            if slice_up {
                // Fresh slice for the incumbent; bump the generation so the
                // embedder re-arms the expiry timer.
                let slice = self.effective_slice(pcpu);
                let p = &mut self.pcpus[pcpu.0];
                p.dispatch_start = now;
                p.cur_slice = slice;
                p.dispatch_gen += 1;
                self.dispatch_epoch += 1;
            }
            return;
        }

        // Involuntary preemption of a runnable vCPU — the SA hook point.
        if allow_sa
            && self.cfg.sa.is_some()
            && self.vms[c.vm.0].sa_capable
            && !self.vc(c).sa_pending
        {
            self.send_sa(pcpu, c, now, out);
            return;
        }

        let next = best.expect("switch implies a candidate");
        self.remove_queued(next, pcpu);
        self.stats.global.preemptions += 1;
        self.vc_mut(c).stats.preemptions += 1;
        self.stop_current(pcpu, RunState::Runnable, now, out);
        self.dispatch(pcpu, next, now, reason, out);
    }

    /// Context-switches the current vCPU of `pcpu` out into `to`.
    pub(crate) fn stop_current(
        &mut self,
        pcpu: PcpuId,
        to: RunState,
        now: SimTime,
        out: &mut Vec<HvAction>,
    ) {
        let c = self.pcpus[pcpu.0]
            .current
            .take()
            .expect("stop_current on an idle pCPU");
        debug_assert!(self.pcpus[pcpu.0].sa_wait.is_none());
        // BOOST is a wake-latency transient: it ends no later than the end
        // of the boosted dispatch. Without this, wake/block cycles shorter
        // than a tick sustain BOOST indefinitely (a boost storm) and starve
        // plain-UNDER siblings queued behind them.
        self.vc_mut(c).unboost();
        self.runstate_epoch[c.vm.0] += 1;
        self.vc_mut(c).clock.transition(to, now);
        self.trace.emit(now, || match to {
            RunState::Runnable => TraceEvent::Preempt {
                pcpu: pcpu.0,
                vm: c.vm.0,
                vcpu: c.idx,
            },
            _ => TraceEvent::Block {
                pcpu: pcpu.0,
                vm: c.vm.0,
                vcpu: c.idx,
            },
        });
        if to == RunState::Runnable {
            self.enqueue(c, pcpu);
        }
        self.pcpus[pcpu.0].dispatch_gen += 1;
        self.dispatch_epoch += 1;
        out.push(HvAction::VcpuStopped { vcpu: c, state: to });
    }

    /// Context-switches `next` in on `pcpu`. The caller must already have
    /// removed `next` from whatever runqueue held it.
    pub(crate) fn dispatch(
        &mut self,
        pcpu: PcpuId,
        next: VcpuRef,
        now: SimTime,
        reason: ScheduleReason,
        out: &mut Vec<HvAction>,
    ) {
        debug_assert!(self.pcpus[pcpu.0].current.is_none());
        self.trace.emit(now, || TraceEvent::Schedule {
            pcpu: pcpu.0,
            vm: next.vm.0,
            vcpu: next.idx,
            reason: reason.as_str(),
        });
        self.runstate_epoch[next.vm.0] += 1;
        {
            let vc = self.vc_mut(next);
            debug_assert_eq!(vc.state(), RunState::Runnable);
            vc.home = pcpu;
            vc.clock.transition(RunState::Running, now);
            vc.yield_bias = false;
        }
        let slice = self.effective_slice(pcpu);
        let p = &mut self.pcpus[pcpu.0];
        p.current = Some(next);
        p.dispatch_start = now;
        p.cur_slice = slice;
        p.dispatch_gen += 1;
        self.dispatch_epoch += 1;
        self.vc_mut(next).stats.dispatches += 1;
        // Yield flags are one-shot (Xen clears CSCHED_FLAG_VCPU_YIELD once
        // the scheduler has acted on it): anyone still queued after this
        // completed decision competes normally next time.
        let queued: Vec<VcpuRef> = self.pcpus[pcpu.0].runq.iter().copied().collect();
        for v in queued {
            self.vc_mut(v).yield_bias = false;
        }
        out.push(HvAction::VcpuStarted { vcpu: next, pcpu });
    }

    /// Effective slice for the next dispatch on `pcpu`: the base slice plus
    /// a deterministic hash-based perturbation in `[-jitter, +jitter)`,
    /// keyed by the dispatch generation so repeated runs stay reproducible.
    fn effective_slice(&self, pcpu: PcpuId) -> SimTime {
        let jitter = self.cfg.slice_jitter.as_nanos();
        if jitter == 0 {
            return self.cfg.time_slice;
        }
        let gen = self.pcpus[pcpu.0].dispatch_gen;
        let mut h = gen
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(pcpu.0 as u64 + 1);
        h ^= h >> 31;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 29;
        let offset = h % (2 * jitter);
        SimTime::from_nanos(
            (self.cfg.time_slice.as_nanos() + offset).saturating_sub(jitter),
        )
    }

    // ==================================================================
    // candidate selection
    // ==================================================================

    /// Best runnable vCPU queued locally on `pcpu`: highest priority first,
    /// non-yielding before yielding, FIFO within a class. Parked vCPUs
    /// (relaxed-co) are invisible.
    pub(crate) fn pick_local(&self, pcpu: PcpuId) -> Option<VcpuRef> {
        let mut best: Option<(CreditPriority, bool, VcpuRef)> = None;
        for &v in &self.pcpus[pcpu.0].runq {
            let vc = self.vc(v);
            if vc.parked {
                continue;
            }
            // Strict co-scheduling: only the gang VM's vCPUs are eligible.
            if self.cfg.strict_co && Some(v.vm) != self.gang_current {
                continue;
            }
            let key = (vc.priority, vc.yield_bias);
            match &best {
                Some((bp, by, _)) if (*bp, *by) <= key => {}
                _ => best = Some((key.0, key.1, v)),
            }
        }
        best.map(|(_, _, v)| v)
    }

    /// Steals the best migratable vCPU queued elsewhere, for a pCPU that
    /// would otherwise idle. Only unpinned vCPUs may move.
    fn steal_for(&mut self, pcpu: PcpuId) -> Option<VcpuRef> {
        if !self.cfg.migration {
            return None;
        }
        // Gang mode owns placement: stealing would smuggle a foreign VM's
        // vCPU into the current gang slot.
        if self.cfg.strict_co {
            return None;
        }
        let mut best: Option<(CreditPriority, bool, u64, VcpuRef)> = None;
        for p in &self.pcpus {
            if p.id == pcpu {
                continue;
            }
            for &v in &p.runq {
                let vc = self.vc(v);
                if vc.parked || vc.affinity.is_some() {
                    continue;
                }
                let key = (vc.priority, vc.yield_bias, vc.queued_at);
                match &best {
                    Some((bp, by, bq, _)) if (*bp, *by, *bq) <= key => {}
                    _ => best = Some((key.0, key.1, key.2, v)),
                }
            }
        }
        let stolen = best.map(|(_, _, _, v)| v);
        if stolen.is_some() {
            self.stats.global.vcpu_migrations += 1;
        }
        stolen
    }

    /// Removes `v` from the runqueue that holds it and re-homes it to
    /// `target` (identity re-home for local picks).
    fn remove_queued(&mut self, v: VcpuRef, target: PcpuId) {
        let home = self.vc(v).home;
        let removed = self.pcpus[home.0].dequeue(v);
        debug_assert!(removed, "{v} was not queued on its home {home}");
        self.vc_mut(v).home = target;
    }

    /// Wake-time placement for an unpinned vCPU, as Xen's
    /// `_csched_cpu_pick` does it: prefer an **idle** pCPU; with none, stay
    /// home. Queue depths are *not* compared — which is exactly why
    /// stacking persists under full load: once sibling vCPUs share a pCPU
    /// and no pCPU ever idles (CPU hogs everywhere), nothing moves them.
    /// A pCPU looks idle when every vCPU on it is blocked — deceptive
    /// idleness feeding the §5.6 pathology.
    fn pick_pcpu(&self, v: VcpuRef) -> PcpuId {
        let home = self.vc(v).home;
        if self.pcpus[home.0].load() == 0 {
            return home;
        }
        for p in &self.pcpus {
            if p.load() == 0 {
                return p.id;
            }
        }
        home
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XenConfig;
    
    use crate::vm::VmSpec;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Two always-runnable vCPUs pinned to one pCPU round-robin in 30 ms
    /// slices.
    #[test]
    fn slice_expiry_round_robins_equal_priority() {
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        let a = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        let b = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let first = hv.pcpu_current(PcpuId(0)).unwrap();
        let gen = hv.dispatch_info(PcpuId(0)).unwrap().generation;
        let acts = hv.slice_expired(PcpuId(0), gen, t(30));
        hv.check_invariants();
        let second = hv.pcpu_current(PcpuId(0)).unwrap();
        assert_ne!(first, second);
        assert_eq!(
            [first.vm, second.vm].iter().collect::<std::collections::HashSet<_>>(),
            [a, b].iter().collect()
        );
        assert!(acts
            .iter()
            .any(|x| matches!(x, HvAction::VcpuStopped { state: RunState::Runnable, .. })));
    }

    #[test]
    fn stale_slice_timer_is_ignored() {
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let gen = hv.dispatch_info(PcpuId(0)).unwrap().generation;
        hv.slice_expired(PcpuId(0), gen, t(30));
        // The old generation's timer fires late: must be a no-op.
        let current = hv.pcpu_current(PcpuId(0));
        let acts = hv.slice_expired(PcpuId(0), gen, t(31));
        assert!(acts.is_empty());
        assert_eq!(hv.pcpu_current(PcpuId(0)), current);
    }

    #[test]
    fn sole_runner_gets_fresh_slice_without_switch() {
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        let vm = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let info0 = hv.dispatch_info(PcpuId(0)).unwrap();
        let acts = hv.slice_expired(PcpuId(0), info0.generation, t(30));
        assert!(acts.is_empty());
        let info1 = hv.dispatch_info(PcpuId(0)).unwrap();
        assert_eq!(info1.vcpu, VcpuRef::new(vm, 0));
        assert_eq!(info1.since, t(30), "slice baseline refreshed");
        assert_ne!(info1.generation, info0.generation);
    }

    #[test]
    fn force_preempt_swaps_mid_slice() {
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let first = hv.pcpu_current(PcpuId(0)).unwrap();
        // Mid-slice, equal priority: the regular expiry path refuses...
        let gen = hv.dispatch_info(PcpuId(0)).unwrap().generation;
        hv.slice_expired(PcpuId(0), gen, t(5));
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(first));
        // ...but a forced maintenance preemption must not.
        let acts = hv.force_preempt(PcpuId(0), t(5));
        hv.check_invariants();
        assert_ne!(hv.pcpu_current(PcpuId(0)), Some(first));
        assert_eq!(hv.vcpu_state(first), RunState::Runnable);
        assert!(acts
            .iter()
            .any(|x| matches!(x, HvAction::VcpuStopped { state: RunState::Runnable, .. })));
    }

    #[test]
    fn force_preempt_is_noop_without_competition() {
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let current = hv.pcpu_current(PcpuId(0));
        let acts = hv.force_preempt(PcpuId(0), t(5));
        assert!(acts.is_empty());
        assert_eq!(hv.pcpu_current(PcpuId(0)), current);
    }

    #[test]
    fn force_preempt_opens_an_sa_round_for_capable_vms() {
        let cfg = XenConfig {
            sa: Some(crate::config::SaConfig::default()),
            ..XenConfig::default()
        };
        let mut hv = Hypervisor::new(cfg, 1);
        let a = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)).sa_capable(true));
        hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let va = VcpuRef::new(a, 0);
        if hv.pcpu_current(PcpuId(0)) != Some(va) {
            // Rotate until the SA-capable vCPU holds the pCPU.
            hv.force_preempt(PcpuId(0), t(1));
        }
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(va));
        let acts = hv.force_preempt(PcpuId(0), t(5));
        hv.check_invariants();
        // The victim is not silently switched out: it gets an SA round and
        // the pCPU freezes awaiting the acknowledgement.
        assert!(hv.is_sa_pending(va));
        assert_eq!(hv.pcpu_sa_wait(PcpuId(0)), Some(va));
        assert!(acts
            .iter()
            .any(|x| matches!(x, HvAction::DeliverVirq { .. })));
        // While frozen, further degradation hits are no-ops.
        assert!(hv.force_preempt(PcpuId(0), t(6)).is_empty());
    }

    #[test]
    fn block_then_wake_boosts_and_preempts() {
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        let a = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        let b = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let va = VcpuRef::new(a, 0);
        let vb = VcpuRef::new(b, 0);
        let (first, second) = if hv.pcpu_current(PcpuId(0)) == Some(va) {
            (va, vb)
        } else {
            (vb, va)
        };
        // First blocks; second runs.
        hv.sched_op(first, SchedOp::Block, t(5));
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(second));
        assert_eq!(hv.vcpu_state(first), RunState::Blocked);
        // First wakes: BOOST preempts the incumbent immediately.
        let acts = hv.vcpu_wake(first, t(10));
        hv.check_invariants();
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(first));
        assert!(acts
            .iter()
            .any(|x| matches!(x, HvAction::VcpuStarted { .. })));
        assert_eq!(hv.stats().boosts, 1);
        assert_eq!(hv.vcpu_state(second), RunState::Runnable);
    }

    #[test]
    fn boost_expires_at_tick() {
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        let a = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let va = VcpuRef::new(a, 0);
        if hv.pcpu_current(PcpuId(0)) != Some(va) {
            // make va the runner for determinism
            let gen = hv.dispatch_info(PcpuId(0)).unwrap().generation;
            hv.slice_expired(PcpuId(0), gen, t(0));
        }
        hv.sched_op(va, SchedOp::Block, t(5));
        hv.vcpu_wake(va, t(10));
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(va));
        hv.tick(t(20));
        // After the tick the woken vCPU must no longer be BOOST.
        assert_ne!(hv.vc(va).priority, CreditPriority::Boost);
    }

    #[test]
    fn yield_moves_to_tail_but_sole_vcpu_continues() {
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        let a = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let va = VcpuRef::new(a, 0);
        let acts = hv.sched_op(va, SchedOp::Yield, t(1));
        hv.check_invariants();
        // Alone on the pCPU: yields but is redispatched immediately.
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(va));
        assert!(acts.iter().any(|x| matches!(x, HvAction::VcpuStarted { .. })));
    }

    #[test]
    fn yield_prefers_the_other_vcpu() {
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let first = hv.pcpu_current(PcpuId(0)).unwrap();
        hv.sched_op(first, SchedOp::Yield, t(1));
        assert_ne!(hv.pcpu_current(PcpuId(0)), Some(first));
    }

    #[test]
    fn accounting_converges_to_fair_share() {
        // One pCPU, two hog vCPUs: over many periods each should run ~50%.
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        let a = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        let b = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let mut now = SimTime::ZERO;
        for step in 1..=300u64 {
            now = t(step * 10);
            hv.tick(now);
            if step % 3 == 0 {
                hv.accounting(now);
            }
            if let Some(info) = hv.dispatch_info(PcpuId(0)) {
                if now >= info.since + hv.config().time_slice {
                    hv.slice_expired(PcpuId(0), info.generation, now);
                }
            }
            hv.check_invariants();
        }
        let ra = hv.vm_cpu_time(a, now).as_millis() as f64;
        let rb = hv.vm_cpu_time(b, now).as_millis() as f64;
        let total = ra + rb;
        assert!(total > 2900.0, "pCPU must stay busy, got {total}");
        let share = ra / total;
        assert!((0.4..=0.6).contains(&share), "share was {share}");
    }

    #[test]
    fn weights_skew_the_share() {
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        let a = hv.create_vm(VmSpec::new(1).weight(512).pin_all(PcpuId(0)));
        let b = hv.create_vm(VmSpec::new(1).weight(256).pin_all(PcpuId(0)));
        hv.start(t(0));
        let mut now = SimTime::ZERO;
        for step in 1..=600u64 {
            now = t(step * 10);
            hv.tick(now);
            if step % 3 == 0 {
                hv.accounting(now);
            }
            if let Some(info) = hv.dispatch_info(PcpuId(0)) {
                if now >= info.since + hv.config().time_slice {
                    hv.slice_expired(PcpuId(0), info.generation, now);
                }
            }
        }
        let ra = hv.vm_cpu_time(a, now).as_millis() as f64;
        let rb = hv.vm_cpu_time(b, now).as_millis() as f64;
        let ratio = ra / rb;
        assert!(
            ratio > 1.4,
            "weight-512 VM should get well above half ({ratio})"
        );
    }

    #[test]
    fn idle_pcpu_steals_unpinned_work() {
        let cfg = XenConfig {
            migration: true,
            ..XenConfig::default()
        };
        let mut hv = Hypervisor::new(cfg, 2);
        let a = hv.create_vm(VmSpec::new(2)); // unpinned, homes 0 and 1
        hv.start(t(0));
        // Force both onto pcpu0's queue by blocking v1 and waking it while
        // pcpu0 is empty... simpler: both run already (one per pcpu). Block
        // the one on pcpu1, wake it when pcpu1 is also free: placement keeps
        // it on the emptier pcpu.
        let v1 = VcpuRef::new(a, 1);
        hv.sched_op(v1, SchedOp::Block, t(1));
        assert!(hv.pcpu_current(PcpuId(1)).is_none());
        let acts = hv.vcpu_wake(v1, t(2));
        // pcpu1 was idle and is the least loaded: v1 returns there.
        assert_eq!(hv.pcpu_current(PcpuId(1)), Some(v1));
        assert!(!acts.is_empty());
        hv.check_invariants();
    }

    #[test]
    fn steal_fills_idle_pcpu() {
        let cfg = XenConfig {
            migration: true,
            ..XenConfig::default()
        };
        let mut hv = Hypervisor::new(cfg, 2);
        // Two unpinned single-vCPU VMs, both homed on pcpu0 (round-robin
        // would split them, so pin the spec... we need same home: create 4
        // vcpus in one VM => homes 0,1,0,1; block the two on pcpu1).
        let a = hv.create_vm(VmSpec::new(4));
        hv.start(t(0));
        // pcpu0 runs a.v0 with a.v2 queued; pcpu1 runs a.v1 with a.v3 queued.
        let v1 = VcpuRef::new(a, 1);
        let v3 = VcpuRef::new(a, 3);
        // Block both vCPUs on pcpu1; the idle pcpu1 must steal a.v2 from
        // pcpu0's queue.
        hv.sched_op(v1, SchedOp::Block, t(1));
        hv.check_invariants();
        let cur = hv.pcpu_current(PcpuId(1));
        assert!(cur == Some(v3) || cur == Some(VcpuRef::new(a, 2)));
        hv.sched_op(cur.unwrap(), SchedOp::Block, t(2));
        let cur2 = hv.pcpu_current(PcpuId(1)).unwrap();
        assert_eq!(hv.vcpu_home(cur2), PcpuId(1), "stolen vCPU re-homed");
        hv.check_invariants();
        assert!(hv.stats().vcpu_migrations >= 1);
    }

    #[test]
    fn pinned_vcpus_are_never_stolen() {
        let cfg = XenConfig {
            migration: true,
            ..XenConfig::default()
        };
        let mut hv = Hypervisor::new(cfg, 2);
        let a = hv.create_vm(VmSpec::new(2).pin(vec![PcpuId(0), PcpuId(0)]));
        hv.start(t(0));
        // pcpu1 idles; a.v1 is queued on pcpu0 but pinned there.
        assert!(hv.pcpu_current(PcpuId(1)).is_none());
        assert_eq!(hv.vcpu_home(VcpuRef::new(a, 1)), PcpuId(0));
        hv.check_invariants();
    }

    #[test]
    fn spurious_wake_and_foreign_schedop_are_noops() {
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        let a = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        let b = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let running = hv.pcpu_current(PcpuId(0)).unwrap();
        let waiting = if running == VcpuRef::new(a, 0) {
            VcpuRef::new(b, 0)
        } else {
            VcpuRef::new(a, 0)
        };
        // Waking a runnable vCPU: no-op.
        assert!(hv.vcpu_wake(waiting, t(1)).is_empty());
        // A queued (non-running) vCPU cannot hypercall.
        assert!(hv.sched_op(waiting, SchedOp::Block, t(1)).is_empty());
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(running));
        hv.check_invariants();
    }

    #[test]
    fn ple_exit_yields_the_spinner() {
        let cfg = XenConfig {
            ple: Some(crate::config::PleConfig::default()),
            ..XenConfig::default()
        };
        let mut hv = Hypervisor::new(cfg, 1);
        hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let spinner = hv.pcpu_current(PcpuId(0)).unwrap();
        hv.ple_exit(spinner, t(1));
        assert_ne!(hv.pcpu_current(PcpuId(0)), Some(spinner));
        assert_eq!(hv.stats().ple_exits, 1);
        hv.check_invariants();
    }

    #[test]
    fn ple_disabled_ignores_exits() {
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let spinner = hv.pcpu_current(PcpuId(0)).unwrap();
        assert!(hv.ple_exit(spinner, t(1)).is_empty());
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(spinner));
    }

    #[test]
    fn tick_burns_credits_of_runner_only() {
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        let a = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        let b = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let runner = hv.pcpu_current(PcpuId(0)).unwrap();
        let waiter = if runner == VcpuRef::new(a, 0) {
            VcpuRef::new(b, 0)
        } else {
            VcpuRef::new(a, 0)
        };
        let before_r = hv.vc(runner).credits;
        let before_w = hv.vc(waiter).credits;
        hv.tick(t(10));
        assert_eq!(hv.vc(runner).credits, before_r - CREDITS_PER_TICK);
        assert_eq!(hv.vc(waiter).credits, before_w);
    }

    #[test]
    fn runstate_accounting_tracks_steal_time() {
        let mut hv = Hypervisor::new(XenConfig::default(), 1);
        hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let runner = hv.pcpu_current(PcpuId(0)).unwrap();
        let gen = hv.dispatch_info(PcpuId(0)).unwrap().generation;
        hv.slice_expired(PcpuId(0), gen, t(30));
        // The first runner has now been preempted for 30..60 ms.
        let info = hv.runstate(runner, t(60));
        assert_eq!(info.running, t(30));
        assert_eq!(info.runnable, t(30));
        assert!((info.steal_fraction() - 0.5).abs() < 1e-9);
    }
}
