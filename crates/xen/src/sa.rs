//! The scheduler-activation sender (paper Algorithm 1, hypervisor side).
//!
//! The ~30-line Xen patch the paper describes does three things, all
//! reproduced here:
//!
//! 1. On the critical schedule path, when the scheduler decides to preempt a
//!    **runnable** vCPU **involuntarily**, send `VIRQ_SA_UPCALL` over a
//!    dedicated event channel — but only if no SA is already pending on that
//!    vCPU (the per-vCPU `sa_pending` flag, Algorithm 1 lines 4–5).
//! 2. **Delay the preemption**: the preemptee keeps running so the guest can
//!    handle the vIRQ, context-switch the critical task off, and wake its
//!    migrator (line 7, `continue_running`).
//! 3. Accept the acknowledgement through `HYPERVISOR_sched_op` (handled in
//!    [`Hypervisor::sched_op`]) and clear the pending flag; or, if a rogue or
//!    wedged guest never responds, **force** the preemption after a hard
//!    completion limit (§4.1's security note).

use crate::actions::{HvAction, ScheduleReason};
use crate::hypervisor::Hypervisor;
use crate::ids::{PcpuId, VcpuRef, Virq};
use crate::runstate::RunState;
use irs_sim::trace::TraceEvent;
use irs_sim::SimTime;

impl Hypervisor {
    /// Sends the SA upcall to `vcpu` (currently running on `pcpu`) and
    /// freezes scheduling on that pCPU until acknowledgement or timeout.
    ///
    /// Callers have already verified the Algorithm 1 preconditions: the
    /// vCPU is runnable, the preemption is involuntary, SA is configured,
    /// the VM is SA-capable, and no SA is pending.
    pub(crate) fn send_sa(
        &mut self,
        pcpu: PcpuId,
        vcpu: VcpuRef,
        now: SimTime,
        out: &mut Vec<HvAction>,
    ) {
        let limit = self
            .cfg
            .sa
            .as_ref()
            .expect("send_sa requires SA configuration")
            .completion_limit;
        {
            let vc = self.vc_mut(vcpu);
            debug_assert!(!vc.sa_pending);
            vc.sa_pending = true;
            vc.sa_gen += 1;
        }
        self.pcpus[pcpu.0].sa_wait = Some(vcpu);
        self.stats.global.sa_sent += 1;
        self.vc_mut(vcpu).stats.sa_received += 1;
        self.trace.emit(now, || TraceEvent::SaSend {
            vm: vcpu.vm.0,
            vcpu: vcpu.idx,
        });
        out.push(HvAction::DeliverVirq {
            vcpu,
            virq: Virq::SaUpcall,
            deadline: Some(now + limit),
        });
    }

    /// The hard completion limit fired before the guest acknowledged.
    ///
    /// `generation` must be the [`Hypervisor::sa_generation`] observed when
    /// the upcall was delivered; a stale timeout (the guest acked and a new
    /// round started) is ignored. The wedged vCPU is forced off the pCPU
    /// with yield semantics — it stays runnable but loses the CPU.
    pub fn sa_timeout(&mut self, vcpu: VcpuRef, generation: u64, now: SimTime) -> Vec<HvAction> {
        let mut out = self.out_buf();
        {
            let vc = self.vc(vcpu);
            if !vc.sa_pending || vc.sa_gen != generation {
                return out; // stale: the guest acknowledged in time
            }
        }
        self.vc_mut(vcpu).sa_pending = false;
        self.stats.global.sa_timeouts += 1;
        self.trace.emit(now, || TraceEvent::SaTimeout {
            vm: vcpu.vm.0,
            vcpu: vcpu.idx,
        });

        // The frozen pCPU is normally the vCPU's home, but trusting `home`
        // here force-schedules the wrong pCPU if the vCPU was re-homed
        // between send and timeout (a migration/work-steal race, or a
        // fault-injected interleaving). Find the pCPU that is actually
        // frozen on this round instead, and release exactly that one.
        let frozen = self
            .pcpus
            .iter()
            .position(|p| p.sa_wait == Some(vcpu))
            .map(PcpuId);
        let Some(pcpu) = frozen else {
            // No pCPU is frozen on this round any more; clearing the
            // pending flag above was all there was left to do.
            return out;
        };
        self.pcpus[pcpu.0].sa_wait = None;

        if self.pcpus[pcpu.0].current == Some(vcpu)
            && self.vc(vcpu).state() == RunState::Running
        {
            self.vc_mut(vcpu).yield_bias = true;
            self.stats.global.preemptions += 1;
            self.vc_mut(vcpu).stats.preemptions += 1;
            self.stop_current(pcpu, RunState::Runnable, now, &mut out);
            self.do_schedule(pcpu, now, ScheduleReason::SaTimeout, false, &mut out);
        } else {
            // The waited-on vCPU is no longer current on the frozen pCPU:
            // there is nothing to force off, but the pCPU was refusing to
            // schedule while frozen, so it must be kicked or it idles
            // forever.
            self.do_schedule(pcpu, now, ScheduleReason::SaTimeout, false, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::SchedOp;
    use crate::config::{SaConfig, XenConfig};
    use crate::vm::VmSpec;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn sa_hv() -> Hypervisor {
        Hypervisor::new(
            XenConfig {
                sa: Some(SaConfig::default()),
                ..XenConfig::default()
            },
            1,
        )
    }

    /// Sets up: SA-capable VM's vCPU running on pcpu0, competitor VM's vCPU
    /// queued, and forces a slice expiry to trigger the SA path. Returns
    /// (hv, preemptee, competitor).
    fn trigger_sa() -> (Hypervisor, VcpuRef, VcpuRef) {
        let mut hv = sa_hv();
        let fg = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)).sa_capable(true));
        let bg = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let vfg = VcpuRef::new(fg, 0);
        let vbg = VcpuRef::new(bg, 0);
        // Make the SA-capable vCPU the runner.
        if hv.pcpu_current(PcpuId(0)) != Some(vfg) {
            let gen = hv.dispatch_info(PcpuId(0)).unwrap().generation;
            // bg runs; expiring its slice switches to fg without SA (bg VM
            // is not SA-capable).
            hv.slice_expired(PcpuId(0), gen, t(30));
        }
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(vfg));
        let gen = hv.dispatch_info(PcpuId(0)).unwrap().generation;
        let since = hv.dispatch_info(PcpuId(0)).unwrap().since;
        let acts = hv.slice_expired(PcpuId(0), gen, since + t(30));
        assert!(
            acts.iter().any(|a| matches!(
                a,
                HvAction::DeliverVirq { virq: Virq::SaUpcall, .. }
            )),
            "slice expiry of an SA-capable runnable vCPU must send SA, got {acts:?}"
        );
        (hv, vfg, vbg)
    }

    #[test]
    fn sa_defers_the_preemption() {
        let (hv, vfg, _) = trigger_sa();
        // The preemptee is still running: the switch was deferred.
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(vfg));
        assert!(hv.is_sa_pending(vfg));
        assert_eq!(hv.stats().sa_sent, 1);
        hv.check_invariants();
    }

    #[test]
    fn ack_with_yield_completes_the_preemption() {
        let (mut hv, vfg, vbg) = trigger_sa();
        let acts = hv.sched_op(vfg, SchedOp::Yield, t(61));
        hv.check_invariants();
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(vbg));
        assert_eq!(hv.vcpu_state(vfg), RunState::Runnable);
        assert!(!hv.is_sa_pending(vfg));
        assert_eq!(hv.stats().sa_acked, 1);
        assert!(acts.iter().any(|a| matches!(a, HvAction::VcpuStarted { .. })));
    }

    #[test]
    fn ack_with_block_parks_the_vcpu() {
        let (mut hv, vfg, vbg) = trigger_sa();
        hv.sched_op(vfg, SchedOp::Block, t(61));
        hv.check_invariants();
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(vbg));
        assert_eq!(hv.vcpu_state(vfg), RunState::Blocked);
        assert!(!hv.is_sa_pending(vfg));
    }

    #[test]
    fn no_duplicate_sa_while_pending() {
        let (mut hv, _vfg, _) = trigger_sa();
        assert_eq!(hv.stats().sa_sent, 1);
        // Another scheduling trigger while pending must not re-send.
        let gen = hv.dispatch_info(PcpuId(0)).unwrap().generation;
        let acts = hv.slice_expired(PcpuId(0), gen, t(90));
        assert!(acts.is_empty());
        assert_eq!(hv.stats().sa_sent, 1);
        hv.check_invariants();
    }

    #[test]
    fn timeout_forces_the_preemption() {
        let (mut hv, vfg, vbg) = trigger_sa();
        let generation = hv.sa_generation(vfg);
        let acts = hv.sa_timeout(vfg, generation, t(61));
        hv.check_invariants();
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(vbg));
        assert_eq!(hv.vcpu_state(vfg), RunState::Runnable);
        assert_eq!(hv.stats().sa_timeouts, 1);
        assert!(!acts.is_empty());
    }

    #[test]
    fn stale_timeout_is_ignored_after_ack() {
        let (mut hv, vfg, _) = trigger_sa();
        let generation = hv.sa_generation(vfg);
        hv.sched_op(vfg, SchedOp::Yield, t(61));
        let acts = hv.sa_timeout(vfg, generation, t(62));
        assert!(acts.is_empty());
        assert_eq!(hv.stats().sa_timeouts, 0);
        hv.check_invariants();
    }

    #[test]
    fn sa_not_sent_to_non_capable_vm() {
        let mut hv = sa_hv();
        hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let gen = hv.dispatch_info(PcpuId(0)).unwrap().generation;
        let acts = hv.slice_expired(PcpuId(0), gen, t(30));
        assert!(!acts
            .iter()
            .any(|a| matches!(a, HvAction::DeliverVirq { virq: Virq::SaUpcall, .. })));
        assert_eq!(hv.stats().sa_sent, 0);
        // The preemption happened immediately instead.
        assert!(acts.iter().any(|a| matches!(a, HvAction::VcpuStarted { .. })));
    }

    #[test]
    fn voluntary_block_is_never_an_sa() {
        let mut hv = sa_hv();
        let fg = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)).sa_capable(true));
        hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let vfg = VcpuRef::new(fg, 0);
        if hv.pcpu_current(PcpuId(0)) != Some(vfg) {
            let gen = hv.dispatch_info(PcpuId(0)).unwrap().generation;
            hv.slice_expired(PcpuId(0), gen, t(30));
        }
        hv.sched_op(vfg, SchedOp::Block, t(35));
        assert_eq!(hv.stats().sa_sent, 0, "blocking is voluntary: no SA");
        hv.check_invariants();
    }

    #[test]
    fn wake_boost_preemption_also_goes_through_sa() {
        let mut hv = sa_hv();
        let fg = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)).sa_capable(true));
        let io = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
        hv.start(t(0));
        let vfg = VcpuRef::new(fg, 0);
        let vio = VcpuRef::new(io, 0);
        // Get vio blocked and vfg running.
        if hv.pcpu_current(PcpuId(0)) == Some(vfg) {
            // A voluntary yield hands the pCPU to vio without triggering SA.
            hv.sched_op(vfg, SchedOp::Yield, t(1));
        }
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(vio));
        hv.sched_op(vio, SchedOp::Block, t(2));
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(vfg));
        // vio wakes with BOOST: would preempt vfg; SA must fire first.
        let acts = hv.vcpu_wake(vio, t(40));
        assert!(acts
            .iter()
            .any(|a| matches!(a, HvAction::DeliverVirq { virq: Virq::SaUpcall, .. })));
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(vfg), "preemption deferred");
        // Guest acks; the boosted waker takes over.
        hv.sched_op(vfg, SchedOp::Yield, t(40) + SimTime::from_micros(25));
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(vio));
        hv.check_invariants();
    }

    #[test]
    fn timeout_is_idempotent() {
        // Regression: a second timeout for the same round (duplicate or
        // late-queued event) must be a no-op, not a double force.
        let (mut hv, vfg, vbg) = trigger_sa();
        let generation = hv.sa_generation(vfg);
        hv.sa_timeout(vfg, generation, t(61));
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(vbg));
        let acts = hv.sa_timeout(vfg, generation, t(62));
        assert!(acts.is_empty());
        assert_eq!(hv.stats().sa_timeouts, 1);
        assert_eq!(hv.stats().preemptions, 1);
        hv.check_invariants();
    }

    #[test]
    fn stale_timeout_after_rehome_leaves_new_home_alone() {
        // Regression for the wrong-pCPU force: the guest acks with Block,
        // the vCPU later wakes and is re-dispatched (possibly on another
        // pCPU under migration), and only then does the old round's timeout
        // event pop. It must not disturb the new dispatch.
        let (mut hv, vfg, vbg) = trigger_sa();
        let generation = hv.sa_generation(vfg);
        hv.sched_op(vfg, SchedOp::Block, t(61));
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(vbg));
        // vfg wakes with BOOST; a fresh SA round starts against vbg, which
        // acks, handing the pCPU to vfg.
        hv.vcpu_wake(vfg, t(70));
        if hv.is_sa_pending(vbg) {
            hv.sched_op(vbg, SchedOp::Yield, t(70) + SimTime::from_micros(25));
        }
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(vfg));
        let info_before = hv.dispatch_info(PcpuId(0)).unwrap();
        // The stale timeout from the acked round fires now.
        let acts = hv.sa_timeout(vfg, generation, t(71));
        assert!(acts.is_empty(), "stale timeout must not touch the pCPU");
        assert_eq!(hv.stats().sa_timeouts, 0);
        assert_eq!(hv.dispatch_info(PcpuId(0)).unwrap(), info_before);
        hv.check_invariants();
    }

    #[test]
    fn timeout_recovers_a_freeze_without_a_current() {
        // Regression: if an interleaving ever deschedules the waited-on
        // vCPU while its pCPU is frozen (the state the old
        // `debug_assert_eq!(pcpus[home].sa_wait, Some(vcpu))` assumed away),
        // the timeout must still release the freeze and reschedule the
        // pCPU instead of panicking or leaving it frozen forever. The state
        // is constructed directly — no public-API sequence produces it
        // today, which is exactly why the recovery path needs pinning.
        let (mut hv, vfg, _vbg) = trigger_sa();
        let generation = hv.sa_generation(vfg);
        // Simulate the rogue deschedule: vfg off the pCPU, queued runnable,
        // freeze left behind.
        hv.pcpus[0].current = None;
        hv.vc_mut(vfg).clock.transition(RunState::Runnable, t(60));
        hv.enqueue(vfg, PcpuId(0));
        assert_eq!(hv.pcpu_sa_wait(PcpuId(0)), Some(vfg));

        let acts = hv.sa_timeout(vfg, generation, t(61));
        assert_eq!(hv.pcpu_sa_wait(PcpuId(0)), None, "freeze released");
        assert!(!hv.is_sa_pending(vfg));
        assert!(
            hv.pcpu_current(PcpuId(0)).is_some(),
            "the unfrozen pCPU must schedule again, got {acts:?}"
        );
        hv.check_invariants();
    }

    #[test]
    fn ack_recovers_a_freeze_without_a_current() {
        // Same constructed race as above, resolved through the ack path:
        // `sched_op` must release the freeze and kick the pCPU even though
        // the acknowledging vCPU is no longer current there (the spurious
        // guard used to swallow the unfreeze).
        let (mut hv, vfg, _vbg) = trigger_sa();
        hv.pcpus[0].current = None;
        hv.vc_mut(vfg).clock.transition(RunState::Runnable, t(60));
        hv.enqueue(vfg, PcpuId(0));
        assert_eq!(hv.pcpu_sa_wait(PcpuId(0)), Some(vfg));

        hv.sched_op(vfg, SchedOp::Yield, t(61));
        assert_eq!(hv.pcpu_sa_wait(PcpuId(0)), None, "freeze released");
        assert!(!hv.is_sa_pending(vfg));
        assert_eq!(hv.stats().sa_acked, 1);
        assert!(hv.pcpu_current(PcpuId(0)).is_some(), "pCPU rescheduled");
        hv.check_invariants();
    }

    #[test]
    fn sa_delay_is_microseconds_not_slices() {
        // End-to-end: the deferred preemption completes as soon as the guest
        // acks (25 µs later), not a slice later.
        let (mut hv, vfg, vbg) = trigger_sa();
        let ack_at = t(60) + SimTime::from_micros(25);
        hv.sched_op(vfg, SchedOp::Yield, ack_at);
        assert_eq!(hv.pcpu_current(PcpuId(0)), Some(vbg));
        let info = hv.dispatch_info(PcpuId(0)).unwrap();
        assert_eq!(info.since, ack_at);
    }
}
