//! Per-vCPU scheduler state.

use crate::ids::{PcpuId, VcpuRef};
use crate::runstate::{RunState, RunstateClock};
use irs_sim::SimTime;
use std::fmt;

/// Credit-scheduler run priority, ordered best-first.
///
/// `Boost` is granted to vCPUs waking from the blocked state (latency
/// sensitivity heuristic), `Under` means the vCPU still has credits, `Over`
/// means its credits are exhausted. Lower discriminant = scheduled first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CreditPriority {
    /// Recently woken from blocked; preempts `Under`/`Over` vCPUs.
    Boost,
    /// Has remaining credits.
    Under,
    /// Credits exhausted; runs only when nothing better exists.
    Over,
}

impl fmt::Display for CreditPriority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CreditPriority::Boost => "BOOST",
            CreditPriority::Under => "UNDER",
            CreditPriority::Over => "OVER",
        };
        f.write_str(s)
    }
}

/// Scheduler bookkeeping for one virtual CPU.
#[derive(Debug, Clone)]
pub(crate) struct Vcpu {
    /// Identity.
    pub vref: VcpuRef,
    /// Hard affinity: `Some(p)` pins the vCPU to pCPU `p` forever.
    pub affinity: Option<PcpuId>,
    /// The pCPU whose runqueue currently owns this vCPU.
    pub home: PcpuId,
    /// Runstate clock (running/runnable/blocked/offline residencies).
    pub clock: RunstateClock,
    /// Remaining credits (scaled: 100 burned per 10 ms tick).
    pub credits: i64,
    /// Current scheduling priority.
    pub priority: CreditPriority,
    /// An SA notification has been sent and not yet acknowledged.
    pub sa_pending: bool,
    /// Generation counter for SA rounds (guards stale timeout events).
    pub sa_gen: u64,
    /// Relaxed-co parked this vCPU for the current accounting period.
    pub parked: bool,
    /// The vCPU yielded; deprioritize once within its priority class.
    pub yield_bias: bool,
    /// FIFO arrival order within the runqueue (set when enqueued).
    pub queued_at: u64,
    /// Cumulative running time already charged by the credit burner.
    pub burn_baseline: SimTime,
    /// Progress baseline for relaxed-co skew measurement (reset whenever a
    /// park/boost round triggers, so skew is measured per round).
    pub co_baseline: SimTime,
    /// When this vCPU last received BOOST (rate-limits boost storms).
    pub last_boost: Option<SimTime>,
    /// Per-vCPU event counters, kept inline so the dispatch/preempt hot
    /// paths bump them on the cache lines they already touch (previously a
    /// `HashMap<VcpuRef, VcpuStats>` hashed on every context switch).
    pub stats: crate::stats::VcpuStats,
}

impl Vcpu {
    pub(crate) fn new(vref: VcpuRef, affinity: Option<PcpuId>, home: PcpuId) -> Self {
        Vcpu {
            vref,
            affinity,
            home,
            clock: RunstateClock::new(RunState::Runnable, SimTime::ZERO),
            credits: 0,
            priority: CreditPriority::Under,
            sa_pending: false,
            sa_gen: 0,
            parked: false,
            yield_bias: false,
            queued_at: 0,
            burn_baseline: SimTime::ZERO,
            co_baseline: SimTime::ZERO,
            last_boost: None,
            stats: crate::stats::VcpuStats::default(),
        }
    }

    /// Current runstate.
    pub(crate) fn state(&self) -> RunState {
        self.clock.state()
    }

    /// Recomputes `Under`/`Over` from the credit balance, preserving `Boost`.
    pub(crate) fn refresh_priority(&mut self) {
        if self.priority == CreditPriority::Boost {
            return;
        }
        self.priority = if self.credits > 0 {
            CreditPriority::Under
        } else {
            CreditPriority::Over
        };
    }

    /// Drops a BOOST back to the credit-derived priority.
    pub(crate) fn unboost(&mut self) {
        if self.priority == CreditPriority::Boost {
            self.priority = if self.credits > 0 {
                CreditPriority::Under
            } else {
                CreditPriority::Over
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VmId;

    fn mk() -> Vcpu {
        Vcpu::new(VcpuRef::new(VmId(0), 0), None, PcpuId(0))
    }

    #[test]
    fn priority_order_is_boost_under_over() {
        assert!(CreditPriority::Boost < CreditPriority::Under);
        assert!(CreditPriority::Under < CreditPriority::Over);
    }

    #[test]
    fn refresh_priority_tracks_credits() {
        let mut v = mk();
        v.credits = 50;
        v.refresh_priority();
        assert_eq!(v.priority, CreditPriority::Under);
        v.credits = -10;
        v.refresh_priority();
        assert_eq!(v.priority, CreditPriority::Over);
        v.credits = 0;
        v.refresh_priority();
        assert_eq!(v.priority, CreditPriority::Over);
    }

    #[test]
    fn refresh_preserves_boost_but_unboost_clears_it() {
        let mut v = mk();
        v.credits = 50;
        v.priority = CreditPriority::Boost;
        v.refresh_priority();
        assert_eq!(v.priority, CreditPriority::Boost);
        v.unboost();
        assert_eq!(v.priority, CreditPriority::Under);
        v.credits = -1;
        v.priority = CreditPriority::Boost;
        v.unboost();
        assert_eq!(v.priority, CreditPriority::Over);
    }

    #[test]
    fn new_vcpu_starts_runnable() {
        let v = mk();
        assert_eq!(v.state(), RunState::Runnable);
        assert!(!v.sa_pending);
        assert!(!v.parked);
    }
}
