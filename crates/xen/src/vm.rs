//! Virtual machine (domain) descriptors.

use crate::ids::PcpuId;

/// Specification of a VM to create, builder-style.
///
/// # Example
///
/// ```
/// use irs_xen::{PcpuId, VmSpec};
///
/// // A 4-vCPU VM, each vCPU pinned to its own pCPU, SA-capable guest.
/// let spec = VmSpec::new(4)
///     .pin(vec![PcpuId(0), PcpuId(1), PcpuId(2), PcpuId(3)])
///     .sa_capable(true);
/// assert_eq!(spec.n_vcpus, 4);
/// ```
#[derive(Debug, Clone)]
pub struct VmSpec {
    /// Number of virtual CPUs.
    pub n_vcpus: usize,
    /// Credit-scheduler weight (Xen default 256).
    pub weight: u64,
    /// Optional hard affinity, one pCPU per vCPU.
    pub pinning: Option<Vec<PcpuId>>,
    /// Whether the guest kernel implements the `VIRQ_SA_UPCALL` handler.
    ///
    /// The paper's §5.4 background VMs run vanilla kernels: the hypervisor
    /// may be SA-enabled globally, but a VM that is not `sa_capable` never
    /// receives (and would ignore) SA notifications.
    pub sa_capable: bool,
}

impl VmSpec {
    /// A VM with `n_vcpus` vCPUs, default weight, unpinned, vanilla guest.
    pub fn new(n_vcpus: usize) -> Self {
        VmSpec {
            n_vcpus,
            weight: 256,
            pinning: None,
            sa_capable: false,
        }
    }

    /// Sets the credit-scheduler weight.
    pub fn weight(mut self, weight: u64) -> Self {
        self.weight = weight;
        self
    }

    /// Pins vCPU `i` to `pcpus[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `pcpus.len() != n_vcpus`.
    pub fn pin(mut self, pcpus: Vec<PcpuId>) -> Self {
        assert_eq!(
            pcpus.len(),
            self.n_vcpus,
            "pinning must name exactly one pCPU per vCPU"
        );
        self.pinning = Some(pcpus);
        self
    }

    /// Pins every vCPU to the same pCPU (used by single-vCPU interferers and
    /// the consolidation experiments of Fig 11).
    pub fn pin_all(mut self, pcpu: PcpuId) -> Self {
        self.pinning = Some(vec![pcpu; self.n_vcpus]);
        self
    }

    /// Marks the guest as implementing the SA receiver.
    pub fn sa_capable(mut self, yes: bool) -> Self {
        self.sa_capable = yes;
        self
    }
}

/// Internal per-VM record.
#[derive(Debug, Clone)]
pub(crate) struct Vm {
    pub weight: u64,
    pub sa_capable: bool,
    pub n_vcpus: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let s = VmSpec::new(2);
        assert_eq!(s.weight, 256);
        assert!(s.pinning.is_none());
        assert!(!s.sa_capable);
    }

    #[test]
    fn pin_all_replicates() {
        let s = VmSpec::new(3).pin_all(PcpuId(7));
        assert_eq!(s.pinning.unwrap(), vec![PcpuId(7); 3]);
    }

    #[test]
    #[should_panic(expected = "one pCPU per vCPU")]
    fn pin_length_mismatch_panics() {
        let _ = VmSpec::new(2).pin(vec![PcpuId(0)]);
    }
}
