//! vCPU runstates and cumulative runstate accounting.
//!
//! Xen exposes, per vCPU, the cumulative time spent in each of four
//! runstates through `VCPUOP_get_runstate_info`. Two pieces of the paper
//! hinge on this surface:
//!
//! * **Steal time** (time `runnable` — wanting to run but preempted) feeds
//!   the Linux guest's `rt_avg` load metric, which the IRS migrator uses to
//!   rank sibling vCPUs (Algorithm 2, line 12-17).
//! * The migrator "calls down to the hypervisor to check the actual vCPU
//!   state" (Algorithm 2, line 7) because preempted vCPUs still look
//!   *online* to the guest.

use irs_sim::SimTime;
use std::fmt;

/// Execution state of a vCPU, mirroring Xen's `RUNSTATE_*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunState {
    /// Currently executing on a pCPU.
    Running,
    /// Wants to run but has been preempted (this is steal time).
    Runnable,
    /// Voluntarily idle or waiting for an event (no work to do).
    Blocked,
    /// Not part of scheduling (never dispatched).
    Offline,
}

impl RunState {
    /// True if the vCPU wants CPU time (running or waiting for it).
    pub fn wants_cpu(self) -> bool {
        matches!(self, RunState::Running | RunState::Runnable)
    }
}

impl fmt::Display for RunState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RunState::Running => "running",
            RunState::Runnable => "runnable",
            RunState::Blocked => "blocked",
            RunState::Offline => "offline",
        };
        f.write_str(s)
    }
}

/// Cumulative per-state residency clock for one vCPU.
///
/// The accounting is *transition-driven*: [`RunstateClock::transition`]
/// charges the elapsed interval to the outgoing state. Queries at an
/// arbitrary instant use [`RunstateClock::info`], which includes the
/// in-progress interval.
#[derive(Debug, Clone)]
pub struct RunstateClock {
    state: RunState,
    since: SimTime,
    running: SimTime,
    runnable: SimTime,
    blocked: SimTime,
    offline: SimTime,
}

impl RunstateClock {
    /// Creates a clock starting in `state` at instant `now`.
    pub fn new(state: RunState, now: SimTime) -> Self {
        RunstateClock {
            state,
            since: now,
            running: SimTime::ZERO,
            runnable: SimTime::ZERO,
            blocked: SimTime::ZERO,
            offline: SimTime::ZERO,
        }
    }

    /// Current state.
    pub fn state(&self) -> RunState {
        self.state
    }

    /// Instant of the last transition.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn since(&self) -> SimTime {
        self.since
    }

    /// Moves to `new` at instant `now`, charging the elapsed interval to the
    /// outgoing state. Transitioning to the current state is a no-op for the
    /// state but still folds in elapsed time.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `now` precedes the last transition — the
    /// simulation must never move backwards.
    pub fn transition(&mut self, new: RunState, now: SimTime) {
        debug_assert!(
            now >= self.since,
            "runstate transition to {new} moves time backwards: {now:?} < {:?}",
            self.since
        );
        let elapsed = now.saturating_sub(self.since);
        self.charge(elapsed);
        self.state = new;
        self.since = now;
    }

    fn charge(&mut self, elapsed: SimTime) {
        match self.state {
            RunState::Running => self.running += elapsed,
            RunState::Runnable => self.runnable += elapsed,
            RunState::Blocked => self.blocked += elapsed,
            RunState::Offline => self.offline += elapsed,
        }
    }

    /// Snapshot of cumulative residencies at instant `now`, including the
    /// open interval in the current state.
    pub fn info(&self, now: SimTime) -> RunstateInfo {
        let open = now.saturating_sub(self.since);
        let mut info = RunstateInfo {
            state: self.state,
            running: self.running,
            runnable: self.runnable,
            blocked: self.blocked,
            offline: self.offline,
        };
        match self.state {
            RunState::Running => info.running += open,
            RunState::Runnable => info.runnable += open,
            RunState::Blocked => info.blocked += open,
            RunState::Offline => info.offline += open,
        }
        info
    }
}

/// Snapshot returned by the `VCPUOP_get_runstate_info` hypercall surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunstateInfo {
    /// State at the time of the query.
    pub state: RunState,
    /// Cumulative time spent executing.
    pub running: SimTime,
    /// Cumulative steal time (runnable but preempted).
    pub runnable: SimTime,
    /// Cumulative voluntarily-idle time.
    pub blocked: SimTime,
    /// Cumulative offline time.
    pub offline: SimTime,
}

impl RunstateInfo {
    /// Total accounted time.
    pub fn total(&self) -> SimTime {
        self.running + self.runnable + self.blocked + self.offline
    }

    /// Fraction of accounted time that was stolen (runnable), in `[0, 1]`.
    pub fn steal_fraction(&self) -> f64 {
        self.runnable.ratio(self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn transitions_charge_outgoing_state() {
        let mut c = RunstateClock::new(RunState::Running, t(0));
        c.transition(RunState::Runnable, t(10));
        c.transition(RunState::Running, t(40));
        c.transition(RunState::Blocked, t(50));
        let info = c.info(t(60));
        assert_eq!(info.running, t(20));
        assert_eq!(info.runnable, t(30));
        assert_eq!(info.blocked, t(10));
        assert_eq!(info.offline, SimTime::ZERO);
        assert_eq!(info.state, RunState::Blocked);
    }

    #[test]
    fn info_includes_open_interval() {
        let c = RunstateClock::new(RunState::Runnable, t(5));
        let info = c.info(t(30));
        assert_eq!(info.runnable, t(25));
        assert_eq!(info.total(), t(25));
    }

    #[test]
    fn self_transition_folds_elapsed_time() {
        let mut c = RunstateClock::new(RunState::Running, t(0));
        c.transition(RunState::Running, t(15));
        assert_eq!(c.info(t(15)).running, t(15));
        assert_eq!(c.since(), t(15));
    }

    #[test]
    fn steal_fraction_is_runnable_share() {
        let mut c = RunstateClock::new(RunState::Running, t(0));
        c.transition(RunState::Runnable, t(30));
        c.transition(RunState::Running, t(60));
        let info = c.info(t(60));
        assert!((info.steal_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wants_cpu_classification() {
        assert!(RunState::Running.wants_cpu());
        assert!(RunState::Runnable.wants_cpu());
        assert!(!RunState::Blocked.wants_cpu());
        assert!(!RunState::Offline.wants_cpu());
    }

    #[test]
    fn zero_total_has_zero_steal() {
        let c = RunstateClock::new(RunState::Blocked, t(0));
        assert_eq!(c.info(t(0)).steal_fraction(), 0.0);
    }
}
