//! Physical CPU state: the run queue and the current dispatch.

use crate::ids::{PcpuId, VcpuRef};
use irs_sim::SimTime;
use std::collections::VecDeque;

/// Per-pCPU scheduler state.
#[derive(Debug, Clone)]
pub(crate) struct Pcpu {
    pub id: PcpuId,
    /// The vCPU currently executing, if any.
    pub current: Option<VcpuRef>,
    /// Runnable vCPUs waiting on this pCPU (FIFO arrival order; priority is
    /// looked up on the vCPU itself at pick time).
    pub runq: VecDeque<VcpuRef>,
    /// When the current dispatch began (slice baseline).
    pub dispatch_start: SimTime,
    /// Effective slice length of the current dispatch (base ± jitter).
    pub cur_slice: SimTime,
    /// Incremented on every dispatch / slice refresh; invalidates stale
    /// slice-expiry timers held by the embedder.
    pub dispatch_gen: u64,
    /// A preemption is deferred on this pCPU awaiting an SA acknowledgement
    /// from the named (still running) vCPU.
    pub sa_wait: Option<VcpuRef>,
}

impl Pcpu {
    pub(crate) fn new(id: PcpuId) -> Self {
        Pcpu {
            id,
            current: None,
            runq: VecDeque::new(),
            dispatch_start: SimTime::ZERO,
            cur_slice: SimTime::ZERO,
            dispatch_gen: 0,
            sa_wait: None,
        }
    }

    /// Removes `vcpu` from the runqueue if queued; returns whether it was.
    pub(crate) fn dequeue(&mut self, vcpu: VcpuRef) -> bool {
        if let Some(pos) = self.runq.iter().position(|&v| v == vcpu) {
            self.runq.remove(pos);
            true
        } else {
            false
        }
    }

    /// Number of vCPUs that want CPU here (current + queued).
    pub(crate) fn load(&self) -> usize {
        self.runq.len() + usize::from(self.current.is_some())
    }
}

/// Public snapshot of what a pCPU is running, used by the embedding
/// simulation to (re)arm slice-expiry timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchInfo {
    /// The running vCPU.
    pub vcpu: VcpuRef,
    /// When this dispatch (or slice refresh) began.
    pub since: SimTime,
    /// Effective slice length of this dispatch (expiry = `since + slice`).
    pub slice: SimTime,
    /// Generation token; a timer armed under an older generation is stale.
    pub generation: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VmId;

    fn v(i: usize) -> VcpuRef {
        VcpuRef::new(VmId(0), i)
    }

    #[test]
    fn dequeue_removes_only_target() {
        let mut p = Pcpu::new(PcpuId(0));
        p.runq.push_back(v(0));
        p.runq.push_back(v(1));
        p.runq.push_back(v(2));
        assert!(p.dequeue(v(1)));
        assert!(!p.dequeue(v(1)));
        assert_eq!(p.runq, VecDeque::from(vec![v(0), v(2)]));
    }

    #[test]
    fn load_counts_current_and_queued() {
        let mut p = Pcpu::new(PcpuId(0));
        assert_eq!(p.load(), 0);
        p.runq.push_back(v(0));
        assert_eq!(p.load(), 1);
        p.current = Some(v(1));
        assert_eq!(p.load(), 2);
    }
}
