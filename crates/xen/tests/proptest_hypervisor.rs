//! Property tests: the hypervisor's invariants survive arbitrary
//! interleavings of scheduling operations.
//!
//! SA timeouts are exercised three ways: `SaTimeoutLive` draws its target
//! and generation from the *live pending rounds*, so it always passes the
//! staleness guard and reaches the force-preemption branch; `SaTimeoutStale`
//! replays a previously resolved `(vcpu, generation)` pair, modelling the
//! late-queued timeout event of an already-acked round; `SaTimeoutAny`
//! keeps the original arbitrary-target probing.

use irs_sim::SimTime;
use irs_xen::{Hypervisor, PcpuId, RunState, SaConfig, SchedOp, VcpuRef, VmId, VmSpec, XenConfig};
use proptest::prelude::*;

/// One randomly chosen external stimulus.
#[derive(Debug, Clone, Copy)]
enum Op {
    Tick,
    Accounting,
    SliceExpiry(u8),
    Wake(u8, u8),
    Block(u8, u8),
    Yield(u8, u8),
    SaAckYield(u8, u8),
    SaAckBlock(u8, u8),
    /// Timeout for a live pending round, selected by index: always fresh,
    /// always able to reach the force-preemption branch.
    SaTimeoutLive(u8),
    /// Replay of a resolved round's timeout: always stale, must be a no-op.
    SaTimeoutStale(u8),
    /// Arbitrary-target timeout at the vCPU's current generation.
    SaTimeoutAny(u8, u8),
    PleExit(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Tick),
        Just(Op::Accounting),
        (0u8..4).prop_map(Op::SliceExpiry),
        (0u8..3, 0u8..4).prop_map(|(a, b)| Op::Wake(a, b)),
        (0u8..3, 0u8..4).prop_map(|(a, b)| Op::Block(a, b)),
        (0u8..3, 0u8..4).prop_map(|(a, b)| Op::Yield(a, b)),
        (0u8..3, 0u8..4).prop_map(|(a, b)| Op::SaAckYield(a, b)),
        (0u8..3, 0u8..4).prop_map(|(a, b)| Op::SaAckBlock(a, b)),
        any::<u8>().prop_map(Op::SaTimeoutLive),
        any::<u8>().prop_map(Op::SaTimeoutStale),
        (0u8..3, 0u8..4).prop_map(|(a, b)| Op::SaTimeoutAny(a, b)),
        (0u8..3, 0u8..4).prop_map(|(a, b)| Op::PleExit(a, b)),
    ]
}

fn build(pinned: bool, sa: bool) -> Hypervisor {
    let cfg = XenConfig {
        sa: if sa { Some(SaConfig::default()) } else { None },
        ple: Some(irs_xen::PleConfig::default()),
        migration: !pinned,
        ..XenConfig::default()
    };
    let mut hv = Hypervisor::new(cfg, 4);
    for vm in 0..3 {
        let mut spec = VmSpec::new(4).sa_capable(sa && vm == 0);
        if pinned {
            spec = spec.pin((0..4).map(PcpuId).collect());
        }
        hv.create_vm(spec);
    }
    hv.start(SimTime::ZERO);
    hv
}

/// Every `(vcpu, generation)` SA round currently pending.
fn live_rounds(hv: &Hypervisor) -> Vec<(VcpuRef, u64)> {
    hv.all_vcpus()
        .collect::<Vec<_>>()
        .into_iter()
        .filter(|&v| hv.is_sa_pending(v))
        .map(|v| (v, hv.sa_generation(v)))
        .collect()
}

fn apply(hv: &mut Hypervisor, op: Op, now: SimTime, stale: &[(VcpuRef, u64)]) {
    let v = |a: u8, b: u8| VcpuRef::new(VmId(a as usize), b as usize);
    match op {
        Op::Tick => {
            hv.tick(now);
        }
        Op::Accounting => {
            hv.accounting(now);
        }
        Op::SliceExpiry(p) => {
            if let Some(info) = hv.dispatch_info(PcpuId(p as usize)) {
                hv.slice_expired(PcpuId(p as usize), info.generation, now);
            }
        }
        Op::Wake(a, b) => {
            hv.vcpu_wake(v(a, b), now);
        }
        Op::Block(a, b) => {
            hv.sched_op(v(a, b), SchedOp::Block, now);
        }
        Op::Yield(a, b) => {
            hv.sched_op(v(a, b), SchedOp::Yield, now);
        }
        Op::SaAckYield(a, b) => {
            hv.sched_op(v(a, b), SchedOp::Yield, now);
        }
        Op::SaAckBlock(a, b) => {
            hv.sched_op(v(a, b), SchedOp::Block, now);
        }
        Op::SaTimeoutLive(i) => {
            let live = live_rounds(hv);
            if !live.is_empty() {
                let (target, gen) = live[i as usize % live.len()];
                hv.sa_timeout(target, gen, now);
            }
        }
        Op::SaTimeoutStale(i) => {
            if !stale.is_empty() {
                let (target, gen) = stale[i as usize % stale.len()];
                hv.sa_timeout(target, gen, now);
            }
        }
        Op::SaTimeoutAny(a, b) => {
            let gen = hv.sa_generation(v(a, b));
            hv.sa_timeout(v(a, b), gen, now);
        }
        Op::PleExit(a, b) => {
            hv.ple_exit(v(a, b), now);
        }
    }
}

/// Applies `op` and records every round it resolved into `stale`, so later
/// `SaTimeoutStale` ops can replay genuinely dead `(vcpu, generation)`
/// pairs — the shape a late-queued timeout event has in the full system.
fn apply_tracked(hv: &mut Hypervisor, op: Op, now: SimTime, stale: &mut Vec<(VcpuRef, u64)>) {
    let before = live_rounds(hv);
    apply(hv, op, now, stale);
    for (v, gen) in before {
        if (!hv.is_sa_pending(v) || hv.sa_generation(v) != gen) && !stale.contains(&(v, gen)) {
            stale.push((v, gen));
        }
    }
    let excess = stale.len().saturating_sub(64);
    if excess > 0 {
        stale.drain(..excess);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants hold after every operation, pinned configuration.
    #[test]
    fn invariants_pinned(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut hv = build(true, true);
        let mut stale = Vec::new();
        let mut now = SimTime::ZERO;
        for op in ops {
            now += SimTime::from_micros(137);
            apply_tracked(&mut hv, op, now, &mut stale);
            hv.check_invariants();
        }
    }

    /// Invariants hold with migration (stealing + placement) enabled.
    #[test]
    fn invariants_unpinned(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut hv = build(false, true);
        let mut stale = Vec::new();
        let mut now = SimTime::ZERO;
        for op in ops {
            now += SimTime::from_micros(211);
            apply_tracked(&mut hv, op, now, &mut stale);
            hv.check_invariants();
        }
    }

    /// Credits stay within [floor, cap] no matter the interleaving.
    #[test]
    fn credits_bounded(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let mut hv = build(true, false);
        let mut stale = Vec::new();
        let mut now = SimTime::ZERO;
        for op in ops {
            now += SimTime::from_micros(401);
            apply_tracked(&mut hv, op, now, &mut stale);
            for v in hv.all_vcpus().collect::<Vec<_>>() {
                let c = hv.vcpu_credits(v);
                prop_assert!((-300..=300).contains(&c), "{v} credits {c}");
            }
        }
    }

    /// Runstate accounting is conservative: per-vCPU residencies sum to
    /// elapsed time, and running time never exceeds wall time.
    #[test]
    fn runstate_accounting_conserves_time(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let mut hv = build(true, true);
        let mut stale = Vec::new();
        let mut now = SimTime::ZERO;
        for op in ops {
            now += SimTime::from_micros(733);
            apply_tracked(&mut hv, op, now, &mut stale);
        }
        for v in hv.all_vcpus().collect::<Vec<_>>() {
            let info = hv.runstate(v, now);
            prop_assert_eq!(info.total(), now, "{} total mismatch", v);
            prop_assert!(info.running <= now);
        }
        // Physical conservation: total running time across vCPUs can never
        // exceed pCPUs × elapsed.
        let total_run: u64 = hv
            .all_vcpus()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|v| hv.runstate(v, now).running.as_nanos())
            .sum();
        prop_assert!(total_run <= 4 * now.as_nanos());
    }

    /// No pCPU idles while it has runnable (unparked) work queued.
    #[test]
    fn no_idle_with_queued_work(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut hv = build(true, false);
        let mut stale = Vec::new();
        let mut now = SimTime::ZERO;
        for op in ops {
            now += SimTime::from_micros(97);
            apply_tracked(&mut hv, op, now, &mut stale);
            for p in 0..4usize {
                let idle = hv.pcpu_current(PcpuId(p)).is_none();
                if idle {
                    // every vcpu homed+runnable on p would be a violation
                    let stranded = hv
                        .all_vcpus()
                        .collect::<Vec<_>>()
                        .into_iter()
                        .filter(|&v| {
                            hv.vcpu_home(v) == PcpuId(p)
                                && hv.vcpu_state(v) == RunState::Runnable
                        })
                        .count();
                    prop_assert_eq!(stranded, 0, "pcpu{} idle with {} runnable", p, stranded);
                }
            }
        }
    }

    /// Every pending round is resolvable through its completion-limit
    /// timeout: after an arbitrary interleaving, delivering the live
    /// timeout for each still-pending round releases every frozen pCPU,
    /// clears every pending flag, and leaves the machine consistent.
    #[test]
    fn pending_rounds_always_resolvable(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut hv = build(false, true);
        let mut stale = Vec::new();
        let mut now = SimTime::ZERO;
        for op in ops {
            now += SimTime::from_micros(173);
            apply_tracked(&mut hv, op, now, &mut stale);
        }
        now += SimTime::from_micros(500);
        for (v, gen) in live_rounds(&hv) {
            hv.sa_timeout(v, gen, now);
        }
        hv.check_invariants();
        for p in 0..4usize {
            prop_assert!(hv.pcpu_sa_wait(PcpuId(p)).is_none(), "pcpu{} still frozen", p);
        }
        for v in hv.all_vcpus().collect::<Vec<_>>() {
            prop_assert!(!hv.is_sa_pending(v), "{} round never resolved", v);
        }
    }
}
