//! Property tests: the hypervisor's invariants survive arbitrary
//! interleavings of scheduling operations.

use irs_sim::SimTime;
use irs_xen::{Hypervisor, PcpuId, RunState, SaConfig, SchedOp, VcpuRef, VmId, VmSpec, XenConfig};
use proptest::prelude::*;

/// One randomly chosen external stimulus.
#[derive(Debug, Clone, Copy)]
enum Op {
    Tick,
    Accounting,
    SliceExpiry(u8),
    Wake(u8, u8),
    Block(u8, u8),
    Yield(u8, u8),
    SaAckYield(u8, u8),
    SaAckBlock(u8, u8),
    SaTimeout(u8, u8),
    PleExit(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Tick),
        Just(Op::Accounting),
        (0u8..4).prop_map(Op::SliceExpiry),
        (0u8..3, 0u8..4).prop_map(|(a, b)| Op::Wake(a, b)),
        (0u8..3, 0u8..4).prop_map(|(a, b)| Op::Block(a, b)),
        (0u8..3, 0u8..4).prop_map(|(a, b)| Op::Yield(a, b)),
        (0u8..3, 0u8..4).prop_map(|(a, b)| Op::SaAckYield(a, b)),
        (0u8..3, 0u8..4).prop_map(|(a, b)| Op::SaAckBlock(a, b)),
        (0u8..3, 0u8..4).prop_map(|(a, b)| Op::SaTimeout(a, b)),
        (0u8..3, 0u8..4).prop_map(|(a, b)| Op::PleExit(a, b)),
    ]
}

fn build(pinned: bool, sa: bool) -> Hypervisor {
    let cfg = XenConfig {
        sa: if sa { Some(SaConfig::default()) } else { None },
        ple: Some(irs_xen::PleConfig::default()),
        migration: !pinned,
        ..XenConfig::default()
    };
    let mut hv = Hypervisor::new(cfg, 4);
    for vm in 0..3 {
        let mut spec = VmSpec::new(4).sa_capable(sa && vm == 0);
        if pinned {
            spec = spec.pin((0..4).map(PcpuId).collect());
        }
        hv.create_vm(spec);
    }
    hv.start(SimTime::ZERO);
    hv
}

fn apply(hv: &mut Hypervisor, op: Op, now: SimTime) {
    let v = |a: u8, b: u8| VcpuRef::new(VmId(a as usize), b as usize);
    match op {
        Op::Tick => {
            hv.tick(now);
        }
        Op::Accounting => {
            hv.accounting(now);
        }
        Op::SliceExpiry(p) => {
            if let Some(info) = hv.dispatch_info(PcpuId(p as usize)) {
                hv.slice_expired(PcpuId(p as usize), info.generation, now);
            }
        }
        Op::Wake(a, b) => {
            hv.vcpu_wake(v(a, b), now);
        }
        Op::Block(a, b) => {
            hv.sched_op(v(a, b), SchedOp::Block, now);
        }
        Op::Yield(a, b) => {
            hv.sched_op(v(a, b), SchedOp::Yield, now);
        }
        Op::SaAckYield(a, b) => {
            hv.sched_op(v(a, b), SchedOp::Yield, now);
        }
        Op::SaAckBlock(a, b) => {
            hv.sched_op(v(a, b), SchedOp::Block, now);
        }
        Op::SaTimeout(a, b) => {
            let gen = hv.sa_generation(v(a, b));
            hv.sa_timeout(v(a, b), gen, now);
        }
        Op::PleExit(a, b) => {
            hv.ple_exit(v(a, b), now);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants hold after every operation, pinned configuration.
    #[test]
    fn invariants_pinned(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut hv = build(true, true);
        let mut now = SimTime::ZERO;
        for op in ops {
            now += SimTime::from_micros(137);
            apply(&mut hv, op, now);
            hv.check_invariants();
        }
    }

    /// Invariants hold with migration (stealing + placement) enabled.
    #[test]
    fn invariants_unpinned(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut hv = build(false, true);
        let mut now = SimTime::ZERO;
        for op in ops {
            now += SimTime::from_micros(211);
            apply(&mut hv, op, now);
            hv.check_invariants();
        }
    }

    /// Credits stay within [floor, cap] no matter the interleaving.
    #[test]
    fn credits_bounded(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let mut hv = build(true, false);
        let mut now = SimTime::ZERO;
        for op in ops {
            now += SimTime::from_micros(401);
            apply(&mut hv, op, now);
            for v in hv.all_vcpus().collect::<Vec<_>>() {
                let c = hv.vcpu_credits(v);
                prop_assert!((-300..=300).contains(&c), "{v} credits {c}");
            }
        }
    }

    /// Runstate accounting is conservative: per-vCPU residencies sum to
    /// elapsed time, and running time never exceeds wall time.
    #[test]
    fn runstate_accounting_conserves_time(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let mut hv = build(true, true);
        let mut now = SimTime::ZERO;
        for op in ops {
            now += SimTime::from_micros(733);
            apply(&mut hv, op, now);
        }
        for v in hv.all_vcpus().collect::<Vec<_>>() {
            let info = hv.runstate(v, now);
            prop_assert_eq!(info.total(), now, "{} total mismatch", v);
            prop_assert!(info.running <= now);
        }
        // Physical conservation: total running time across vCPUs can never
        // exceed pCPUs × elapsed.
        let total_run: u64 = hv
            .all_vcpus()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|v| hv.runstate(v, now).running.as_nanos())
            .sum();
        prop_assert!(total_run <= 4 * now.as_nanos());
    }

    /// No pCPU idles while it has runnable (unparked) work queued.
    #[test]
    fn no_idle_with_queued_work(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut hv = build(true, false);
        let mut now = SimTime::ZERO;
        for op in ops {
            now += SimTime::from_micros(97);
            apply(&mut hv, op, now);
            for p in 0..4usize {
                let idle = hv.pcpu_current(PcpuId(p)).is_none();
                if idle {
                    // every vcpu homed+runnable on p would be a violation
                    let stranded = hv
                        .all_vcpus()
                        .collect::<Vec<_>>()
                        .into_iter()
                        .filter(|&v| {
                            hv.vcpu_home(v) == PcpuId(p)
                                && hv.vcpu_state(v) == RunState::Runnable
                        })
                        .count();
                    prop_assert_eq!(stranded, 0, "pcpu{} idle with {} runnable", p, stranded);
                }
            }
        }
    }
}
