//! Group synchronization with blocking or spinning waiters.

use crate::WaitMode;
use irs_guest::TaskId;

/// Outcome of arriving at a barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BarrierOutcome {
    /// Not everyone is here yet: wait in the given mode.
    MustWait(WaitMode),
    /// The caller was the last arriver: the barrier opens. Blocking waiters
    /// in the list must be woken; spinning waiters notice on their own.
    Released {
        /// The tasks that were waiting (excluding the last arriver).
        waiters: Vec<TaskId>,
        /// How they were waiting.
        mode: WaitMode,
    },
}

/// A cyclic barrier for `parties` tasks.
///
/// Barriers are the paper's worst case for LHP: one preempted participant
/// stalls *all* `parties − 1` others ("programs with group synchronization
/// suffer more from LHP and LWP, thereby benefiting more from IRS", §5.5).
#[derive(Debug, Clone)]
pub struct Barrier {
    parties: usize,
    mode: WaitMode,
    waiting: Vec<TaskId>,
    generation: u64,
}

impl Barrier {
    /// Creates a barrier for `parties` tasks waiting in `mode`.
    ///
    /// # Panics
    ///
    /// Panics if `parties == 0`.
    pub fn new(parties: usize, mode: WaitMode) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        Barrier {
            parties,
            mode,
            waiting: Vec::new(),
            generation: 0,
        }
    }

    /// `who` arrives at the barrier.
    ///
    /// # Panics
    ///
    /// Panics if `who` is already waiting at this barrier (double arrival
    /// within one generation is a workload-model bug).
    pub fn arrive(&mut self, who: TaskId) -> BarrierOutcome {
        assert!(
            !self.waiting.contains(&who),
            "{who} arrived twice in one barrier generation"
        );
        if self.waiting.len() + 1 == self.parties {
            let waiters = std::mem::take(&mut self.waiting);
            self.generation += 1;
            BarrierOutcome::Released {
                waiters,
                mode: self.mode,
            }
        } else {
            self.waiting.push(who);
            BarrierOutcome::MustWait(self.mode)
        }
    }

    /// Removes an exiting task from the wait set **and** permanently lowers
    /// the party count; opens the barrier if the departure completes it.
    pub fn depart(&mut self, who: TaskId) -> Option<BarrierOutcome> {
        assert!(self.parties > 1, "last party departing a barrier");
        self.parties -= 1;
        if let Some(pos) = self.waiting.iter().position(|&w| w == who) {
            self.waiting.remove(pos);
        }
        if !self.waiting.is_empty() && self.waiting.len() == self.parties {
            let waiters = std::mem::take(&mut self.waiting);
            self.generation += 1;
            return Some(BarrierOutcome::Released {
                waiters,
                mode: self.mode,
            });
        }
        None
    }

    /// Completed barrier episodes.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Tasks currently waiting.
    pub fn n_waiting(&self) -> usize {
        self.waiting.len()
    }

    /// Parties required to open the barrier.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Wait mode.
    pub fn mode(&self) -> WaitMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TaskId {
        TaskId(i)
    }

    #[test]
    fn last_arriver_releases_everyone() {
        let mut b = Barrier::new(3, WaitMode::Block);
        assert_eq!(b.arrive(t(0)), BarrierOutcome::MustWait(WaitMode::Block));
        assert_eq!(b.arrive(t(1)), BarrierOutcome::MustWait(WaitMode::Block));
        match b.arrive(t(2)) {
            BarrierOutcome::Released { waiters, mode } => {
                assert_eq!(waiters, vec![t(0), t(1)]);
                assert_eq!(mode, WaitMode::Block);
            }
            other => panic!("expected release, got {other:?}"),
        }
        assert_eq!(b.generation(), 1);
        assert_eq!(b.n_waiting(), 0);
    }

    #[test]
    fn barrier_is_cyclic() {
        let mut b = Barrier::new(2, WaitMode::Spin);
        b.arrive(t(0));
        b.arrive(t(1));
        assert_eq!(b.generation(), 1);
        // Next generation works identically.
        assert_eq!(b.arrive(t(1)), BarrierOutcome::MustWait(WaitMode::Spin));
        match b.arrive(t(0)) {
            BarrierOutcome::Released { waiters, .. } => assert_eq!(waiters, vec![t(1)]),
            other => panic!("expected release, got {other:?}"),
        }
        assert_eq!(b.generation(), 2);
    }

    #[test]
    fn single_party_barrier_never_waits() {
        let mut b = Barrier::new(1, WaitMode::Block);
        match b.arrive(t(0)) {
            BarrierOutcome::Released { waiters, .. } => assert!(waiters.is_empty()),
            other => panic!("expected release, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "arrived twice")]
    fn double_arrival_panics() {
        let mut b = Barrier::new(3, WaitMode::Block);
        b.arrive(t(0));
        b.arrive(t(0));
    }

    #[test]
    fn depart_shrinks_parties_and_can_release() {
        let mut b = Barrier::new(3, WaitMode::Block);
        b.arrive(t(0));
        b.arrive(t(1));
        // t2 exits instead of arriving: the barrier must open for t0, t1.
        match b.depart(t(2)) {
            Some(BarrierOutcome::Released { waiters, .. }) => {
                assert_eq!(waiters, vec![t(0), t(1)]);
            }
            other => panic!("expected release, got {other:?}"),
        }
        assert_eq!(b.parties(), 2);
    }

    #[test]
    fn depart_of_a_waiter_removes_it() {
        let mut b = Barrier::new(3, WaitMode::Block);
        b.arrive(t(0));
        assert_eq!(b.depart(t(0)), None);
        assert_eq!(b.n_waiting(), 0);
        assert_eq!(b.parties(), 2);
    }
}
