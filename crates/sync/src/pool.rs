//! Work-stealing chunk pools (user-level load balancing à la raytrace).

/// A shared pool of work chunks that threads claim one at a time.
///
/// This models the user-level work stealing that makes raytrace resilient
/// to interference in Figs 1 and 2: a thread on an interference-free vCPU
/// simply claims more chunks, so a stalled sibling delays only the chunk it
/// currently holds, not a fixed share of the program.
#[derive(Debug, Clone)]
pub struct WorkPool {
    remaining: u64,
    claimed: u64,
}

impl WorkPool {
    /// Creates a pool of `chunks` units of work.
    pub fn new(chunks: u64) -> Self {
        WorkPool {
            remaining: chunks,
            claimed: 0,
        }
    }

    /// Claims one chunk; `false` when the pool is exhausted.
    pub fn steal(&mut self) -> bool {
        if self.remaining > 0 {
            self.remaining -= 1;
            self.claimed += 1;
            true
        } else {
            false
        }
    }

    /// Chunks not yet claimed.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Chunks claimed so far.
    pub fn claimed(&self) -> u64 {
        self.claimed
    }

    /// True when all work has been claimed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steals_until_exhausted() {
        let mut p = WorkPool::new(3);
        assert!(p.steal());
        assert!(p.steal());
        assert_eq!(p.remaining(), 1);
        assert!(p.steal());
        assert!(!p.steal());
        assert!(p.is_exhausted());
        assert_eq!(p.claimed(), 3);
    }

    #[test]
    fn empty_pool_yields_nothing() {
        let mut p = WorkPool::new(0);
        assert!(!p.steal());
        assert!(p.is_exhausted());
    }
}
