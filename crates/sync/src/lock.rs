//! Mutual exclusion with blocking or spinning waiters.

use crate::WaitMode;
use irs_guest::TaskId;
use std::collections::VecDeque;

/// Outcome of an acquire attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// The caller now holds the lock and may enter the critical section.
    Acquired,
    /// The caller must wait in the given mode (sleep or PAUSE-spin).
    MustWait(WaitMode),
}

/// Outcome of a release: FIFO hand-off, as in a ticket lock / fair futex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReleaseOutcome {
    /// The waiter that now owns the lock, and how it was waiting. A
    /// blocking waiter must be woken; a spinning waiter notices ownership
    /// the next time it executes.
    pub next_holder: Option<(TaskId, WaitMode)>,
}

/// A mutex with FIFO hand-off and a configurable wait mode.
///
/// FIFO hand-off makes the spinning variant a **ticket lock**, which is the
/// shape under which lock-waiter preemption (LWP) hurts most: only the
/// at-the-head waiter can make progress, so preempting *it* stalls everyone
/// behind it.
#[derive(Debug, Clone)]
pub struct Lock {
    mode: WaitMode,
    holder: Option<TaskId>,
    waiters: VecDeque<TaskId>,
    acquisitions: u64,
    contended: u64,
}

impl Lock {
    /// Creates a free lock whose waiters wait in `mode`.
    pub fn new(mode: WaitMode) -> Self {
        Lock {
            mode,
            holder: None,
            waiters: VecDeque::new(),
            acquisitions: 0,
            contended: 0,
        }
    }

    /// Attempts to acquire for `who`.
    ///
    /// # Panics
    ///
    /// Panics if `who` already holds or already waits for this lock —
    /// either is a bug in the calling workload model.
    pub fn acquire(&mut self, who: TaskId) -> AcquireOutcome {
        assert_ne!(self.holder, Some(who), "{who} re-acquired a held lock");
        assert!(
            !self.waiters.contains(&who),
            "{who} is already waiting on this lock"
        );
        if self.holder.is_none() {
            self.holder = Some(who);
            self.acquisitions += 1;
            AcquireOutcome::Acquired
        } else {
            self.waiters.push_back(who);
            self.contended += 1;
            AcquireOutcome::MustWait(self.mode)
        }
    }

    /// Releases the lock, handing it to the FIFO-first waiter if any.
    ///
    /// # Panics
    ///
    /// Panics if `who` is not the holder.
    pub fn release(&mut self, who: TaskId) -> ReleaseOutcome {
        assert_eq!(
            self.holder,
            Some(who),
            "{who} released a lock it does not hold"
        );
        match self.waiters.pop_front() {
            Some(next) => {
                self.holder = Some(next);
                self.acquisitions += 1;
                ReleaseOutcome {
                    next_holder: Some((next, self.mode)),
                }
            }
            None => {
                self.holder = None;
                ReleaseOutcome { next_holder: None }
            }
        }
    }

    /// Removes `who` from the wait queue (task exit during teardown).
    /// Returns whether it was waiting.
    pub fn cancel_wait(&mut self, who: TaskId) -> bool {
        if let Some(pos) = self.waiters.iter().position(|&w| w == who) {
            self.waiters.remove(pos);
            true
        } else {
            false
        }
    }

    /// The current holder.
    pub fn holder(&self) -> Option<TaskId> {
        self.holder
    }

    /// Number of tasks waiting.
    pub fn n_waiters(&self) -> usize {
        self.waiters.len()
    }

    /// The waiter at the head of the queue (the LWP victim candidate).
    pub fn head_waiter(&self) -> Option<TaskId> {
        self.waiters.front().copied()
    }

    /// Wait mode of this lock.
    pub fn mode(&self) -> WaitMode {
        self.mode
    }

    /// Total successful acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Acquire attempts that had to wait.
    pub fn contended(&self) -> u64 {
        self.contended
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TaskId {
        TaskId(i)
    }

    #[test]
    fn uncontended_acquire_succeeds() {
        let mut l = Lock::new(WaitMode::Block);
        assert_eq!(l.acquire(t(0)), AcquireOutcome::Acquired);
        assert_eq!(l.holder(), Some(t(0)));
        assert_eq!(l.acquisitions(), 1);
        assert_eq!(l.contended(), 0);
    }

    #[test]
    fn contended_acquire_waits_in_lock_mode() {
        let mut spin = Lock::new(WaitMode::Spin);
        spin.acquire(t(0));
        assert_eq!(spin.acquire(t(1)), AcquireOutcome::MustWait(WaitMode::Spin));
        let mut blk = Lock::new(WaitMode::Block);
        blk.acquire(t(0));
        assert_eq!(blk.acquire(t(1)), AcquireOutcome::MustWait(WaitMode::Block));
    }

    #[test]
    fn release_hands_off_fifo() {
        let mut l = Lock::new(WaitMode::Block);
        l.acquire(t(0));
        l.acquire(t(1));
        l.acquire(t(2));
        assert_eq!(l.head_waiter(), Some(t(1)));
        let r = l.release(t(0));
        assert_eq!(r.next_holder, Some((t(1), WaitMode::Block)));
        assert_eq!(l.holder(), Some(t(1)));
        let r = l.release(t(1));
        assert_eq!(r.next_holder, Some((t(2), WaitMode::Block)));
        let r = l.release(t(2));
        assert_eq!(r.next_holder, None);
        assert_eq!(l.holder(), None);
        assert_eq!(l.acquisitions(), 3);
        assert_eq!(l.contended(), 2);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn foreign_release_panics() {
        let mut l = Lock::new(WaitMode::Block);
        l.acquire(t(0));
        l.release(t(1));
    }

    #[test]
    #[should_panic(expected = "re-acquired")]
    fn reacquire_panics() {
        let mut l = Lock::new(WaitMode::Block);
        l.acquire(t(0));
        l.acquire(t(0));
    }

    #[test]
    fn cancel_wait_removes_waiter() {
        let mut l = Lock::new(WaitMode::Spin);
        l.acquire(t(0));
        l.acquire(t(1));
        l.acquire(t(2));
        assert!(l.cancel_wait(t(1)));
        assert!(!l.cancel_wait(t(1)));
        let r = l.release(t(0));
        assert_eq!(r.next_holder, Some((t(2), WaitMode::Spin)));
    }
}
