//! Deterministic open-loop request sources.
//!
//! An [`ArrivalProcess`] is a seeded stream of absolute arrival
//! instants — the load generator of an open-loop serving workload.
//! Requests arrive on the generator's schedule regardless of whether
//! the service keeps up, so queueing delay under interference lands in
//! the measured latency instead of silently throttling the offered load
//! (the coordinated-omission mistake closed-loop generators make).
//!
//! Consumer threads take successive arrivals via
//! [`ArrivalProcess::next`]; the embedding simulation anchors each
//! request's latency measurement at the *arrival* instant, and sleeps
//! the consumer when it catches up with the schedule.
//!
//! The inter-arrival RNG is carried inside the process so it clones
//! with the [`SyncSpace`](crate::SyncSpace) (snapshot/fork safe). It is
//! constructed unseeded and must be [`reseed`](ArrivalProcess::reseed)ed
//! by the embedder from the scenario seed — that keeps arrival draws
//! decorrelated from workload-compute draws and independent of worker
//! fan-out.

use irs_sim::SimRng;

/// Inter-arrival distribution of an [`ArrivalProcess`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalDist {
    /// Exponential inter-arrivals with the given mean (Poisson process).
    Poisson {
        /// Mean inter-arrival gap in nanoseconds.
        mean_ns: u64,
    },
    /// Uniform inter-arrivals in `[lo_ns, hi_ns]`.
    Uniform {
        /// Minimum gap in nanoseconds.
        lo_ns: u64,
        /// Maximum gap in nanoseconds.
        hi_ns: u64,
    },
}

/// A seeded open-loop source of absolute arrival instants.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    dist: ArrivalDist,
    rng: SimRng,
    next_at_ns: u64,
    issued: u64,
}

impl ArrivalProcess {
    /// Creates a process with a placeholder seed. The embedder must
    /// [`reseed`](Self::reseed) it from the scenario seed before use.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate distribution (zero mean, inverted or
    /// all-zero uniform range).
    pub fn new(dist: ArrivalDist) -> Self {
        match dist {
            ArrivalDist::Poisson { mean_ns } => {
                assert!(mean_ns > 0, "Poisson arrivals need a non-zero mean");
            }
            ArrivalDist::Uniform { lo_ns, hi_ns } => {
                assert!(lo_ns <= hi_ns, "uniform arrival range is inverted");
                assert!(hi_ns > 0, "uniform arrivals need a non-zero upper bound");
            }
        }
        let mut p = ArrivalProcess {
            dist,
            rng: SimRng::seed_from(0),
            next_at_ns: 0,
            issued: 0,
        };
        p.reseed(SimRng::seed_from(0));
        p
    }

    /// Replaces the RNG and restarts the schedule from virtual time 0
    /// (the first arrival lands one draw after t = 0). Called once by
    /// the embedder during system construction, before any task runs.
    pub fn reseed(&mut self, rng: SimRng) {
        self.rng = rng;
        self.issued = 0;
        self.next_at_ns = 0;
        self.next_at_ns = self.draw();
    }

    /// One inter-arrival gap, never zero (a zero gap would let a single
    /// instant carry unboundedly many arrivals).
    fn draw(&mut self) -> u64 {
        let gap = match self.dist {
            ArrivalDist::Poisson { mean_ns } => self.rng.exponential(mean_ns as f64).round() as u64,
            ArrivalDist::Uniform { lo_ns, hi_ns } => self.rng.uniform_u64(lo_ns, hi_ns),
        };
        gap.max(1)
    }

    /// Takes the next arrival instant (absolute nanoseconds) and
    /// advances the schedule. Consumers sharing one process partition
    /// the stream in call order.
    pub fn next_arrival_ns(&mut self) -> u64 {
        let at = self.next_at_ns;
        self.next_at_ns += self.draw();
        self.issued += 1;
        at
    }

    /// The upcoming arrival instant without consuming it.
    pub fn peek_ns(&self) -> u64 {
        self.next_at_ns
    }

    /// Arrivals issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The configured distribution.
    pub fn dist(&self) -> ArrivalDist {
        self.dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut p = ArrivalProcess::new(ArrivalDist::Poisson { mean_ns: 1_000 });
        p.reseed(SimRng::seed_from(7));
        let mut last = 0;
        for _ in 0..100 {
            let at = p.next_arrival_ns();
            assert!(at >= last);
            assert!(p.peek_ns() > at, "gaps are never zero");
            last = at;
        }
        assert_eq!(p.issued(), 100);
    }

    #[test]
    fn reseed_restarts_the_schedule_deterministically() {
        let mut a = ArrivalProcess::new(ArrivalDist::Poisson { mean_ns: 5_000 });
        let mut b = ArrivalProcess::new(ArrivalDist::Poisson { mean_ns: 5_000 });
        a.reseed(SimRng::seed_from(42));
        b.reseed(SimRng::seed_from(42));
        for _ in 0..50 {
            assert_eq!(a.next_arrival_ns(), b.next_arrival_ns());
        }
        // Re-reseeding replays the identical stream from the start.
        a.reseed(SimRng::seed_from(42));
        b.reseed(SimRng::seed_from(42));
        assert_eq!(a.next_arrival_ns(), b.next_arrival_ns());
        assert_eq!(a.issued(), 1);
    }

    #[test]
    fn uniform_gaps_stay_in_band() {
        let mut p = ArrivalProcess::new(ArrivalDist::Uniform {
            lo_ns: 100,
            hi_ns: 200,
        });
        p.reseed(SimRng::seed_from(3));
        let mut last = 0;
        for _ in 0..200 {
            let at = p.next_arrival_ns();
            let gap = at - last;
            assert!((100..=200).contains(&gap), "gap {gap} out of band");
            last = at;
        }
    }

    #[test]
    fn poisson_mean_gap_is_close() {
        let mut p = ArrivalProcess::new(ArrivalDist::Poisson { mean_ns: 250 });
        p.reseed(SimRng::seed_from(9));
        let n = 20_000;
        let mut last = 0;
        let mut sum = 0u64;
        for _ in 0..n {
            let at = p.next_arrival_ns();
            sum += at - last;
            last = at;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 250.0).abs() < 10.0, "mean gap was {mean}");
    }

    #[test]
    #[should_panic(expected = "non-zero mean")]
    fn zero_mean_panics() {
        ArrivalProcess::new(ArrivalDist::Poisson { mean_ns: 0 });
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_uniform_panics() {
        ArrivalProcess::new(ArrivalDist::Uniform { lo_ns: 5, hi_ns: 1 });
    }
}
