//! Bounded channels for pipeline-parallel workloads (dedup, ferret, x264).
//!
//! Items are modelled as counts — the simulation cares about *when* stages
//! block on full/empty queues, not what flows through them. Waiters always
//! block (pthread condvar semantics).

use irs_guest::TaskId;
use std::collections::VecDeque;

/// Outcome of a push attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Item enqueued. If a consumer was waiting for an item, wake it —
    /// its pending pop has been completed on its behalf.
    Pushed {
        /// Consumer to wake, if one was blocked on empty.
        wake_consumer: Option<TaskId>,
    },
    /// Channel full: the producer must block until space frees up.
    MustWait,
}

/// Outcome of a pop attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopOutcome {
    /// Item dequeued. If a producer was waiting for space, wake it — its
    /// pending push has been completed on its behalf.
    Popped {
        /// Producer to wake, if one was blocked on full.
        wake_producer: Option<TaskId>,
    },
    /// Channel empty (and open): the consumer must block.
    MustWait,
    /// Channel empty and closed: the consumer should move to shutdown.
    Disconnected,
}

/// Outcome of a non-blocking external offer (open-loop request injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferOutcome {
    /// Item enqueued (or handed straight to a waiting consumer).
    Accepted {
        /// Consumer to wake, if one was blocked on empty.
        wake_consumer: Option<TaskId>,
    },
    /// Channel full: the item is dropped (an overloaded accept queue).
    Full,
}

/// A bounded single-queue channel.
#[derive(Debug, Clone)]
pub struct Channel {
    capacity: usize,
    len: usize,
    closed: bool,
    producers_waiting: VecDeque<TaskId>,
    consumers_waiting: VecDeque<TaskId>,
}

impl Channel {
    /// Creates an open channel holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a channel needs capacity of at least one");
        Channel {
            capacity,
            len: 0,
            closed: false,
            producers_waiting: VecDeque::new(),
            consumers_waiting: VecDeque::new(),
        }
    }

    /// `who` pushes one item.
    pub fn push(&mut self, who: TaskId) -> PushOutcome {
        assert!(!self.closed, "push into a closed channel");
        if self.len < self.capacity {
            self.len += 1;
            // A waiting consumer's pop completes immediately.
            if let Some(consumer) = self.consumers_waiting.pop_front() {
                self.len -= 1;
                PushOutcome::Pushed {
                    wake_consumer: Some(consumer),
                }
            } else {
                PushOutcome::Pushed {
                    wake_consumer: None,
                }
            }
        } else {
            self.producers_waiting.push_back(who);
            PushOutcome::MustWait
        }
    }

    /// `who` pops one item.
    pub fn pop(&mut self, who: TaskId) -> PopOutcome {
        if self.len > 0 {
            self.len -= 1;
            // A waiting producer's push completes immediately.
            if let Some(producer) = self.producers_waiting.pop_front() {
                self.len += 1;
                PopOutcome::Popped {
                    wake_producer: Some(producer),
                }
            } else {
                PopOutcome::Popped {
                    wake_producer: None,
                }
            }
        } else if self.closed {
            PopOutcome::Disconnected
        } else {
            self.consumers_waiting.push_back(who);
            PopOutcome::MustWait
        }
    }

    /// Non-blocking push by an external producer (the open-loop request
    /// generator, which is not a task and can never wait).
    pub fn offer(&mut self) -> OfferOutcome {
        assert!(!self.closed, "offer into a closed channel");
        if self.len < self.capacity {
            self.len += 1;
            if let Some(consumer) = self.consumers_waiting.pop_front() {
                self.len -= 1;
                OfferOutcome::Accepted {
                    wake_consumer: Some(consumer),
                }
            } else {
                OfferOutcome::Accepted {
                    wake_consumer: None,
                }
            }
        } else {
            OfferOutcome::Full
        }
    }

    /// Closes the channel; returns all consumers blocked on empty so the
    /// embedder can wake them into `Disconnected`.
    pub fn close(&mut self) -> Vec<TaskId> {
        self.closed = true;
        self.consumers_waiting.drain(..).collect()
    }

    /// True once closed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TaskId {
        TaskId(i)
    }

    #[test]
    fn offer_enqueues_or_hands_off() {
        let mut c = Channel::new(1);
        assert_eq!(c.offer(), OfferOutcome::Accepted { wake_consumer: None });
        assert_eq!(c.len(), 1);
        assert_eq!(c.offer(), OfferOutcome::Full);
        // A waiting consumer receives the offered item directly.
        let mut c2 = Channel::new(1);
        assert_eq!(c2.pop(t(5)), PopOutcome::MustWait);
        assert_eq!(
            c2.offer(),
            OfferOutcome::Accepted { wake_consumer: Some(t(5)) }
        );
        assert!(c2.is_empty());
    }

    #[test]
    fn push_pop_round_trip() {
        let mut c = Channel::new(2);
        assert_eq!(c.push(t(0)), PushOutcome::Pushed { wake_consumer: None });
        assert_eq!(c.len(), 1);
        assert_eq!(c.pop(t(1)), PopOutcome::Popped { wake_producer: None });
        assert!(c.is_empty());
    }

    #[test]
    fn pop_on_empty_waits_and_push_wakes() {
        let mut c = Channel::new(1);
        assert_eq!(c.pop(t(1)), PopOutcome::MustWait);
        // The consumer's pop completes inside the push: len stays 0.
        assert_eq!(
            c.push(t(0)),
            PushOutcome::Pushed {
                wake_consumer: Some(t(1))
            }
        );
        assert!(c.is_empty());
    }

    #[test]
    fn push_on_full_waits_and_pop_wakes() {
        let mut c = Channel::new(1);
        c.push(t(0));
        assert_eq!(c.push(t(0)), PushOutcome::MustWait);
        // The producer's push completes inside the pop: len stays 1.
        assert_eq!(
            c.pop(t(1)),
            PopOutcome::Popped {
                wake_producer: Some(t(0))
            }
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn close_disconnects_waiting_consumers() {
        let mut c = Channel::new(1);
        assert_eq!(c.pop(t(1)), PopOutcome::MustWait);
        assert_eq!(c.pop(t(2)), PopOutcome::MustWait);
        let woken = c.close();
        assert_eq!(woken, vec![t(1), t(2)]);
        assert_eq!(c.pop(t(3)), PopOutcome::Disconnected);
    }

    #[test]
    fn closed_channel_drains_remaining_items() {
        let mut c = Channel::new(2);
        c.push(t(0));
        c.close();
        assert_eq!(c.pop(t(1)), PopOutcome::Popped { wake_producer: None });
        assert_eq!(c.pop(t(1)), PopOutcome::Disconnected);
    }

    #[test]
    #[should_panic(expected = "closed channel")]
    fn push_after_close_panics() {
        let mut c = Channel::new(1);
        c.close();
        c.push(t(0));
    }
}
