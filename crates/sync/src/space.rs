//! The per-VM container of synchronization objects.

use crate::arrival::{ArrivalDist, ArrivalProcess};
use crate::barrier::Barrier;
use crate::channel::Channel;
use crate::epoch::Epoch;
use crate::lock::Lock;
use crate::pool::WorkPool;
use crate::WaitMode;
use std::fmt;

macro_rules! sync_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub usize);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

sync_id!(
    /// Handle to a [`Lock`] in a [`SyncSpace`].
    LockId,
    "lock"
);
sync_id!(
    /// Handle to a [`Barrier`] in a [`SyncSpace`].
    BarrierId,
    "barrier"
);
sync_id!(
    /// Handle to a [`Channel`] in a [`SyncSpace`].
    ChannelId,
    "chan"
);
sync_id!(
    /// Handle to a [`WorkPool`] in a [`SyncSpace`].
    PoolId,
    "pool"
);
sync_id!(
    /// Handle to an [`Epoch`] in a [`SyncSpace`].
    EpochId,
    "epoch"
);
sync_id!(
    /// Handle to an [`ArrivalProcess`] in a [`SyncSpace`].
    ArrivalId,
    "arrival"
);

/// All synchronization objects of one VM's workload.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Default, Clone)]
pub struct SyncSpace {
    locks: Vec<Lock>,
    barriers: Vec<Barrier>,
    channels: Vec<Channel>,
    pools: Vec<WorkPool>,
    epochs: Vec<Epoch>,
    arrivals: Vec<ArrivalProcess>,
}

impl SyncSpace {
    /// Creates an empty space.
    pub fn new() -> Self {
        SyncSpace::default()
    }

    /// Allocates a lock.
    pub fn new_lock(&mut self, mode: WaitMode) -> LockId {
        self.locks.push(Lock::new(mode));
        LockId(self.locks.len() - 1)
    }

    /// Allocates a barrier.
    pub fn new_barrier(&mut self, parties: usize, mode: WaitMode) -> BarrierId {
        self.barriers.push(Barrier::new(parties, mode));
        BarrierId(self.barriers.len() - 1)
    }

    /// Allocates a bounded channel.
    pub fn new_channel(&mut self, capacity: usize) -> ChannelId {
        self.channels.push(Channel::new(capacity));
        ChannelId(self.channels.len() - 1)
    }

    /// Allocates a work pool.
    pub fn new_pool(&mut self, chunks: u64) -> PoolId {
        self.pools.push(WorkPool::new(chunks));
        PoolId(self.pools.len() - 1)
    }

    /// Allocates a gang epoch (time-anchored safepoint rendezvous).
    pub fn new_epoch(&mut self, period_ns: u64, participants: usize, mode: WaitMode) -> EpochId {
        self.epochs.push(Epoch::new(period_ns, participants, mode));
        EpochId(self.epochs.len() - 1)
    }

    /// Allocates an open-loop arrival process. The embedding simulation
    /// reseeds it from the scenario seed before any task runs.
    pub fn new_arrival(&mut self, dist: ArrivalDist) -> ArrivalId {
        self.arrivals.push(ArrivalProcess::new(dist));
        ArrivalId(self.arrivals.len() - 1)
    }

    /// Mutable access to a lock.
    pub fn lock(&mut self, id: LockId) -> &mut Lock {
        &mut self.locks[id.0]
    }

    /// Mutable access to a barrier.
    pub fn barrier(&mut self, id: BarrierId) -> &mut Barrier {
        &mut self.barriers[id.0]
    }

    /// Mutable access to a channel.
    pub fn channel(&mut self, id: ChannelId) -> &mut Channel {
        &mut self.channels[id.0]
    }

    /// Mutable access to a pool.
    pub fn pool(&mut self, id: PoolId) -> &mut WorkPool {
        &mut self.pools[id.0]
    }

    /// Mutable access to an epoch.
    pub fn epoch(&mut self, id: EpochId) -> &mut Epoch {
        &mut self.epochs[id.0]
    }

    /// Mutable access to an arrival process.
    pub fn arrival(&mut self, id: ArrivalId) -> &mut ArrivalProcess {
        &mut self.arrivals[id.0]
    }

    /// Shared access to a lock.
    pub fn lock_ref(&self, id: LockId) -> &Lock {
        &self.locks[id.0]
    }

    /// Shared access to a barrier.
    pub fn barrier_ref(&self, id: BarrierId) -> &Barrier {
        &self.barriers[id.0]
    }

    /// Shared access to a channel.
    pub fn channel_ref(&self, id: ChannelId) -> &Channel {
        &self.channels[id.0]
    }

    /// Shared access to a pool.
    pub fn pool_ref(&self, id: PoolId) -> &WorkPool {
        &self.pools[id.0]
    }

    /// Shared access to an epoch.
    pub fn epoch_ref(&self, id: EpochId) -> &Epoch {
        &self.epochs[id.0]
    }

    /// Shared access to an arrival process.
    pub fn arrival_ref(&self, id: ArrivalId) -> &ArrivalProcess {
        &self.arrivals[id.0]
    }

    /// Number of locks allocated.
    pub fn n_locks(&self) -> usize {
        self.locks.len()
    }

    /// Number of channels allocated.
    pub fn n_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of epochs allocated.
    pub fn n_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// Number of arrival processes allocated.
    pub fn n_arrivals(&self) -> usize {
        self.arrivals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AcquireOutcome, BarrierOutcome};
    use irs_guest::TaskId;

    #[test]
    fn allocation_returns_distinct_handles() {
        let mut s = SyncSpace::new();
        let a = s.new_lock(WaitMode::Block);
        let b = s.new_lock(WaitMode::Spin);
        assert_ne!(a, b);
        assert_eq!(s.n_locks(), 2);
        assert_eq!(s.lock_ref(a).mode(), WaitMode::Block);
        assert_eq!(s.lock_ref(b).mode(), WaitMode::Spin);
    }

    #[test]
    fn objects_are_independent() {
        let mut s = SyncSpace::new();
        let l = s.new_lock(WaitMode::Block);
        let bar = s.new_barrier(2, WaitMode::Spin);
        assert_eq!(s.lock(l).acquire(TaskId(0)), AcquireOutcome::Acquired);
        assert_eq!(
            s.barrier(bar).arrive(TaskId(0)),
            BarrierOutcome::MustWait(WaitMode::Spin)
        );
        assert_eq!(s.lock_ref(l).holder(), Some(TaskId(0)));
        assert_eq!(s.barrier_ref(bar).n_waiting(), 1);
    }

    #[test]
    fn ids_render() {
        assert_eq!(LockId(1).to_string(), "lock1");
        assert_eq!(BarrierId(2).to_string(), "barrier2");
        assert_eq!(ChannelId(3).to_string(), "chan3");
        assert_eq!(PoolId(4).to_string(), "pool4");
        assert_eq!(EpochId(5).to_string(), "epoch5");
        assert_eq!(ArrivalId(6).to_string(), "arrival6");
    }

    #[test]
    fn epoch_and_arrival_allocation() {
        let mut s = SyncSpace::new();
        let e = s.new_epoch(1_000_000, 4, WaitMode::Block);
        let a = s.new_arrival(crate::ArrivalDist::Poisson { mean_ns: 500 });
        assert_eq!(s.n_epochs(), 1);
        assert_eq!(s.n_arrivals(), 1);
        assert_eq!(s.epoch_ref(e).participants(), 4);
        assert!(s.arrival_ref(a).peek_ns() > 0);
    }
}
