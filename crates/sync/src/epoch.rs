//! Gang-epoch rendezvous: the time-anchored stop-the-world safepoint.
//!
//! A JVM-style safepoint is *wall-clock-periodic*: a pending flag raises
//! at absolute times `period, 2·period, …`, and every mutator thread
//! checks it at its next *poll site*. Threads that poll while no
//! safepoint is pending pass for free; once the flag is up, every
//! arriving thread parks until the **last** participant arrives, at
//! which point all release together and the next deadline is armed.
//!
//! This is the construct the work-anchored DSL could not express (the
//! root cause of the Fig 8 specjbb fidelity gap): the stall per epoch is
//! the *slowest thread's time-to-poll*, so one preempted vCPU delays the
//! whole gang — exactly the amplification IRS's preemption hand-off
//! removes.

use crate::WaitMode;
use irs_guest::TaskId;

/// Outcome of a [`Epoch::poll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpochPoll {
    /// No safepoint pending: the thread passes the poll site for free.
    Pass,
    /// A safepoint is pending and other participants are still running:
    /// wait in the given mode.
    MustWait(WaitMode),
    /// The caller was the last participant to arrive: the epoch
    /// completes. Blocking waiters in the list must be woken.
    Released {
        /// The tasks that were parked (excluding the last arriver).
        waiters: Vec<TaskId>,
        /// How they were waiting.
        mode: WaitMode,
    },
}

/// A wall-clock-periodic gang rendezvous for `participants` tasks.
///
/// Unlike a [`Barrier`](crate::Barrier) (work-anchored: every iteration
/// arrives), an epoch is **time-anchored**: polls between deadlines are
/// free, and missed deadlines coalesce — however late the gang runs, one
/// rendezvous discharges every boundary passed, and the next deadline is
/// the first boundary strictly after the release instant.
#[derive(Debug, Clone)]
pub struct Epoch {
    period_ns: u64,
    participants: usize,
    mode: WaitMode,
    waiting: Vec<TaskId>,
    next_deadline_ns: u64,
    generation: u64,
}

impl Epoch {
    /// Creates an epoch with deadlines at `period_ns, 2·period_ns, …`
    /// for `participants` tasks waiting in `mode`.
    ///
    /// # Panics
    ///
    /// Panics if `period_ns == 0` or `participants == 0`.
    pub fn new(period_ns: u64, participants: usize, mode: WaitMode) -> Self {
        assert!(period_ns > 0, "an epoch needs a non-zero period");
        assert!(participants > 0, "an epoch needs at least one participant");
        Epoch {
            period_ns,
            participants,
            mode,
            waiting: Vec::new(),
            next_deadline_ns: period_ns,
            generation: 0,
        }
    }

    /// `who` reaches a poll site at absolute time `now_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `who` is already parked at this epoch (double poll
    /// without release is a workload-model bug).
    pub fn poll(&mut self, who: TaskId, now_ns: u64) -> EpochPoll {
        if now_ns < self.next_deadline_ns {
            return EpochPoll::Pass;
        }
        assert!(
            !self.waiting.contains(&who),
            "{who} polled twice within one epoch generation"
        );
        if self.waiting.len() + 1 == self.participants {
            let waiters = std::mem::take(&mut self.waiting);
            self.generation += 1;
            // Coalesce missed boundaries: the next deadline is the first
            // period multiple strictly after the release instant.
            self.next_deadline_ns = (now_ns / self.period_ns + 1) * self.period_ns;
            EpochPoll::Released {
                waiters,
                mode: self.mode,
            }
        } else {
            self.waiting.push(who);
            EpochPoll::MustWait(self.mode)
        }
    }

    /// Completed epochs (safepoints discharged).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Tasks currently parked at the pending safepoint.
    pub fn n_waiting(&self) -> usize {
        self.waiting.len()
    }

    /// Participants required to discharge a pending safepoint.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Deadline period in nanoseconds.
    pub fn period_ns(&self) -> u64 {
        self.period_ns
    }

    /// The next pending-deadline instant in nanoseconds.
    pub fn next_deadline_ns(&self) -> u64 {
        self.next_deadline_ns
    }

    /// Wait mode.
    pub fn mode(&self) -> WaitMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TaskId {
        TaskId(i)
    }

    #[test]
    fn polls_before_the_deadline_pass_free() {
        let mut e = Epoch::new(1_000, 2, WaitMode::Block);
        assert_eq!(e.poll(t(0), 0), EpochPoll::Pass);
        assert_eq!(e.poll(t(1), 999), EpochPoll::Pass);
        assert_eq!(e.generation(), 0);
    }

    #[test]
    fn pending_safepoint_parks_until_last_arrival() {
        let mut e = Epoch::new(1_000, 3, WaitMode::Block);
        assert_eq!(e.poll(t(0), 1_000), EpochPoll::MustWait(WaitMode::Block));
        assert_eq!(e.poll(t(1), 1_200), EpochPoll::MustWait(WaitMode::Block));
        match e.poll(t(2), 1_500) {
            EpochPoll::Released { waiters, mode } => {
                assert_eq!(waiters, vec![t(0), t(1)]);
                assert_eq!(mode, WaitMode::Block);
            }
            other => panic!("expected release, got {other:?}"),
        }
        assert_eq!(e.generation(), 1);
        // The deadline advanced past the release instant.
        assert_eq!(e.next_deadline_ns(), 2_000);
        assert_eq!(e.poll(t(0), 1_500), EpochPoll::Pass);
    }

    #[test]
    fn missed_deadlines_coalesce() {
        let mut e = Epoch::new(1_000, 1, WaitMode::Block);
        // A lone participant arriving 3.5 periods late discharges every
        // missed boundary at once.
        match e.poll(t(0), 3_500) {
            EpochPoll::Released { waiters, .. } => assert!(waiters.is_empty()),
            other => panic!("expected release, got {other:?}"),
        }
        assert_eq!(e.generation(), 1);
        assert_eq!(e.next_deadline_ns(), 4_000);
    }

    #[test]
    fn release_exactly_on_a_boundary_arms_the_next_one() {
        let mut e = Epoch::new(1_000, 1, WaitMode::Block);
        assert!(matches!(e.poll(t(0), 1_000), EpochPoll::Released { .. }));
        assert_eq!(e.next_deadline_ns(), 2_000);
        assert!(matches!(e.poll(t(0), 2_000), EpochPoll::Released { .. }));
        assert_eq!(e.next_deadline_ns(), 3_000);
    }

    #[test]
    #[should_panic(expected = "polled twice")]
    fn double_poll_while_parked_panics() {
        let mut e = Epoch::new(1_000, 2, WaitMode::Block);
        e.poll(t(0), 1_000);
        e.poll(t(0), 1_001);
    }
}
