//! # irs-sync — guest-level synchronization substrate
//!
//! The synchronization primitives whose interaction with two-level
//! scheduling *is* the subject of the reproduced paper:
//!
//! * [`Lock`] — a mutex in either **blocking** mode (pthread-mutex-style:
//!   contended waiters sleep, the vCPU can idle) or **spinning** mode
//!   (ticket-lock / `OMP_WAIT_POLICY=active`-style: waiters burn CPU in a
//!   PAUSE loop, which is what pause-loop exiting detects). A preempted
//!   holder is a **lock-holder preemption (LHP)**; a preempted next-in-line
//!   ticket waiter is a **lock-waiter preemption (LWP)**.
//! * [`Barrier`] — group synchronization in the same two modes; the paper's
//!   PARSEC runs block, its NPB runs spin.
//! * [`Channel`] — a bounded queue for pipeline-parallel programs
//!   (dedup/ferret), whose surplus of threads per stage is why IRS gains
//!   little there (§5.2).
//! * [`WorkPool`] — a shared chunk pool modelling user-level work stealing
//!   (raytrace), the paper's exhibit for interference resilience *without*
//!   kernel help.
//! * [`Epoch`] — a **time-anchored** gang rendezvous (wall-clock-periodic
//!   stop-the-world safepoints, the JVM shape behind Fig 8's specjbb): polls
//!   between deadlines pass free, a pending deadline parks every participant
//!   until the last one arrives.
//! * [`ArrivalProcess`] — a seeded open-loop source of absolute request
//!   arrival instants (Poisson or uniform inter-arrivals) for latency-SLO
//!   serving workloads.
//!
//! Primitives are pure state machines over [`TaskId`](irs_guest::TaskId)s: operations return
//! outcomes (`Acquired` / `MustWait(mode)` / wake lists) that the embedding
//! simulation turns into guest scheduler calls. All primitives of one VM
//! live in a [`SyncSpace`].
//!
//! # Example
//!
//! ```
//! use irs_guest::TaskId;
//! use irs_sync::{AcquireOutcome, SyncSpace, WaitMode};
//!
//! let mut space = SyncSpace::new();
//! let lock = space.new_lock(WaitMode::Block);
//! let (a, b) = (TaskId(0), TaskId(1));
//! assert_eq!(space.lock(lock).acquire(a), AcquireOutcome::Acquired);
//! assert_eq!(space.lock(lock).acquire(b), AcquireOutcome::MustWait(WaitMode::Block));
//! let release = space.lock(lock).release(a);
//! assert_eq!(release.next_holder, Some((b, WaitMode::Block)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod barrier;
mod channel;
mod epoch;
mod lock;
mod pool;
mod space;

pub use arrival::{ArrivalDist, ArrivalProcess};
pub use barrier::{Barrier, BarrierOutcome};
pub use channel::{Channel, OfferOutcome, PopOutcome, PushOutcome};
pub use epoch::{Epoch, EpochPoll};
pub use lock::{AcquireOutcome, Lock, ReleaseOutcome};
pub use pool::WorkPool;
pub use space::{ArrivalId, BarrierId, ChannelId, EpochId, LockId, PoolId, SyncSpace};

/// How a contended primitive makes its waiters wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitMode {
    /// Sleep until woken (futex-style). The host vCPU may go idle — the
    /// deceptive-idleness input to CPU stacking (§5.6).
    Block,
    /// Busy-wait in a PAUSE loop, consuming CPU without progress — visible
    /// to pause-loop exiting, invisible to utilization metrics.
    Spin,
}
