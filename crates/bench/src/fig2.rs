//! Figure 2: CPU utilization relative to fair share under interference.
//!
//! Blocking workloads leave their fair share on the table (deceptive
//! idleness); raytrace's user-level work stealing keeps utilization at the
//! fair share. One hog contends one of four pCPUs, so the parallel VM's
//! fair share is 3 full pCPUs plus half of the contended one.

use crate::Opts;
use irs_metrics::{Series, Summary, Table};

/// The fair CPU share of the parallel VM in the Fig 2 setup, in pCPUs.
pub const FAIR_PCPUS: f64 = 3.5;

/// The benchmarks Fig 2 plots (PARSEC, then NPB with passive waits, then
/// the work-stealing exhibit).
pub const FIG2_BENCHMARKS: [&str; 14] = [
    "streamcluster",
    "canneal",
    "fluidanimate",
    "bodytrack",
    "x264",
    "facesim",
    "blackscholes",
    "BT",
    "CG",
    "MG",
    "FT",
    "SP",
    "UA",
    "raytrace",
];

/// Fig 2: utilization of the parallel VM relative to its fair share.
pub fn fig2(opts: Opts) -> Table {
    let mut table = Table::new(
        "Fig 2 — CPU utilization relative to fair share (blocking waits, 1 hog)",
    );
    let mut series = Series::new("util / fair share");
    for bench in FIG2_BENCHMARKS {
        let samples: Vec<f64> = (0..opts.seeds)
            .map(|i| {
                let r = irs_core::Scenario::fig2_style(bench, opts.base_seed + i).run();
                let m = r.measured();
                m.utilization_vs_fair_share(FAIR_PCPUS, r.elapsed)
            })
            .collect();
        series.point(bench, Summary::of(&samples).mean);
    }
    table.add(series);
    table
}
