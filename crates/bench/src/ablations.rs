//! Ablations of the design choices DESIGN.md §5 calls out:
//!
//! 1. the Fig 4 pingpong-avoidance tagging,
//! 2. the migrator's idle-first target rule,
//! 3. the SA delay budget,
//! 4. the §6 pull-based oracle.

use crate::{mean_makespan_ms, Opts};
use irs_core::{Scenario, Strategy, System, SystemConfig};
use irs_guest::GuestSaConfig;
use irs_metrics::{improvement_pct, Series, Summary, Table};
use irs_sim::SimTime;

fn with_sa_override(
    bench: &str,
    n_inter: usize,
    seed: u64,
    sa: GuestSaConfig,
) -> Scenario {
    let mut s = Scenario::fig5_style(bench, n_inter, Strategy::Irs, seed);
    s.vms[0].sa_override = Some(sa);
    s
}

/// Ablation 1: IRS with and without the Fig 4 pingpong-avoidance tagging,
/// on blocking workloads (the fix targets wake-up migration of waiters).
pub fn ablate_pingpong(opts: Opts) -> Table {
    let mut table = Table::new("Ablation — Fig 4 pingpong tagging (IRS improvement %, blocking)");
    let mut with = Series::new("tagging on");
    let mut without = Series::new("tagging off");
    for bench in ["streamcluster", "fluidanimate", "facesim", "bodytrack"] {
        for n_inter in [1usize, 2] {
            let base = mean_makespan_ms(opts, |seed| {
                Scenario::fig5_style(bench, n_inter, Strategy::Vanilla, seed)
            });
            let on = mean_makespan_ms(opts, |seed| {
                Scenario::fig5_style(bench, n_inter, Strategy::Irs, seed)
            });
            let off = mean_makespan_ms(opts, |seed| {
                with_sa_override(
                    bench,
                    n_inter,
                    seed,
                    GuestSaConfig {
                        pingpong_tagging: false,
                        ..GuestSaConfig::default()
                    },
                )
            });
            let label = format!("{bench} {n_inter}-inter.");
            with.point(label.clone(), improvement_pct(base, on));
            without.point(label, improvement_pct(base, off));
        }
    }
    table.add(with);
    table.add(without);
    table
}

/// Ablation 2: the migrator's idle-first fast path versus pure `rt_avg`
/// ranking.
pub fn ablate_idle_first(opts: Opts) -> Table {
    let mut table =
        Table::new("Ablation — migrator idle-first rule (IRS improvement %, blocking)");
    let mut with = Series::new("idle-first");
    let mut without = Series::new("rt_avg only");
    for bench in ["streamcluster", "blackscholes", "facesim"] {
        for n_inter in [1usize, 2] {
            let base = mean_makespan_ms(opts, |seed| {
                Scenario::fig5_style(bench, n_inter, Strategy::Vanilla, seed)
            });
            let on = mean_makespan_ms(opts, |seed| {
                Scenario::fig5_style(bench, n_inter, Strategy::Irs, seed)
            });
            let off = mean_makespan_ms(opts, |seed| {
                with_sa_override(
                    bench,
                    n_inter,
                    seed,
                    GuestSaConfig {
                        idle_first: false,
                        ..GuestSaConfig::default()
                    },
                )
            });
            let label = format!("{bench} {n_inter}-inter.");
            with.point(label.clone(), improvement_pct(base, on));
            without.point(label, improvement_pct(base, off));
        }
    }
    table.add(with);
    table.add(without);
    table
}

/// Ablation 3: sweep of the SA processing delay the guest imposes on the
/// hypervisor's schedule path (paper §3.1: 20–26 µs measured; larger
/// budgets delay every preemption).
pub fn ablate_sa_delay(opts: Opts) -> Table {
    let mut table = Table::new("Ablation — SA delay budget sweep (IRS improvement %, streamcluster)");
    for n_inter in [1usize, 2] {
        let mut series = Series::new(format!("{n_inter}-inter."));
        let base = mean_makespan_ms(opts, |seed| {
            Scenario::fig5_style("streamcluster", n_inter, Strategy::Vanilla, seed)
        });
        for delay_us in [0u64, 22, 100, 200, 400] {
            let makespan = mean_makespan_ms(opts, |seed| {
                with_sa_override(
                    "streamcluster",
                    n_inter,
                    seed,
                    GuestSaConfig {
                        receiver_delay: SimTime::from_micros(delay_us / 10),
                        context_switch_cost: SimTime::from_micros(delay_us - delay_us / 10),
                        ..GuestSaConfig::default()
                    },
                )
            });
            series.point(format!("{delay_us}us"), improvement_pct(base, makespan));
        }
        table.add(series);
    }
    table
}

/// Ablation 4: the §6 pull-based oracle versus the shipped push-based IRS.
pub fn ablate_pull(opts: Opts) -> Table {
    let mut table = Table::new("Ablation — §6 pull-based oracle vs push-based IRS (improvement %)");
    let mut push = Series::new("IRS (push)");
    let mut pull = Series::new("IRS-pull (oracle)");
    for bench in ["streamcluster", "fluidanimate", "blackscholes", "facesim"] {
        for n_inter in [1usize, 2] {
            let base = mean_makespan_ms(opts, |seed| {
                Scenario::fig5_style(bench, n_inter, Strategy::Vanilla, seed)
            });
            let p = mean_makespan_ms(opts, |seed| {
                Scenario::fig5_style(bench, n_inter, Strategy::Irs, seed)
            });
            let o = mean_makespan_ms(opts, |seed| {
                Scenario::fig5_style(bench, n_inter, Strategy::IrsPull, seed)
            });
            let label = format!("{bench} {n_inter}-inter.");
            push.point(label.clone(), improvement_pct(base, p));
            pull.point(label, improvement_pct(base, o));
        }
    }
    table.add(push);
    table.add(pull);
    table
}

/// Extension: hypervisor slice-length sensitivity (KVM uses ~6 ms, Xen
/// 30 ms, VMware ~50 ms — §3.1). Vanilla's LHP cost scales with the slice;
/// IRS's cost does not, so the IRS advantage should grow with the slice.
pub fn ablate_slice(opts: Opts) -> Table {
    let mut table = Table::new(
        "Extension — hypervisor slice length sweep (streamcluster, 2-inter)",
    );
    let mut vanilla = Series::new("vanilla makespan (ms)");
    let mut irs = Series::new("IRS makespan (ms)");
    let mut gain = Series::new("IRS improvement (%)");
    for (label, slice_ms) in [("6ms (KVM)", 6u64), ("30ms (Xen)", 30), ("50ms (VMware)", 50)] {
        let base = mean_makespan_ms(opts, |seed| {
            Scenario::fig5_style("streamcluster", 2, Strategy::Vanilla, seed)
                .time_slice(SimTime::from_millis(slice_ms))
        });
        let with = mean_makespan_ms(opts, |seed| {
            Scenario::fig5_style("streamcluster", 2, Strategy::Irs, seed)
                .time_slice(SimTime::from_millis(slice_ms))
        });
        vanilla.point(label, base);
        irs.point(label, with);
        gain.point(label, improvement_pct(base, with));
    }
    table.add(vanilla);
    table.add(irs);
    table.add(gain);
    table
}

/// Extension: paravirtual spin-then-halt on the spinning NPB waiters
/// (§5.1 enables pv spinlocks but OpenMP's user-level spinning bypasses
/// them; this asks what happens if the waiters *did* halt).
pub fn ablate_pv_spin(opts: Opts) -> Table {
    let mut table = Table::new(
        "Extension — paravirtual spin-then-halt on spinning waiters (makespan ms)",
    );
    let run = |bench: &str, n_inter: usize, strategy: Strategy, pv: Option<SimTime>| -> f64 {
        let samples: Vec<f64> = (0..opts.seeds)
            .map(|i| {
                let scenario = Scenario::fig5_style(bench, n_inter, strategy, opts.base_seed + i);
                let cfg = SystemConfig {
                    pv_spin: pv,
                    ..SystemConfig::default()
                };
                System::with_config(scenario, cfg)
                    .run()
                    .measured()
                    .makespan_ms()
            })
            .collect();
        Summary::of(&samples).mean
    };
    let budget = Some(SimTime::from_micros(100));
    for strategy in [Strategy::Vanilla, Strategy::Irs] {
        let mut plain = Series::new(format!("{strategy}, user spin"));
        let mut pv = Series::new(format!("{strategy}, pv spin-halt"));
        for bench in ["MG", "CG", "UA"] {
            for n_inter in [1usize, 2] {
                let label = format!("{bench} {n_inter}-inter.");
                plain.point(label.clone(), run(bench, n_inter, strategy, None));
                pv.point(label, run(bench, n_inter, strategy, budget));
            }
        }
        table.add(plain);
        table.add(pv);
    }
    table
}

/// Extension: strict (gang) co-scheduling — the VMware ESX 2.x baseline of
/// §2.1. Immune to LHP/LWP by construction, but the small co-located VM's
/// slot idles every other pCPU: CPU fragmentation, measured directly.
pub fn ablate_strict_co(opts: Opts) -> Table {
    let mut table = Table::new(
        "Extension — strict co-scheduling vs vanilla/IRS (1 hog; fragmentation visible)",
    );
    for strategy in [Strategy::Vanilla, Strategy::Irs, Strategy::StrictCo] {
        let mut makespan = Series::new(format!("{strategy} makespan (ms)"));
        let mut idle = Series::new(format!("{strategy} machine idle (%)"));
        for bench in ["streamcluster", "MG"] {
            let mut ms = Vec::new();
            let mut idle_frac = Vec::new();
            for i in 0..opts.seeds {
                let r = Scenario::fig5_style(bench, 1, strategy, opts.base_seed + i).run();
                ms.push(r.measured().makespan_ms());
                let total_cpu: f64 = r.vms.iter().map(|v| v.cpu_time.as_secs_f64()).sum();
                idle_frac.push((1.0 - total_cpu / (4.0 * r.elapsed.as_secs_f64())) * 100.0);
            }
            makespan.point(bench, Summary::of(&ms).mean);
            idle.point(bench, Summary::of(&idle_frac).mean);
        }
        table.add(makespan);
        table.add(idle);
    }
    table
}
