//! The chaos campaign: fault-injection sweep over fault profiles ×
//! scheduling strategies, asserting the degradation contract of
//! `irs_core::faults` (DESIGN.md §2.4).
//!
//! Contract checked per profile:
//!
//! * **every run terminates** — the SA completion-limit force path bounds
//!   every injected freeze, so no fault mix may hang a run;
//! * **graceful degradation** — IRS's mean makespan degrades *toward*
//!   vanilla credit but never materially past it (`<= vanilla × 1.15`);
//! * **the force path actually fires** — the wedged-guest profile must
//!   produce `sa_timeouts > 0` on IRS, proving the campaign exercises the
//!   §4.1 timeout branch rather than idling around it;
//! * **bit-reproducibility** — the table is identical at any `--jobs N`
//!   (the fault stream is forked from the scenario seed, never from the
//!   worker that happens to run the cell).

use crate::Opts;
use irs_core::{
    parallel, FaultConfig, Scenario, Strategy, System, SystemConfig, DEGRADATION_MARGIN,
};
use irs_metrics::{Series, Summary, Table};
use irs_sim::SimTime;

/// The fault profiles the campaign sweeps, worst-knob-per-column style:
/// each non-baseline profile turns one fault family up hard, and
/// `everything` stacks them all.
fn profiles() -> Vec<(&'static str, FaultConfig)> {
    vec![
        ("baseline", FaultConfig::none()),
        ("upcall-storm", FaultConfig::upcall_storm()),
        ("ack-chaos", FaultConfig::ack_chaos()),
        ("wedge", FaultConfig::wedged_guest()),
        ("jitter", FaultConfig::jittery_timer()),
        ("degrade", FaultConfig::degraded_host()),
        ("everything", FaultConfig::everything()),
    ]
}

/// The strategy columns: vanilla credit as the degradation baseline plus
/// the paper's three contenders.
const CHAOS_STRATEGIES: [Strategy; 4] = [
    Strategy::Vanilla,
    Strategy::Ple,
    Strategy::RelaxedCo,
    Strategy::Irs,
];

/// One cell of the campaign grid.
struct Cell {
    /// Measured-VM makespan (ms); falls back to elapsed time when the
    /// horizon truncated the run (only possible with a horizon override).
    makespan_ms: f64,
    /// Whether the measured workload actually completed.
    completed: bool,
    sa_timeouts: u64,
    injected: u64,
}

fn run_cell(
    faults: &FaultConfig,
    strategy: Strategy,
    seed: u64,
    benchmark: &str,
    n_inter: usize,
    horizon: Option<SimTime>,
) -> Cell {
    let mut sc = Scenario::fig5_style(benchmark, n_inter, strategy, seed);
    if let Some(h) = horizon {
        sc.horizon = h;
    }
    let cfg = SystemConfig {
        faults: Some(faults.clone()),
        ..SystemConfig::default()
    };
    let r = System::with_config(sc, cfg).run();
    let m = r.measured();
    Cell {
        makespan_ms: m
            .makespan
            .unwrap_or(r.elapsed)
            .as_nanos() as f64
            / 1e6,
        completed: m.makespan.is_some(),
        sa_timeouts: r.hv.sa_timeouts,
        injected: r.faults.map(|f| f.total()).unwrap_or(0),
    }
}

/// Runs the full grid and builds the table; `horizon` shortens runs for
/// in-crate tests (which also relaxes the must-complete assertion, since a
/// truncated run legitimately ends at the horizon).
fn campaign(opts: Opts, benchmark: &str, n_inter: usize, horizon: Option<SimTime>) -> Table {
    let profiles = profiles();
    let seeds = opts.seeds as usize;
    let n = profiles.len() * CHAOS_STRATEGIES.len() * seeds;
    let cells: Vec<Cell> = parallel::ordered_map(opts.jobs, n, |i| {
        let (pi, rest) = (i / (CHAOS_STRATEGIES.len() * seeds), i % (CHAOS_STRATEGIES.len() * seeds));
        let (si, ki) = (rest / seeds, rest % seeds);
        run_cell(
            &profiles[pi].1,
            CHAOS_STRATEGIES[si],
            opts.base_seed + ki as u64,
            benchmark,
            n_inter,
            horizon,
        )
    });
    let cell = |pi: usize, si: usize, ki: usize| {
        &cells[(pi * CHAOS_STRATEGIES.len() + si) * seeds + ki]
    };

    let mut table = Table::new(format!(
        "Chaos — makespan (ms) under fault injection ({benchmark}, {n_inter} hogs)"
    ));
    let mut means = vec![vec![0.0f64; CHAOS_STRATEGIES.len()]; profiles.len()];
    for (si, strategy) in CHAOS_STRATEGIES.iter().enumerate() {
        let mut series = Series::new(format!("{strategy}"));
        for (pi, (name, _)) in profiles.iter().enumerate() {
            let samples: Vec<f64> = (0..seeds).map(|ki| cell(pi, si, ki).makespan_ms).collect();
            let mean = Summary::of(&samples).mean;
            means[pi][si] = mean;
            series.point((*name).to_string(), mean);
        }
        table.add(series);
    }
    // Diagnostic rows: the campaign is only meaningful if faults are
    // actually landing and the timeout branch actually fires.
    let irs = CHAOS_STRATEGIES
        .iter()
        .position(|s| *s == Strategy::Irs)
        .expect("campaign always sweeps IRS");
    let mut timeouts = Series::new("Irs sa-timeouts");
    let mut injected = Series::new("Irs faults injected");
    for (pi, (name, _)) in profiles.iter().enumerate() {
        let t: u64 = (0..seeds).map(|ki| cell(pi, irs, ki).sa_timeouts).sum();
        let f: u64 = (0..seeds).map(|ki| cell(pi, irs, ki).injected).sum();
        timeouts.point((*name).to_string(), t as f64);
        injected.point((*name).to_string(), f as f64);
    }
    table.add(timeouts);
    table.add(injected);

    // --- the degradation contract -------------------------------------
    if horizon.is_none() {
        for (i, c) in cells.iter().enumerate() {
            assert!(
                c.completed,
                "chaos cell {i} did not complete its measured workload"
            );
        }
    }
    let wedge = profiles
        .iter()
        .position(|(n, _)| *n == "wedge")
        .expect("wedge profile present");
    let wedge_timeouts: u64 = (0..seeds).map(|ki| cell(wedge, irs, ki).sa_timeouts).sum();
    assert!(
        wedge_timeouts > 0,
        "wedged-guest profile never drove the SA timeout force path"
    );
    let vanilla = CHAOS_STRATEGIES
        .iter()
        .position(|s| *s == Strategy::Vanilla)
        .expect("campaign always sweeps vanilla");
    for (pi, (name, _)) in profiles.iter().enumerate() {
        assert!(
            means[pi][irs] <= means[pi][vanilla] * DEGRADATION_MARGIN,
            "IRS degraded past vanilla under '{name}': {:.2} ms vs {:.2} ms",
            means[pi][irs],
            means[pi][vanilla],
        );
    }
    table
}

/// The `figures chaos` campaign: fault profiles × strategies over the
/// fig5-style streamcluster/2-hog scenario.
pub fn chaos(opts: Opts) -> Table {
    campaign(opts, "streamcluster", 2, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance-criteria determinism check: the same seeds render the
    /// same table bytes at `--jobs 1` and `--jobs 2` (EP keeps the test
    /// cheap; the contract is scenario-independent).
    #[test]
    fn chaos_table_is_bit_identical_across_jobs() {
        let mk = |jobs| {
            let opts = Opts {
                seeds: 1,
                base_seed: 1,
                jobs,
            };
            campaign(opts, "EP", 1, None).render()
        };
        assert_eq!(mk(1), mk(2));
    }
}
