//! Regenerates the paper's tables and figures as fixed-width text (and
//! optionally CSV).
//!
//! ```text
//! figures <experiment>... [--seeds N] [--base-seed S] [--jobs N] [--quick] [--csv DIR]
//!
//! experiments:
//!   fig1a fig1b fig2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//!   fairness sa_stats stacking_baseline
//!   ablate_pingpong ablate_idle_first ablate_sa_delay ablate_pull
//!   ablate_slice ablate_pv_spin
//!   perf   (engine self-benchmark; writes BENCH_runner.json)
//!   core   (= the per-figure set used by EXPERIMENTS.md)
//!   all
//! ```
//!
//! `--jobs N` sets the worker-thread count for the run fan-out (default:
//! all available cores). Tables are identical for every worker count.

use irs_bench::fig5_6::Interference;
use irs_bench::Opts;
use irs_metrics::Table;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: figures <experiment>... [--seeds N] [--base-seed S] [--jobs N] [--quick] [--csv DIR]\n\
         experiments: fig1a fig1b fig2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13\n\
         \u{20}            fairness sa_stats stacking_baseline\n\
         \u{20}            ablate_pingpong ablate_idle_first ablate_sa_delay ablate_pull\n\
         \u{20}            ablate_slice ablate_pv_spin ablate_strict_co io_latency\n\
         \u{20}            perf core all"
    );
    std::process::exit(2);
}

/// Builds the tables for one experiment name.
fn run_experiment(exp: &str, opts: Opts) -> Vec<Table> {
    match exp {
        "fig1a" => vec![irs_bench::fig1::fig1a(opts)],
        "fig1b" => vec![irs_bench::fig1::fig1b(opts)],
        "fig2" => vec![irs_bench::fig2::fig2(opts)],
        "fig5" => [
            Interference::Micro,
            Interference::RealApp("streamcluster"),
            Interference::RealApp("fluidanimate"),
        ]
        .into_iter()
        .map(|i| irs_bench::fig5_6::fig5(opts, i))
        .collect(),
        "fig6" => [
            Interference::Micro,
            Interference::RealApp("UA"),
            Interference::RealApp("LU"),
        ]
        .into_iter()
        .map(|i| irs_bench::fig5_6::fig6(opts, i))
        .collect(),
        "fig7" => ["fluidanimate", "streamcluster"]
            .into_iter()
            .map(|bg| irs_bench::fig7_9::fig7(opts, bg))
            .collect(),
        "fig8" => vec![irs_bench::fig8::fig8(opts), irs_bench::fig8::fig8_raw(opts)],
        "fig9" => ["LU", "UA"]
            .into_iter()
            .map(|bg| irs_bench::fig7_9::fig9(opts, bg))
            .collect(),
        "fig10" => vec![irs_bench::fig10_11::fig10(opts)],
        "fig11" => vec![irs_bench::fig10_11::fig11(opts)],
        "fig12" => vec![irs_bench::fig12_13::fig12(opts)],
        "fig13" => vec![irs_bench::fig12_13::fig13(opts)],
        "fairness" => vec![irs_bench::fairness::fairness(opts)],
        "sa_stats" => vec![irs_bench::fairness::sa_stats(opts)],
        "stacking_baseline" => vec![irs_bench::fig12_13::stacking_baseline(opts)],
        "ablate_pingpong" => vec![irs_bench::ablations::ablate_pingpong(opts)],
        "ablate_idle_first" => vec![irs_bench::ablations::ablate_idle_first(opts)],
        "ablate_sa_delay" => vec![irs_bench::ablations::ablate_sa_delay(opts)],
        "ablate_pull" => vec![irs_bench::ablations::ablate_pull(opts)],
        "ablate_slice" => vec![irs_bench::ablations::ablate_slice(opts)],
        "ablate_pv_spin" => vec![irs_bench::ablations::ablate_pv_spin(opts)],
        "io_latency" => vec![irs_bench::io_latency::io_latency(opts)],
        "ablate_strict_co" => vec![irs_bench::ablations::ablate_strict_co(opts)],
        other => {
            eprintln!("unknown experiment: {other}");
            usage();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut opts = Opts::default();
    let mut csv_dir: Option<String> = None;
    let mut experiments: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => opts = Opts { seeds: 1, ..opts },
            "--seeds" => {
                let n = it.next().unwrap_or_else(|| usage());
                opts.seeds = n.parse().unwrap_or_else(|_| usage());
            }
            "--base-seed" => {
                let n = it.next().unwrap_or_else(|| usage());
                opts.base_seed = n.parse().unwrap_or_else(|_| usage());
            }
            "--jobs" => {
                let n = it.next().unwrap_or_else(|| usage());
                opts.jobs = n.parse().unwrap_or_else(|_| usage());
                // Helpers that take no Opts (and `opts.jobs == 0` call
                // sites) resolve through the process default.
                irs_core::parallel::set_default_jobs(opts.jobs);
            }
            "--csv" => {
                csv_dir = Some(it.next().unwrap_or_else(|| usage()));
            }
            other if other.starts_with('-') => usage(),
            other => experiments.push(other.to_string()),
        }
    }

    const CORE: [&str; 14] = [
        "fig1a", "fig1b", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
        "fig12", "fig13", "fairness", "sa_stats",
    ];
    const EXTRA: [&str; 9] = [
        "io_latency",
        "ablate_strict_co",
        "stacking_baseline",
        "ablate_pingpong",
        "ablate_idle_first",
        "ablate_sa_delay",
        "ablate_pull",
        "ablate_slice",
        "ablate_pv_spin",
    ];

    let mut queue: Vec<String> = Vec::new();
    for e in &experiments {
        match e.as_str() {
            "all" => queue.extend(CORE.iter().chain(EXTRA.iter()).map(|s| s.to_string())),
            "core" => queue.extend(CORE.iter().map(|s| s.to_string())),
            other => queue.push(other.to_string()),
        }
    }

    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create csv directory {dir}: {e}");
            std::process::exit(1);
        }
    }

    for exp in queue {
        let start = Instant::now();
        if exp == "perf" {
            let report = irs_bench::perf::perf(opts);
            print!("{}", report.render());
            if let Err(e) = std::fs::write("BENCH_runner.json", report.to_json()) {
                eprintln!("cannot write BENCH_runner.json: {e}");
                std::process::exit(1);
            }
            eprintln!("[perf done in {:.1}s]", start.elapsed().as_secs_f64());
            println!();
            continue;
        }
        let tables = run_experiment(&exp, opts);
        for (i, table) in tables.iter().enumerate() {
            print!("{table}");
            if let Some(dir) = &csv_dir {
                let path = if tables.len() == 1 {
                    format!("{dir}/{exp}.csv")
                } else {
                    format!("{dir}/{exp}_{i}.csv")
                };
                if let Err(e) = std::fs::write(&path, table.to_csv()) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        eprintln!("[{exp} done in {:.1}s]", start.elapsed().as_secs_f64());
        println!();
    }
}
