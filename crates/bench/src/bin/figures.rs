//! Regenerates the paper's tables and figures as fixed-width text (and
//! optionally CSV).
//!
//! ```text
//! figures <experiment>... [--seeds N] [--base-seed S] [--jobs N] [--quick]
//!                         [--check] [--tickless] [--check-perf] [--csv DIR]
//! ```
//!
//! Experiment names are listed by [`usage`], generated from the one
//! [`EXPERIMENTS`] registry (so the help text, the `core`/`all` aliases,
//! and this doc cannot drift apart): the core per-figure set used by
//! EXPERIMENTS.md (`fig1a` … `fig13`, `fairness`, `sa_stats`), the extras
//! (`io_latency`, `ablate_strict_co`, `stacking_baseline`,
//! `ablate_pingpong`, `ablate_idle_first`, `ablate_sa_delay`,
//! `ablate_pull`, `ablate_slice`, `ablate_pv_spin`, `chaos`,
//! `fork_smoke` — also reachable as the `--fork-smoke` flag), `perf`
//! (engine self-benchmark; writes BENCH_runner.json), `fleet` (the
//! datacenter-scale fleet campaign; `--smoke` shrinks it for CI), and
//! `serving` (the open-loop latency-SLO serving campaign; `--smoke`
//! likewise).
//!
//! `--jobs N` sets the worker-thread count for the run fan-out (default:
//! all available cores). Tables are identical for every worker count.
//! `--check` arms the online invariant sanitizer
//! ([`irs_core::check`]) for every simulated run: each system validates
//! scheduler invariants after every event and panics with a trace dump on
//! the first violation. Tables are identical with and without it.
//! `--tickless` arms tickless fast-forward for every run: quiescent timer
//! ticks are elided and replayed in closed form instead of dispatched.
//! Tables are identical with and without it — it only changes wall-clock.
//! `--hosts N` rescales the fleet campaign to an `N`-host fleet (tenant
//! load scales along); its history phase is `fleet-scale` and its
//! `--check-perf` gate ratchets *effective* events/sec (logical volume
//! per wall second) plus a deterministic ≥5× incrementality floor.
//! `--parity` re-runs the fleet campaign with the incremental engine
//! disabled and asserts the SLO tables are bit-identical (no history,
//! no ratchet — it is a correctness gate).
//! `--check-perf` turns `perf` into a regression gate: exit non-zero if
//! the combined speedup (ticked sequential over tickless parallel) falls
//! below its noise-band floor (0.85 — the true ratio is ~1.0 on 1-core
//! boxes), the queue micro-benchmark drops below its absolute floor,
//! or any phase regresses past the ratchet tolerance against the best
//! matching `BENCH_history.jsonl` record (same phase / tickless flag /
//! worker count / host core count). Each `perf` invocation appends one
//! line per measured phase to `BENCH_history.jsonl` for trend tracking;
//! `fleet` and `serving` append one record per campaign (phases `fleet`
//! / `fleet-smoke` / `serving` / `serving-smoke`) and `--check-perf`
//! ratchets their events/sec the same way — except under `--check`,
//! where the sanitizer tax makes runs incomparable and the campaigns
//! neither log nor ratchet.

use irs_bench::fig5_6::Interference;
use irs_bench::Opts;
use irs_metrics::Table;
use std::time::Instant;

/// Every experiment name the dispatcher understands, in presentation
/// order, tagged with whether the `core` alias includes it (`all` takes
/// the whole list). The single source for [`usage`] and alias expansion.
const EXPERIMENTS: [(&str, bool); 27] = [
    ("fig1a", true),
    ("fig1b", true),
    ("fig2", true),
    ("fig5", true),
    ("fig6", true),
    ("fig7", true),
    ("fig8", true),
    ("fig9", true),
    ("fig10", true),
    ("fig11", true),
    ("fig12", true),
    ("fig13", true),
    ("fairness", true),
    ("sa_stats", true),
    ("io_latency", false),
    ("ablate_strict_co", false),
    ("stacking_baseline", false),
    ("ablate_pingpong", false),
    ("ablate_idle_first", false),
    ("ablate_sa_delay", false),
    ("ablate_pull", false),
    ("ablate_slice", false),
    ("ablate_pv_spin", false),
    ("chaos", false),
    ("fork_smoke", false),
    ("fleet", false),
    ("serving", false),
];

fn usage() -> ! {
    let join = |core: bool| {
        EXPERIMENTS
            .iter()
            .filter(|(_, c)| *c == core)
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join(" ")
    };
    eprintln!(
        "usage: figures <experiment>... [--seeds N] [--base-seed S] [--jobs N] [--quick] [--check] [--tickless] [--check-perf] [--smoke] [--hosts N] [--parity] [--csv DIR]\n\
         experiments:\n\
         \u{20} {}\n\
         \u{20} {}\n\
         \u{20} perf   (engine self-benchmark; writes BENCH_runner.json)\n\
         \u{20} core   (= the per-figure set used by EXPERIMENTS.md)\n\
         \u{20} all    (= core + the extras on the second line)",
        join(true),
        join(false),
    );
    std::process::exit(2);
}

/// Builds the tables for one experiment name.
fn run_experiment(exp: &str, opts: Opts) -> Vec<Table> {
    match exp {
        "fig1a" => vec![irs_bench::fig1::fig1a(opts)],
        "fig1b" => vec![irs_bench::fig1::fig1b(opts)],
        "fig2" => vec![irs_bench::fig2::fig2(opts)],
        "fig5" => [
            Interference::Micro,
            Interference::RealApp("streamcluster"),
            Interference::RealApp("fluidanimate"),
        ]
        .into_iter()
        .map(|i| irs_bench::fig5_6::fig5(opts, i))
        .collect(),
        "fig6" => [
            Interference::Micro,
            Interference::RealApp("UA"),
            Interference::RealApp("LU"),
        ]
        .into_iter()
        .map(|i| irs_bench::fig5_6::fig6(opts, i))
        .collect(),
        "fig7" => ["fluidanimate", "streamcluster"]
            .into_iter()
            .map(|bg| irs_bench::fig7_9::fig7(opts, bg))
            .collect(),
        "fig8" => vec![irs_bench::fig8::fig8(opts), irs_bench::fig8::fig8_raw(opts)],
        "fig9" => ["LU", "UA"]
            .into_iter()
            .map(|bg| irs_bench::fig7_9::fig9(opts, bg))
            .collect(),
        "fig10" => vec![irs_bench::fig10_11::fig10(opts)],
        "fig11" => vec![irs_bench::fig10_11::fig11(opts)],
        "fig12" => vec![irs_bench::fig12_13::fig12(opts)],
        "fig13" => vec![irs_bench::fig12_13::fig13(opts)],
        "fairness" => vec![irs_bench::fairness::fairness(opts)],
        "sa_stats" => vec![irs_bench::fairness::sa_stats(opts)],
        "stacking_baseline" => vec![irs_bench::fig12_13::stacking_baseline(opts)],
        "ablate_pingpong" => vec![irs_bench::ablations::ablate_pingpong(opts)],
        "ablate_idle_first" => vec![irs_bench::ablations::ablate_idle_first(opts)],
        "ablate_sa_delay" => vec![irs_bench::ablations::ablate_sa_delay(opts)],
        "ablate_pull" => vec![irs_bench::ablations::ablate_pull(opts)],
        "ablate_slice" => vec![irs_bench::ablations::ablate_slice(opts)],
        "ablate_pv_spin" => vec![irs_bench::ablations::ablate_pv_spin(opts)],
        "io_latency" => vec![irs_bench::io_latency::io_latency(opts)],
        "chaos" => vec![irs_bench::chaos::chaos(opts)],
        "fork_smoke" => vec![irs_bench::fork_smoke::fork_smoke(opts)],
        "ablate_strict_co" => vec![irs_bench::ablations::ablate_strict_co(opts)],
        other => {
            eprintln!("unknown experiment: {other}");
            usage();
        }
    }
}

/// The current commit and unix time, stamped into every history record.
fn commit_and_timestamp() -> (String, u64) {
    let commit = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    (commit, timestamp)
}

/// Appends records to `BENCH_history.jsonl` (append-only trend log: one
/// line per measured phase, each tagged with commit, timestamp, and
/// configuration — including the host core count — so `--check-perf`
/// can ratchet against matching records only). History is best-effort —
/// a read-only checkout warns instead of failing the benchmark.
fn append_history(lines: &str) {
    let appended = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open("BENCH_history.jsonl")
        .and_then(|mut f| std::io::Write::write_all(&mut f, lines.as_bytes()));
    if let Err(e) = appended {
        eprintln!("cannot append to BENCH_history.jsonl: {e}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut opts = Opts::default();
    let mut csv_dir: Option<String> = None;
    let mut check_perf = false;
    let mut smoke = false;
    let mut hosts: Option<usize> = None;
    let mut parity = false;
    let mut experiments: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => opts = Opts { seeds: 1, ..opts },
            "--seeds" => {
                let n = it.next().unwrap_or_else(|| usage());
                opts.seeds = n.parse().unwrap_or_else(|_| usage());
            }
            "--base-seed" => {
                let n = it.next().unwrap_or_else(|| usage());
                opts.base_seed = n.parse().unwrap_or_else(|_| usage());
            }
            "--jobs" => {
                let n = it.next().unwrap_or_else(|| usage());
                opts.jobs = n.parse().unwrap_or_else(|_| usage());
                // Helpers that take no Opts (and `opts.jobs == 0` call
                // sites) resolve through the process default.
                irs_core::parallel::set_default_jobs(opts.jobs);
            }
            "--check" => irs_core::check::set_check_enabled(true),
            "--tickless" => irs_core::set_tickless_enabled(true),
            "--check-perf" => check_perf = true,
            // Shrinks the fleet campaign to its CI variant.
            "--smoke" => smoke = true,
            // Rescales the fleet campaign (phase `fleet-scale`).
            "--hosts" => {
                let n = it.next().unwrap_or_else(|| usage());
                hosts = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            // Incremental-vs-full bit-identity gate for the fleet.
            "--parity" => parity = true,
            // Flag alias so CI scripts read as "run the smoke" rather
            // than an experiment name; equivalent to `fork_smoke`.
            "--fork-smoke" => experiments.push("fork_smoke".to_string()),
            "--csv" => {
                csv_dir = Some(it.next().unwrap_or_else(|| usage()));
            }
            other if other.starts_with('-') => usage(),
            other => experiments.push(other.to_string()),
        }
    }

    let mut queue: Vec<String> = Vec::new();
    for e in &experiments {
        match e.as_str() {
            "all" => queue.extend(EXPERIMENTS.iter().map(|(n, _)| n.to_string())),
            "core" => queue.extend(
                EXPERIMENTS
                    .iter()
                    .filter(|(_, core)| *core)
                    .map(|(n, _)| n.to_string()),
            ),
            other => {
                if other != "perf" && !EXPERIMENTS.iter().any(|(n, _)| *n == other) {
                    eprintln!("unknown experiment: {other}");
                    usage();
                }
                queue.push(other.to_string());
            }
        }
    }

    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create csv directory {dir}: {e}");
            std::process::exit(1);
        }
    }

    for exp in queue {
        let start = Instant::now();
        if exp == "perf" {
            let report = irs_bench::perf::perf(opts);
            print!("{}", report.render());
            if let Err(e) = std::fs::write("BENCH_runner.json", report.to_json()) {
                eprintln!("cannot write BENCH_runner.json: {e}");
                std::process::exit(1);
            }
            // Read the trend log *before* appending so the ratchet
            // compares against prior invocations, not this one.
            let history = std::fs::read_to_string("BENCH_history.jsonl").unwrap_or_default();
            let (commit, timestamp) = commit_and_timestamp();
            append_history(&report.to_history_lines(
                &commit,
                timestamp,
                irs_bench::perf::host_cores(),
            ));
            eprintln!("[perf done in {:.1}s]", start.elapsed().as_secs_f64());
            println!();
            if check_perf {
                let failures = report.check_perf(&history);
                if !failures.is_empty() {
                    for f in &failures {
                        eprintln!("perf regression: {f}");
                    }
                    std::process::exit(1);
                }
            }
            continue;
        }
        if exp == "fleet" {
            let outcome = if parity {
                irs_bench::fleet::assert_incremental_parity(opts, smoke, hosts)
            } else {
                irs_bench::fleet::fleet(opts, smoke, hosts)
            };
            for (i, table) in outcome.report.tables.iter().enumerate() {
                print!("{table}");
                if let Some(dir) = &csv_dir {
                    let path = format!("{dir}/fleet_{i}.csv");
                    if let Err(e) = std::fs::write(&path, table.to_csv()) {
                        eprintln!("cannot write {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            print!("{}", outcome.report.accounting);
            if let Some(dir) = &csv_dir {
                let path = format!("{dir}/fleet_accounting.csv");
                if let Err(e) = std::fs::write(&path, outcome.report.accounting.to_csv()) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
            let cache = &outcome.report.cache;
            eprintln!(
                "[fleet done in {:.1}s: {} hosts, {} host runs ({} elided, {} carried), \
                 {} events logical ({:.0}/s effective), {} executed ({:.0}/s), \
                 fork_warmup_saved={}, cache hit rate {:.1}% ({:.1} MiB resident, \
                 {} evictions), {} tenants placed, {} rejected{}]",
                outcome.wall_s,
                outcome.hosts,
                outcome.report.host_runs,
                outcome.report.runs_elided,
                outcome.report.hosts_carried,
                outcome.report.events,
                irs_bench::fleet::effective_events_per_sec(&outcome),
                irs_bench::fleet::events_executed(&outcome),
                irs_bench::fleet::events_per_sec(&outcome),
                outcome.report.fork_warmup_saved,
                100.0 * cache.hit_rate().max(0.0),
                cache.resident_bytes as f64 / (1 << 20) as f64,
                cache.evictions,
                outcome.report.tenants_placed,
                outcome.report.tenants_rejected,
                if parity { "; incremental parity OK" } else { "" },
            );
            // Sanitized runs pay the invariant-checking tax and parity
            // runs pay a full re-simulation, so neither is comparable to
            // normal records: neither log them nor ratchet against them
            // (same split as `perf` vs the --check sweeps in
            // scripts/verify.sh).
            if irs_core::check::check_enabled() || parity {
                println!();
                continue;
            }
            let jobs = irs_core::parallel::resolve_jobs(opts.jobs);
            let cores = irs_bench::perf::host_cores();
            let history = std::fs::read_to_string("BENCH_history.jsonl").unwrap_or_default();
            let (commit, timestamp) = commit_and_timestamp();
            append_history(&irs_bench::fleet::history_line(
                &outcome, &commit, timestamp, jobs, cores,
            ));
            println!();
            if check_perf {
                let failures = irs_bench::fleet::check_fleet_perf(&outcome, &history, jobs, cores);
                if !failures.is_empty() {
                    for f in &failures {
                        eprintln!("perf regression: {f}");
                    }
                    std::process::exit(1);
                }
            }
            continue;
        }
        if exp == "serving" {
            let outcome = irs_bench::serving::serving(opts, smoke);
            print!("{}", outcome.table);
            if let Some(dir) = &csv_dir {
                let path = format!("{dir}/serving.csv");
                if let Err(e) = std::fs::write(&path, outcome.table.to_csv()) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
            eprintln!(
                "[serving done in {:.1}s: {} runs, {} requests, {} events ({:.0}/s)]",
                outcome.wall_s,
                outcome.runs,
                outcome.requests,
                outcome.events,
                irs_bench::serving::events_per_sec(&outcome),
            );
            // Same record/ratchet split as `fleet`: sanitized runs are
            // incomparable, so they neither log nor ratchet.
            if irs_core::check::check_enabled() {
                println!();
                continue;
            }
            let jobs = irs_core::parallel::resolve_jobs(opts.jobs);
            let cores = irs_bench::perf::host_cores();
            let history = std::fs::read_to_string("BENCH_history.jsonl").unwrap_or_default();
            let (commit, timestamp) = commit_and_timestamp();
            append_history(&irs_bench::serving::history_line(
                &outcome, &commit, timestamp, jobs, cores,
            ));
            println!();
            if check_perf {
                let failures =
                    irs_bench::serving::check_serving_perf(&outcome, &history, jobs, cores);
                if !failures.is_empty() {
                    for f in &failures {
                        eprintln!("perf regression: {f}");
                    }
                    std::process::exit(1);
                }
            }
            continue;
        }
        let tables = run_experiment(&exp, opts);
        for (i, table) in tables.iter().enumerate() {
            print!("{table}");
            if let Some(dir) = &csv_dir {
                let path = if tables.len() == 1 {
                    format!("{dir}/{exp}.csv")
                } else {
                    format!("{dir}/{exp}_{i}.csv")
                };
                if let Err(e) = std::fs::write(&path, table.to_csv()) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        eprintln!("[{exp} done in {:.1}s]", start.elapsed().as_secs_f64());
        println!();
    }
}
