//! # irs-bench — the figure harness
//!
//! One function per table/figure of the paper's evaluation; each returns an
//! [`irs_metrics::Table`] whose rendering prints the same rows/series the
//! paper plots. The `figures` binary is the CLI front end; the Criterion
//! benches reuse scaled-down versions of the same functions.
//!
//! Figure functions are deterministic given [`Opts`]: every data point is
//! the mean over `opts.seeds` seeded repetitions (the paper averages five
//! runs; `--quick` drops to one for smoke testing).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod chaos;
pub mod fairness;
pub mod fig1;
pub mod fig2;
pub mod fig5_6;
pub mod fig7_9;
pub mod fig8;
pub mod fig10_11;
pub mod fig12_13;
pub mod fleet;
pub mod fork_smoke;
pub mod io_latency;
pub mod perf;
pub mod serving;

use irs_core::{runner, Scenario, Strategy};

/// Repetition options shared by every figure function.
#[derive(Debug, Clone, Copy)]
pub struct Opts {
    /// Seeded repetitions per data point (paper: 5).
    pub seeds: u64,
    /// First seed; repetition `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Worker threads for the run fan-out; `0` means the process default
    /// (`--jobs` flag, else all available cores). Any value produces
    /// identical tables — see [`irs_core::parallel`].
    pub jobs: usize,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            seeds: 3,
            base_seed: 1,
            jobs: 0,
        }
    }
}

impl Opts {
    /// Single-seed smoke-test options.
    pub fn quick() -> Self {
        Opts {
            seeds: 1,
            base_seed: 1,
            jobs: 0,
        }
    }
}

/// Mean makespan (ms) of the measured VM for `make(seed)` over the seeds.
pub fn mean_makespan_ms<F>(opts: Opts, make: F) -> f64
where
    F: Fn(u64) -> Scenario + Sync,
{
    runner::mean_makespan_ms_jobs(opts.base_seed, opts.seeds, opts.jobs, make)
}

/// Mean improvement (%) of `strategy` over vanilla for the same scenario
/// constructor — the y-axis of Figs 5, 6, 10, 11, 12, 13. Baseline and
/// variant repetitions share one parallel fan-out.
pub fn improvement_over_vanilla<F>(opts: Opts, strategy: Strategy, make: F) -> f64
where
    F: Fn(Strategy, u64) -> Scenario + Sync,
{
    runner::mean_improvement_pct_jobs(
        opts.base_seed,
        opts.seeds,
        opts.jobs,
        |s| make(Strategy::Vanilla, s),
        |s| make(strategy, s),
    )
}

/// The strategy columns the paper's grouped bar charts use.
pub const STRATEGIES: [Strategy; 3] = [Strategy::Ple, Strategy::RelaxedCo, Strategy::Irs];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_opts_are_single_seed() {
        assert_eq!(Opts::quick().seeds, 1);
        assert_eq!(Opts::default().seeds, 3);
    }

    #[test]
    fn improvement_helper_matches_direct_computation() {
        let opts = Opts::quick();
        let make = |strat, seed| Scenario::fig5_style("EP", 1, strat, seed);
        let base = mean_makespan_ms(opts, |s| make(Strategy::Vanilla, s));
        let irs = mean_makespan_ms(opts, |s| make(Strategy::Irs, s));
        let expected = irs_metrics::improvement_pct(base, irs);
        let got = improvement_over_vanilla(opts, Strategy::Irs, make);
        assert!((expected - got).abs() < 1e-9);
        assert!(got > 10.0, "EP under 1-inter must benefit from IRS");
    }
}
