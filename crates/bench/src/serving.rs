//! `figures serving` — the open-loop latency-SLO serving campaign, plus
//! its BENCH_history.jsonl records and `--check-perf` ratchet.
//!
//! A two-tier request service ([`presets::server::serving_tiers`]) is
//! driven by deterministic open-loop Poisson arrivals and measured under
//! 0–3 CPU hogs, vanilla vs IRS. Because latency is anchored at each
//! request's *scheduled arrival instant*, the tail percentiles include
//! every microsecond the service fell behind its schedule (no
//! coordinated omission) — the metric a latency SLO is actually written
//! against. The table reports p50/p99/p999 service latency, goodput,
//! and the in-flight requests truncated at the horizon; it is
//! bit-identical for every `--jobs` value. `--smoke` shrinks the grid
//! and horizon for CI and asserts the same cell contracts.

use crate::perf::{json_raw_field, json_str_field, json_usize_field};
use crate::Opts;
use irs_core::{parallel, RunResult, Scenario, Strategy, VmScenario};
use irs_metrics::{percentile, Series, Summary, Table};
use irs_sim::SimTime;
use irs_workloads::presets;
use std::time::Instant;

/// Measurement horizon of the full campaign.
pub const HORIZON: SimTime = SimTime::from_secs(10);
/// Measurement horizon of the `--smoke` variant.
pub const SMOKE_HORIZON: SimTime = SimTime::from_secs(2);

/// Offered load as a fraction of the slower tier's capacity.
pub const OFFERED_LOAD: f64 = 0.6;

/// Ratchet tolerance for the serving phase, matching the perf gate's.
const RATCHET_FRAC: f64 = 0.5;

/// The two strategy arms, in table-row order.
const ARMS: [(Strategy, &str); 2] = [(Strategy::Vanilla, "van"), (Strategy::Irs, "irs")];

/// Campaign outcome plus the wall-clock facts the history record needs.
#[derive(Debug, Clone)]
pub struct ServingOutcome {
    /// The latency-SLO table (p50/p99/p999, goodput, truncated tail).
    pub table: Table,
    /// Discrete events across all runs.
    pub events: u64,
    /// Individual simulated runs (cells × seeds).
    pub runs: usize,
    /// Completed requests across all runs.
    pub requests: u64,
    /// Wall-clock of the whole campaign, seconds.
    pub wall_s: f64,
    /// Whether this was the `--smoke` variant (separate history phase).
    pub smoke: bool,
}

/// The serving scenario: a 4-vCPU two-tier service pinned one-to-one,
/// sharing its pCPUs with `n_inter` pinned CPU hogs.
pub fn serving_scenario(
    n_inter: usize,
    strategy: Strategy,
    seed: u64,
    horizon: SimTime,
) -> Scenario {
    let s = Scenario::new(4, strategy, seed).vm(
        VmScenario::new(presets::server::serving_tiers(2, 2, OFFERED_LOAD), 4)
            .pin_one_to_one()
            .measured(),
    );
    let s = if n_inter == 0 {
        s
    } else {
        s.vm(VmScenario::new(presets::hog::cpu_hogs(n_inter), 4).pin_one_to_one())
    };
    s.horizon(horizon)
}

/// Runs the campaign grid — interference levels × both arms × seeds —
/// through one ordered fan-out, and assembles the SLO table.
///
/// # Panics
///
/// Panics if any cell completes no requests: every percentile in the
/// table is load-bearing, and a NaN cell here would mean the load
/// generator never ran.
pub fn serving(opts: Opts, smoke: bool) -> ServingOutcome {
    let (horizon, inters): (SimTime, Vec<usize>) =
        if smoke { (SMOKE_HORIZON, vec![0, 2]) } else { (HORIZON, vec![0, 1, 2, 3]) };

    // Flat cell list in presentation order; `ordered_map` returns results
    // in the same order regardless of worker count, so aggregation below
    // is jobs-invariant.
    let cells: Vec<(usize, usize, u64)> = inters
        .iter()
        .flat_map(|&n| {
            (0..ARMS.len()).flat_map(move |arm| {
                (0..opts.seeds).map(move |i| (n, arm, opts.base_seed + i))
            })
        })
        .collect();
    let t = Instant::now();
    let results: Vec<RunResult> = parallel::ordered_map(opts.jobs, cells.len(), |i| {
        let (n_inter, arm, seed) = cells[i];
        serving_scenario(n_inter, ARMS[arm].0, seed, horizon).run()
    });
    let wall_s = t.elapsed().as_secs_f64();

    let mut table = Table::new(format!(
        "Serving SLO — open-loop two-tier service latency (µs) under CPU-hog \
         interference ({:.0} s horizon, load {OFFERED_LOAD}, {} seed(s))",
        horizon.as_secs_f64(),
        opts.seeds,
    ));
    let mut series: Vec<Series> = ["p50", "p99", "p999", "goodput rps", "req-trunc"]
        .iter()
        .flat_map(|m| ARMS.iter().map(move |(_, a)| Series::new(format!("{a} {m}"))))
        .collect();
    let mut events = 0u64;
    let mut requests = 0u64;
    for (ci, &n_inter) in inters.iter().enumerate() {
        let col = format!("{n_inter}-inter.");
        for (arm, (_, arm_label)) in ARMS.iter().enumerate() {
            // Pool latencies across seeds (percentiles of the pooled
            // sample), average goodput, and total the truncated tail.
            let mut lat: Vec<f64> = Vec::new();
            let mut goodput: Vec<f64> = Vec::new();
            let mut trunc = 0u64;
            for i in 0..opts.seeds as usize {
                let r = &results[(ci * ARMS.len() + arm) * opts.seeds as usize + i];
                let m = r.measured();
                lat.extend_from_slice(&m.latencies_us);
                goodput.push(m.throughput_rps(r.elapsed));
                trunc += m.requests_truncated;
                events += r.events;
                requests += m.requests;
            }
            assert!(
                !lat.is_empty(),
                "serving cell {col}/{arm_label} completed no requests"
            );
            let vals = [
                percentile(&lat, 50.0),
                percentile(&lat, 99.0),
                percentile(&lat, 99.9),
                Summary::of(&goodput).mean,
                trunc as f64,
            ];
            for (mi, v) in vals.into_iter().enumerate() {
                series[mi * ARMS.len() + arm].point(col.clone(), v);
            }
        }
    }
    for s in series {
        table.add(s);
    }
    ServingOutcome {
        table,
        events,
        runs: cells.len(),
        requests,
        wall_s,
        smoke,
    }
}

/// Simulation throughput of the campaign (events per wall second).
pub fn events_per_sec(o: &ServingOutcome) -> f64 {
    o.events as f64 / o.wall_s.max(1e-9)
}

/// History phase name; smoke and full campaigns ratchet separately
/// (they simulate different grids).
pub fn phase(o: &ServingOutcome) -> &'static str {
    if o.smoke {
        "serving-smoke"
    } else {
        "serving"
    }
}

/// One BENCH_history.jsonl record for this campaign, shaped like the
/// perf and fleet phases' records so one trend log covers all three.
pub fn history_line(
    o: &ServingOutcome,
    commit: &str,
    timestamp: u64,
    jobs: usize,
    cores: usize,
) -> String {
    format!(
        "{{\"commit\": \"{commit}\", \"timestamp\": {timestamp}, \"phase\": \"{}\", \
         \"tickless\": {}, \"jobs\": {jobs}, \"cores\": {cores}, \
         \"events_per_sec\": {:.0}, \"runs\": {}, \"requests\": {}}}\n",
        phase(o),
        irs_core::tickless_enabled(),
        events_per_sec(o),
        o.runs,
        o.requests,
    )
}

/// The serving side of `--check-perf`: ratchets the campaign's
/// events/sec against the best matching history record (same phase,
/// tickless flag, worker count, and host core count).
pub fn check_serving_perf(
    o: &ServingOutcome,
    history: &str,
    jobs: usize,
    cores: usize,
) -> Vec<String> {
    let tickless = irs_core::tickless_enabled();
    let current = events_per_sec(o);
    let best = history
        .lines()
        .filter(|l| {
            json_str_field(l, "phase").as_deref() == Some(phase(o))
                && crate::perf::json_bool_field(l, "tickless") == Some(tickless)
                && json_usize_field(l, "jobs") == Some(jobs)
                && json_usize_field(l, "cores") == Some(cores)
        })
        .filter_map(|l| {
            json_raw_field(l, "events_per_sec")
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|v| v.is_finite() && *v > 0.0)
        })
        .fold(f64::NAN, f64::max);
    if best.is_finite() && current < RATCHET_FRAC * best {
        vec![format!(
            "{} phase ratchet: {current:.0} events_per_sec is below {:.0}% of the best \
             matching record ({best:.0}; tickless={tickless}, jobs={jobs}, cores={cores})",
            phase(o),
            RATCHET_FRAC * 100.0,
        )]
    } else {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(smoke: bool) -> ServingOutcome {
        ServingOutcome {
            table: Table::new("t"),
            events: 10_000,
            runs: 4,
            requests: 800,
            wall_s: 2.0,
            smoke,
        }
    }

    #[test]
    fn history_line_is_one_self_describing_record() {
        let l = history_line(&outcome(true), "abc1234", 1_700_000_000, 2, 4);
        assert!(l.ends_with("}\n"));
        assert_eq!(json_str_field(&l, "phase").as_deref(), Some("serving-smoke"));
        assert_eq!(json_usize_field(&l, "jobs"), Some(2));
        assert_eq!(json_usize_field(&l, "cores"), Some(4));
        assert_eq!(json_raw_field(&l, "events_per_sec").as_deref(), Some("5000"));
        assert_eq!(json_raw_field(&l, "requests").as_deref(), Some("800"));
    }

    #[test]
    fn serving_ratchet_matches_config_and_fires() {
        let o = outcome(false);
        let good = "{\"phase\": \"serving\", \"tickless\": false, \"jobs\": 2, \"cores\": 4, \"events_per_sec\": 6000}\n";
        assert!(check_serving_perf(&o, good, 2, 4).is_empty());
        let fast = "{\"phase\": \"serving\", \"tickless\": false, \"jobs\": 2, \"cores\": 4, \"events_per_sec\": 99999999}\n";
        let failures = check_serving_perf(&o, fast, 2, 4);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("serving phase ratchet"));
        // Other phase, jobs, or cores: ignored.
        assert!(check_serving_perf(&o, fast, 4, 4).is_empty());
        assert!(check_serving_perf(&o, fast, 2, 64).is_empty());
        let smoke_rec = fast.replace("\"serving\"", "\"serving-smoke\"");
        assert!(check_serving_perf(&o, &smoke_rec, 2, 4).is_empty());
    }

    #[test]
    fn smoke_table_is_jobs_invariant() {
        // The headline determinism contract: bit-identical rendering at
        // any worker count.
        let mk = |jobs| {
            serving(
                Opts {
                    seeds: 1,
                    base_seed: 1,
                    jobs,
                },
                true,
            )
        };
        let one = mk(1);
        let two = mk(2);
        assert_eq!(one.table.render(), two.table.render());
        assert_eq!(one.events, two.events);
        assert_eq!(one.requests, two.requests);
        // The truncated-tail row is part of the table contract.
        assert!(one.table.render().contains("req-trunc"));
    }
}
