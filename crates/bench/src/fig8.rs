//! Figure 8: multi-threaded server workloads (§5.3) — SPECjbb-like
//! closed-loop throughput/latency and ab-like open-loop tail latency,
//! improvement of IRS over vanilla under 1–4 CPU hogs.

use crate::Opts;
use irs_core::{Scenario, Strategy, VmScenario};
use irs_metrics::{improvement_pct, Series, Summary, Table};
use irs_sim::SimTime;
use irs_workloads::presets;

/// Measurement horizon for the server runs.
pub const HORIZON: SimTime = SimTime::from_secs(10);

/// Outcome of one server run.
#[derive(Debug, Clone, Copy)]
pub struct ServerNumbers {
    /// Requests per second.
    pub throughput_rps: f64,
    /// Mean request latency (µs).
    pub mean_latency_us: f64,
    /// 99th-percentile latency (µs).
    pub p99_latency_us: f64,
}

fn specjbb_scenario(n_inter: usize, strategy: Strategy, seed: u64) -> Scenario {
    Scenario::new(4, strategy, seed)
        .vm(VmScenario::new(presets::server::specjbb(4), 4).pin_one_to_one().measured())
        .vm(VmScenario::new(presets::hog::cpu_hogs(n_inter), 4).pin_one_to_one())
        .horizon(HORIZON)
}

fn ab_scenario(n_inter: usize, strategy: Strategy, seed: u64) -> Scenario {
    // 512 worker threads (MaxClient), open loop at 45% of 4-vCPU capacity —
    // stable even at 4-inter, where the VM's effective capacity halves.
    Scenario::new(4, strategy, seed)
        .vm(
            VmScenario::new(presets::server::apache_ab(512, 4, 0.45), 4)
                .pin_one_to_one()
                .measured(),
        )
        .vm(VmScenario::new(presets::hog::cpu_hogs(n_inter), 4).pin_one_to_one())
        .horizon(HORIZON)
}

/// Runs one server scenario and extracts the numbers.
pub fn run_server<F>(opts: Opts, make: F) -> ServerNumbers
where
    F: Fn(u64) -> Scenario,
{
    let mut thr = Vec::new();
    let mut mean = Vec::new();
    let mut p99 = Vec::new();
    for i in 0..opts.seeds {
        let r = make(opts.base_seed + i).run();
        let m = r.measured();
        thr.push(m.throughput_rps(r.elapsed));
        mean.push(m.mean_latency_us());
        p99.push(m.latency_percentile_us(99.0));
    }
    ServerNumbers {
        throughput_rps: Summary::of(&thr).mean,
        mean_latency_us: Summary::of(&mean).mean,
        p99_latency_us: Summary::of(&p99).mean,
    }
}

/// Fig 8: throughput and latency improvement of IRS over vanilla for
/// specjbb (mean new-order latency) and ab (99th percentile), under 1–4
/// hogs.
pub fn fig8(opts: Opts) -> Table {
    let mut table =
        Table::new("Fig 8 — improvement on server throughput and latency (IRS vs vanilla, %)");
    let mut thr_jbb = Series::new("specjbb throughput");
    let mut lat_jbb = Series::new("specjbb latency (99th)");
    let mut thr_ab = Series::new("ab throughput");
    let mut lat_ab = Series::new("ab latency (99th)");
    for n_inter in 1..=4usize {
        let label = format!("{n_inter}-inter.");
        let jbb_v = run_server(opts, |s| specjbb_scenario(n_inter, Strategy::Vanilla, s));
        let jbb_i = run_server(opts, |s| specjbb_scenario(n_inter, Strategy::Irs, s));
        // Throughput is a benefit metric: improvement = (new-old)/old.
        thr_jbb.point(
            label.clone(),
            (jbb_i.throughput_rps - jbb_v.throughput_rps) / jbb_v.throughput_rps * 100.0,
        );
        lat_jbb.point(
            label.clone(),
            improvement_pct(jbb_v.p99_latency_us, jbb_i.p99_latency_us),
        );
        let ab_v = run_server(opts, |s| ab_scenario(n_inter, Strategy::Vanilla, s));
        let ab_i = run_server(opts, |s| ab_scenario(n_inter, Strategy::Irs, s));
        thr_ab.point(
            label.clone(),
            (ab_i.throughput_rps - ab_v.throughput_rps) / ab_v.throughput_rps * 100.0,
        );
        lat_ab.point(label, improvement_pct(ab_v.p99_latency_us, ab_i.p99_latency_us));
    }
    table.add(thr_jbb);
    table.add(lat_jbb);
    table.add(thr_ab);
    table.add(lat_ab);
    table
}

/// Raw server numbers (both strategies) — useful for EXPERIMENTS.md.
pub fn fig8_raw(opts: Opts) -> Table {
    let mut table = Table::new("Fig 8 (raw) — server numbers per strategy");
    for (name, jbb) in [("specjbb", true), ("ab", false)] {
        for strategy in [Strategy::Vanilla, Strategy::Irs] {
            let mut thr = Series::new(format!("{name} {strategy} thr (rps)"));
            let mut lat = Series::new(format!("{name} {strategy} lat (us)"));
            for n_inter in 1..=4usize {
                let nums = if jbb {
                    run_server(opts, |s| specjbb_scenario(n_inter, strategy, s))
                } else {
                    run_server(opts, |s| ab_scenario(n_inter, strategy, s))
                };
                let label = format!("{n_inter}-inter.");
                thr.point(label.clone(), nums.throughput_rps);
                lat.point(label, nums.p99_latency_us);
            }
            table.add(thr);
            table.add(lat);
        }
    }
    table
}
