//! `figures fleet` — the datacenter-scale fleet campaign
//! (`irs_fleet`), sized for the CLI, plus its BENCH_history.jsonl
//! records and `--check-perf` ratchet.
//!
//! The full campaign runs a 120-host fleet over three churn epochs:
//! three placement policies × five adversary mixes, plus an overcommit
//! sweep, every cell simulated under both vanilla and IRS and held to
//! the degradation contract ([`irs_core::DEGRADATION_MARGIN`]). The
//! `--smoke` variant shrinks the fleet (16 hosts, 2 policies × 2 mixes)
//! for CI; it asserts the same contract. `--hosts N` rescales the fleet
//! shape (tenant load grows proportionally) — the *scale* configuration,
//! whose history phase is `fleet-scale` and whose ratchet tracks
//! *effective* throughput: logical events (what a non-incremental
//! campaign would have simulated) per wall second. The incremental
//! engine (dirty-host carry-over + composition-keyed snapshot/result
//! cache) is what makes 1000-host fleets affordable; `--parity`
//! re-runs the campaign with incrementality disabled and asserts the
//! SLO tables are bit-identical.

use crate::perf::{json_raw_field, json_str_field, json_usize_field};
use crate::Opts;
use irs_fleet::{AdversaryMix, CampaignSpec, FleetConfig, FleetReport, PlacementPolicy};
use std::time::Instant;

/// Campaign outcome plus the wall-clock facts the history record needs.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The campaign report (tables, elision accounting, churn).
    pub report: FleetReport,
    /// Wall-clock of the whole campaign, seconds.
    pub wall_s: f64,
    /// Whether this was the `--smoke` variant (separate history phase).
    pub smoke: bool,
    /// Fleet size actually simulated (default, smoke, or `--hosts`).
    pub hosts: usize,
    /// Whether `--hosts` rescaled the fleet (the `fleet-scale` phase).
    pub scale: bool,
}

/// Ratchet tolerance for the fleet phases, matching the perf gate's.
const RATCHET_FRAC: f64 = 0.5;

/// The scale configuration's incrementality floor: the logical event
/// volume must be at least this multiple of what was actually executed
/// (counter-based, so the gate is deterministic).
const SCALE_MIN_ELISION: u64 = 5;

/// Builds the campaign spec for the CLI: full-size by default, the CI
/// smoke variant with `smoke`, rescaled to `hosts` when given (tenant
/// load scales with the fleet so occupancy stays comparable).
/// `opts.base_seed` seeds the fleet; `opts.seeds` is ignored (the
/// campaign is a population study — its sample count is tenant-epochs,
/// not repeated runs).
pub fn spec(opts: Opts, smoke: bool, hosts: Option<usize>) -> CampaignSpec {
    let mut fleet = FleetConfig {
        seed: opts.base_seed,
        jobs: opts.jobs,
        ..FleetConfig::default()
    };
    if smoke {
        fleet = FleetConfig {
            hosts: 16,
            epochs: 2,
            initial_tenants: 28,
            arrivals_per_epoch: 8,
            ..fleet
        };
    }
    if let Some(n) = hosts {
        // Stock ratios: 120 hosts carry 300 initial tenants and 100
        // arrivals per epoch — 5/2 and 5/6 per host.
        fleet.hosts = n;
        fleet.initial_tenants = n * 5 / 2;
        fleet.arrivals_per_epoch = (n * 5 / 6).max(1);
    }
    if smoke {
        CampaignSpec {
            fleet,
            policies: vec![PlacementPolicy::FirstFit, PlacementPolicy::InterferenceAware],
            mixes: vec![AdversaryMix::CLEAN, AdversaryMix::BLEND],
            overcommit_sweep: vec![],
            assert_contract: true,
        }
    } else {
        CampaignSpec {
            fleet,
            policies: vec![
                PlacementPolicy::FirstFit,
                PlacementPolicy::WorstFit,
                PlacementPolicy::InterferenceAware,
            ],
            mixes: vec![
                AdversaryMix::CLEAN,
                AdversaryMix::BOOST,
                AdversaryMix::STEAL,
                AdversaryMix::EVADE,
                AdversaryMix::BLEND,
            ],
            overcommit_sweep: vec![1.0, 1.5, 2.0],
            assert_contract: true,
        }
    }
}

/// Runs the fleet campaign and times it.
///
/// # Panics
///
/// Panics if any cell violates the degradation contract, or if warmup
/// sharing shared nothing (a fleet without repeated compositions would
/// mean the churn model degenerated).
pub fn fleet(opts: Opts, smoke: bool, hosts: Option<usize>) -> FleetOutcome {
    let spec = spec(opts, smoke, hosts);
    let fleet_hosts = spec.fleet.hosts;
    let t = Instant::now();
    let report = irs_fleet::run_campaign(&spec);
    let wall_s = t.elapsed().as_secs_f64();
    assert!(
        report.fork_warmup_saved > 0,
        "fleet campaign shared no warmups across equal-composition hosts"
    );
    FleetOutcome {
        report,
        wall_s,
        smoke,
        hosts: fleet_hosts,
        scale: hosts.is_some() && !smoke,
    }
}

/// Runs the campaign twice — incremental and full — and asserts the SLO
/// tables are bit-identical (the incremental-parity gate). Returns the
/// incremental outcome; the full run is compared and dropped.
///
/// # Panics
///
/// Panics on any table divergence or logical-counter mismatch.
pub fn assert_incremental_parity(opts: Opts, smoke: bool, hosts: Option<usize>) -> FleetOutcome {
    let mut inc_spec = spec(opts, smoke, hosts);
    inc_spec.fleet.incremental = true;
    let mut full_spec = inc_spec.clone();
    full_spec.fleet.incremental = false;
    let outcome = fleet(opts, smoke, hosts);
    let full = irs_fleet::run_campaign(&full_spec);
    let render = |r: &FleetReport| {
        r.tables
            .iter()
            .map(|t| t.render())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        render(&full),
        render(&outcome.report),
        "incremental SLO tables diverged from full re-simulation"
    );
    assert_eq!(full.events, outcome.report.events, "logical events diverged");
    assert_eq!(full.host_runs, outcome.report.host_runs, "host runs diverged");
    assert!(
        outcome.report.runs_elided > 0,
        "parity held but incrementality elided nothing"
    );
    outcome
}

/// Events actually executed: the logical volume minus both savings
/// layers (shared warmups and elided member runs).
pub fn events_executed(o: &FleetOutcome) -> u64 {
    o.report
        .events
        .saturating_sub(o.report.fork_warmup_saved)
        .saturating_sub(o.report.events_elided)
}

/// Simulation throughput of the campaign: events actually executed per
/// wall second (the engine-speed metric — elided work excluded).
pub fn events_per_sec(o: &FleetOutcome) -> f64 {
    events_executed(o) as f64 / o.wall_s.max(1e-9)
}

/// *Effective* throughput: logical events per wall second — what the
/// campaign delivers per second counting carried/memoized host runs at
/// face value. This is the `fleet-scale` ratchet metric: it rises with
/// both engine speed and elision rate.
pub fn effective_events_per_sec(o: &FleetOutcome) -> f64 {
    o.report.events as f64 / o.wall_s.max(1e-9)
}

/// History phase name; smoke, full, and scale campaigns ratchet
/// separately (they simulate different fleets).
pub fn phase(o: &FleetOutcome) -> &'static str {
    if o.smoke {
        "fleet-smoke"
    } else if o.scale {
        "fleet-scale"
    } else {
        "fleet"
    }
}

/// One BENCH_history.jsonl record for this campaign, shaped like the
/// perf phases' records so one trend log covers both campaigns.
pub fn history_line(
    o: &FleetOutcome,
    commit: &str,
    timestamp: u64,
    jobs: usize,
    cores: usize,
) -> String {
    format!(
        "{{\"commit\": \"{commit}\", \"timestamp\": {timestamp}, \"phase\": \"{}\", \
         \"tickless\": {}, \"jobs\": {jobs}, \"cores\": {cores}, \"hosts\": {}, \
         \"events_per_sec\": {:.0}, \"effective_events_per_sec\": {:.0}, \
         \"fork_warmup_saved\": {}, \"runs_elided\": {}, \"host_runs\": {}}}\n",
        phase(o),
        irs_core::tickless_enabled(),
        o.hosts,
        events_per_sec(o),
        effective_events_per_sec(o),
        o.report.fork_warmup_saved,
        o.report.runs_elided,
        o.report.host_runs,
    )
}

/// The fleet side of `--check-perf`: ratchets the campaign's throughput
/// against the best matching history record (same phase, tickless flag,
/// worker count, host core count — and fleet size, for records new
/// enough to carry one). The `fleet` / `fleet-smoke` phases ratchet
/// *executed* events/sec (engine speed, comparable across the
/// incremental transition); `fleet-scale` ratchets *effective*
/// events/sec and additionally enforces the deterministic
/// [`SCALE_MIN_ELISION`]× incrementality floor.
pub fn check_fleet_perf(
    o: &FleetOutcome,
    history: &str,
    jobs: usize,
    cores: usize,
) -> Vec<String> {
    let mut failures = Vec::new();
    let tickless = irs_core::tickless_enabled();
    let scale = phase(o) == "fleet-scale";
    let (metric, current) = if scale {
        ("effective_events_per_sec", effective_events_per_sec(o))
    } else {
        ("events_per_sec", events_per_sec(o))
    };
    if scale {
        let executed = events_executed(o);
        if o.report.events < SCALE_MIN_ELISION * executed {
            failures.push(format!(
                "fleet-scale incrementality floor: logical volume {} is below \
                 {SCALE_MIN_ELISION}x the {executed} events executed \
                 (runs_elided={}, hosts_carried={})",
                o.report.events, o.report.runs_elided, o.report.hosts_carried,
            ));
        }
    }
    let best = history
        .lines()
        .filter(|l| {
            json_str_field(l, "phase").as_deref() == Some(phase(o))
                && crate::perf::json_bool_field(l, "tickless") == Some(tickless)
                && json_usize_field(l, "jobs") == Some(jobs)
                && json_usize_field(l, "cores") == Some(cores)
                // Old records carry no hosts field; they predate --hosts
                // and can only be stock-size campaigns.
                && json_usize_field(l, "hosts").is_none_or(|h| h == o.hosts)
        })
        .filter_map(|l| {
            json_raw_field(l, metric)
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|v| v.is_finite() && *v > 0.0)
        })
        .fold(f64::NAN, f64::max);
    if best.is_finite() && current < RATCHET_FRAC * best {
        failures.push(format!(
            "{} phase ratchet: {current:.0} {metric} is below {:.0}% of the best \
             matching record ({best:.0}; tickless={tickless}, jobs={jobs}, cores={cores})",
            phase(o),
            RATCHET_FRAC * 100.0,
        ));
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::runner::ForkCacheStats;
    use irs_metrics::Table;

    fn outcome(smoke: bool, scale: bool) -> FleetOutcome {
        FleetOutcome {
            report: FleetReport {
                tables: Vec::new(),
                fork_warmup_saved: 1_000,
                events_elided: 4_000,
                events: 15_000,
                host_runs: 40,
                runs_elided: 10,
                hosts_carried: 6,
                tenants_placed: 30,
                tenants_rejected: 2,
                cache: ForkCacheStats::default(),
                accounting: Table::new("accounting"),
            },
            wall_s: 2.0,
            smoke,
            hosts: if smoke { 16 } else { 120 },
            scale,
        }
    }

    #[test]
    fn throughput_metrics_decompose() {
        let o = outcome(true, false);
        // Executed: 15000 − 1000 − 4000.
        assert_eq!(events_executed(&o), 10_000);
        assert_eq!(events_per_sec(&o), 5_000.0);
        assert_eq!(effective_events_per_sec(&o), 7_500.0);
    }

    #[test]
    fn history_line_is_one_self_describing_record() {
        let l = history_line(&outcome(true, false), "abc1234", 1_700_000_000, 2, 4);
        assert!(l.ends_with("}\n"));
        assert_eq!(json_str_field(&l, "phase").as_deref(), Some("fleet-smoke"));
        assert_eq!(json_usize_field(&l, "jobs"), Some(2));
        assert_eq!(json_usize_field(&l, "cores"), Some(4));
        assert_eq!(json_usize_field(&l, "hosts"), Some(16));
        assert_eq!(json_raw_field(&l, "events_per_sec").as_deref(), Some("5000"));
        assert_eq!(
            json_raw_field(&l, "effective_events_per_sec").as_deref(),
            Some("7500")
        );
        assert_eq!(json_raw_field(&l, "runs_elided").as_deref(), Some("10"));
        assert_eq!(json_raw_field(&l, "fork_warmup_saved").as_deref(), Some("1000"));
    }

    #[test]
    fn fleet_ratchet_matches_config_and_fires() {
        let o = outcome(false, false);
        let good = "{\"phase\": \"fleet\", \"tickless\": false, \"jobs\": 2, \"cores\": 4, \"events_per_sec\": 6000}\n";
        assert!(check_fleet_perf(&o, good, 2, 4).is_empty());
        let fast = "{\"phase\": \"fleet\", \"tickless\": false, \"jobs\": 2, \"cores\": 4, \"events_per_sec\": 99999999}\n";
        let failures = check_fleet_perf(&o, fast, 2, 4);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("fleet phase ratchet"));
        // Other phase, jobs, or cores: ignored.
        assert!(check_fleet_perf(&o, fast, 4, 4).is_empty());
        assert!(check_fleet_perf(&o, fast, 2, 64).is_empty());
        let smoke_rec = fast.replace("\"fleet\"", "\"fleet-smoke\"");
        assert!(check_fleet_perf(&o, &smoke_rec, 2, 4).is_empty());
    }

    #[test]
    fn hosts_aware_matching_skips_other_sizes() {
        let o = outcome(false, false); // 120 hosts
        let other_size = "{\"phase\": \"fleet\", \"tickless\": false, \"jobs\": 2, \"cores\": 4, \"hosts\": 1000, \"events_per_sec\": 99999999}\n";
        assert!(check_fleet_perf(&o, other_size, 2, 4).is_empty());
        let same_size = other_size.replace("\"hosts\": 1000", "\"hosts\": 120");
        assert_eq!(check_fleet_perf(&o, &same_size, 2, 4).len(), 1);
    }

    #[test]
    fn scale_phase_ratchets_effective_throughput_and_floors_elision() {
        let mut o = outcome(false, true);
        o.hosts = 1000;
        assert_eq!(phase(&o), "fleet-scale");
        // 15000 logical < 5 × 10000 executed: the elision floor fires
        // even with no history at all.
        let failures = check_fleet_perf(&o, "", 2, 4);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("incrementality floor"));
        // With enough elision the floor passes and the ratchet compares
        // effective (not executed) throughput.
        o.report.events_elided = 50_000;
        o.report.events = 55_000; // executed 4000; 55000 ≥ 5×4000
        let fast = "{\"phase\": \"fleet-scale\", \"tickless\": false, \"jobs\": 2, \"cores\": 4, \"hosts\": 1000, \"effective_events_per_sec\": 999999999}\n";
        let failures = check_fleet_perf(&o, fast, 2, 4);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("fleet-scale phase ratchet"));
        assert!(failures[0].contains("effective_events_per_sec"));
        let slow = fast.replace("999999999", "30000");
        assert!(check_fleet_perf(&o, slow.as_str(), 2, 4).is_empty());
    }
}
