//! `figures fleet` — the datacenter-scale fleet campaign
//! (`irs_fleet`), sized for the CLI, plus its BENCH_history.jsonl
//! records and `--check-perf` ratchet.
//!
//! The full campaign runs a 120-host fleet over three churn epochs:
//! three placement policies × five adversary mixes, plus an overcommit
//! sweep, every cell simulated under both vanilla and IRS and held to
//! the degradation contract ([`irs_core::DEGRADATION_MARGIN`]). The
//! `--smoke` variant shrinks the fleet (16 hosts, 2 policies × 2 mixes)
//! for CI; it asserts the same contract.

use crate::perf::{json_raw_field, json_str_field, json_usize_field};
use crate::Opts;
use irs_fleet::{AdversaryMix, CampaignSpec, FleetConfig, FleetReport, PlacementPolicy};
use std::time::Instant;

/// Campaign outcome plus the wall-clock facts the history record needs.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The campaign report (tables, fork sharing, churn accounting).
    pub report: FleetReport,
    /// Wall-clock of the whole campaign, seconds.
    pub wall_s: f64,
    /// Whether this was the `--smoke` variant (separate history phase).
    pub smoke: bool,
}

/// Ratchet tolerance for the fleet phase, matching the perf gate's.
const RATCHET_FRAC: f64 = 0.5;

/// Builds the campaign spec for the CLI: full-size by default, the CI
/// smoke variant with `smoke`. `opts.base_seed` seeds the fleet;
/// `opts.seeds` is ignored (the campaign is a population study — its
/// sample count is tenant-epochs, not repeated runs).
pub fn spec(opts: Opts, smoke: bool) -> CampaignSpec {
    let fleet = FleetConfig {
        seed: opts.base_seed,
        jobs: opts.jobs,
        ..FleetConfig::default()
    };
    if smoke {
        CampaignSpec {
            fleet: FleetConfig {
                hosts: 16,
                epochs: 2,
                initial_tenants: 28,
                arrivals_per_epoch: 8,
                ..fleet
            },
            policies: vec![PlacementPolicy::FirstFit, PlacementPolicy::InterferenceAware],
            mixes: vec![AdversaryMix::CLEAN, AdversaryMix::BLEND],
            overcommit_sweep: vec![],
            assert_contract: true,
        }
    } else {
        CampaignSpec {
            fleet,
            policies: vec![
                PlacementPolicy::FirstFit,
                PlacementPolicy::WorstFit,
                PlacementPolicy::InterferenceAware,
            ],
            mixes: vec![
                AdversaryMix::CLEAN,
                AdversaryMix::BOOST,
                AdversaryMix::STEAL,
                AdversaryMix::EVADE,
                AdversaryMix::BLEND,
            ],
            overcommit_sweep: vec![1.0, 1.5, 2.0],
            assert_contract: true,
        }
    }
}

/// Runs the fleet campaign and times it.
///
/// # Panics
///
/// Panics if any cell violates the degradation contract, or if warmup
/// sharing shared nothing (a fleet without repeated compositions would
/// mean the churn model degenerated).
pub fn fleet(opts: Opts, smoke: bool) -> FleetOutcome {
    let spec = spec(opts, smoke);
    let t = Instant::now();
    let report = irs_fleet::run_campaign(&spec);
    let wall_s = t.elapsed().as_secs_f64();
    assert!(
        report.fork_warmup_saved > 0,
        "fleet campaign shared no warmups across equal-composition hosts"
    );
    FleetOutcome {
        report,
        wall_s,
        smoke,
    }
}

/// Simulation throughput of the campaign: events actually executed
/// (logical volume minus the shared-warmup savings) per wall second.
pub fn events_per_sec(o: &FleetOutcome) -> f64 {
    (o.report.events.saturating_sub(o.report.fork_warmup_saved)) as f64 / o.wall_s.max(1e-9)
}

/// History phase name; smoke and full campaigns ratchet separately
/// (they simulate different fleets).
pub fn phase(o: &FleetOutcome) -> &'static str {
    if o.smoke {
        "fleet-smoke"
    } else {
        "fleet"
    }
}

/// One BENCH_history.jsonl record for this campaign, shaped like the
/// perf phases' records so one trend log covers both campaigns.
pub fn history_line(
    o: &FleetOutcome,
    commit: &str,
    timestamp: u64,
    jobs: usize,
    cores: usize,
) -> String {
    format!(
        "{{\"commit\": \"{commit}\", \"timestamp\": {timestamp}, \"phase\": \"{}\", \
         \"tickless\": {}, \"jobs\": {jobs}, \"cores\": {cores}, \
         \"events_per_sec\": {:.0}, \"fork_warmup_saved\": {}, \"host_runs\": {}}}\n",
        phase(o),
        irs_core::tickless_enabled(),
        events_per_sec(o),
        o.report.fork_warmup_saved,
        o.report.host_runs,
    )
}

/// The fleet side of `--check-perf`: ratchets the campaign's events/sec
/// against the best matching history record (same phase, tickless flag,
/// worker count, and host core count — the perf gate's matching rule).
pub fn check_fleet_perf(
    o: &FleetOutcome,
    history: &str,
    jobs: usize,
    cores: usize,
) -> Vec<String> {
    let tickless = irs_core::tickless_enabled();
    let current = events_per_sec(o);
    let best = history
        .lines()
        .filter(|l| {
            json_str_field(l, "phase").as_deref() == Some(phase(o))
                && crate::perf::json_bool_field(l, "tickless") == Some(tickless)
                && json_usize_field(l, "jobs") == Some(jobs)
                && json_usize_field(l, "cores") == Some(cores)
        })
        .filter_map(|l| {
            json_raw_field(l, "events_per_sec")
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|v| v.is_finite() && *v > 0.0)
        })
        .fold(f64::NAN, f64::max);
    if best.is_finite() && current < RATCHET_FRAC * best {
        vec![format!(
            "{} phase ratchet: {current:.0} events_per_sec is below {:.0}% of the best \
             matching record ({best:.0}; tickless={tickless}, jobs={jobs}, cores={cores})",
            phase(o),
            RATCHET_FRAC * 100.0,
        )]
    } else {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(smoke: bool) -> FleetOutcome {
        FleetOutcome {
            report: FleetReport {
                tables: Vec::new(),
                fork_warmup_saved: 1_000,
                events: 11_000,
                host_runs: 40,
                tenants_placed: 30,
                tenants_rejected: 2,
            },
            wall_s: 2.0,
            smoke,
        }
    }

    #[test]
    fn history_line_is_one_self_describing_record() {
        let l = history_line(&outcome(true), "abc1234", 1_700_000_000, 2, 4);
        assert!(l.ends_with("}\n"));
        assert_eq!(json_str_field(&l, "phase").as_deref(), Some("fleet-smoke"));
        assert_eq!(json_usize_field(&l, "jobs"), Some(2));
        assert_eq!(json_usize_field(&l, "cores"), Some(4));
        // (11000 - 1000) events / 2 s.
        assert_eq!(json_raw_field(&l, "events_per_sec").as_deref(), Some("5000"));
        assert_eq!(json_raw_field(&l, "fork_warmup_saved").as_deref(), Some("1000"));
    }

    #[test]
    fn fleet_ratchet_matches_config_and_fires() {
        let o = outcome(false);
        let good = "{\"phase\": \"fleet\", \"tickless\": false, \"jobs\": 2, \"cores\": 4, \"events_per_sec\": 6000}\n";
        assert!(check_fleet_perf(&o, good, 2, 4).is_empty());
        let fast = "{\"phase\": \"fleet\", \"tickless\": false, \"jobs\": 2, \"cores\": 4, \"events_per_sec\": 99999999}\n";
        let failures = check_fleet_perf(&o, fast, 2, 4);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("fleet phase ratchet"));
        // Other phase, jobs, or cores: ignored.
        assert!(check_fleet_perf(&o, fast, 4, 4).is_empty());
        assert!(check_fleet_perf(&o, fast, 2, 64).is_empty());
        let smoke_rec = fast.replace("\"fleet\"", "\"fleet-smoke\"");
        assert!(check_fleet_perf(&o, &smoke_rec, 2, 4).is_empty());
    }
}
