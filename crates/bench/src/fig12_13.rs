//! Figures 12 and 13: the CPU-stacking study (§5.6) — all vCPUs unpinned,
//! 4-inter CPU hogs, hypervisor-level load balancing active.
//!
//! Also the §2.3 baseline: how much unpinning alone costs vanilla
//! Xen/Linux (the "5-20x" stacking observation, at our simulator's scale).

use crate::{improvement_over_vanilla, mean_makespan_ms, Opts, STRATEGIES};
use irs_core::{Scenario, Strategy};
use irs_metrics::{Series, Table};
use irs_workloads::presets;

/// Builds an unpinned 4-inter scenario (the stacking configuration).
pub fn unpinned_scenario(bench: &str, strategy: Strategy, seed: u64) -> Scenario {
    let mut s = Scenario::fig5_style(bench, 4, strategy, seed);
    for vm in &mut s.vms {
        vm.pinning = None;
    }
    s
}

fn stacking_panel(title: &str, benches: &[&str], opts: Opts) -> Table {
    let mut table = Table::new(title.to_string());
    for strategy in STRATEGIES {
        let mut series = Series::new(format!("{strategy}"));
        for &bench in benches {
            let imp = improvement_over_vanilla(opts, strategy, |strat, seed| {
                unpinned_scenario(bench, strat, seed)
            });
            series.point(bench, imp);
        }
        table.add(series);
    }
    table
}

/// Fig 12: NPB performance in response to CPU stacking (no deceptive
/// idleness — NPB spins — so every strategy has room to help).
pub fn fig12(opts: Opts) -> Table {
    stacking_panel(
        "Fig 12 — NPB performance in response to CPU stacking (improvement %, unpinned, 4-inter)",
        &presets::NPB_NAMES,
        opts,
    )
}

/// Fig 13: PARSEC performance in response to CPU stacking (deceptive
/// idleness: PLE and relaxed-co can make things worse; IRS keeps vCPUs
/// exhibiting their factual demand).
pub fn fig13(opts: Opts) -> Table {
    stacking_panel(
        "Fig 13 — PARSEC performance in response to CPU stacking (improvement %, unpinned, 4-inter)",
        &presets::PARSEC_NAMES,
        opts,
    )
}

/// §2.3 baseline: vanilla slowdown of unpinning versus the pinned setup —
/// the cost of CPU stacking itself.
pub fn stacking_baseline(opts: Opts) -> Table {
    let mut table =
        Table::new("CPU stacking baseline — vanilla unpinned vs pinned slowdown (factor)");
    let mut series = Series::new("unpinned / pinned");
    for bench in ["streamcluster", "fluidanimate", "canneal", "MG", "CG", "UA"] {
        let pinned = mean_makespan_ms(opts, |seed| {
            Scenario::fig5_style(bench, 4, Strategy::Vanilla, seed)
        });
        let unpinned = mean_makespan_ms(opts, |seed| {
            unpinned_scenario(bench, Strategy::Vanilla, seed)
        });
        series.point(bench, irs_metrics::slowdown(pinned, unpinned));
    }
    table.add(series);
    table
}
