//! Figure 1: the motivating measurements.
//!
//! (a) LHP/LWP slow parallel programs down except under user-level load
//! balancing; (b) in-guest process migration latency grows by one
//! hypervisor scheduling delay per co-located VM.

use crate::Opts;
use irs_core::{Scenario, Strategy, System, VmScenario};
use irs_guest::TaskId;
use irs_metrics::{slowdown, Series, Summary, Table};
use irs_sim::SimTime;
use irs_workloads::{presets, ProgramBuilder, WorkloadBundle};
use irs_sync::SyncSpace;

/// Fig 1(a): slowdown of fluidanimate (blocking), ua (spinning), and
/// raytrace (work stealing) under one co-located CPU hog, relative to
/// running alone.
pub fn fig1a(opts: Opts) -> Table {
    let mut table = Table::new(
        "Fig 1(a) — performance slowdown under interference (relative to no interference)",
    );
    let mut none = Series::new("no interference");
    let mut with = Series::new("w/ interference");
    for bench in ["fluidanimate", "ua", "raytrace"] {
        let solo = crate::mean_makespan_ms(opts, |seed| {
            let mut s = Scenario::fig5_style(bench, 1, Strategy::Vanilla, seed);
            s.vms.truncate(1); // drop the interfering VM
            s
        });
        let inter = crate::mean_makespan_ms(opts, |seed| {
            Scenario::fig5_style(bench, 1, Strategy::Vanilla, seed)
        });
        none.point(bench, 1.0);
        with.point(bench, slowdown(solo, inter));
    }
    table.add(none);
    table.add(with);
    table
}

/// Builds the Fig 1(b) victim scenario: a 2-vCPU VM with one CPU-bound
/// task, vCPU0 contended by `n_vms` single-hog VMs.
fn fig1b_scenario(n_vms: usize, seed: u64) -> Scenario {
    let prog = ProgramBuilder::new()
        .forever(|b| b.compute_us(10_000, 0.0))
        .build();
    let victim =
        WorkloadBundle::interference("victim", vec![prog], SyncSpace::new(), 0.0);
    let mut s = Scenario::new(2, Strategy::Vanilla, seed)
        .vm(
            VmScenario::new(victim, 2)
                .pin(vec![irs_xen::PcpuId(0), irs_xen::PcpuId(1)])
                .measured(),
        )
        .horizon(SimTime::from_secs(60));
    for _ in 0..n_vms {
        s = s.vm(VmScenario::new(presets::hog::cpu_hogs(1), 1).pin(vec![irs_xen::PcpuId(0)]));
    }
    s
}

/// Measures the latency of migrating the victim's running task off the
/// contended vCPU, averaged over `rounds` migrations (paper: 30).
pub fn migration_latency_ms(n_vms: usize, seed: u64, rounds: usize) -> f64 {
    let mut sys = System::new(fig1b_scenario(n_vms, seed));
    let task = TaskId(0);
    // Reach steady state first.
    while sys.now() < SimTime::from_millis(100) {
        sys.step();
    }
    let mut samples = Vec::with_capacity(rounds);
    for round in 0..rounds {
        // Park the task back on the contended vCPU0 if needed.
        if sys.guest(0).task(task).cpu != 0 {
            sys.migrate_task(0, task, 0);
            let deadline = sys.now() + SimTime::from_secs(1);
            while sys.guest(0).task(task).cpu != 0 && sys.now() < deadline {
                if !sys.step() {
                    break;
                }
            }
        }
        // De-phase rounds so they sample different slice and tick offsets
        // (an exactly tick-aligned request completes in the same instant).
        let settle = sys.now() + SimTime::from_micros(40_137 + round as u64 * 7_013 % 60_000);
        while sys.now() < settle {
            sys.step();
        }
        let t0 = sys.now();
        sys.migrate_task(0, task, 1);
        while sys.guest(0).task(task).cpu != 1 {
            if !sys.step() {
                break;
            }
        }
        samples.push((sys.now() - t0).as_nanos() as f64 / 1e6);
    }
    Summary::of(&samples).mean
}

/// Fig 1(b): process-migration latency versus number of co-located VMs
/// (paper: 1 ms alone, then 26.4 / 53.2 / 79.8 ms).
pub fn fig1b(opts: Opts) -> Table {
    let mut table = Table::new("Fig 1(b) — in-guest process migration latency (ms)");
    let mut series = Series::new("migration latency");
    for n_vms in 0..=3usize {
        let samples: Vec<f64> = (0..opts.seeds)
            .map(|i| migration_latency_ms(n_vms, opts.base_seed + i, 30))
            .collect();
        let label = match n_vms {
            0 => "alone".to_string(),
            n => format!("{n}VM"),
        };
        series.point(label, Summary::of(&samples).mean);
    }
    table.add(series);
    table
}
