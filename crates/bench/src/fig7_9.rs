//! Figures 7 and 9: system-wide weighted speedup when the measured
//! application is consolidated with a real background application.
//!
//! Speedup of the foreground is `vanilla makespan / makespan`; the
//! background application never terminates (it repeats), so its speedup is
//! its useful-work *rate* relative to vanilla. The weighted speedup is the
//! average of the two, reported in percent (100 = vanilla parity).

use crate::{Opts, STRATEGIES};
use irs_core::{RunResult, Scenario, Strategy};
use irs_metrics::{Series, Summary, Table};
use irs_workloads::presets;

/// Foreground makespan (ms) and background useful-work rate for one run.
fn fg_bg(result: &RunResult) -> (f64, f64) {
    let fg = result.measured().makespan_ms();
    let bg = result.vms[1].work_rate(result.elapsed);
    (fg, bg)
}

/// Mean (foreground cost, background rate) over the seeds.
fn mean_fg_bg(
    opts: Opts,
    bench: &str,
    background: &str,
    n_inter: usize,
    strategy: Strategy,
) -> (f64, f64) {
    let mut fgs = Vec::new();
    let mut bgs = Vec::new();
    for i in 0..opts.seeds {
        let r = Scenario::real_interference(bench, background, n_inter, strategy, opts.base_seed + i)
            .run();
        let (fg, bg) = fg_bg(&r);
        fgs.push(fg);
        bgs.push(bg);
    }
    (Summary::of(&fgs).mean, Summary::of(&bgs).mean)
}

/// Weighted speedup (%) of `strategy` against vanilla for one cell.
pub fn weighted_speedup_pct(
    opts: Opts,
    bench: &str,
    background: &str,
    n_inter: usize,
    strategy: Strategy,
) -> f64 {
    let (fg_v, bg_v) = mean_fg_bg(opts, bench, background, n_inter, Strategy::Vanilla);
    let (fg_s, bg_s) = mean_fg_bg(opts, bench, background, n_inter, strategy);
    let fg_speedup = if fg_s > 0.0 { fg_v / fg_s } else { 0.0 };
    let bg_speedup = if bg_v > 0.0 { bg_s / bg_v } else { 0.0 };
    (fg_speedup + bg_speedup) / 2.0 * 100.0
}

/// One weighted-speedup panel over `benches` with `background` interference.
pub fn weighted_panel(title: &str, benches: &[&str], background: &str, opts: Opts) -> Table {
    let mut table = Table::new(format!("{title} (w/ {background})"));
    for n_inter in [1usize, 2, 4] {
        for strategy in STRATEGIES {
            let mut series = Series::new(format!("{n_inter}-inter. {strategy}"));
            for &bench in benches {
                series.point(
                    bench,
                    weighted_speedup_pct(opts, bench, background, n_inter, strategy),
                );
            }
            table.add(series);
        }
    }
    table
}

/// Fig 7: weighted speedup of PARSEC applications (panels: fluidanimate
/// and streamcluster backgrounds).
pub fn fig7(opts: Opts, background: &str) -> Table {
    weighted_panel(
        "Fig 7 — weighted speedup of two PARSEC applications (higher is better)",
        &presets::PARSEC_NAMES,
        background,
        opts,
    )
}

/// Fig 9: weighted speedup of NPB applications (panels: LU and UA
/// backgrounds).
pub fn fig9(opts: Opts, background: &str) -> Table {
    weighted_panel(
        "Fig 9 — weighted speedup of NPB applications (higher is better)",
        &presets::NPB_NAMES,
        background,
        opts,
    )
}
