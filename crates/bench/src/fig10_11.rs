//! Figures 10 and 11: scalability and sensitivity (§5.5).
//!
//! Fig 10: 8-vCPU VMs on 8 pCPUs, IRS improvement as the number of
//! interfered vCPUs grows 1→8, for four synchronization archetypes.
//! Fig 11: IRS improvement as the consolidation depth grows (1–3
//! interfering VMs per contended pCPU).

use crate::{improvement_over_vanilla, Opts};
use irs_core::{Scenario, Strategy};
use irs_metrics::{Series, Table};

/// The four archetypes the paper selects: x264 (mutex), blackscholes
/// (barrier), EP (blocking, little sync), MG (spinning).
pub const ARCHETYPES: [&str; 4] = ["x264", "blackscholes", "EP", "MG"];

/// Background interference options per archetype, as in the paper: the
/// micro-benchmark plus two real applications (PARSEC ones for PARSEC
/// benchmarks, NPB ones for NPB benchmarks).
pub fn backgrounds_for(bench: &str) -> [Option<&'static str>; 3] {
    if irs_workloads::presets::NPB_NAMES
        .iter()
        .any(|n| n.eq_ignore_ascii_case(bench))
    {
        [None, Some("LU"), Some("UA")]
    } else {
        [None, Some("fluidanimate"), Some("streamcluster")]
    }
}

/// Fig 10: IRS improvement vs number of interfered vCPUs (1..=8).
pub fn fig10(opts: Opts) -> Table {
    let mut table = Table::new(
        "Fig 10 — IRS improvement (%) with a varying number of interferences (8-vCPU VMs)",
    );
    for bench in ARCHETYPES {
        for bg in backgrounds_for(bench) {
            let bg_label = bg.map_or("microbenchmark".to_string(), |b| b.to_string());
            let mut series = Series::new(format!("{bench} w/ {bg_label}"));
            for n_inter in 1..=8usize {
                let imp = improvement_over_vanilla(opts, Strategy::Irs, |strat, seed| {
                    Scenario::fig10_style(bench, bg, n_inter, strat, seed)
                });
                series.point(format!("{n_inter}"), imp);
            }
            table.add(series);
        }
    }
    table
}

/// Fig 11: IRS improvement vs number of interfering VMs (1..=3) at
/// {1, 2, 4} interfered vCPUs.
pub fn fig11(opts: Opts) -> Table {
    let mut table = Table::new(
        "Fig 11 — IRS improvement (%) with a varying degree of interference (1-3 VMs per pCPU)",
    );
    for bench in ARCHETYPES {
        for n_inter in [1usize, 2, 4] {
            let mut series = Series::new(format!("{bench} {n_inter}-inter."));
            for n_vms in 1..=3usize {
                let imp = improvement_over_vanilla(opts, Strategy::Irs, |strat, seed| {
                    Scenario::fig11_style(bench, n_inter, n_vms, strat, seed)
                });
                series.point(format!("{n_vms} VM"), imp);
            }
            table.add(series);
        }
    }
    table
}
