//! `figures fork_smoke` — end-to-end smoke test of the snapshot/fork
//! path, runnable from the CLI (and from `scripts/verify.sh`).
//!
//! For every strategy × fault-profile cell it runs the scenario from
//! scratch, then again through [`irs_core::runner::run_forked`] (one
//! shared warmup, several branches through the worker pool), and asserts
//! the branches are **bit-identical** to the scratch run — the
//! [`irs_core::Snapshot`] determinism contract, exercised over the same
//! surface the perf grid and chaos campaign use. The table reports the
//! events each cell's sharing avoided re-executing, so a warmup that
//! silently stopped covering the prefix (zero saved events) is visible,
//! not just a slower run.

use crate::Opts;
use irs_core::{runner, FaultConfig, Scenario, Strategy, System, SystemConfig};
use irs_metrics::{Series, Table};
use irs_sim::SimTime;

/// Virtual-time warmup depth: enough scheduling history (SA round trips,
/// credit refills, fault arrivals) to make the shared prefix non-trivial,
/// well short of any cell's completion.
const WARMUP: SimTime = SimTime::from_millis(40);

/// Branches per cell. Three is the smallest count that exercises both
/// branch-vs-scratch and branch-vs-branch identity through the pool.
const BRANCHES: usize = 3;

/// The strategy rows: the paper's three contenders plus vanilla credit.
const SMOKE_STRATEGIES: [Strategy; 4] = [
    Strategy::Vanilla,
    Strategy::Ple,
    Strategy::RelaxedCo,
    Strategy::Irs,
];

/// Fault columns: clean, one chatty protocol-fault family, and the
/// everything-at-once stack — so the RNG stream, wedge windows, and
/// fault stats all cross the snapshot boundary somewhere in the grid.
fn profiles() -> Vec<(&'static str, Option<FaultConfig>)> {
    vec![
        ("none", None),
        ("ack-chaos", Some(FaultConfig::ack_chaos())),
        ("everything", Some(FaultConfig::everything())),
    ]
}

/// Runs the smoke grid and builds the table.
///
/// # Panics
///
/// Panics if any forked branch diverges from its from-scratch run — that
/// is the point of the smoke test.
pub fn fork_smoke(opts: Opts) -> Table {
    let scenario =
        |strategy| Scenario::fig5_style("EP", 1, strategy, opts.base_seed);
    let mut table = Table::new(format!(
        "Fork smoke — {BRANCHES} branches off one warmup, events saved per cell (EP, 1 hog)"
    ));
    for (name, faults) in profiles() {
        let mut series = Series::new(name);
        for strategy in SMOKE_STRATEGIES {
            let cfg = SystemConfig {
                faults: faults.clone(),
                ..SystemConfig::default()
            };
            let scratch = System::with_config(scenario(strategy), cfg.clone()).run();
            let want = format!("{scratch:?}");
            let (branches, saved) =
                runner::run_forked(scenario(strategy), cfg, WARMUP, BRANCHES, opts.jobs);
            assert_eq!(branches.len(), BRANCHES);
            for (bi, b) in branches.iter().enumerate() {
                assert_eq!(
                    format!("{b:?}"),
                    want,
                    "forked branch {bi} diverged from scratch ({strategy}, faults={name})"
                );
            }
            series.point(format!("{strategy}"), saved as f64);
        }
        table.add(series);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The table (and therefore every identity assertion inside) must be
    /// bit-identical at any worker count.
    #[test]
    fn fork_smoke_table_is_bit_identical_across_jobs() {
        let mk = |jobs| {
            fork_smoke(Opts {
                seeds: 1,
                base_seed: 1,
                jobs,
            })
            .render()
        };
        assert_eq!(mk(1), mk(2));
    }

    /// Every cell must actually share a non-empty warmup: a zero says the
    /// snapshot was taken at boot and the smoke test smoked nothing.
    #[test]
    fn every_cell_saves_warmup_events() {
        for (name, faults) in profiles() {
            let cfg = SystemConfig {
                faults: faults.clone(),
                ..SystemConfig::default()
            };
            let (_, saved) = runner::run_forked(
                Scenario::fig5_style("EP", 1, Strategy::Irs, 1),
                cfg,
                WARMUP,
                BRANCHES,
                1,
            );
            assert!(saved > 0, "profile {name} shared an empty warmup");
        }
    }
}
