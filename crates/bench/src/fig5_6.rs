//! Figures 5 and 6: per-benchmark performance improvement over vanilla
//! Xen/Linux, for {1, 2, 4} interfered vCPUs × {PLE, Relaxed-Co, IRS},
//! under micro-benchmark or real-application interference.

use crate::{Opts, STRATEGIES};
use irs_core::runner::{grid_mean_makespans, ScenarioFn};
use irs_core::{Scenario, Strategy};
use irs_metrics::{Series, Table};
use irs_workloads::presets;

/// The interference running in the background VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interference {
    /// CPU hogs (the paper's micro-benchmark).
    Micro,
    /// A real parallel application, repeated for the whole run.
    RealApp(&'static str),
}

impl Interference {
    /// Panel label, matching the paper's sub-captions.
    pub fn label(&self) -> String {
        match self {
            Interference::Micro => "w/ Microbenchmark".to_string(),
            Interference::RealApp(name) => format!("w/ {name}"),
        }
    }
}

fn scenario(
    bench: &str,
    inter: Interference,
    n_inter: usize,
    strategy: irs_core::Strategy,
    seed: u64,
) -> Scenario {
    match inter {
        Interference::Micro => Scenario::fig5_style(bench, n_inter, strategy, seed),
        Interference::RealApp(bg) => {
            Scenario::real_interference(bench, bg, n_inter, strategy, seed)
        }
    }
}

/// One panel of Fig 5/6: improvement (%) for every benchmark in `benches`,
/// with series `{1,2,4}-inter × {PLE, Relaxed-Co, IRS}`.
pub fn improvement_panel(
    title: &str,
    benches: &[&str],
    inter: Interference,
    opts: Opts,
) -> Table {
    // Every (n_inter × {Vanilla + strategy} × bench) cell of the panel is
    // an independent seeded mean, so all of them go to the worker pool as
    // one grid — a single panel saturates a wide host instead of fanning
    // out one data point at a time. The vanilla baselines ride along as
    // the first row of each n_inter block.
    let nb = benches.len();
    let mut ctors = Vec::new();
    for n_inter in [1usize, 2, 4] {
        for strategy in std::iter::once(Strategy::Vanilla).chain(STRATEGIES) {
            for &bench in benches {
                ctors.push(move |seed| scenario(bench, inter, n_inter, strategy, seed));
            }
        }
    }
    let refs: Vec<ScenarioFn<'_>> = ctors.iter().map(|c| c as ScenarioFn<'_>).collect();
    let means = grid_mean_makespans(opts.base_seed, opts.seeds, opts.jobs, &refs);

    let mut table = Table::new(format!("{title} ({})", inter.label()));
    let block = (1 + STRATEGIES.len()) * nb;
    for (gi, n_inter) in [1usize, 2, 4].into_iter().enumerate() {
        let base = gi * block;
        for (si, strategy) in STRATEGIES.into_iter().enumerate() {
            let mut series = Series::new(format!("{n_inter}-inter. {strategy}"));
            for (bi, &bench) in benches.iter().enumerate() {
                let vanilla = means[base + bi];
                let variant = means[base + (si + 1) * nb + bi];
                series.point(bench, irs_metrics::improvement_pct(vanilla, variant));
            }
            table.add(series);
        }
    }
    table
}

/// Fig 5: PARSEC (blocking) improvement, one panel per interference type
/// (micro-benchmark, streamcluster, fluidanimate).
pub fn fig5(opts: Opts, inter: Interference) -> Table {
    improvement_panel(
        "Fig 5 — improvement on PARSEC performance (blocking)",
        &presets::PARSEC_NAMES,
        inter,
        opts,
    )
}

/// Fig 6: NPB (spinning) improvement, one panel per interference type
/// (micro-benchmark, UA, LU).
pub fn fig6(opts: Opts, inter: Interference) -> Table {
    improvement_panel(
        "Fig 6 — improvement on NPB performance (spinning)",
        &presets::NPB_NAMES,
        inter,
        opts,
    )
}
