//! The §5.4 fairness audit: IRS must not let the foreground VM exceed its
//! fair CPU share, and the SA delay must stay in the paper's 20–26 µs band.

use crate::Opts;
use irs_core::{Scenario, Strategy};
use irs_metrics::{Series, Summary, Table};

/// Fairness audit: foreground-VM CPU share of the contended pCPUs under
/// vanilla and IRS. With `n_inter` hogs the foreground's fair share of the
/// whole 4-pCPU machine is `4 - n_inter/2` pCPUs.
pub fn fairness(opts: Opts) -> Table {
    let mut table = Table::new(
        "Fairness — foreground CPU consumption relative to fair share (must be <= ~1)",
    );
    for strategy in [Strategy::Vanilla, Strategy::Irs] {
        let mut series = Series::new(format!("{strategy}"));
        for bench in ["streamcluster", "UA"] {
            for n_inter in [1usize, 2, 4] {
                let fair_pcpus = 4.0 - n_inter as f64 / 2.0;
                let samples: Vec<f64> = (0..opts.seeds)
                    .map(|i| {
                        let r =
                            Scenario::fig5_style(bench, n_inter, strategy, opts.base_seed + i)
                                .run();
                        r.measured().utilization_vs_fair_share(fair_pcpus, r.elapsed)
                    })
                    .collect();
                series.point(
                    format!("{bench} {n_inter}-inter."),
                    Summary::of(&samples).mean,
                );
            }
        }
        table.add(series);
    }
    table
}

/// SA round statistics: rounds sent/acked/timed out and the per-round
/// delay imposed on the hypervisor's schedule path (configured per §3.1's
/// 20–26 µs profile; the audit confirms timeouts never fire in fault-free
/// runs — [`crate::chaos`] drives the timeout path deliberately).
pub fn sa_stats(opts: Opts) -> Table {
    let mut table = Table::new("SA round statistics (IRS, streamcluster, per interference level)");
    let mut sent = Series::new("sa sent");
    let mut acked = Series::new("sa acked");
    let mut timeouts = Series::new("sa timeouts");
    let mut migrations = Series::new("migrator moves");
    let mut idle_targets = Series::new("idle-vCPU targets");
    for n_inter in [1usize, 2, 4] {
        let mut s = [0f64; 5];
        for i in 0..opts.seeds {
            let r = Scenario::fig5_style("streamcluster", n_inter, Strategy::Irs, opts.base_seed + i)
                .run();
            s[0] += r.hv.sa_sent as f64;
            s[1] += r.hv.sa_acked as f64;
            s[2] += r.hv.sa_timeouts as f64;
            s[3] += r.measured().guest.sa_migrations as f64;
            s[4] += r.measured().guest.sa_idle_targets as f64;
        }
        let n = opts.seeds as f64;
        let label = format!("{n_inter}-inter.");
        sent.point(label.clone(), s[0] / n);
        acked.point(label.clone(), s[1] / n);
        timeouts.point(label.clone(), s[2] / n);
        migrations.point(label.clone(), s[3] / n);
        idle_targets.point(label, s[4] / n);
    }
    table.add(sent);
    table.add(acked);
    table.add(timeouts);
    table.add(migrations);
    table.add(idle_targets);
    table
}
