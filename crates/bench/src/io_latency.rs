//! The §3.1 caveat, quantified: "if vCPU preemption is due to prioritizing
//! an I/O-bound vCPU, the \[SA\] delay will add to I/O latency."
//!
//! An I/O-bound VM (sleep 5 ms → tiny compute, i.e. a ping-style loop)
//! shares a pCPU with one vCPU of an IRS-enabled parallel VM. Every wake of
//! the I/O vCPU arrives with BOOST and preempts the parallel vCPU — which,
//! under IRS, first runs a 20–26 µs scheduler-activation round. The
//! experiment measures exactly how much of that shows up in I/O latency.

use crate::Opts;
use irs_core::{Scenario, Strategy, VmScenario};
use irs_metrics::{Series, Summary, Table};
use irs_sim::SimTime;
use irs_sync::SyncSpace;
use irs_workloads::{presets, ProgramBuilder, WorkloadBundle};
use irs_xen::PcpuId;

/// Sleep period of the I/O loop.
const SLEEP: SimTime = SimTime::from_millis(5);
/// Post-wake service compute.
const SERVICE_US: u64 = 100;

fn io_bundle() -> WorkloadBundle {
    let prog = ProgramBuilder::new()
        .forever(|b| {
            b.request_start()
                .sleep_us(SLEEP.as_micros())
                .compute_us(SERVICE_US, 0.0)
                .request_done()
        })
        .build();
    WorkloadBundle::server("io-ping", vec![prog], SyncSpace::new(), 0.0, None)
}

fn scenario(strategy: Strategy, seed: u64) -> Scenario {
    let fg = presets::by_name("streamcluster", 4, irs_sync::WaitMode::Block).unwrap();
    Scenario::new(4, strategy, seed)
        .vm(
            VmScenario::new(fg.into_background(), 4)
                .pin_one_to_one()
                // The parallel VM carries the IRS guest when the strategy
                // is IRS, even though the I/O VM is the one measured.
                .irs_guest(strategy.sa_capable_guest()),
        )
        .vm(
            VmScenario::new(io_bundle(), 1)
                .pin(vec![PcpuId(0)])
                .measured(),
        )
        .horizon(SimTime::from_secs(10))
}

/// Mean and p99 wake overhead (µs beyond the ideal sleep + service time).
pub fn wake_overhead_us(strategy: Strategy, opts: Opts) -> (f64, f64) {
    let ideal_us = SLEEP.as_micros() as f64 + SERVICE_US as f64;
    let mut means = Vec::new();
    let mut p99s = Vec::new();
    for i in 0..opts.seeds {
        let r = scenario(strategy, opts.base_seed + i).run();
        let m = r.measured();
        means.push(m.mean_latency_us() - ideal_us);
        p99s.push(m.latency_percentile_us(99.0) - ideal_us);
    }
    (Summary::of(&means).mean, Summary::of(&p99s).mean)
}

/// The experiment table: wake overhead per strategy, plus the IRS delta —
/// which should sit near the configured 22 µs SA round.
pub fn io_latency(opts: Opts) -> Table {
    let mut table = Table::new(
        "I/O wake latency under a co-located IRS VM (overhead beyond sleep+service, us)",
    );
    let mut mean_row = Series::new("mean overhead");
    let mut p99_row = Series::new("p99 overhead");
    let mut results = Vec::new();
    for strategy in [Strategy::Vanilla, Strategy::Irs] {
        let (mean, p99) = wake_overhead_us(strategy, opts);
        mean_row.point(strategy.to_string(), mean);
        p99_row.point(strategy.to_string(), p99);
        results.push(mean);
    }
    let mut delta = Series::new("IRS - vanilla (mean)");
    delta.point("delta", results[1] - results[0]);
    table.add(mean_row);
    table.add(p99_row);
    table.add(delta);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §3.1 number shows up at the tail: a wake that preempts
    /// an SA-capable vCPU pays the ~22 µs SA round (p99). The *mean* can go
    /// either way — IRS also vacates preempted vCPUs, which often leaves
    /// the I/O vCPU's pCPU free.
    #[test]
    fn irs_adds_one_sa_round_to_the_wake_tail() {
        let opts = Opts::quick();
        let (vanilla_mean, vanilla_p99) = wake_overhead_us(Strategy::Vanilla, opts);
        let (irs_mean, irs_p99) = wake_overhead_us(Strategy::Irs, opts);
        let tail_delta = irs_p99 - vanilla_p99;
        assert!(
            (2.0..40.0).contains(&tail_delta),
            "p99 should carry roughly one 22 us SA round, got {tail_delta:.1} us \
             (vanilla {vanilla_p99:.1}, irs {irs_p99:.1})"
        );
        // And the mean must not blow up: the SA delay is bounded.
        assert!(
            irs_mean < vanilla_mean + 80.0,
            "mean overhead regressed: {vanilla_mean:.1} -> {irs_mean:.1}"
        );
    }
}
