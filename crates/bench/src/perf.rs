//! `figures perf` — self-benchmark of the simulation engine.
//!
//! Runs a fixed mix of scenarios twice — once sequentially (`jobs = 1`)
//! and once at the requested worker count — and reports wall-clock,
//! speedup, and events/sec, plus a micro-benchmark of the event-queue
//! hot path. The engine is deterministic, so the two passes perform the
//! same work; only wall-clock differs.
//!
//! An untimed warm-up pass runs first and doubles as a probe: the mix is
//! repeated enough times that each timed pass lasts at least
//! [`MIN_TIMED_WALL_S`]. Without the scaling, a release-mode mix finishes
//! in ~10 ms and the parallel pass mostly measures worker-thread startup —
//! which is how an earlier report shipped a "speedup" of 0.76x.
//!
//! The report serializes to `BENCH_runner.json`; `scripts/verify.sh`
//! fills in the trailing `verify_wall_s` field.

use crate::Opts;
use irs_core::{parallel, Scenario, Strategy};
use irs_sim::{EventQueue, SimTime};
use std::time::Instant;

/// Wall-clock and throughput numbers from one [`perf`] run.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Independent simulation runs in the timed mix.
    pub runs: usize,
    /// Discrete events processed across the mix (same for both passes).
    pub events: u64,
    /// Wall-clock of the sequential pass, seconds.
    pub sequential_wall_s: f64,
    /// Wall-clock of the parallel pass, seconds.
    pub parallel_wall_s: f64,
    /// Worker count the parallel pass ran with.
    pub parallel_jobs: usize,
    /// Event-queue micro-benchmark: schedule/cancel/pop operations per
    /// second under a churn pattern that keeps the slab and tombstone
    /// machinery hot.
    pub queue_ops_per_sec: f64,
}

impl PerfReport {
    /// Sequential-pass throughput in simulation events per second.
    pub fn sequential_events_per_sec(&self) -> f64 {
        self.events as f64 / self.sequential_wall_s.max(1e-9)
    }

    /// Parallel-pass throughput in simulation events per second.
    pub fn parallel_events_per_sec(&self) -> f64 {
        self.events as f64 / self.parallel_wall_s.max(1e-9)
    }

    /// Sequential wall-clock over parallel wall-clock.
    pub fn speedup(&self) -> f64 {
        self.sequential_wall_s / self.parallel_wall_s.max(1e-9)
    }

    /// The `BENCH_runner.json` payload. `verify_wall_s` is emitted null;
    /// `scripts/verify.sh` substitutes the measured value.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"runs\": {},\n  \"events\": {},\n  \"sequential_wall_s\": {:.6},\n  \
             \"parallel_wall_s\": {:.6},\n  \"parallel_jobs\": {},\n  \"speedup\": {:.3},\n  \
             \"sequential_events_per_sec\": {:.0},\n  \"parallel_events_per_sec\": {:.0},\n  \
             \"queue_ops_per_sec\": {:.0},\n  \"verify_wall_s\": null\n}}\n",
            self.runs,
            self.events,
            self.sequential_wall_s,
            self.parallel_wall_s,
            self.parallel_jobs,
            self.speedup(),
            self.sequential_events_per_sec(),
            self.parallel_events_per_sec(),
            self.queue_ops_per_sec,
        )
    }

    /// Human-readable summary (what the `perf` subcommand prints).
    pub fn render(&self) -> String {
        format!(
            "engine self-benchmark ({} runs, {} events)\n\
             \u{20} sequential: {:>8.3} s  ({:.0} events/s)\n\
             \u{20} {:>2} workers: {:>8.3} s  ({:.0} events/s, {:.2}x)\n\
             \u{20} event queue: {:.2}M ops/s (schedule/cancel/pop churn)\n",
            self.runs,
            self.events,
            self.sequential_wall_s,
            self.sequential_events_per_sec(),
            self.parallel_jobs,
            self.parallel_wall_s,
            self.parallel_events_per_sec(),
            self.speedup(),
            self.queue_ops_per_sec / 1e6,
        )
    }
}

/// The fixed scenario mix: a spread of cheap and mid-weight benchmarks
/// across strategies, so both guest layers and all three hypervisor
/// schedulers appear in the profile.
const MIX: [(&str, usize, Strategy); 6] = [
    ("EP", 1, Strategy::Vanilla),
    ("EP", 2, Strategy::Irs),
    ("blackscholes", 1, Strategy::Ple),
    ("streamcluster", 1, Strategy::Irs),
    ("LU", 1, Strategy::RelaxedCo),
    ("swaptions", 2, Strategy::Irs),
];

/// Minimum wall-clock of each timed pass. Worker-thread startup in
/// [`parallel::ordered_map`] costs on the order of 100 µs per worker; a
/// pass must dwarf that or "speedup" measures thread spawning, not the
/// engine.
const MIN_TIMED_WALL_S: f64 = 0.5;

/// Times the mix sequentially and at `opts.jobs` workers and returns the
/// combined report. `opts.seeds` seeds per mix entry; the whole mix is
/// then repeated (identically — the engine is deterministic) until a
/// timed pass is expected to take at least [`MIN_TIMED_WALL_S`].
pub fn perf(opts: Opts) -> PerfReport {
    let per = opts.seeds.max(1) as usize;
    let base_runs = MIX.len() * per;
    let job = |i: usize| {
        let i = i % base_runs;
        let (bench, n_inter, strategy) = MIX[i / per];
        let seed = opts.base_seed + (i % per) as u64;
        Scenario::fig5_style(bench, n_inter, strategy, seed).run()
    };

    // Warm-up: faults code and allocator arenas in, and its wall-clock
    // sizes the timed passes.
    let t_probe = Instant::now();
    let _ = parallel::ordered_map(1, base_runs, job);
    let probe_wall_s = t_probe.elapsed().as_secs_f64();
    let repeat = (MIN_TIMED_WALL_S / probe_wall_s.max(1e-6)).ceil() as usize;
    let runs = base_runs * repeat.clamp(1, 4096);

    let t0 = Instant::now();
    let sequential = parallel::ordered_map(1, runs, job);
    let sequential_wall_s = t0.elapsed().as_secs_f64();
    let events: u64 = sequential.iter().map(|r| r.events).sum();

    let parallel_jobs = parallel::resolve_jobs(opts.jobs);
    let t1 = Instant::now();
    let par = parallel::ordered_map(parallel_jobs, runs, job);
    let parallel_wall_s = t1.elapsed().as_secs_f64();
    let par_events: u64 = par.iter().map(|r| r.events).sum();
    assert_eq!(events, par_events, "parallel pass diverged from sequential");

    PerfReport {
        runs,
        events,
        sequential_wall_s,
        parallel_wall_s,
        parallel_jobs,
        queue_ops_per_sec: queue_ops_per_sec(),
    }
}

/// Micro-benchmark of [`EventQueue`]: interleaved schedule / cancel / pop
/// with out-of-order timestamps, so the heap, the id slab, and tombstone
/// reclamation all stay on the measured path.
fn queue_ops_per_sec() -> f64 {
    const TARGET_OPS: u64 = 1_000_000;
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut ids = Vec::new();
    let mut k = 0u64;
    let mut ops = 0u64;
    let t0 = Instant::now();
    while ops < TARGET_OPS {
        for _ in 0..3 {
            k += 1;
            // Pseudo-random-ish timestamps keep the heap unsorted on insert.
            let at = SimTime::from_nanos(k.wrapping_mul(0x9e37_79b9) % 1_000_000);
            ids.push(q.schedule(at, k));
        }
        if let Some(id) = ids.pop() {
            q.cancel(id);
        }
        q.pop();
        ops += 5;
    }
    while q.pop().is_some() {
        ops += 1;
    }
    ops as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_to_json() {
        let r = PerfReport {
            runs: 12,
            events: 3456,
            sequential_wall_s: 2.0,
            parallel_wall_s: 1.0,
            parallel_jobs: 4,
            queue_ops_per_sec: 1e6,
        };
        let json = r.to_json();
        assert!(json.contains("\"runs\": 12"));
        assert!(json.contains("\"speedup\": 2.000"));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"verify_wall_s\": null"));
        assert!((r.speedup() - 2.0).abs() < 1e-9);
        assert!((r.sequential_events_per_sec() - 1728.0).abs() < 1e-6);
    }

    #[test]
    fn queue_microbench_reports_positive_throughput() {
        assert!(queue_ops_per_sec() > 0.0);
    }
}
