//! `figures perf` — self-benchmark and regression gate of the simulation
//! engine.
//!
//! Runs a fixed mix of scenarios four times over the same grid:
//!
//! 1. **ticked sequential** — `jobs = 1`, tickless off: the baseline cost
//!    of dispatching every event;
//! 2. **tickless sequential** — `jobs = 1`, tickless fast-forward on: what
//!    event elision alone buys;
//! 3. **tickless parallel** — `opts.jobs` workers on the persistent pool,
//!    tickless on: the configuration `figures --tickless --jobs N` runs;
//! 4. **forked** — tickless parallel again, but the grid's repeated cells
//!    share one warmup each: every distinct `(scenario, seed)` runs to a
//!    fixed virtual time once, is snapshotted, and the repeats resume from
//!    the [`irs_core::Snapshot`] instead of re-simulating the prefix.
//!
//! The engine is deterministic, tickless is a pure wall-clock
//! optimisation, and snapshot forking is bit-exact, so all four passes
//! must produce bit-identical results — the harness asserts it (`Debug`
//! rendering, which is shortest-roundtrip for every float) before
//! reporting. The headline `speedup` is ticked-sequential over
//! tickless-parallel: the combined win of both engine optimisations,
//! which is also what the `--check-perf` regression gate holds at
//! ≥ [`SPEEDUP_FLOOR`] (single-core CI boxes cannot promise
//! thread-level scaling — the true ratio there sits at ~1.0 — but
//! elision + pool must never make the engine *materially slower* than
//! the naive baseline).
//!
//! An untimed warm-up pass runs first and doubles as a probe: the mix is
//! repeated enough times that each timed pass lasts at least
//! [`MIN_TIMED_WALL_S`] and the grid holds at least [`MIN_GRID_RUNS`]
//! runs. Without the scaling, a release-mode mix finishes in ~10 ms and
//! the parallel pass mostly measures pool startup — which is how an
//! earlier report shipped a "speedup" of 0.76x. Each phase is then timed
//! as the **best of [`MEASURE_PASSES`] shorter passes** (minimum wall —
//! the classic defence against one-sided scheduling noise: interference
//! only ever adds time, so the minimum is the least-contaminated
//! reading). A single long pass is at the mercy of whatever the CI box's
//! neighbours were doing during that one window, which is how the gate
//! used to fail on commits that touched no engine code at all.
//!
//! The report serializes to `BENCH_runner.json` (per-phase walls,
//! speedups, `tickless_events_saved`, `fork_warmup_saved`);
//! `scripts/verify.sh` fills in the trailing `verify_wall_s` field.
//! `figures perf` also appends one line per invocation to
//! `BENCH_history.jsonl` for trend tracking.

use crate::Opts;
use irs_core::{parallel, Scenario, Snapshot, Strategy, System, SystemConfig};
use irs_sim::{EventQueue, SimTime};
use std::time::Instant;

/// Wall-clock and throughput numbers from one [`perf`] run.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Independent simulation runs in the timed grid.
    pub runs: usize,
    /// Discrete events processed across the grid (identical in all three
    /// passes — elided events still count).
    pub events: u64,
    /// Wall-clock of the ticked sequential pass, seconds.
    pub ticked_wall_s: f64,
    /// Wall-clock of the tickless sequential pass, seconds.
    pub tickless_wall_s: f64,
    /// Wall-clock of the tickless parallel pass, seconds.
    pub parallel_wall_s: f64,
    /// Wall-clock of the forked pass (tickless parallel with per-cell
    /// shared warmups), seconds. Excludes the warmup/snapshot prologue —
    /// that is the cost the sharing pays once, not per branch.
    pub forked_wall_s: f64,
    /// Worker count the parallel and forked passes ran with.
    pub parallel_jobs: usize,
    /// Events elided by tickless fast-forward across the grid (counted
    /// during the tickless sequential pass; the parallel pass elides the
    /// same events).
    pub tickless_events_saved: u64,
    /// Events the forked pass avoided re-executing: per distinct cell,
    /// warmup events × (repeats − 1). Zero when the grid has no repeats
    /// (nothing to share).
    pub fork_warmup_saved: u64,
    /// Event-queue micro-benchmark: schedule/cancel/pop operations per
    /// second under a churn pattern that keeps the slab and tombstone
    /// machinery hot.
    pub queue_ops_per_sec: f64,
}

impl PerfReport {
    /// Ticked sequential throughput in simulation events per second.
    pub fn ticked_events_per_sec(&self) -> f64 {
        self.events as f64 / self.ticked_wall_s.max(1e-9)
    }

    /// Tickless parallel throughput in simulation events per second.
    pub fn parallel_events_per_sec(&self) -> f64 {
        self.events as f64 / self.parallel_wall_s.max(1e-9)
    }

    /// What tickless fast-forward alone buys: ticked over tickless
    /// wall-clock, both sequential.
    pub fn tickless_speedup(&self) -> f64 {
        self.ticked_wall_s / self.tickless_wall_s.max(1e-9)
    }

    /// What the worker pool alone buys: tickless sequential over tickless
    /// parallel wall-clock.
    pub fn parallel_speedup(&self) -> f64 {
        self.tickless_wall_s / self.parallel_wall_s.max(1e-9)
    }

    /// The headline: ticked sequential over tickless parallel — the
    /// combined benefit of elision and the pool, and what `--check-perf`
    /// gates on.
    pub fn speedup(&self) -> f64 {
        self.ticked_wall_s / self.parallel_wall_s.max(1e-9)
    }

    /// What warmup sharing buys on top of the parallel configuration:
    /// tickless parallel over forked wall-clock.
    pub fn forked_speedup(&self) -> f64 {
        self.parallel_wall_s / self.forked_wall_s.max(1e-9)
    }

    /// Forked-pass throughput in simulation events per second. `events`
    /// counts the full grid (what the pass *delivers*), so sharing the
    /// warmup prefix shows up here as throughput above the parallel pass.
    pub fn forked_events_per_sec(&self) -> f64 {
        self.events as f64 / self.forked_wall_s.max(1e-9)
    }

    /// Fraction of all events the tickless passes elided.
    pub fn saved_frac(&self) -> f64 {
        self.tickless_events_saved as f64 / (self.events.max(1)) as f64
    }

    /// The `BENCH_runner.json` payload. `verify_wall_s` is emitted null;
    /// `scripts/verify.sh` substitutes the measured value.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"runs\": {},\n  \"events\": {},\n  \"ticked_wall_s\": {:.6},\n  \
             \"tickless_wall_s\": {:.6},\n  \"parallel_wall_s\": {:.6},\n  \
             \"forked_wall_s\": {:.6},\n  \"parallel_jobs\": {},\n  \"speedup\": {:.3},\n  \
             \"tickless_speedup\": {:.3},\n  \"parallel_speedup\": {:.3},\n  \
             \"forked_speedup\": {:.3},\n  \
             \"tickless_events_saved\": {},\n  \"tickless_saved_frac\": {:.4},\n  \
             \"fork_warmup_saved\": {},\n  \
             \"ticked_events_per_sec\": {:.0},\n  \"parallel_events_per_sec\": {:.0},\n  \
             \"forked_events_per_sec\": {:.0},\n  \
             \"queue_ops_per_sec\": {:.0},\n  \"verify_wall_s\": null\n}}\n",
            self.runs,
            self.events,
            self.ticked_wall_s,
            self.tickless_wall_s,
            self.parallel_wall_s,
            self.forked_wall_s,
            self.parallel_jobs,
            self.speedup(),
            self.tickless_speedup(),
            self.parallel_speedup(),
            self.forked_speedup(),
            self.tickless_events_saved,
            self.saved_frac(),
            self.fork_warmup_saved,
            self.ticked_events_per_sec(),
            self.parallel_events_per_sec(),
            self.forked_events_per_sec(),
            self.queue_ops_per_sec,
        )
    }

    /// The `BENCH_history.jsonl` records for one invocation: one line per
    /// measured phase, each self-describing via `phase` / `tickless` /
    /// `jobs` / `cores` / `timestamp`. Earlier history lines carried only
    /// the parallel-phase throughput, which made two entries for the same
    /// commit (e.g. a ticked and a tickless invocation) indistinguishable;
    /// `--check-perf` ratchets each phase against matching records only.
    /// `cores` is the recording host's core count ([`host_cores`]): a
    /// throughput measured on a multi-core box must never become the
    /// ratchet baseline for a 1-core container, or vice versa.
    pub fn to_history_lines(&self, commit: &str, timestamp: u64, cores: usize) -> String {
        let head = |phase: &str, tickless: bool, jobs: usize| {
            format!(
                "{{\"commit\": \"{commit}\", \"timestamp\": {timestamp}, \
                 \"phase\": \"{phase}\", \"tickless\": {tickless}, \"jobs\": {jobs}, \
                 \"cores\": {cores}"
            )
        };
        format!(
            "{}, \"events_per_sec\": {:.0}}}\n\
             {}, \"events_per_sec\": {:.0}}}\n\
             {}, \"events_per_sec\": {:.0}, \"speedup\": {:.3}}}\n\
             {}, \"events_per_sec\": {:.0}, \"fork_warmup_saved\": {}}}\n\
             {}, \"ops_per_sec\": {:.0}}}\n",
            head("ticked", false, 1),
            self.ticked_events_per_sec(),
            head("tickless", true, 1),
            self.events as f64 / self.tickless_wall_s.max(1e-9),
            head("parallel", true, self.parallel_jobs),
            self.parallel_events_per_sec(),
            self.speedup(),
            head("forked", true, self.parallel_jobs),
            self.forked_events_per_sec(),
            self.fork_warmup_saved,
            head("queue", false, 1),
            self.queue_ops_per_sec,
        )
    }

    /// The `--check-perf` regression gate. Returns one message per
    /// violated check; empty means the gate passes. `history` is the raw
    /// `BENCH_history.jsonl` content (pre-append), used to *ratchet*: each
    /// phase's current throughput must stay above [`RATCHET_FRAC`] of the
    /// best history record with the **matching configuration** (same
    /// phase, tickless flag, worker count, and host core count) — records
    /// from other configurations, legacy lines without a `phase` or
    /// `cores` field, and records whose `tickless` / `jobs` / `cores` /
    /// metric fields are malformed (a quoted bool, a non-numeric count, a
    /// truncated line from an interrupted append) are ignored rather than
    /// matched by accident: a corrupt record must never be able to fail —
    /// or pass — the gate. The loose fraction absorbs the ±30% wall-clock
    /// noise of shared CI boxes while still catching structural
    /// regressions (a heap-class queue would land at ~15% of the wheel's
    /// ops/s).
    pub fn check_perf(&self, history: &str) -> Vec<String> {
        self.check_perf_at(history, host_cores())
    }

    /// [`check_perf`](Self::check_perf) against an explicit host core
    /// count (the testable entry point; production use passes
    /// [`host_cores`]).
    pub fn check_perf_at(&self, history: &str, cores: usize) -> Vec<String> {
        let mut failures = Vec::new();
        if self.speedup() < SPEEDUP_FLOOR {
            failures.push(format!(
                "combined speedup {:.3} < {SPEEDUP_FLOOR} (tickless fast-forward + {} \
                 workers must not run materially slower than the ticked sequential \
                 baseline)",
                self.speedup(),
                self.parallel_jobs,
            ));
        }
        if self.queue_ops_per_sec < QUEUE_OPS_FLOOR {
            failures.push(format!(
                "queue_ops_per_sec {:.0} below the {:.0} floor (timer-wheel \
                 schedule/cancel/pop churn must not regress toward heap costs)",
                self.queue_ops_per_sec, QUEUE_OPS_FLOOR,
            ));
        }
        let phases: [(&str, bool, usize, f64, &str); 5] = [
            ("ticked", false, 1, self.ticked_events_per_sec(), "events_per_sec"),
            (
                "tickless",
                true,
                1,
                self.events as f64 / self.tickless_wall_s.max(1e-9),
                "events_per_sec",
            ),
            (
                "parallel",
                true,
                self.parallel_jobs,
                self.parallel_events_per_sec(),
                "events_per_sec",
            ),
            (
                "forked",
                true,
                self.parallel_jobs,
                self.forked_events_per_sec(),
                "events_per_sec",
            ),
            ("queue", false, 1, self.queue_ops_per_sec, "ops_per_sec"),
        ];
        for (phase, tickless, jobs, current, metric) in phases {
            let best = history
                .lines()
                .filter(|l| {
                    json_str_field(l, "phase").as_deref() == Some(phase)
                        && json_bool_field(l, "tickless") == Some(tickless)
                        && json_usize_field(l, "jobs") == Some(jobs)
                        && json_usize_field(l, "cores") == Some(cores)
                })
                .filter_map(|l| {
                    json_raw_field(l, metric)
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|v| v.is_finite() && *v > 0.0)
                })
                .fold(f64::NAN, f64::max);
            if best.is_finite() && current < RATCHET_FRAC * best {
                failures.push(format!(
                    "{phase} phase ratchet: {current:.0} {metric} is below {:.0}% of the \
                     best matching record ({best:.0}; tickless={tickless}, jobs={jobs})",
                    RATCHET_FRAC * 100.0,
                ));
            }
        }
        failures
    }

    /// Human-readable summary (what the `perf` subcommand prints).
    pub fn render(&self) -> String {
        format!(
            "engine self-benchmark ({} runs, {} events)\n\
             \u{20} ticked  seq: {:>8.3} s  ({:.0} events/s)\n\
             \u{20} tickless seq: {:>7.3} s  ({:.2}x, {} events elided = {:.1}%)\n\
             \u{20} {:>2} workers: {:>8.3} s  ({:.0} events/s, {:.2}x pool, {:.2}x combined)\n\
             \u{20} forked:      {:>8.3} s  ({:.0} events/s, {:.2}x over parallel, \
             {} warmup events shared)\n\
             \u{20} event queue: {:.2}M ops/s (schedule/cancel/pop churn)\n",
            self.runs,
            self.events,
            self.ticked_wall_s,
            self.ticked_events_per_sec(),
            self.tickless_wall_s,
            self.tickless_speedup(),
            self.tickless_events_saved,
            100.0 * self.saved_frac(),
            self.parallel_jobs,
            self.parallel_wall_s,
            self.parallel_events_per_sec(),
            self.parallel_speedup(),
            self.speedup(),
            self.forked_wall_s,
            self.forked_events_per_sec(),
            self.forked_speedup(),
            self.fork_warmup_saved,
            self.queue_ops_per_sec / 1e6,
        )
    }
}

/// The fixed scenario mix: a spread of cheap and mid-weight benchmarks
/// across strategies, so both guest layers and all three hypervisor
/// schedulers appear in the profile.
const MIX: [(&str, usize, Strategy); 6] = [
    ("EP", 1, Strategy::Vanilla),
    ("EP", 2, Strategy::Irs),
    ("blackscholes", 1, Strategy::Ple),
    ("streamcluster", 1, Strategy::Irs),
    ("LU", 1, Strategy::RelaxedCo),
    ("swaptions", 2, Strategy::Irs),
];

/// Minimum wall-clock of each timed pass. Pool wake-up costs microseconds
/// per campaign, but a pass must still dwarf scheduling noise or
/// "speedup" measures jitter, not the engine. Shorter than the old single
/// 0.5 s pass because each phase now takes the best of
/// [`MEASURE_PASSES`]: three 0.25 s windows reject one-sided interference
/// far better than one 0.5 s window that a noisy neighbour can poison
/// end to end.
const MIN_TIMED_WALL_S: f64 = 0.25;

/// Timed passes per phase; the minimum wall (maximum throughput) is
/// reported. Interference is one-sided — it only ever slows a pass — so
/// min-of-N converges on the engine's true cost as N grows; 3 is enough
/// to drop the gate's false-failure rate on shared boxes to noise.
const MEASURE_PASSES: usize = 3;

/// Minimum grid size: the regression gate is specified over a grid of at
/// least this many runs, so short machines scale up by repetition.
const MIN_GRID_RUNS: usize = 200;

/// Absolute floor on the queue micro-benchmark, in ops per second. The
/// timer wheel measures 35–60M ops/s on the reference box and the old
/// binary heap ~5–6M, so 20M splits the two populations with margin for
/// machine noise on both sides: a wheel on a slow box stays above it, a
/// heap regression on a fast box stays below it.
const QUEUE_OPS_FLOOR: f64 = 20.0e6;

/// Ratchet tolerance: a phase fails when its current throughput drops
/// below this fraction of the best matching history record.
const RATCHET_FRAC: f64 = 0.5;

/// Floor on the combined (ticked-sequential over tickless-parallel)
/// speedup. On a 1-core CI box the pool's overhead roughly cancels the
/// elision win, so the *true* ratio sits at ~1.0 and a hard `>= 1.0`
/// gate is a coin flip — the main historical source of `--check-perf`
/// false failures. The band absorbs that measurement noise (same idiom
/// as the chaos campaign's 1.15 degradation margin) while still
/// catching structural regressions, which land far below it: a broken
/// elision path or a serialized pool halves throughput, it doesn't
/// shave 10%. The per-phase history ratchet and the queue floor remain
/// the precise instruments.
const SPEEDUP_FLOOR: f64 = 0.85;

/// The recording host's core count, stamped into every history record
/// and required to match during ratcheting: 1-core CI containers and
/// multi-core dev boxes measure incomparable throughputs, and mixing
/// them made the ratchet either toothless (1-core best) or a guaranteed
/// failure (multi-core best).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Extract the raw (unquoted) value of a top-level `"key": value` pair
/// from a single-line JSON object. Good enough for the flat records this
/// module writes; not a general JSON parser. Matches are anchored: the
/// quoted key must sit where a key can sit (line start, or after `{` or
/// `,`), so a string *value* that happens to contain `"jobs":` cannot
/// alias the `jobs` field.
pub(crate) fn json_raw_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let mut from = 0;
    while let Some(off) = line[from..].find(&pat) {
        let idx = from + off;
        if idx == 0 || line[..idx].trim_end().ends_with(['{', ',']) {
            let rest = line[idx + pat.len()..].trim_start();
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            return Some(rest[..end].trim().to_string());
        }
        from = idx + pat.len();
    }
    None
}

/// Like [`json_raw_field`] but strips one layer of surrounding quotes.
pub(crate) fn json_str_field(line: &str, key: &str) -> Option<String> {
    let raw = json_raw_field(line, key)?;
    Some(raw.trim_matches('"').to_string())
}

/// Strictly-parsed JSON boolean: only the bare literals `true` / `false`
/// count. A quoted `"true"`, a `1`, or a truncated token is `None` — the
/// ratchet must skip such a record, not guess at it.
pub(crate) fn json_bool_field(line: &str, key: &str) -> Option<bool> {
    match json_raw_field(line, key)?.as_str() {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// Strictly-parsed JSON unsigned integer: bare ASCII digits only. Rejects
/// quoted numbers, signs, floats, and empty tokens.
pub(crate) fn json_usize_field(line: &str, key: &str) -> Option<usize> {
    let raw = json_raw_field(line, key)?;
    if raw.is_empty() || !raw.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    raw.parse().ok()
}

/// Runs `f` [`MEASURE_PASSES`] times and returns the first pass's result
/// with the **minimum** wall-clock across passes. The engine is
/// deterministic, so every pass returns the same value; interference is
/// one-sided, so the minimum wall is the cleanest reading.
fn best_of<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let mut out = None;
    let mut best = f64::INFINITY;
    for _ in 0..MEASURE_PASSES {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        if out.is_none() {
            out = Some(r);
        }
    }
    (out.expect("MEASURE_PASSES >= 1"), best)
}

/// Virtual-time warmup depth for the forked pass: far enough that the
/// shared prefix holds real scheduling history (SA round trips, credit
/// refills), well short of any run's completion.
const FORK_WARMUP: SimTime = SimTime::from_millis(50);

/// Times the grid in all four configurations and returns the combined
/// report. `opts.seeds` seeds per mix entry; the whole mix is then
/// repeated (identically — the engine is deterministic) until a timed
/// pass is expected to take at least [`MIN_TIMED_WALL_S`] and the grid
/// holds at least [`MIN_GRID_RUNS`] runs. The repetition is what the
/// forked phase exploits: `runs / base_runs` branches per distinct cell
/// share one warmup each.
pub fn perf(opts: Opts) -> PerfReport {
    // Best-of-N for the micro-benchmark too: its loop already runs to a
    // minimum wall, so take the fastest of the repeated windows.
    let queue_ops = (0..MEASURE_PASSES).map(|_| queue_ops_per_sec()).fold(0.0, f64::max);
    let per = opts.seeds.max(1) as usize;
    let base_runs = MIX.len() * per;
    let cell = |i: usize| {
        let i = i % base_runs;
        let (bench, n_inter, strategy) = MIX[i / per];
        let seed = opts.base_seed + (i % per) as u64;
        Scenario::fig5_style(bench, n_inter, strategy, seed)
    };
    let job = |i: usize| cell(i).run();

    // Warm-up: faults code and allocator arenas in, and its wall-clock
    // sizes the timed passes.
    let t_probe = Instant::now();
    let _ = parallel::ordered_map(1, base_runs, job);
    let probe_wall_s = t_probe.elapsed().as_secs_f64();
    let repeat_for_wall = (MIN_TIMED_WALL_S / probe_wall_s.max(1e-6)).ceil() as usize;
    let repeat_for_grid = MIN_GRID_RUNS.div_ceil(base_runs);
    let runs = base_runs * repeat_for_wall.max(repeat_for_grid).clamp(1, 4096);

    // Phase 1: ticked sequential (the pre-tickless baseline).
    irs_core::set_tickless_enabled(false);
    let _ = irs_core::take_tickless_events_saved();
    let (ticked, ticked_wall_s) = best_of(|| parallel::ordered_map(1, runs, job));
    let events: u64 = ticked.iter().map(|r| r.events).sum();

    // Phase 2: tickless sequential — same grid, fast-forward armed. The
    // elision counter is drained per pass (it is process-global) and the
    // first pass's reading reported; determinism makes every pass elide
    // the identical set.
    irs_core::set_tickless_enabled(true);
    let mut tickless_events_saved = 0u64;
    let (tickless, tickless_wall_s) = best_of(|| {
        let r = parallel::ordered_map(1, runs, job);
        let saved = irs_core::take_tickless_events_saved();
        if tickless_events_saved == 0 {
            tickless_events_saved = saved;
        }
        r
    });

    // Phase 3: tickless parallel on the persistent pool.
    let parallel_jobs = parallel::resolve_jobs(opts.jobs);
    let (par, parallel_wall_s) = best_of(|| {
        let r = parallel::ordered_map(parallel_jobs, runs, job);
        let _ = irs_core::take_tickless_events_saved();
        r
    });

    // Phase 4: forked — each distinct cell runs its warmup prefix once
    // (untimed, like the probe: it is paid once per campaign, not per
    // branch), and every grid slot resumes from its cell's snapshot.
    // `job` maps slot i to cell i % base_runs, so slot-for-slot identity
    // with the other passes is well-defined.
    let snaps: Vec<Snapshot> = parallel::ordered_map(parallel_jobs, base_runs, |i| {
        let mut sys = System::with_config(cell(i), SystemConfig::default());
        sys.run_until(FORK_WARMUP);
        sys.snapshot()
    });
    let repeats = (runs / base_runs) as u64;
    let fork_warmup_saved: u64 = snaps
        .iter()
        .map(|s| s.events_processed().saturating_mul(repeats.saturating_sub(1)))
        .sum();
    let (forked, forked_wall_s) = best_of(|| {
        let r = parallel::ordered_map(parallel_jobs, runs, |i| snaps[i % base_runs].resume().run());
        let _ = irs_core::take_tickless_events_saved();
        r
    });
    irs_core::set_tickless_enabled(false);

    // The determinism contract, asserted over the full result surface:
    // every float, counter, and latency sample must agree across all
    // four configurations.
    assert_eq!(
        format!("{ticked:?}"),
        format!("{tickless:?}"),
        "tickless pass diverged from the ticked baseline"
    );
    assert_eq!(
        format!("{tickless:?}"),
        format!("{par:?}"),
        "parallel pass diverged from sequential"
    );
    assert_eq!(
        format!("{par:?}"),
        format!("{forked:?}"),
        "forked pass diverged from the parallel pass: snapshot fork broke bit-identity"
    );

    PerfReport {
        runs,
        events,
        ticked_wall_s,
        tickless_wall_s,
        parallel_wall_s,
        forked_wall_s,
        parallel_jobs,
        tickless_events_saved,
        fork_warmup_saved,
        queue_ops_per_sec: queue_ops,
    }
}

/// Steady-state live population for the queue micro-benchmark: one busy
/// simulated host's worth of armed timers (64 pCPUs × ~8 armed timers
/// each — slice expiries, guest ticks, accounting beats, PLE windows).
const QUEUE_BENCH_POPULATION: usize = 512;

/// Micro-benchmark of [`EventQueue`]: interleaved schedule / cancel / pop
/// shaped like the simulator's own timer churn, which the tickless data
/// pinned down as 83–88% short periodic timers. Every event is armed
/// *relative to the advancing clock*: 85% are ~1 ms beats (`HvTick`,
/// guest CFS ticks, jittered ±10%), the rest are golden-ratio scattered
/// over 1 µs..34 ms (PLE windows to slice expiries). Each round also arms
/// and immediately cancels a timer (a slice timer dying to an early
/// block) and pops three events forward, holding the live population at
/// [`QUEUE_BENCH_POPULATION`]; the id slab and tombstone reclamation stay
/// on the measured path.
fn queue_ops_per_sec() -> f64 {
    const TARGET_OPS: u64 = 1_000_000;
    fn delta(k: u64) -> u64 {
        let r = k.wrapping_mul(0x9e37_79b9);
        if r % 100 < 85 {
            900_000 + r % 200_000
        } else {
            1_000 + r % 33_554_432
        }
    }
    let mut total_ops = 0u64;
    let t0 = Instant::now();
    // Repeat whole rounds until the wall window is long enough that
    // scheduler jitter on a busy host stops dominating the reading.
    loop {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut k = 0u64;
        let mut now = 0u64;
        let mut ops = 0u64;
        for _ in 0..QUEUE_BENCH_POPULATION {
            k += 1;
            q.schedule(SimTime::from_nanos(now + delta(k)), k);
        }
        while ops < TARGET_OPS {
            for _ in 0..3 {
                k += 1;
                q.schedule(SimTime::from_nanos(now + delta(k)), k);
            }
            let id = q.schedule(SimTime::from_nanos(now + delta(k ^ 7)), k);
            q.cancel(id);
            for _ in 0..3 {
                if let Some((t, _)) = q.pop() {
                    now = t.as_nanos();
                }
            }
            ops += 8;
        }
        while q.pop().is_some() {
            ops += 1;
        }
        total_ops += ops;
        if t0.elapsed().as_secs_f64() >= MIN_TIMED_WALL_S {
            break;
        }
    }
    total_ops as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PerfReport {
        PerfReport {
            runs: 216,
            events: 3456,
            ticked_wall_s: 3.0,
            tickless_wall_s: 2.0,
            parallel_wall_s: 1.0,
            forked_wall_s: 0.5,
            parallel_jobs: 4,
            tickless_events_saved: 1000,
            fork_warmup_saved: 2000,
            queue_ops_per_sec: 1e6,
        }
    }

    #[test]
    fn report_round_trips_to_json() {
        let r = report();
        let json = r.to_json();
        assert!(json.contains("\"runs\": 216"));
        assert!(json.contains("\"speedup\": 3.000"));
        assert!(json.contains("\"tickless_speedup\": 1.500"));
        assert!(json.contains("\"parallel_speedup\": 2.000"));
        assert!(json.contains("\"forked_speedup\": 2.000"));
        assert!(json.contains("\"tickless_events_saved\": 1000"));
        assert!(json.contains("\"fork_warmup_saved\": 2000"));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"verify_wall_s\": null"));
        // verify.sh substitutes the trailing field; it must stay last.
        assert!(json.trim_end().ends_with("\"verify_wall_s\": null\n}"));
        assert!((r.speedup() - 3.0).abs() < 1e-9);
        assert!((r.forked_speedup() - 2.0).abs() < 1e-9);
        assert!((r.ticked_events_per_sec() - 1152.0).abs() < 1e-6);
    }

    #[test]
    fn history_lines_are_one_json_object_per_phase() {
        let lines = report().to_history_lines("abc1234", 1_700_000_000, 8);
        let parsed: Vec<&str> = lines.lines().collect();
        assert_eq!(parsed.len(), 5, "one record per measured phase");
        for l in &parsed {
            assert!(l.starts_with('{') && l.ends_with('}'));
            assert_eq!(json_str_field(l, "commit").as_deref(), Some("abc1234"));
            assert_eq!(json_raw_field(l, "timestamp").as_deref(), Some("1700000000"));
            assert!(json_str_field(l, "phase").is_some());
            assert!(json_raw_field(l, "tickless").is_some());
            assert_eq!(json_usize_field(l, "cores"), Some(8));
        }
        // Phase records carry the numbers the ratchet keys on.
        assert!(parsed[0].contains("\"phase\": \"ticked\""));
        assert!(parsed[0].contains("\"tickless\": false"));
        assert!(parsed[2].contains("\"phase\": \"parallel\""));
        assert!(parsed[2].contains("\"jobs\": 4"));
        assert!(parsed[2].contains("\"speedup\": 3.000"));
        assert!(parsed[3].contains("\"phase\": \"forked\""));
        assert!(parsed[3].contains("\"jobs\": 4"));
        assert!(parsed[3].contains("\"fork_warmup_saved\": 2000"));
        assert!(parsed[4].contains("\"phase\": \"queue\""));
        assert!(parsed[4].contains("\"ops_per_sec\": 1000000"));
    }

    #[test]
    fn check_perf_passes_on_empty_history() {
        let mut r = report();
        r.queue_ops_per_sec = 40.0e6;
        assert!(r.check_perf("").is_empty());
    }

    #[test]
    fn check_perf_enforces_queue_floor_and_speedup() {
        let mut r = report();
        r.queue_ops_per_sec = 1e6; // heap-class number: below the floor
        r.parallel_wall_s = 4.0; // slower than ticked: speedup < 1.0
        let failures = r.check_perf("");
        assert_eq!(failures.len(), 2);
        assert!(failures.iter().any(|f| f.contains("queue_ops_per_sec")));
        assert!(failures.iter().any(|f| f.contains("speedup")));
    }

    #[test]
    fn check_perf_ratchets_against_matching_config_only() {
        let mut r = report();
        r.queue_ops_per_sec = 40.0e6;
        // Best matching parallel record is 10x the current report's
        // throughput -> ratchet fires. A same-phase record with a
        // different job count, one from a host with a different core
        // count, a legacy line without `phase`, and a legacy line
        // without `cores` must all be ignored.
        let history = "\
            {\"commit\": \"old0001\", \"jobs\": 4, \"events_per_sec\": 99999999, \"speedup\": 1.9}\n\
            {\"commit\": \"old0002\", \"timestamp\": 1, \"phase\": \"parallel\", \"tickless\": true, \"jobs\": 8, \"cores\": 4, \"events_per_sec\": 99999999, \"speedup\": 1.9}\n\
            {\"commit\": \"old0004\", \"timestamp\": 1, \"phase\": \"parallel\", \"tickless\": true, \"jobs\": 4, \"cores\": 64, \"events_per_sec\": 99999999, \"speedup\": 1.9}\n\
            {\"commit\": \"old0005\", \"timestamp\": 1, \"phase\": \"parallel\", \"tickless\": true, \"jobs\": 4, \"events_per_sec\": 99999999, \"speedup\": 1.9}\n\
            {\"commit\": \"old0003\", \"timestamp\": 2, \"phase\": \"parallel\", \"tickless\": true, \"jobs\": 4, \"cores\": 4, \"events_per_sec\": 34560, \"speedup\": 1.9}\n";
        let failures = r.check_perf_at(history, 4);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("parallel phase ratchet"));
        // Within tolerance of the matching record -> passes.
        let close = "{\"commit\": \"old0003\", \"timestamp\": 2, \"phase\": \"parallel\", \"tickless\": true, \"jobs\": 4, \"cores\": 4, \"events_per_sec\": 4000, \"speedup\": 1.9}\n";
        assert!(r.check_perf_at(close, 4).is_empty());
        // The same records never arm the ratchet on a different host.
        assert!(r.check_perf_at(history, 1).is_empty());
    }

    #[test]
    fn check_perf_ignores_malformed_records() {
        let mut r = report();
        r.queue_ops_per_sec = 40.0e6;
        // Each record matches the parallel phase on `phase` but is
        // corrupt in one field. None may arm the ratchet — the gate used
        // to false-fail when a mangled line's huge number slipped in.
        let history = "\
            {\"commit\": \"bad1\", \"phase\": \"parallel\", \"tickless\": \"true\", \"jobs\": 4, \"cores\": 4, \"events_per_sec\": 99999999}\n\
            {\"commit\": \"bad2\", \"phase\": \"parallel\", \"tickless\": 1, \"jobs\": 4, \"cores\": 4, \"events_per_sec\": 99999999}\n\
            {\"commit\": \"bad3\", \"phase\": \"parallel\", \"tickless\": true, \"jobs\": \"4\", \"cores\": 4, \"events_per_sec\": 99999999}\n\
            {\"commit\": \"bad4\", \"phase\": \"parallel\", \"tickless\": true, \"jobs\": four, \"cores\": 4, \"events_per_sec\": 99999999}\n\
            {\"commit\": \"bad5\", \"phase\": \"parallel\", \"tickless\": true, \"jobs\": -4, \"cores\": 4, \"events_per_sec\": 99999999}\n\
            {\"commit\": \"bad6\", \"phase\": \"parallel\", \"tickless\": true, \"jobs\": 4, \"cores\": \"4\", \"events_per_sec\": 99999999}\n\
            {\"commit\": \"bad7\", \"phase\": \"parallel\", \"tickless\": true, \"jobs\": 4, \"cores\": 4, \"events_per_sec\": NaN}\n\
            {\"commit\": \"bad8\", \"phase\": \"parallel\", \"tickless\": true, \"jobs\": 4, \"cores\": 4, \"events_per_sec\":\n";
        let failures = r.check_perf_at(history, 4);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn json_fields_are_anchored_and_strict() {
        // A value containing a key-shaped string must not alias the key.
        let line = "{\"commit\": \"x \\\"jobs\\\": 99\", \"jobs\": 4, \"tickless\": true}";
        assert_eq!(json_usize_field(line, "jobs"), Some(4));
        assert_eq!(json_bool_field(line, "tickless"), Some(true));
        // Substring keys don't alias (`jobs` vs a hypothetical `xjobs`).
        assert_eq!(json_usize_field("{\"xjobs\": 7}", "jobs"), None);
        // Strictness.
        assert_eq!(json_bool_field("{\"tickless\": \"true\"}", "tickless"), None);
        assert_eq!(json_bool_field("{\"tickless\": 1}", "tickless"), None);
        assert_eq!(json_usize_field("{\"jobs\": \"4\"}", "jobs"), None);
        assert_eq!(json_usize_field("{\"jobs\": 4.0}", "jobs"), None);
        assert_eq!(json_usize_field("{\"jobs\": }", "jobs"), None);
    }

    #[test]
    fn queue_microbench_reports_positive_throughput() {
        assert!(queue_ops_per_sec() > 0.0);
    }
}
