//! The scheduler-activation round trip, isolated (paper Table-E1: the SA
//! path adds 20–26 µs of *virtual* time to each preemption; this bench
//! measures the *host-side* cost of simulating one full round).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use irs_guest::{GuestConfig, GuestOs, VcpuView};
use irs_sim::SimTime;
use irs_xen::{Hypervisor, PcpuId, SaConfig, SchedOp, VcpuRef, VmSpec, XenConfig};
use std::hint::black_box;

/// Sets up an SA-capable vCPU running with a competitor queued, one slice
/// expiry away from an SA round.
fn armed() -> (Hypervisor, GuestOs, VcpuRef) {
    let mut hv = Hypervisor::new(
        XenConfig {
            sa: Some(SaConfig::default()),
            ..XenConfig::default()
        },
        1,
    );
    let fg = hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)).sa_capable(true));
    hv.create_vm(VmSpec::new(1).pin_all(PcpuId(0)));
    hv.start(SimTime::ZERO);
    let vfg = VcpuRef::new(fg, 0);
    if hv.pcpu_current(PcpuId(0)) != Some(vfg) {
        let cur = hv.pcpu_current(PcpuId(0)).unwrap();
        hv.sched_op(cur, SchedOp::Yield, SimTime::ZERO);
    }
    assert_eq!(hv.pcpu_current(PcpuId(0)), Some(vfg));
    let mut guest = GuestOs::new(GuestConfig::with_irs(), 1);
    guest.spawn(0);
    guest.spawn(0);
    guest.start(SimTime::ZERO);
    (hv, guest, vfg)
}

fn bench_sa_round(c: &mut Criterion) {
    c.bench_function("sa/full_round_trip", |b| {
        b.iter_batched(
            armed,
            |(mut hv, mut guest, vfg)| {
                // 1. Slice expiry triggers the SA sender.
                let info = hv.dispatch_info(PcpuId(0)).unwrap();
                let sent = hv.slice_expired(PcpuId(0), info.generation, info.since + info.slice);
                black_box(&sent);
                // 2. Receiver + context switcher in the guest.
                let outcome = guest.sa_upcall(0);
                // 3. Acknowledgement completes the deferred preemption.
                let done = hv.sched_op(vfg, outcome.op, info.since + info.slice + SimTime::from_micros(22));
                black_box(done);
                // 4. Migrator places the descheduled task.
                let views = vec![VcpuView::preempted(0.5)];
                black_box(guest.migrator_run(&views));
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("sa/upcall_only", |b| {
        b.iter_batched(
            || {
                let mut guest = GuestOs::new(GuestConfig::with_irs(), 2);
                guest.spawn(0);
                guest.spawn(0);
                guest.spawn(1);
                guest.start(SimTime::ZERO);
                guest
            },
            |mut guest| black_box(guest.sa_upcall(0)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_sa_round);
criterion_main!(benches);
