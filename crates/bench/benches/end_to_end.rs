//! End-to-end throughput of the co-simulation: full (but single-seed) runs
//! of one representative scenario per figure family. These are the numbers
//! that bound how long the `figures` binary takes.

use criterion::{criterion_group, criterion_main, Criterion, SamplingMode};
use irs_core::{Scenario, Strategy, VmScenario};
use irs_sim::SimTime;
use irs_workloads::presets;
use std::hint::black_box;

fn bench_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sampling_mode(SamplingMode::Flat).sample_size(10);

    group.bench_function("fig5_cell/streamcluster_irs_1inter", |b| {
        b.iter(|| {
            black_box(
                Scenario::fig5_style("streamcluster", 1, Strategy::Irs, 1)
                    .run()
                    .measured()
                    .makespan_ms(),
            )
        })
    });
    group.bench_function("fig6_cell/mg_vanilla_2inter", |b| {
        b.iter(|| {
            black_box(
                Scenario::fig5_style("MG", 2, Strategy::Vanilla, 1)
                    .run()
                    .measured()
                    .makespan_ms(),
            )
        })
    });
    group.bench_function("fig8_cell/specjbb_irs_1inter_2s", |b| {
        b.iter(|| {
            let r = Scenario::new(4, Strategy::Irs, 1)
                .vm(
                    VmScenario::new(presets::server::specjbb(4), 4)
                        .pin_one_to_one()
                        .measured(),
                )
                .vm(VmScenario::new(presets::hog::cpu_hogs(1), 4).pin_one_to_one())
                .horizon(SimTime::from_secs(2))
                .run();
            black_box(r.measured().requests)
        })
    });
    group.bench_function("fig12_cell/cg_irs_unpinned", |b| {
        b.iter(|| {
            let mut s = Scenario::fig5_style("CG", 4, Strategy::Irs, 1);
            for vm in &mut s.vms {
                vm.pinning = None;
            }
            black_box(s.run().measured().makespan_ms())
        })
    });
    group.bench_function("pipeline/dedup_vanilla_1inter", |b| {
        b.iter(|| {
            black_box(
                Scenario::fig5_style("dedup", 1, Strategy::Vanilla, 1)
                    .run()
                    .measured()
                    .makespan_ms(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_runs);
criterion_main!(benches);
