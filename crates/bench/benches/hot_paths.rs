//! Micro-benchmarks of the simulation's hot paths: event-queue operations,
//! CFS pick-next, credit-scheduler decisions, and the migrator scan.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use irs_guest::{GuestConfig, GuestOs, VcpuView};
use irs_sim::{EventQueue, SimTime};
use irs_xen::{Hypervisor, PcpuId, SchedOp, VcpuRef, VmId, VmSpec, XenConfig};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_pop_1k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..1000u64 {
                    q.schedule(SimTime::from_nanos(i * 37 % 4096), i);
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("event_queue/cancel_heavy", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                let ids: Vec<_> = (0..1000u64)
                    .map(|i| q.schedule(SimTime::from_nanos(i), i))
                    .collect();
                for id in ids.iter().step_by(2) {
                    q.cancel(*id);
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn busy_guest() -> GuestOs {
    let mut g = GuestOs::new(GuestConfig::with_irs(), 4);
    for i in 0..16 {
        g.spawn(i % 4);
    }
    g.start(SimTime::ZERO);
    g
}

fn bench_guest(c: &mut Criterion) {
    c.bench_function("guest/tick_with_balance", |b| {
        let views = vec![VcpuView::running(); 4];
        b.iter_batched(
            busy_guest,
            |mut g| {
                for round in 0..32u64 {
                    for v in 0..4 {
                        g.account_runtime(v, SimTime::from_millis(1));
                        black_box(g.tick(v, SimTime::from_millis(round), &views));
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("guest/migrator_scan", |b| {
        let views = vec![
            VcpuView::preempted(0.6),
            VcpuView::running(),
            VcpuView::running(),
            VcpuView::blocked(),
        ];
        b.iter_batched(
            || {
                let mut g = GuestOs::new(GuestConfig::with_irs(), 4);
                for i in 0..4 {
                    g.spawn(i);
                }
                g.start(SimTime::ZERO);
                g.sa_upcall(0);
                g
            },
            |mut g| black_box(g.migrator_run(&views)),
            BatchSize::SmallInput,
        )
    });
}

fn contended_hv() -> Hypervisor {
    let mut hv = Hypervisor::new(XenConfig::default(), 4);
    for _ in 0..3 {
        hv.create_vm(VmSpec::new(4).pin(vec![PcpuId(0), PcpuId(1), PcpuId(2), PcpuId(3)]));
    }
    hv.start(SimTime::ZERO);
    hv
}

fn bench_credit(c: &mut Criterion) {
    c.bench_function("xen/slice_expiry_decision", |b| {
        b.iter_batched(
            contended_hv,
            |mut hv| {
                let mut now = SimTime::ZERO;
                for _ in 0..16 {
                    now += SimTime::from_millis(30);
                    for p in 0..4 {
                        if let Some(info) = hv.dispatch_info(PcpuId(p)) {
                            black_box(hv.slice_expired(PcpuId(p), info.generation, now));
                        }
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("xen/tick_and_accounting", |b| {
        b.iter_batched(
            contended_hv,
            |mut hv| {
                for i in 1..=12u64 {
                    let now = SimTime::from_millis(i * 10);
                    black_box(hv.tick(now));
                    if i % 3 == 0 {
                        black_box(hv.accounting(now));
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("xen/wake_boost_path", |b| {
        b.iter_batched(
            || {
                let mut hv = contended_hv();
                let v = VcpuRef::new(VmId(0), 0);
                // Park vm0.v0 so each iteration can wake it.
                if hv.pcpu_current(PcpuId(0)) != Some(v) {
                    hv.sched_op(hv.pcpu_current(PcpuId(0)).unwrap(), SchedOp::Yield, SimTime::ZERO);
                }
                (hv, v)
            },
            |(mut hv, v): (Hypervisor, VcpuRef)| {
                hv.sched_op(v, SchedOp::Block, SimTime::from_micros(10));
                black_box(hv.vcpu_wake(v, SimTime::from_micros(20)));
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_event_queue, bench_guest, bench_credit);
criterion_main!(benches);
