//! Wheel-vs-heap comparison bench for the event core.
//!
//! `EventQueue` is now a hierarchical timer wheel; this bench keeps a
//! self-contained binary-heap reference implementation (the pre-wheel
//! design: lazy-deletion heap over a generation-tagged slab) so the win
//! on the simulator's own churn pattern stays measurable instead of
//! being a number in a commit message. Both sides run the identical
//! workload shapes:
//!
//! * `steady_churn` — the `figures perf` micro-benchmark shape: a hot
//!   live population of ~512 armed timers, 85% short periodic beats,
//!   schedule/cancel/pop interleaved. This is the case the wheel is
//!   built for and the one the simulator actually runs; the wheel wins
//!   it even against this deliberately stripped-down heap (the real
//!   pre-wheel queue also carried slab/tombstone overhead the reference
//!   omits, which is why `figures perf` records a larger gap).
//! * `schedule_drain` — bulk arm then full drain with *no clock
//!   advance between schedules*: the shape that favors a heap (pure
//!   O(log n) pops vs. wheel cascade + slot sorts). Kept as the honest
//!   counter-case; the simulator never runs this shape because event
//!   arming is interleaved with time advancing.
//! * `cancel_heavy` — arm, cancel half, drain: tombstone reclamation on
//!   both sides.
//!
//! Run with: `cargo bench -p irs-bench --features criterion-benches --bench queue_wheel`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use irs_sim::{EventQueue, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

/// The pre-wheel event queue: a lazy-deletion binary heap keyed by
/// `(time, insertion seq)` with cancellation flags in a side slab. Kept
/// here verbatim-in-spirit as the comparison baseline; it intentionally
/// mirrors the old `EventQueue` cost profile, not its full API.
struct HeapQueue<T> {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    slab: Vec<Option<T>>,
    live: Vec<bool>,
    seq: u64,
}

impl<T> HeapQueue<T> {
    fn new() -> Self {
        Self { heap: BinaryHeap::new(), slab: Vec::new(), live: Vec::new(), seq: 0 }
    }

    fn schedule(&mut self, at: SimTime, payload: T) -> u64 {
        let id = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at.as_nanos(), id)));
        self.slab.push(Some(payload));
        self.live.push(true);
        id
    }

    fn cancel(&mut self, id: u64) -> bool {
        let i = id as usize;
        if i < self.live.len() && self.live[i] {
            self.live[i] = false;
            self.slab[i] = None;
            true
        } else {
            false
        }
    }

    fn pop(&mut self) -> Option<(SimTime, T)> {
        while let Some(Reverse((t, id))) = self.heap.pop() {
            let i = id as usize;
            if self.live[i] {
                self.live[i] = false;
                return Some((SimTime::from_nanos(t), self.slab[i].take().unwrap()));
            }
        }
        None
    }
}

/// The simulator's own timer-churn shape (see `perf::queue_ops_per_sec`):
/// 85% ~1 ms periodic beats, the rest golden-ratio scattered over
/// 1 µs..34 ms.
fn delta(k: u64) -> u64 {
    let r = k.wrapping_mul(0x9e37_79b9);
    if r % 100 < 85 {
        900_000 + r % 200_000
    } else {
        1_000 + r % 33_554_432
    }
}

const POPULATION: usize = 512;
const ROUNDS: usize = 4096;

fn bench_steady_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_steady_churn");
    g.bench_function("wheel", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                let (mut k, mut now) = (0u64, 0u64);
                for _ in 0..POPULATION {
                    k += 1;
                    q.schedule(SimTime::from_nanos(now + delta(k)), k);
                }
                for _ in 0..ROUNDS {
                    for _ in 0..3 {
                        k += 1;
                        q.schedule(SimTime::from_nanos(now + delta(k)), k);
                    }
                    let id = q.schedule(SimTime::from_nanos(now + delta(k ^ 7)), k);
                    q.cancel(id);
                    for _ in 0..3 {
                        if let Some((t, _)) = q.pop() {
                            now = t.as_nanos();
                        }
                    }
                }
                while black_box(q.pop()).is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("heap", |b| {
        b.iter_batched(
            HeapQueue::<u64>::new,
            |mut q| {
                let (mut k, mut now) = (0u64, 0u64);
                for _ in 0..POPULATION {
                    k += 1;
                    q.schedule(SimTime::from_nanos(now + delta(k)), k);
                }
                for _ in 0..ROUNDS {
                    for _ in 0..3 {
                        k += 1;
                        q.schedule(SimTime::from_nanos(now + delta(k)), k);
                    }
                    let id = q.schedule(SimTime::from_nanos(now + delta(k ^ 7)), k);
                    q.cancel(id);
                    for _ in 0..3 {
                        if let Some((t, _)) = q.pop() {
                            now = t.as_nanos();
                        }
                    }
                }
                while black_box(q.pop()).is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_schedule_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_schedule_drain");
    g.bench_function("wheel", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for k in 1..=(ROUNDS as u64) {
                    q.schedule(SimTime::from_nanos(delta(k)), k);
                }
                while black_box(q.pop()).is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("heap", |b| {
        b.iter_batched(
            HeapQueue::<u64>::new,
            |mut q| {
                for k in 1..=(ROUNDS as u64) {
                    q.schedule(SimTime::from_nanos(delta(k)), k);
                }
                while black_box(q.pop()).is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_cancel_heavy(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_cancel_heavy");
    g.bench_function("wheel", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                let ids: Vec<_> = (1..=(ROUNDS as u64))
                    .map(|k| q.schedule(SimTime::from_nanos(delta(k)), k))
                    .collect();
                for id in ids.iter().step_by(2) {
                    q.cancel(*id);
                }
                while black_box(q.pop()).is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("heap", |b| {
        b.iter_batched(
            HeapQueue::<u64>::new,
            |mut q| {
                let ids: Vec<_> = (1..=(ROUNDS as u64))
                    .map(|k| q.schedule(SimTime::from_nanos(delta(k)), k))
                    .collect();
                for id in ids.iter().step_by(2) {
                    q.cancel(*id);
                }
                while black_box(q.pop()).is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_steady_churn, bench_schedule_drain, bench_cancel_heavy);
criterion_main!(benches);
