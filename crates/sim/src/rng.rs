//! Seeded randomness for reproducible experiments.
//!
//! Every experiment in `EXPERIMENTS.md` is the average of ≥5 seeded runs
//! (mirroring the paper's 5-run averages). All stochastic choices — compute
//! jitter, request inter-arrival times, service demands — flow through
//! [`SimRng`] so a `(scenario, seed)` pair fully determines the outcome.
//!
//! The generator is a self-contained xoshiro256++ (public-domain algorithm
//! by Blackman & Vigna) seeded through SplitMix64, so the simulation kernel
//! has no external dependencies and builds on air-gapped hosts. Parallel
//! experiment runs each construct their own `SimRng` from the scenario seed,
//! which is what makes the fan-out engine in `irs-core` deterministic
//! regardless of worker count.

/// A seedable random source with the distributions used by workload models.
///
/// # Example
///
/// ```
/// use irs_sim::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.uniform_u64(0, 100), b.uniform_u64(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step: expands a 64-bit seed into decorrelated state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child stream, e.g. one per task, so adding a
    /// task never perturbs the random draws of existing tasks.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        // SplitMix-style mixing keeps child streams decorrelated even for
        // consecutive salts.
        let mut z = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::seed_from(z ^ (z >> 31))
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64 range is inverted: {lo} > {hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.bounded(span + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A value drawn from `mean` with multiplicative jitter of ±`jitter`
    /// (e.g. `jitter = 0.1` gives a uniform draw in `[0.9·mean, 1.1·mean]`).
    ///
    /// Compute-segment lengths in the workload models use this: real parallel
    /// phases are never perfectly balanced, and the slight imbalance is what
    /// exercises barrier wait paths.
    pub fn jittered(&mut self, mean: u64, jitter: f64) -> u64 {
        if mean == 0 || jitter <= 0.0 {
            return mean;
        }
        let jitter = jitter.min(1.0);
        let factor = 1.0 + jitter * (2.0 * self.unit_f64() - 1.0);
        (mean as f64 * factor).round().max(1.0) as u64
    }

    /// Exponentially distributed value with the given mean (Poisson
    /// inter-arrival times for the open-loop server workload).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.unit_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniformly chosen index into a collection of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick an index from an empty collection");
        self.bounded(len as u64) as usize
    }

    /// Raw 64-bit draw (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Unbiased draw in `[0, bound)` via Lemire's multiply-shift with a
    /// rejection fix-up.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn fork_is_deterministic_and_decorrelated() {
        let mut parent1 = SimRng::seed_from(9);
        let mut parent2 = SimRng::seed_from(9);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut parent3 = SimRng::seed_from(9);
        let mut sibling = parent3.fork(6);
        let mut c3 = SimRng::seed_from(9).fork(5);
        assert_ne!(sibling.next_u64(), c3.next_u64());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::seed_from(42);
        for _ in 0..1000 {
            let v = rng.uniform_u64(10, 20);
            assert!((10..=20).contains(&v));
        }
        assert_eq!(rng.uniform_u64(7, 7), 7);
        // Degenerate full-range draw must not overflow.
        let _ = rng.uniform_u64(0, u64::MAX);
    }

    #[test]
    fn jittered_stays_in_band() {
        let mut rng = SimRng::seed_from(42);
        for _ in 0..1000 {
            let v = rng.jittered(1000, 0.25);
            assert!((750..=1250).contains(&v), "got {v}");
        }
        assert_eq!(rng.jittered(0, 0.5), 0);
        assert_eq!(rng.jittered(500, 0.0), 500);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from(42);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(250.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 250.0).abs() < 10.0, "mean was {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(42);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-3.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn index_bounds() {
        let mut rng = SimRng::seed_from(42);
        for _ in 0..100 {
            assert!(rng.index(3) < 3);
        }
    }

    #[test]
    fn unit_f64_is_in_range_and_varied() {
        let mut rng = SimRng::seed_from(7);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..1000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
            distinct.insert(u.to_bits());
        }
        assert!(distinct.len() > 990, "draws should rarely collide");
    }
}
