//! Cancellable discrete-event queue.
//!
//! The two-level scheduler simulation constantly arms timers that become
//! irrelevant before they fire: a vCPU's 30 ms slice-expiry timer dies when
//! the vCPU blocks early; a task's compute-completion event dies when its
//! vCPU is preempted. Rather than eagerly removing entries from the heap
//! (O(n)), [`EventQueue::cancel`] marks the entry dead and [`EventQueue::pop`]
//! lazily skips corpses.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Handle to a scheduled event, used for cancellation.
///
/// Ids are unique for the lifetime of the queue and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// Raw id value (diagnostics only).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// A time-ordered queue of events with stable FIFO tie-breaking and O(1)
/// logical cancellation.
///
/// Events scheduled for the same instant pop in the order they were
/// scheduled, which gives the simulation a deterministic total order — a
/// prerequisite for the reproducibility guarantees in `DESIGN.md`.
///
/// # Example
///
/// ```
/// use irs_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(5), 'b');
/// q.schedule(SimTime::from_nanos(1), 'a');
/// q.schedule(SimTime::from_nanos(5), 'c');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry>>,
    payloads: HashMap<u64, E>,
    next_id: u64,
    live: usize,
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    at: SimTime,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: HashMap::new(),
            next_id: 0,
            live: 0,
        }
    }

    /// Schedules `payload` to fire at instant `at` and returns a handle that
    /// can later be passed to [`cancel`](Self::cancel).
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let id = self.next_id;
        self.next_id += 1;
        self.heap.push(Reverse(Entry { at, seq: id }));
        self.payloads.insert(id, payload);
        self.live += 1;
        EventId(id)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already fired or been cancelled. Cancellation is O(1); the heap entry
    /// is discarded lazily on a later pop.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.payloads.remove(&id.0).is_some() {
            self.live -= 1;
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest live event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if let Some(payload) = self.payloads.remove(&entry.seq) {
                self.live -= 1;
                return Some((entry.at, payload));
            }
        }
        None
    }

    /// The firing time of the earliest live event, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.payloads.contains_key(&entry.seq) {
                return Some(entry.at);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.payloads.clear();
        self.live = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut EventQueue<u32>) -> Vec<(u64, u32)> {
        std::iter::from_fn(|| q.pop().map(|(t, p)| (t.as_nanos(), p))).collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        assert_eq!(drain(&mut q), vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for v in 0..100u32 {
            q.schedule(SimTime::from_nanos(42), v);
        }
        let popped: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(2), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(drain(&mut q), vec![(2, 2)]);
    }

    #[test]
    fn cancel_after_pop_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 7);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), 7)));
        assert!(!q.cancel(a));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(5), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(5)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_discards_everything() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ids_are_never_reused() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 1);
        q.pop();
        let b = q.schedule(SimTime::from_nanos(1), 1);
        assert_ne!(a, b);
    }
}
