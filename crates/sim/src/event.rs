//! Cancellable discrete-event queue.
//!
//! The two-level scheduler simulation constantly arms timers that become
//! irrelevant before they fire: a vCPU's 30 ms slice-expiry timer dies when
//! the vCPU blocks early; a task's compute-completion event dies when its
//! vCPU is preempted. Rather than eagerly removing entries from the heap
//! (O(n)), [`EventQueue::cancel`] invalidates the entry's slab generation
//! and [`EventQueue::pop`] lazily skips corpses.
//!
//! # Hot-path design
//!
//! `schedule`/`pop`/`peek` are the innermost loop of every simulation run,
//! so the queue stores payloads **inline in the heap entries** and keeps a
//! side **generation-tagged slab** (a plain `Vec<u32>` plus a free list)
//! whose only job is deciding whether a heap entry is still live. Compared
//! to the earlier `HashMap<u64, E>` payload side-table this removes a
//! hash-plus-probe from every schedule, pop, and peek, and makes
//! cancellation a single indexed generation bump.
//!
//! Two complementary mechanisms bound tombstone accumulation:
//!
//! * the heap **top is always live** (dead tops are popped eagerly by
//!   `cancel`/`pop`), which is what lets [`EventQueue::peek_time`] and
//!   [`EventQueue::peek`] take `&self`;
//! * when dead entries outnumber live ones (and the heap is non-trivial),
//!   the heap is **compacted** in O(n): live entries are retained and
//!   re-heapified, so a cancel-heavy run's memory stays proportional to the
//!   live event count.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a scheduled event, used for cancellation.
///
/// A handle encodes a slab slot and that slot's generation at scheduling
/// time. Slots are recycled, generations are not: every `(slot, generation)`
/// pair — and therefore every `EventId` value — is unique for the lifetime
/// of the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, gen: u32) -> Self {
        EventId(((gen as u64) << 32) | slot as u64)
    }

    fn slot(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Raw id value (diagnostics only).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// A heap entry carrying its payload inline. Ordering ignores the payload:
/// earliest time first, then FIFO by schedule sequence (`seq` is unique, so
/// the order is total and `Eq` degenerates to `seq` equality).
#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (time, seq) on top.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered queue of events with stable FIFO tie-breaking and O(1)
/// logical cancellation.
///
/// Events scheduled for the same instant pop in the order they were
/// scheduled, which gives the simulation a deterministic total order — a
/// prerequisite for the reproducibility guarantees in `DESIGN.md`.
///
/// # Example
///
/// ```
/// use irs_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(5), 'b');
/// q.schedule(SimTime::from_nanos(1), 'a');
/// q.schedule(SimTime::from_nanos(5), 'c');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Generation per slab slot; a heap entry is live iff its recorded
    /// generation still matches its slot's.
    gens: Vec<u32>,
    free: Vec<u32>,
    next_seq: u64,
    live: usize,
}

/// Compaction never triggers below this physical heap size; tiny queues are
/// cheaper to skip-scan than to rebuild.
const COMPACT_MIN: usize = 64;

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            gens: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Schedules `payload` to fire at instant `at` and returns a handle that
    /// can later be passed to [`cancel`](Self::cancel).
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.gens.push(0);
                (self.gens.len() - 1) as u32
            }
        };
        let gen = self.gens[slot as usize];
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            slot,
            gen,
            payload,
        });
        self.live += 1;
        EventId::new(slot, gen)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already fired or been cancelled. Cancellation bumps the slab
    /// generation (O(1)); the heap entry is discarded lazily on a later pop
    /// or compaction. The payload of a cancelled event is dropped at that
    /// later point, not here.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let slot = id.slot();
        if self.gens.get(slot).copied() != Some(id.gen()) {
            return false;
        }
        self.gens[slot] = id.gen().wrapping_add(1);
        self.free.push(slot as u32);
        self.live -= 1;
        self.drop_dead_top();
        self.maybe_compact();
        true
    }

    /// Removes and returns the earliest live event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // The top is always live (see `drop_dead_top`), so this never skips.
        let entry = self.heap.pop()?;
        debug_assert_eq!(self.gens[entry.slot as usize], entry.gen, "dead heap top");
        self.gens[entry.slot as usize] = entry.gen.wrapping_add(1);
        self.free.push(entry.slot);
        self.live -= 1;
        self.drop_dead_top();
        Some((entry.at, entry.payload))
    }

    /// The firing time of the earliest live event, without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Conditionally removes the earliest live event: `pred` inspects the
    /// head as `(time, &payload)` and the head is popped only when it
    /// returns `true`; otherwise the queue is left untouched and `None` is
    /// returned (also when empty).
    ///
    /// This is the coalesced-timer primitive behind tickless fast-forward:
    /// a driver loop repeatedly takes the head *only while* it can prove
    /// the event is a no-op (a quiescent periodic tick, a dead timer
    /// generation), and stops at the first event that needs real dispatch —
    /// without the classify-then-pop race a separate `peek`/`pop` pair
    /// would invite if the predicate and the pop disagreed on the head.
    pub fn pop_if(&mut self, pred: impl FnOnce(SimTime, &E) -> bool) -> Option<(SimTime, E)> {
        // The top is always live (see `drop_dead_top`), so the entry the
        // predicate inspects is exactly the entry `pop` would return.
        let head = self.heap.peek()?;
        if !pred(head.at, &head.payload) {
            return None;
        }
        self.pop()
    }

    /// The earliest live event as `(time, &payload)`, without removing it.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.peek().map(|e| (e.at, &e.payload))
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of cancelled entries still physically present in the heap
    /// (diagnostics; bounded at roughly the live count by compaction).
    pub fn tombstones(&self) -> usize {
        self.heap.len() - self.live
    }

    /// Drops every pending event. Outstanding [`EventId`]s are invalidated:
    /// a later `cancel` with a pre-`clear` handle reports `false`.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.free.clear();
        for (i, g) in self.gens.iter_mut().enumerate() {
            *g = g.wrapping_add(1);
            self.free.push(i as u32);
        }
        self.live = 0;
        // Every slot must re-enter the free list exactly once: a slot left
        // out is stranded forever, and a duplicated slot would alias two
        // live events on one generation counter — letting a single stale
        // handle cancel the wrong post-clear event.
        debug_assert_eq!(self.free.len(), self.gens.len());
        debug_assert!({
            let mut seen = vec![false; self.gens.len()];
            self.free
                .iter()
                .all(|&s| !std::mem::replace(&mut seen[s as usize], true))
        });
    }

    /// Restores the invariant that the heap top, if any, is live. Amortized
    /// O(1): every popped corpse was pushed exactly once.
    fn drop_dead_top(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.gens[top.slot as usize] == top.gen {
                return;
            }
            self.heap.pop();
        }
    }

    /// Rebuilds the heap without tombstones once they outnumber live
    /// entries, keeping memory and pop cost proportional to live events.
    fn maybe_compact(&mut self) {
        let physical = self.heap.len();
        if physical < COMPACT_MIN || physical - self.live <= self.live {
            return;
        }
        let drained = std::mem::take(&mut self.heap).into_vec();
        let kept: Vec<Entry<E>> = drained
            .into_iter()
            .filter(|e| self.gens[e.slot as usize] == e.gen)
            .collect();
        debug_assert_eq!(kept.len(), self.live);
        self.heap = BinaryHeap::from(kept);
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut EventQueue<u32>) -> Vec<(u64, u32)> {
        std::iter::from_fn(|| q.pop().map(|(t, p)| (t.as_nanos(), p))).collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        assert_eq!(drain(&mut q), vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for v in 0..100u32 {
            q.schedule(SimTime::from_nanos(42), v);
        }
        let popped: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(2), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(drain(&mut q), vec![(2, 2)]);
    }

    #[test]
    fn cancel_after_pop_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 7);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), 7)));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_of_reused_slot_does_not_kill_successor() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 1);
        q.cancel(a);
        // The slot is recycled with a fresh generation; the stale handle
        // must not affect the new occupant.
        let b = q.schedule(SimTime::from_nanos(2), 2);
        assert!(!q.cancel(a));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(2), 2)));
        assert!(!q.cancel(b));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(5), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(5)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_is_shared_and_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(9), 'z');
        q.schedule(SimTime::from_nanos(3), 'a');
        let r = &q; // peek must work through a shared reference
        assert_eq!(r.peek_time(), Some(SimTime::from_nanos(3)));
        assert_eq!(r.peek(), Some((SimTime::from_nanos(3), &'a')));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(3), 'a')));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_discards_everything() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert!(!q.cancel(a), "pre-clear handles are invalidated");
        // The queue is fully usable after a clear.
        q.schedule(SimTime::from_nanos(3), 9);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(3), 9)));
    }

    #[test]
    fn clear_then_reschedule_keeps_stale_handles_dead() {
        let mut q = EventQueue::new();
        let pre: Vec<_> = (0..8u32)
            .map(|i| q.schedule(SimTime::from_nanos(i as u64), i))
            .collect();
        // Mixed slot history through the clear: one slot already recycled
        // by pop, one by cancel, the rest still live.
        q.pop();
        assert!(q.cancel(pre[3]));
        q.clear();
        // Refill past the cleared population so every recycled slot (and a
        // few fresh ones) is re-occupied, in whatever order the free list
        // hands slots out.
        let post: Vec<_> = (0..12u32)
            .map(|i| q.schedule(SimTime::from_nanos(100 + i as u64), 100 + i))
            .collect();
        assert_eq!(q.len(), 12);
        for id in &pre {
            assert!(!q.cancel(*id), "stale pre-clear handle hit a recycled slot");
        }
        assert_eq!(q.len(), 12, "stale cancels must not remove anything");
        for id in &post {
            assert!(q.cancel(*id), "post-clear handles must stay valid");
        }
        assert!(q.is_empty());
    }

    #[test]
    fn ids_are_never_reused() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 1);
        q.pop();
        let b = q.schedule(SimTime::from_nanos(1), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn compaction_bounds_tombstones() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..1000u32)
            .map(|i| q.schedule(SimTime::from_nanos(1000 + i as u64), i))
            .collect();
        // Cancel from the back so corpses pile up in the heap's interior
        // (the live top never exposes them to drop_dead_top).
        for id in ids.iter().skip(100).rev() {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 100);
        assert!(
            q.tombstones() <= 100,
            "compaction should cap tombstones at the live count, got {}",
            q.tombstones()
        );
        // Survivors drain in schedule order (their times are increasing).
        let popped: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn small_queues_skip_compaction() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..16u32)
            .map(|i| q.schedule(SimTime::from_nanos(10 + i as u64), i))
            .collect();
        for id in ids.iter().skip(1).rev() {
            q.cancel(*id);
        }
        // Below COMPACT_MIN nothing forces a rebuild; correctness holds.
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 0)));
        assert!(q.is_empty());
    }

    #[test]
    fn heavy_churn_reuses_slots() {
        let mut q = EventQueue::new();
        for round in 0..50u64 {
            let ids: Vec<_> = (0..100u64)
                .map(|i| q.schedule(SimTime::from_nanos(round * 1000 + i), i))
                .collect();
            for (i, id) in ids.iter().enumerate() {
                if i % 2 == 0 {
                    assert!(q.cancel(*id));
                }
            }
            while q.pop().is_some() {}
        }
        // Slab never grew past one round's worth of concurrent events.
        assert!(q.gens.len() <= 100, "slab grew to {}", q.gens.len());
    }
}
